#include "fault/fault_injector.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.h"
#include "common/file_io.h"
#include "obs/event_journal.h"

namespace hom {

namespace {

constexpr std::string_view kKindNames[] = {
    "corrupt_record",
    "bit_flip",
    "truncate",
    "remove_file",
    "corrupt_bytes",
    "truncate_bytes",
};

void JournalFault(FaultKind kind, int64_t position) {
  obs::EmitIfActive(obs::EventType::kFaultInjected, FaultKindName(kind),
                    position);
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  size_t i = static_cast<size_t>(kind);
  HOM_DCHECK(i < sizeof(kKindNames) / sizeof(kKindNames[0]));
  return kKindNames[i];
}

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed, /*stream=*/0xFA) {}

std::string FaultInjector::CorruptRecord(Record* record) {
  HOM_CHECK(record != nullptr);
  // Seven mutation shapes; field-level ones need a field to mangle, so an
  // empty record only gets arity/label mutations.
  int shape = rng_.NextInt(0, record->values.empty() ? 2 : 6);
  switch (shape) {
    case 0:
      record->values.push_back(0.0);
      JournalFault(FaultKind::kCorruptRecord, -1);
      return "appended a surplus field";
    case 1:
      if (!record->values.empty()) record->values.pop_back();
      JournalFault(FaultKind::kCorruptRecord, -1);
      return "dropped the last field";
    case 2:
      record->label = static_cast<Label>(rng_.NextInt(-5, 1000));
      JournalFault(FaultKind::kCorruptRecord, -1);
      return "scrambled the label";
    default: {
      size_t field =
          rng_.NextBounded(static_cast<uint32_t>(record->values.size()));
      double bad = 0.0;
      const char* what = "";
      switch (shape) {
        case 3:
          bad = std::numeric_limits<double>::quiet_NaN();
          what = "NaN";
          break;
        case 4:
          bad = std::numeric_limits<double>::infinity();
          what = "+inf";
          break;
        case 5:
          bad = -1.0 - rng_.NextDouble() * 1e6;
          what = "a negative out-of-vocabulary code";
          break;
        default:
          bad = 1e308;
          what = "a huge value";
          break;
      }
      record->values[field] = bad;
      JournalFault(FaultKind::kCorruptRecord, static_cast<int64_t>(field));
      return std::string("set field ") + std::to_string(field) + " to " +
             what;
    }
  }
}

Result<std::string> FaultInjector::BitFlipFile(const std::string& path) {
  HOM_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  if (bytes.empty()) {
    return Status::InvalidArgument("cannot bit-flip empty file: " + path);
  }
  size_t byte = rng_.NextBounded(static_cast<uint32_t>(bytes.size()));
  int bit = rng_.NextInt(0, 7);
  bytes[byte] = static_cast<char>(static_cast<unsigned char>(bytes[byte]) ^
                                  (1u << bit));
  HOM_RETURN_NOT_OK(AtomicWriteFile(path, bytes));
  JournalFault(FaultKind::kBitFlip, static_cast<int64_t>(byte));
  return "flipped bit " + std::to_string(bit) + " of byte " +
         std::to_string(byte);
}

Result<std::string> FaultInjector::TruncateFile(const std::string& path) {
  HOM_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  if (bytes.empty()) {
    return Status::InvalidArgument("cannot truncate empty file: " + path);
  }
  size_t keep = rng_.NextBounded(static_cast<uint32_t>(bytes.size()));
  size_t total = bytes.size();
  bytes.resize(keep);
  HOM_RETURN_NOT_OK(AtomicWriteFile(path, bytes));
  JournalFault(FaultKind::kTruncate, static_cast<int64_t>(keep));
  return "truncated to " + std::to_string(keep) + " of " +
         std::to_string(total) + " bytes";
}

Result<std::string> FaultInjector::CorruptBytes(std::string* bytes) {
  HOM_CHECK(bytes != nullptr);
  if (bytes->empty()) {
    return Status::InvalidArgument("cannot bit-flip an empty payload");
  }
  size_t byte = rng_.NextBounded(static_cast<uint32_t>(bytes->size()));
  int bit = rng_.NextInt(0, 7);
  (*bytes)[byte] = static_cast<char>(
      static_cast<unsigned char>((*bytes)[byte]) ^ (1u << bit));
  JournalFault(FaultKind::kCorruptBytes, static_cast<int64_t>(byte));
  return "flipped bit " + std::to_string(bit) + " of byte " +
         std::to_string(byte);
}

Result<std::string> FaultInjector::TruncateBytes(std::string* bytes) {
  HOM_CHECK(bytes != nullptr);
  if (bytes->empty()) {
    return Status::InvalidArgument("cannot truncate an empty payload");
  }
  size_t keep = rng_.NextBounded(static_cast<uint32_t>(bytes->size()));
  size_t total = bytes->size();
  bytes->resize(keep);
  JournalFault(FaultKind::kTruncateBytes, static_cast<int64_t>(keep));
  return "truncated to " + std::to_string(keep) + " of " +
         std::to_string(total) + " bytes";
}

Result<std::string> FaultInjector::RemoveFile(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    return Status::IoError("cannot remove '" + path + "'");
  }
  JournalFault(FaultKind::kRemoveFile, -1);
  return "removed " + path;
}

}  // namespace hom
