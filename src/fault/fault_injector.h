#ifndef HOM_FAULT_FAULT_INJECTOR_H_
#define HOM_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/rng.h"
#include "data/record.h"

namespace hom {

/// The fault classes the chaos harness exercises (ISSUE: every injected
/// fault must surface as a clean error Status or a policy-handled record —
/// never a crash, abort, or out-of-bounds access).
enum class FaultKind : uint8_t {
  kCorruptRecord = 0,  ///< mangle an in-memory record's fields/label
  kBitFlip,            ///< flip one bit of a file
  kTruncate,           ///< cut a file short
  kRemoveFile,         ///< delete a file (ENOENT on next open)
  kCorruptBytes,       ///< flip one bit of an in-flight payload
  kTruncateBytes,      ///< cut an in-flight payload short
};

/// Stable name of a fault kind ("corrupt_record", "bit_flip", ...).
std::string_view FaultKindName(FaultKind kind);

/// \brief Seeded, deterministic fault injection for robustness tests and
/// `homctl chaos`. Two injectors with the same seed perform the same
/// mutations in the same order, so every chaos failure reproduces from its
/// seed alone.
///
/// Each injection emits a FaultInjected journal event (when a journal is
/// active) carrying the fault kind in `source` and the mutation position
/// in `record`, so a trial's timeline shows exactly what was done to the
/// system before it failed — or didn't.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  /// Mangles `record` one seeded way: NaN/infinity/huge value in a field,
  /// a negative or out-of-vocabulary category code, an out-of-range label,
  /// or a dropped/appended field (wrong arity). Returns a description of
  /// the mutation.
  std::string CorruptRecord(Record* record);

  /// Flips one uniformly chosen bit of the file at `path` in place.
  /// Returns "bit N of byte M" on success; error Status if the file cannot
  /// be read, is empty, or cannot be rewritten.
  Result<std::string> BitFlipFile(const std::string& path);

  /// Truncates the file at `path` to a uniformly chosen length in
  /// [0, size) — always strictly shorter, so the mutation is never a
  /// no-op. Returns "truncated to N of M bytes".
  Result<std::string> TruncateFile(const std::string& path);

  /// Deletes the file at `path`, simulating a lost artifact (the next
  /// open sees ENOENT).
  Result<std::string> RemoveFile(const std::string& path);

  /// Flips one uniformly chosen bit of an in-memory payload — a checkpoint
  /// corrupted in flight on the replication wire. `bytes` must be
  /// non-empty. Returns "flipped bit N of byte M".
  Result<std::string> CorruptBytes(std::string* bytes);

  /// Shortens an in-memory payload to a uniformly chosen length in
  /// [0, size) — a transfer cut mid-stream. `bytes` must be non-empty.
  /// Returns "truncated to N of M bytes".
  Result<std::string> TruncateBytes(std::string* bytes);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace hom

#endif  // HOM_FAULT_FAULT_INJECTOR_H_
