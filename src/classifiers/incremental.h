#ifndef HOM_CLASSIFIERS_INCREMENTAL_H_
#define HOM_CLASSIFIERS_INCREMENTAL_H_

#include "classifiers/classifier.h"

namespace hom {

/// \brief A classifier that can additionally learn one record at a time.
///
/// Section II-D notes that the clustering cost analysis changes "unless the
/// base classifier supports incremental learning"; online ensemble methods
/// like DWM also require per-record updates. Train() on a view is provided
/// by default as a loop over Update().
class IncrementalClassifier : public Classifier {
 public:
  /// Folds one labeled record into the model. Unlabeled records are
  /// rejected.
  virtual Status Update(const Record& record) = 0;

  /// Batch training = incremental training over the view, after Reset().
  Status Train(const DatasetView& data) override;

  /// Clears the model back to its untrained state.
  virtual void Reset() = 0;
};

/// Factory for incremental learners (DWM experts, etc.).
using IncrementalClassifierFactory =
    std::function<std::unique_ptr<IncrementalClassifier>(
        const SchemaPtr& schema)>;

}  // namespace hom

#endif  // HOM_CLASSIFIERS_INCREMENTAL_H_
