#include "classifiers/compiled_tree.h"

#include <cstring>

#include "classifiers/decision_tree.h"
#include "classifiers/hoeffding_tree.h"
#include "common/check.h"

namespace hom {

namespace {

/// Packs one answer node's distribution and returns its offset in `dist`.
/// `counts`/`total` describe the node's training distribution; a node with
/// no mass answers a one-hot of its majority, otherwise the same
/// Laplace-corrected expression the pointer walk evaluates — identical
/// operations in identical order, so the packed doubles are bit-identical
/// to what PredictProba would have computed on the fly.
int32_t PackDistribution(const std::vector<double>& counts, double total,
                         Label majority, size_t num_classes,
                         std::vector<double>* dist) {
  int32_t offset = static_cast<int32_t>(dist->size());
  if (total <= 0.0 || counts.size() != num_classes) {
    dist->resize(dist->size() + num_classes, 0.0);
    (*dist)[static_cast<size_t>(offset) + static_cast<size_t>(majority)] = 1.0;
    return offset;
  }
  double denom = total + static_cast<double>(num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    dist->push_back((counts[c] + 1.0) / denom);
  }
  return offset;
}

int32_t PackOneHot(Label majority, size_t num_classes,
                   std::vector<double>* dist) {
  static const std::vector<double> kEmpty;
  return PackDistribution(kEmpty, 0.0, majority, num_classes, dist);
}

}  // namespace

Result<std::unique_ptr<CompiledTree>> CompiledTree::FromDecisionTree(
    const DecisionTree& tree) {
  const auto& nodes = tree.nodes_;
  const Schema& schema = *tree.schema_;
  if (nodes.empty()) {
    return Status::FailedPrecondition("cannot compile an untrained tree");
  }
  auto ct = std::unique_ptr<CompiledTree>(new CompiledTree());
  ct->num_classes_ = schema.num_classes();
  size_t n = nodes.size();
  ct->split_attr_.reserve(n);
  ct->threshold_.reserve(n);
  ct->first_child_.reserve(n);
  ct->fanout_.reserve(n);
  ct->numeric_split_.reserve(n);
  ct->majority_.reserve(n);
  ct->dist_offset_.reserve(n);

  // Breadth-first relayout: processing nodes in discovery order while
  // appending children to the worklist makes every node's children land
  // contiguously, which is what lets first_child + branch replace the
  // per-node child vector.
  std::vector<int32_t> order;
  order.reserve(n);
  order.push_back(0);
  for (size_t ni = 0; ni < order.size(); ++ni) {
    if (order.size() > n) {
      return Status::InvalidArgument(
          "tree nodes do not form a tree (shared or cyclic children)");
    }
    const auto& node = nodes[static_cast<size_t>(order[ni])];
    ct->split_attr_.push_back(node.attribute);
    ct->threshold_.push_back(node.threshold);
    ct->majority_.push_back(node.majority);
    if (node.attribute < 0) {
      ct->first_child_.push_back(0);
      ct->fanout_.push_back(0);
      ct->numeric_split_.push_back(0);
      ct->dist_offset_.push_back(PackDistribution(
          node.class_counts, node.total, node.majority, ct->num_classes_,
          &ct->dist_));
      continue;
    }
    if (static_cast<size_t>(node.attribute) >= schema.num_attributes()) {
      return Status::InvalidArgument("split attribute out of range");
    }
    const Attribute& attr =
        schema.attribute(static_cast<size_t>(node.attribute));
    ct->first_child_.push_back(static_cast<int32_t>(order.size()));
    ct->fanout_.push_back(static_cast<int32_t>(node.children.size()));
    ct->numeric_split_.push_back(attr.is_numeric() ? 1 : 0);
    // Only categorical internal nodes can answer (unseen-value fallback);
    // a numeric split always routes, so its distribution is never read.
    ct->dist_offset_.push_back(
        attr.is_numeric() ? -1
                          : PackDistribution(node.class_counts, node.total,
                                             node.majority, ct->num_classes_,
                                             &ct->dist_));
    for (int32_t child : node.children) {
      if (child < 0 || static_cast<size_t>(child) >= n) {
        return Status::InvalidArgument("child index out of range");
      }
      order.push_back(child);
    }
  }
  return ct;
}

Result<std::unique_ptr<CompiledTree>> CompiledTree::FromHoeffdingTree(
    const HoeffdingTree& tree) {
  if (tree.config_.naive_bayes_leaves) {
    return Status::NotImplemented(
        "VFDT-NB leaves answer from sufficient statistics, not a fixed "
        "distribution; only majority/Laplace leaves compile");
  }
  const auto& nodes = tree.nodes_;
  const Schema& schema = *tree.schema_;
  if (nodes.empty()) {
    return Status::FailedPrecondition("cannot compile an empty tree");
  }
  auto ct = std::unique_ptr<CompiledTree>(new CompiledTree());
  ct->num_classes_ = schema.num_classes();
  size_t n = nodes.size();
  std::vector<int32_t> order;
  order.reserve(n);
  order.push_back(0);
  for (size_t ni = 0; ni < order.size(); ++ni) {
    if (order.size() > n) {
      return Status::InvalidArgument(
          "tree nodes do not form a tree (shared or cyclic children)");
    }
    const auto& node = nodes[static_cast<size_t>(order[ni])];
    ct->split_attr_.push_back(node.attribute);
    ct->threshold_.push_back(node.threshold);
    ct->majority_.push_back(node.majority);
    if (node.attribute < 0) {
      ct->first_child_.push_back(0);
      ct->fanout_.push_back(0);
      ct->numeric_split_.push_back(0);
      if (node.stats >= 0 &&
          static_cast<size_t>(node.stats) < tree.leaf_stats_.size()) {
        const auto& stats = tree.leaf_stats_[static_cast<size_t>(node.stats)];
        // The source computes denom = total + num_classes and divides even
        // when total == 0 (Laplace floor); PackDistribution's total<=0
        // one-hot would diverge, so inline the exact expression here.
        int32_t offset = static_cast<int32_t>(ct->dist_.size());
        double denom =
            stats.total + static_cast<double>(ct->num_classes_);
        for (size_t c = 0; c < ct->num_classes_; ++c) {
          ct->dist_.push_back((stats.class_counts[c] + 1.0) / denom);
        }
        ct->dist_offset_.push_back(offset);
      } else {
        // Statistics already dropped: the source answers a one-hot.
        ct->dist_offset_.push_back(
            PackOneHot(node.majority, ct->num_classes_, &ct->dist_));
      }
      continue;
    }
    if (static_cast<size_t>(node.attribute) >= schema.num_attributes()) {
      return Status::InvalidArgument("split attribute out of range");
    }
    const Attribute& attr =
        schema.attribute(static_cast<size_t>(node.attribute));
    ct->first_child_.push_back(static_cast<int32_t>(order.size()));
    ct->fanout_.push_back(static_cast<int32_t>(node.children.size()));
    ct->numeric_split_.push_back(attr.is_numeric() ? 1 : 0);
    // An internal node that answers (unseen category) is a one-hot of its
    // majority in the Hoeffding tree — stats live only at leaves.
    ct->dist_offset_.push_back(
        attr.is_numeric()
            ? -1
            : PackOneHot(node.majority, ct->num_classes_, &ct->dist_));
    for (int32_t child : node.children) {
      if (child < 0 || static_cast<size_t>(child) >= n) {
        return Status::InvalidArgument("child index out of range");
      }
      order.push_back(child);
    }
  }
  return ct;
}

void CompiledTree::PredictProbaInto(const Record& record,
                                    std::vector<double>* proba) const {
  proba->resize(num_classes_);
  uint32_t idx = Route(record);
  int32_t offset = dist_offset_[idx];
  if (offset < 0) {
    std::fill(proba->begin(), proba->end(), 0.0);
    (*proba)[static_cast<size_t>(majority_[idx])] = 1.0;
    return;
  }
  std::memcpy(proba->data(), dist_.data() + offset,
              num_classes_ * sizeof(double));
}

std::vector<double> CompiledTree::PredictProba(const Record& record) const {
  std::vector<double> proba;
  PredictProbaInto(record, &proba);
  return proba;
}

void CompiledTree::PredictBatch(const Record* records, size_t n,
                                Label* out) const {
  for (size_t i = 0; i < n; ++i) {
    out[i] = majority_[Route(records[i])];
  }
}

void CompiledTree::AccumulateProbaBatch(const Record* records,
                                        const uint32_t* indices, size_t count,
                                        double weight, size_t stride,
                                        double* proba) const {
  const double* dist = dist_.data();
  for (size_t i = 0; i < count; ++i) {
    const uint32_t r = indices[i];
    const uint32_t node = Route(records[r]);
    double* row = proba + static_cast<size_t>(r) * stride;
    const int32_t offset = dist_offset_[node];
    if (offset < 0) {
      row[static_cast<size_t>(majority_[node])] += weight;
      continue;
    }
    const double* d = dist + offset;
    for (size_t l = 0; l < num_classes_; ++l) {
      row[l] += weight * d[l];
    }
  }
}

size_t CompiledTree::MemoryBytes() const {
  return split_attr_.size() * (sizeof(int32_t) * 4 + sizeof(double) +
                               sizeof(uint8_t) + sizeof(Label)) +
         dist_.size() * sizeof(double);
}

}  // namespace hom
