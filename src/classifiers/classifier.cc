#include "classifiers/classifier.h"

namespace hom {

std::vector<double> Classifier::PredictProba(const Record& record) const {
  std::vector<double> proba(num_classes(), 0.0);
  Label l = Predict(record);
  if (l >= 0 && static_cast<size_t>(l) < proba.size()) {
    proba[static_cast<size_t>(l)] = 1.0;
  }
  return proba;
}

void Classifier::PredictProbaInto(const Record& record,
                                  std::vector<double>* proba) const {
  *proba = PredictProba(record);
}

}  // namespace hom
