#include "classifiers/evaluation.h"

#include <sstream>

#include "common/check.h"

namespace hom {

double ErrorRate(const Classifier& model, const DatasetView& data) {
  size_t labeled = 0;
  size_t errors = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const Record& r = data.record(i);
    if (!r.is_labeled()) continue;
    ++labeled;
    if (model.Predict(r) != r.label) ++errors;
  }
  if (labeled == 0) return 0.0;
  return static_cast<double>(errors) / static_cast<double>(labeled);
}

ConfusionMatrix::ConfusionMatrix(size_t num_classes)
    : num_classes_(num_classes), cells_(num_classes * num_classes, 0) {
  HOM_CHECK_GE(num_classes, 2u);
}

void ConfusionMatrix::Add(Label actual, Label predicted) {
  HOM_CHECK_GE(actual, 0);
  HOM_CHECK_GE(predicted, 0);
  HOM_CHECK_LT(static_cast<size_t>(actual), num_classes_);
  HOM_CHECK_LT(static_cast<size_t>(predicted), num_classes_);
  ++cells_[static_cast<size_t>(actual) * num_classes_ +
           static_cast<size_t>(predicted)];
  ++total_;
}

size_t ConfusionMatrix::count(Label actual, Label predicted) const {
  return cells_[static_cast<size_t>(actual) * num_classes_ +
                static_cast<size_t>(predicted)];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t correct = 0;
  for (size_t c = 0; c < num_classes_; ++c) {
    correct += cells_[c * num_classes_ + c];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Recall(Label c) const {
  size_t actual = 0;
  for (size_t p = 0; p < num_classes_; ++p) {
    actual += count(c, static_cast<Label>(p));
  }
  if (actual == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(actual);
}

double ConfusionMatrix::Precision(Label c) const {
  size_t predicted = 0;
  for (size_t a = 0; a < num_classes_; ++a) {
    predicted += count(static_cast<Label>(a), c);
  }
  if (predicted == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(predicted);
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream out;
  out << "actual\\predicted\n";
  for (size_t a = 0; a < num_classes_; ++a) {
    for (size_t p = 0; p < num_classes_; ++p) {
      out << count(static_cast<Label>(a), static_cast<Label>(p)) << "\t";
    }
    out << "\n";
  }
  return out.str();
}

ConfusionMatrix Evaluate(const Classifier& model, const DatasetView& data) {
  ConfusionMatrix cm(model.num_classes());
  for (size_t i = 0; i < data.size(); ++i) {
    const Record& r = data.record(i);
    if (!r.is_labeled()) continue;
    cm.Add(r.label, model.Predict(r));
  }
  return cm;
}

Result<HoldoutModel> TrainHoldout(const ClassifierFactory& factory,
                                  const DatasetView& data, Rng* rng) {
  if (data.size() < 2) {
    return Status::InvalidArgument(
        "holdout validation needs at least 2 records, got " +
        std::to_string(data.size()));
  }
  auto [train, test] = data.SplitHoldout(rng);
  HoldoutModel out;
  out.model = factory(data.schema());
  HOM_RETURN_NOT_OK(out.model->Train(train));
  out.error = ErrorRate(*out.model, test);
  out.train = std::move(train);
  out.test = std::move(test);
  return out;
}

Result<double> KFoldError(const ClassifierFactory& factory,
                          const DatasetView& data, size_t folds, Rng* rng) {
  if (folds < 2) {
    return Status::InvalidArgument("k-fold needs folds >= 2");
  }
  if (data.size() < folds) {
    return Status::InvalidArgument("k-fold needs at least `folds` records");
  }
  std::vector<uint32_t> shuffled = data.indices();
  rng->Shuffle(&shuffled);

  size_t errors = 0;
  size_t evaluated = 0;
  for (size_t f = 0; f < folds; ++f) {
    std::vector<uint32_t> train_idx;
    std::vector<uint32_t> test_idx;
    for (size_t i = 0; i < shuffled.size(); ++i) {
      if (i % folds == f) {
        test_idx.push_back(shuffled[i]);
      } else {
        train_idx.push_back(shuffled[i]);
      }
    }
    DatasetView train(data.dataset(), std::move(train_idx));
    DatasetView test(data.dataset(), std::move(test_idx));
    std::unique_ptr<Classifier> model = factory(data.schema());
    HOM_RETURN_NOT_OK(model->Train(train));
    for (size_t i = 0; i < test.size(); ++i) {
      const Record& r = test.record(i);
      if (!r.is_labeled()) continue;
      ++evaluated;
      if (model->Predict(r) != r.label) ++errors;
    }
  }
  if (evaluated == 0) return 0.0;
  return static_cast<double>(errors) / static_cast<double>(evaluated);
}

}  // namespace hom
