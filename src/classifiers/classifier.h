#ifndef HOM_CLASSIFIERS_CLASSIFIER_H_
#define HOM_CLASSIFIERS_CLASSIFIER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "data/dataset_view.h"
#include "data/record.h"

namespace hom {

class CompiledTree;

/// \brief Interface of a base model M_i trained on stationary data
/// (Section II-B: "any method designed for mining stationary data").
///
/// The high-order model, RePro and WCE are all parameterized over this
/// interface, so any learner (decision tree, Naive Bayes, ...) can serve as
/// the common base classifier, mirroring the paper's use of C4.5 everywhere.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fits the model to the labeled records in `data`. Records must all be
  /// labeled; fails on an empty view.
  virtual Status Train(const DatasetView& data) = 0;

  /// Predicts the class label of one record. Requires a prior Train().
  virtual Label Predict(const Record& record) const = 0;

  /// Per-class probability estimates M(l|x) (Eq. 10). The default
  /// implementation puts mass 1 on Predict()'s answer.
  virtual std::vector<double> PredictProba(const Record& record) const;

  /// Allocation-free variant of PredictProba: fills `proba` (resized to
  /// num_classes) instead of returning a fresh vector. Ensemble mixture
  /// loops call this once per member per record, so the default heap
  /// vector PredictProba returns is pure churn there — overriding types
  /// write into the caller's scratch directly. The default delegates to
  /// PredictProba, so overriding either method keeps both consistent.
  virtual void PredictProbaInto(const Record& record,
                                std::vector<double>* proba) const;

  /// The compiled flat-array form of this model (DESIGN.md §13), or
  /// nullptr when none has been built or the type has no compiled form.
  /// Built by EnsureCompiled(); training invalidates it.
  virtual const CompiledTree* compiled() const { return nullptr; }

  /// Builds the compiled form for types that support one (trained trees);
  /// a no-op everywhere else. Idempotent; call after Train()/load.
  virtual void EnsureCompiled() {}

  /// Number of classes this model distinguishes.
  virtual size_t num_classes() const = 0;

  /// Rough model size (nodes for trees, parameters for NB); used by
  /// efficiency diagnostics.
  virtual size_t ComplexityHint() const { return 1; }

  /// Stable type tag for polymorphic serialization ("dtree", "nbayes",
  /// "majority"); empty when the type does not support persistence.
  virtual std::string TypeTag() const { return ""; }

  /// Writes the trained model's payload (not the tag). Types that return
  /// an empty TypeTag() keep the default NotImplemented.
  virtual Status SaveTo(BinaryWriter* writer) const {
    (void)writer;
    return Status::NotImplemented("this classifier is not serializable");
  }
};

/// Creates fresh untrained classifiers; this is how callers choose the base
/// learner for the high-order model and the baselines.
using ClassifierFactory =
    std::function<std::unique_ptr<Classifier>(const SchemaPtr& schema)>;

}  // namespace hom

#endif  // HOM_CLASSIFIERS_CLASSIFIER_H_
