#ifndef HOM_CLASSIFIERS_EVALUATION_H_
#define HOM_CLASSIFIERS_EVALUATION_H_

#include <memory>
#include <string>
#include <vector>

#include "classifiers/classifier.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/dataset_view.h"

namespace hom {

/// Fraction of records in `data` misclassified by `model`. Unlabeled
/// records are skipped; returns 0 on an empty/unlabeled view.
double ErrorRate(const Classifier& model, const DatasetView& data);

/// \brief Square table of (actual class, predicted class) counts.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(size_t num_classes);

  void Add(Label actual, Label predicted);
  size_t count(Label actual, Label predicted) const;
  size_t total() const { return total_; }

  double Accuracy() const;
  /// Recall of class `c`: correct(c) / actual(c); 0 when the class never
  /// occurs.
  double Recall(Label c) const;
  /// Precision of class `c`: correct(c) / predicted(c); 0 when never
  /// predicted.
  double Precision(Label c) const;

  std::string ToString() const;

 private:
  size_t num_classes_;
  std::vector<size_t> cells_;
  size_t total_ = 0;
};

/// Evaluates `model` over `data`, producing the confusion matrix.
ConfusionMatrix Evaluate(const Classifier& model, const DatasetView& data);

/// \brief A trained model plus its holdout validation error — the (M_i,
/// Err_i) pair the objective function Q (Eq. 1) is built from.
struct HoldoutModel {
  std::unique_ptr<Classifier> model;
  double error = 0.0;
  DatasetView train;
  DatasetView test;
};

/// Section II-B holdout: randomly split `data` in half, train on one half,
/// measure error on the other. Requires |data| >= 2.
Result<HoldoutModel> TrainHoldout(const ClassifierFactory& factory,
                                  const DatasetView& data, Rng* rng);

/// k-fold cross-validation error estimate (the paper's footnote-1
/// alternative to holdout; compared in the ablation bench). Requires
/// |data| >= folds >= 2.
Result<double> KFoldError(const ClassifierFactory& factory,
                          const DatasetView& data, size_t folds, Rng* rng);

}  // namespace hom

#endif  // HOM_CLASSIFIERS_EVALUATION_H_
