#include "classifiers/incremental_naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hom {

namespace {
constexpr double kMinVariance = 1e-9;
}  // namespace

double IncrementalNaiveBayes::Moments::variance() const {
  if (count < 2.0) return 1.0;
  return std::max(m2 / count, kMinVariance);
}

IncrementalNaiveBayes::IncrementalNaiveBayes(SchemaPtr schema)
    : schema_(std::move(schema)) {
  HOM_CHECK(schema_ != nullptr);
  Reset();
}

void IncrementalNaiveBayes::Reset() {
  total_ = 0.0;
  size_t num_classes = schema_->num_classes();
  class_counts_.assign(num_classes, 0.0);
  cat_counts_.assign(schema_->num_attributes(), {});
  numeric_.assign(schema_->num_attributes(), {});
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      cat_counts_[a].assign(num_classes * attr.cardinality(), 0.0);
    } else {
      numeric_[a].assign(num_classes, Moments{});
    }
  }
}

Status IncrementalNaiveBayes::Update(const Record& record) {
  if (!record.is_labeled()) {
    return Status::InvalidArgument("cannot update from an unlabeled record");
  }
  size_t c = static_cast<size_t>(record.label);
  if (c >= schema_->num_classes()) {
    return Status::OutOfRange("label out of range");
  }
  total_ += 1.0;
  class_counts_[c] += 1.0;
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      size_t v = static_cast<size_t>(record.category(a));
      if (v >= attr.cardinality()) {
        return Status::OutOfRange("categorical value out of range");
      }
      cat_counts_[a][c * attr.cardinality() + v] += 1.0;
    } else {
      Moments& m = numeric_[a][c];
      m.count += 1.0;
      double delta = record.values[a] - m.mean;
      m.mean += delta / m.count;
      m.m2 += delta * (record.values[a] - m.mean);
    }
  }
  return Status::OK();
}

std::vector<double> IncrementalNaiveBayes::LogJoint(
    const Record& record) const {
  size_t num_classes = schema_->num_classes();
  std::vector<double> log_joint(num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    log_joint[c] =
        std::log((class_counts_[c] + 1.0) /
                 (total_ + static_cast<double>(num_classes)));
  }
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      size_t k = attr.cardinality();
      size_t v = static_cast<size_t>(record.category(a));
      if (v >= k) continue;
      for (size_t c = 0; c < num_classes; ++c) {
        log_joint[c] += std::log(
            (cat_counts_[a][c * k + v] + 1.0) /
            (class_counts_[c] + static_cast<double>(k)));
      }
    } else {
      double x = record.values[a];
      for (size_t c = 0; c < num_classes; ++c) {
        const Moments& m = numeric_[a][c];
        double var = m.variance();
        double d = x - m.mean;
        log_joint[c] +=
            -0.5 * std::log(2.0 * M_PI * var) - d * d / (2.0 * var);
      }
    }
  }
  return log_joint;
}

Label IncrementalNaiveBayes::Predict(const Record& record) const {
  std::vector<double> log_joint = LogJoint(record);
  return static_cast<Label>(
      std::max_element(log_joint.begin(), log_joint.end()) -
      log_joint.begin());
}

std::vector<double> IncrementalNaiveBayes::PredictProba(
    const Record& record) const {
  std::vector<double> log_joint = LogJoint(record);
  double max_lj = *std::max_element(log_joint.begin(), log_joint.end());
  double denom = 0.0;
  for (double& lj : log_joint) {
    lj = std::exp(lj - max_lj);
    denom += lj;
  }
  for (double& lj : log_joint) lj /= denom;
  return log_joint;
}

size_t IncrementalNaiveBayes::ComplexityHint() const {
  size_t params = class_counts_.size();
  for (const auto& table : cat_counts_) params += table.size();
  for (const auto& table : numeric_) params += 2 * table.size();
  return params;
}

IncrementalClassifierFactory IncrementalNaiveBayes::Factory() {
  return [](const SchemaPtr& schema)
             -> std::unique_ptr<IncrementalClassifier> {
    return std::make_unique<IncrementalNaiveBayes>(schema);
  };
}

}  // namespace hom
