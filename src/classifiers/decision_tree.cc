#include "classifiers/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "classifiers/compiled_tree.h"
#include "common/check.h"

namespace hom {

namespace {

double Entropy(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c > 0.0) {
      double p = c / total;
      h -= p * std::log2(p);
    }
  }
  return h;
}

/// C4.5 release 8 "AddErrs": the expected number of extra errors at a leaf
/// with `n` cases and `e` observed errors, at confidence factor `cf`
/// (upper bound of the binomial error rate, normal approximation with the
/// original interpolation table).
double AddErrs(double n, double e, double cf) {
  static const double kVal[] = {0,    0.001, 0.005, 0.01, 0.05,
                                0.10, 0.20,  0.40,  1.00};
  static const double kDev[] = {4.0,  3.09, 2.58, 2.33, 1.65,
                                1.28, 0.84, 0.25, 0.00};
  int i = 0;
  while (cf > kVal[i]) ++i;
  double coeff = kDev[i - 1] +
                 (kDev[i] - kDev[i - 1]) * (cf - kVal[i - 1]) /
                     (kVal[i] - kVal[i - 1]);
  coeff = coeff * coeff;

  if (e < 1e-6) {
    return n * (1.0 - std::exp(std::log(cf) / n));
  }
  if (e < 0.9999) {
    double val0 = n * (1.0 - std::exp(std::log(cf) / n));
    return val0 + e * (AddErrs(n, 1.0, cf) - val0);
  }
  if (e + 0.5 >= n) {
    return 0.67 * (n - e);
  }
  double pr =
      (e + 0.5 + coeff / 2 +
       std::sqrt(coeff * ((e + 0.5) * (1 - (e + 0.5) / n) + coeff / 4))) /
      (n + coeff);
  return n * pr - e;
}

Label ArgMax(const std::vector<double>& counts) {
  size_t best = 0;
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return static_cast<Label>(best);
}

}  // namespace

DecisionTree::DecisionTree(SchemaPtr schema, DecisionTreeConfig config)
    : schema_(std::move(schema)), config_(config) {
  HOM_CHECK(schema_ != nullptr);
  HOM_CHECK_GE(config_.min_leaf_size, 1u);
  HOM_CHECK_GT(config_.pruning_confidence, 0.0);
  HOM_CHECK_LE(config_.pruning_confidence, 1.0);
}

Status DecisionTree::Train(const DatasetView& data) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot train a tree on an empty view");
  }
  nodes_.clear();
  compiled_.reset();
  std::vector<const Record*> rows;
  rows.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    const Record& r = data.record(i);
    if (!r.is_labeled()) {
      return Status::InvalidArgument("training data contains unlabeled record");
    }
    rows.push_back(&r);
  }
  BuildNode(&rows, 0, rows.size(), 0);
  if (config_.prune) {
    PruneSubtree(0);
    // Drop orphaned nodes so num_nodes()/depth() reflect the pruned tree.
    std::vector<Node> compact;
    compact.reserve(nodes_.size());
    // Iterative DFS remap from the root.
    std::vector<int32_t> stack = {0};
    std::vector<int32_t> remap(nodes_.size(), -1);
    while (!stack.empty()) {
      int32_t old = stack.back();
      stack.pop_back();
      if (remap[old] >= 0) continue;
      remap[old] = static_cast<int32_t>(compact.size());
      compact.push_back(nodes_[old]);
      for (int32_t child : nodes_[old].children) stack.push_back(child);
    }
    for (Node& node : compact) {
      for (int32_t& child : node.children) child = remap[child];
    }
    // DFS order above does not preserve child-before-parent ordering, but
    // remap is complete, so pointers are consistent.
    nodes_ = std::move(compact);
  }
  return Status::OK();
}

int32_t DecisionTree::MakeLeaf(const std::vector<double>& counts) {
  Node leaf;
  leaf.class_counts = counts;
  leaf.total = 0.0;
  for (double c : counts) leaf.total += c;
  leaf.majority = ArgMax(counts);
  nodes_.push_back(std::move(leaf));
  return static_cast<int32_t>(nodes_.size() - 1);
}

int32_t DecisionTree::BuildNode(std::vector<const Record*>* rows,
                                size_t begin, size_t end, size_t depth) {
  HOM_DCHECK(begin < end);
  std::vector<double> counts(schema_->num_classes(), 0.0);
  for (size_t i = begin; i < end; ++i) {
    counts[static_cast<size_t>((*rows)[i]->label)] += 1.0;
  }
  size_t n = end - begin;
  bool pure = false;
  for (double c : counts) {
    if (c == static_cast<double>(n)) pure = true;
  }
  bool depth_capped = config_.max_depth > 0 && depth >= config_.max_depth;
  if (pure || n < 2 * config_.min_leaf_size || depth_capped) {
    return MakeLeaf(counts);
  }

  SplitChoice split = ChooseSplit(*rows, begin, end, counts);
  if (split.attribute < 0) {
    return MakeLeaf(counts);
  }

  const Attribute& attr = schema_->attribute(split.attribute);
  int32_t me = -1;
  {
    Node node;
    node.attribute = split.attribute;
    node.threshold = split.threshold;
    node.class_counts = counts;
    node.total = static_cast<double>(n);
    node.majority = ArgMax(counts);
    nodes_.push_back(std::move(node));
    me = static_cast<int32_t>(nodes_.size() - 1);
  }

  std::vector<int32_t> children;
  if (attr.is_numeric()) {
    auto mid = std::stable_partition(
        rows->begin() + begin, rows->begin() + end,
        [&](const Record* r) {
          return r->values[split.attribute] <= split.threshold;
        });
    size_t cut = static_cast<size_t>(mid - rows->begin());
    HOM_DCHECK(cut > begin && cut < end);
    children.push_back(BuildNode(rows, begin, cut, depth + 1));
    children.push_back(BuildNode(rows, cut, end, depth + 1));
  } else {
    // Counting sort of the subrange by category.
    size_t k = attr.cardinality();
    std::vector<std::vector<const Record*>> buckets(k);
    for (size_t i = begin; i < end; ++i) {
      buckets[static_cast<size_t>((*rows)[i]->category(split.attribute))]
          .push_back((*rows)[i]);
    }
    size_t pos = begin;
    std::vector<std::pair<size_t, size_t>> ranges(k);
    for (size_t v = 0; v < k; ++v) {
      size_t start = pos;
      for (const Record* r : buckets[v]) (*rows)[pos++] = r;
      ranges[v] = {start, pos};
    }
    for (size_t v = 0; v < k; ++v) {
      if (ranges[v].first == ranges[v].second) {
        // Empty branch: a weightless leaf predicting the parent majority
        // (C4.5 behaviour). Contributes no errors to pruning.
        Node leaf;
        leaf.class_counts.assign(schema_->num_classes(), 0.0);
        leaf.total = 0.0;
        leaf.majority = nodes_[me].majority;
        nodes_.push_back(std::move(leaf));
        children.push_back(static_cast<int32_t>(nodes_.size() - 1));
      } else {
        children.push_back(
            BuildNode(rows, ranges[v].first, ranges[v].second, depth + 1));
      }
    }
  }
  nodes_[me].children = std::move(children);
  return me;
}

DecisionTree::SplitChoice DecisionTree::ChooseSplit(
    const std::vector<const Record*>& rows, size_t begin, size_t end,
    const std::vector<double>& counts) const {
  size_t n = end - begin;
  double total = static_cast<double>(n);
  double base_entropy = Entropy(counts, total);
  size_t num_classes = schema_->num_classes();

  struct Candidate {
    int attribute = -1;
    double threshold = 0.0;
    double gain = 0.0;
    double split_info = 0.0;
  };
  std::vector<Candidate> candidates;

  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      size_t k = attr.cardinality();
      std::vector<double> branch_counts(k * num_classes, 0.0);
      std::vector<double> branch_totals(k, 0.0);
      for (size_t i = begin; i < end; ++i) {
        size_t v = static_cast<size_t>(rows[i]->category(a));
        branch_counts[v * num_classes +
                      static_cast<size_t>(rows[i]->label)] += 1.0;
        branch_totals[v] += 1.0;
      }
      size_t populated = 0;
      size_t big_enough = 0;
      for (size_t v = 0; v < k; ++v) {
        if (branch_totals[v] > 0) ++populated;
        if (branch_totals[v] >= static_cast<double>(config_.min_leaf_size)) {
          ++big_enough;
        }
      }
      // C4.5 requires a genuine partition: >= 2 populated branches, at
      // least 2 of them with the minimum number of objects.
      if (populated < 2 || big_enough < 2) continue;
      double cond = 0.0;
      double split_info = 0.0;
      for (size_t v = 0; v < k; ++v) {
        if (branch_totals[v] <= 0) continue;
        std::vector<double> bc(branch_counts.begin() + v * num_classes,
                               branch_counts.begin() + (v + 1) * num_classes);
        cond += (branch_totals[v] / total) * Entropy(bc, branch_totals[v]);
        double p = branch_totals[v] / total;
        split_info -= p * std::log2(p);
      }
      double gain = base_entropy - cond;
      if (gain <= 1e-12) continue;
      candidates.push_back({static_cast<int>(a), 0.0, gain, split_info});
    } else {
      // Numeric attribute: sort (value, label) and sweep thresholds.
      std::vector<std::pair<double, Label>> vals;
      vals.reserve(n);
      for (size_t i = begin; i < end; ++i) {
        vals.emplace_back(rows[i]->values[a], rows[i]->label);
      }
      std::sort(vals.begin(), vals.end());
      if (vals.front().first == vals.back().first) continue;  // constant

      std::vector<double> left(num_classes, 0.0);
      std::vector<double> right = counts;
      double best_gain = -1.0;
      double best_threshold = 0.0;
      double best_split_info = 0.0;
      size_t distinct_cuts = 0;
      double min_leaf = static_cast<double>(config_.min_leaf_size);
      double left_total = 0.0;
      for (size_t i = 0; i + 1 < vals.size(); ++i) {
        left[static_cast<size_t>(vals[i].second)] += 1.0;
        right[static_cast<size_t>(vals[i].second)] -= 1.0;
        left_total += 1.0;
        if (vals[i].first == vals[i + 1].first) continue;
        ++distinct_cuts;
        double right_total = total - left_total;
        if (left_total < min_leaf || right_total < min_leaf) continue;
        double cond = (left_total / total) * Entropy(left, left_total) +
                      (right_total / total) * Entropy(right, right_total);
        double gain = base_entropy - cond;
        if (gain > best_gain) {
          best_gain = gain;
          best_threshold = (vals[i].first + vals[i + 1].first) / 2.0;
          double pl = left_total / total;
          double pr = right_total / total;
          best_split_info = -(pl * std::log2(pl) + pr * std::log2(pr));
        }
      }
      if (best_gain < 0) continue;
      // C4.5 release 8 MDL correction for continuous thresholds: charge
      // log2(#candidate cuts)/n against the gain.
      best_gain -=
          std::log2(static_cast<double>(std::max<size_t>(distinct_cuts, 1))) /
          total;
      if (best_gain <= 1e-12) continue;
      candidates.push_back(
          {static_cast<int>(a), best_threshold, best_gain, best_split_info});
    }
  }

  SplitChoice choice;
  if (candidates.empty()) return choice;

  double avg_gain = 0.0;
  for (const Candidate& c : candidates) avg_gain += c.gain;
  avg_gain /= static_cast<double>(candidates.size());

  double best_score = -1.0;
  for (const Candidate& c : candidates) {
    double score;
    if (config_.use_gain_ratio) {
      // C4.5: maximize gain ratio among splits with at-least-average gain
      // (guards against near-zero split info).
      if (c.gain + 1e-12 < avg_gain) continue;
      score = c.split_info > 1e-12 ? c.gain / c.split_info : c.gain;
    } else {
      score = c.gain;
    }
    if (score > best_score) {
      best_score = score;
      choice.attribute = c.attribute;
      choice.threshold = c.threshold;
      choice.score = score;
    }
  }
  return choice;
}

double DecisionTree::PruneSubtree(int32_t node_idx) {
  Node& node = nodes_[static_cast<size_t>(node_idx)];
  double observed_errors =
      node.total - node.class_counts[static_cast<size_t>(node.majority)];
  double as_leaf =
      node.total > 0
          ? observed_errors +
                AddErrs(node.total, observed_errors, config_.pruning_confidence)
          : 0.0;
  if (node.attribute < 0) return as_leaf;

  double as_subtree = 0.0;
  for (int32_t child : node.children) {
    as_subtree += PruneSubtree(child);
  }
  if (as_leaf <= as_subtree + 0.1) {
    node.attribute = -1;
    node.children.clear();
    return as_leaf;
  }
  return as_subtree;
}

const DecisionTree::Node& DecisionTree::Walk(const Record& record) const {
  HOM_CHECK(!nodes_.empty()) << "Predict before Train";
  const Node* node = &nodes_[0];
  while (node->attribute >= 0) {
    const Attribute& attr = schema_->attribute(node->attribute);
    size_t child;
    if (attr.is_numeric()) {
      child = record.values[static_cast<size_t>(node->attribute)] <=
                      node->threshold
                  ? 0
                  : 1;
    } else {
      int v = record.category(static_cast<size_t>(node->attribute));
      if (v < 0 || static_cast<size_t>(v) >= node->children.size()) {
        break;  // unseen category: answer with this node's majority
      }
      child = static_cast<size_t>(v);
    }
    node = &nodes_[static_cast<size_t>(node->children[child])];
  }
  return *node;
}

Label DecisionTree::Predict(const Record& record) const {
  return Walk(record).majority;
}

std::vector<double> DecisionTree::PredictProba(const Record& record) const {
  std::vector<double> proba;
  PredictProbaInto(record, &proba);
  return proba;
}

void DecisionTree::PredictProbaInto(const Record& record,
                                    std::vector<double>* out) const {
  if (compiled_ != nullptr) {
    compiled_->PredictProbaInto(record, out);
    return;
  }
  const Node& leaf = Walk(record);
  std::vector<double>& proba = *out;
  proba.assign(schema_->num_classes(), 0.0);
  if (leaf.total <= 0.0) {
    proba[static_cast<size_t>(leaf.majority)] = 1.0;
    return;
  }
  // Laplace-corrected leaf distribution.
  double denom = leaf.total + static_cast<double>(proba.size());
  for (size_t c = 0; c < proba.size(); ++c) {
    proba[c] = (leaf.class_counts[c] + 1.0) / denom;
  }
}

void DecisionTree::EnsureCompiled() {
  if (compiled_ != nullptr || nodes_.empty()) return;
  auto compiled = CompiledTree::FromDecisionTree(*this);
  // A trained tree always compiles; the error paths guard corrupt inputs
  // that Train()/LoadFrom() cannot produce.
  if (compiled.ok()) compiled_ = std::move(*compiled);
}

size_t DecisionTree::num_leaves() const {
  size_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.attribute < 0) ++leaves;
  }
  return leaves;
}

size_t DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative DFS carrying depth.
  size_t max_depth = 0;
  std::vector<std::pair<int32_t, size_t>> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    for (int32_t child : nodes_[static_cast<size_t>(idx)].children) {
      stack.push_back({child, d + 1});
    }
  }
  return max_depth;
}

void DecisionTree::Dump(int32_t node_idx, int indent, std::string* out) const {
  const Node& node = nodes_[static_cast<size_t>(node_idx)];
  std::ostringstream line;
  line << std::string(static_cast<size_t>(indent) * 2, ' ');
  if (node.attribute < 0) {
    line << "-> " << schema_->class_name(node.majority) << " (n=" << node.total
         << ")\n";
    *out += line.str();
    return;
  }
  const Attribute& attr = schema_->attribute(node.attribute);
  if (attr.is_numeric()) {
    line << attr.name << " <= " << node.threshold << "?\n";
    *out += line.str();
    Dump(node.children[0], indent + 1, out);
    Dump(node.children[1], indent + 1, out);
  } else {
    line << attr.name << "?\n";
    *out += line.str();
    for (size_t v = 0; v < node.children.size(); ++v) {
      std::ostringstream branch;
      branch << std::string(static_cast<size_t>(indent + 1) * 2, ' ') << "= "
             << attr.categories[v] << ":\n";
      *out += branch.str();
      Dump(node.children[v], indent + 2, out);
    }
  }
}

std::string DecisionTree::ToString() const {
  if (nodes_.empty()) return "(untrained)";
  std::string out;
  Dump(0, 0, &out);
  return out;
}

Status DecisionTree::SaveTo(BinaryWriter* writer) const {
  HOM_RETURN_NOT_OK(writer->WriteU32(static_cast<uint32_t>(nodes_.size())));
  for (const Node& node : nodes_) {
    HOM_RETURN_NOT_OK(writer->WriteI32(node.attribute));
    HOM_RETURN_NOT_OK(writer->WriteDouble(node.threshold));
    HOM_RETURN_NOT_OK(writer->WriteI32(node.majority));
    HOM_RETURN_NOT_OK(writer->WriteDouble(node.total));
    HOM_RETURN_NOT_OK(writer->WriteDoubleVector(node.class_counts));
    HOM_RETURN_NOT_OK(
        writer->WriteU32(static_cast<uint32_t>(node.children.size())));
    for (int32_t child : node.children) {
      HOM_RETURN_NOT_OK(writer->WriteI32(child));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<DecisionTree>> DecisionTree::LoadFrom(
    BinaryReader* reader, SchemaPtr schema) {
  // Bounds a corrupt count field: 2M nodes is far past any tree this
  // builder produces, yet keeps the worst-case allocation in the MBs.
  constexpr uint32_t kMaxNodes = 2u << 20;
  auto tree = std::make_unique<DecisionTree>(schema);
  HOM_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
  if (count == 0) {
    return Status::InvalidArgument("serialized tree has no nodes");
  }
  if (count > kMaxNodes) {
    return Status::InvalidArgument("serialized tree declares " +
                                   std::to_string(count) +
                                   " nodes, over the cap (corrupt file?)");
  }
  tree->nodes_.resize(count);
  for (Node& node : tree->nodes_) {
    HOM_ASSIGN_OR_RETURN(node.attribute, reader->ReadI32());
    HOM_ASSIGN_OR_RETURN(node.threshold, reader->ReadDouble());
    HOM_ASSIGN_OR_RETURN(node.majority, reader->ReadI32());
    HOM_ASSIGN_OR_RETURN(node.total, reader->ReadDouble());
    HOM_ASSIGN_OR_RETURN(node.class_counts, reader->ReadDoubleVector());
    if (node.class_counts.size() != schema->num_classes()) {
      return Status::InvalidArgument("node class-count arity mismatch");
    }
    if (!std::isfinite(node.total)) {
      return Status::InvalidArgument("node total is not finite");
    }
    for (double c : node.class_counts) {
      if (!std::isfinite(c)) {
        return Status::InvalidArgument("node class count is not finite");
      }
    }
    HOM_ASSIGN_OR_RETURN(uint32_t fanout, reader->ReadU32());
    if (fanout > count) {
      return Status::InvalidArgument("node fanout exceeds node count");
    }
    node.children.resize(fanout);
    for (int32_t& child : node.children) {
      HOM_ASSIGN_OR_RETURN(child, reader->ReadI32());
      if (child < 0 || static_cast<uint32_t>(child) >= count) {
        return Status::InvalidArgument("child index out of range");
      }
    }
    if (node.attribute >= 0) {
      if (static_cast<size_t>(node.attribute) >= schema->num_attributes()) {
        return Status::InvalidArgument("split attribute out of range");
      }
      const Attribute& attr =
          schema->attribute(static_cast<size_t>(node.attribute));
      size_t expected = attr.is_numeric() ? 2 : attr.cardinality();
      if (node.children.size() != expected) {
        return Status::InvalidArgument("split fanout mismatch");
      }
    }
    if (node.majority < 0 ||
        static_cast<size_t>(node.majority) >= schema->num_classes()) {
      return Status::InvalidArgument("node majority out of range");
    }
  }
  return tree;
}

ClassifierFactory DecisionTree::Factory(DecisionTreeConfig config) {
  return [config](const SchemaPtr& schema) -> std::unique_ptr<Classifier> {
    return std::make_unique<DecisionTree>(schema, config);
  };
}

}  // namespace hom
