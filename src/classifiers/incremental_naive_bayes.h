#ifndef HOM_CLASSIFIERS_INCREMENTAL_NAIVE_BAYES_H_
#define HOM_CLASSIFIERS_INCREMENTAL_NAIVE_BAYES_H_

#include <vector>

#include "classifiers/incremental.h"

namespace hom {

/// \brief Naive Bayes with purely incremental sufficient statistics:
/// Laplace-smoothed categorical counts and Welford-style Gaussian moments
/// per (attribute, class).
///
/// Functionally equivalent to NaiveBayes but updatable one record at a
/// time, which makes it the default expert for Dynamic Weighted Majority
/// and the leaf predictor of the Hoeffding tree.
class IncrementalNaiveBayes : public IncrementalClassifier {
 public:
  explicit IncrementalNaiveBayes(SchemaPtr schema);

  Status Update(const Record& record) override;
  void Reset() override;

  Label Predict(const Record& record) const override;
  std::vector<double> PredictProba(const Record& record) const override;
  size_t num_classes() const override { return schema_->num_classes(); }
  size_t ComplexityHint() const override;

  /// Number of records folded in so far.
  size_t records_seen() const { return static_cast<size_t>(total_); }

  /// Factory adapter.
  static IncrementalClassifierFactory Factory();

 private:
  struct Moments {
    double count = 0.0;
    double mean = 0.0;
    double m2 = 0.0;  ///< sum of squared deviations (Welford)

    double variance() const;
  };

  std::vector<double> LogJoint(const Record& record) const;

  SchemaPtr schema_;
  double total_ = 0.0;
  std::vector<double> class_counts_;               ///< [class]
  std::vector<std::vector<double>> cat_counts_;    ///< [attr][class*card+v]
  std::vector<std::vector<Moments>> numeric_;      ///< [attr][class]
};

}  // namespace hom

#endif  // HOM_CLASSIFIERS_INCREMENTAL_NAIVE_BAYES_H_
