#include "classifiers/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hom {

namespace {
// Variance floor keeps degenerate (constant-valued) Gaussians finite.
constexpr double kMinVariance = 1e-9;
}  // namespace

NaiveBayes::NaiveBayes(SchemaPtr schema) : schema_(std::move(schema)) {
  HOM_CHECK(schema_ != nullptr);
}

Status NaiveBayes::Train(const DatasetView& data) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot train NaiveBayes on empty view");
  }
  size_t num_classes = schema_->num_classes();
  size_t num_attrs = schema_->num_attributes();

  std::vector<double> class_counts(num_classes, 0.0);
  // Raw counts / moment accumulators.
  std::vector<std::vector<double>> cat_counts(num_attrs);
  std::vector<std::vector<double>> sum(num_attrs);
  std::vector<std::vector<double>> sum_sq(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      cat_counts[a].assign(num_classes * attr.cardinality(), 0.0);
    } else {
      sum[a].assign(num_classes, 0.0);
      sum_sq[a].assign(num_classes, 0.0);
    }
  }

  for (size_t i = 0; i < data.size(); ++i) {
    const Record& r = data.record(i);
    if (!r.is_labeled()) {
      return Status::InvalidArgument("training data contains unlabeled record");
    }
    size_t c = static_cast<size_t>(r.label);
    class_counts[c] += 1.0;
    for (size_t a = 0; a < num_attrs; ++a) {
      const Attribute& attr = schema_->attribute(a);
      if (attr.is_categorical()) {
        cat_counts[a][c * attr.cardinality() +
                      static_cast<size_t>(r.category(a))] += 1.0;
      } else {
        sum[a][c] += r.values[a];
        sum_sq[a][c] += r.values[a] * r.values[a];
      }
    }
  }

  double total = static_cast<double>(data.size());
  log_prior_.assign(num_classes, 0.0);
  for (size_t c = 0; c < num_classes; ++c) {
    // Laplace prior smoothing so unseen classes keep nonzero mass.
    log_prior_[c] = std::log((class_counts[c] + 1.0) /
                             (total + static_cast<double>(num_classes)));
  }

  cat_log_likelihood_.assign(num_attrs, {});
  gaussians_.assign(num_attrs, {});
  for (size_t a = 0; a < num_attrs; ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      size_t k = attr.cardinality();
      cat_log_likelihood_[a].assign(num_classes * k, 0.0);
      for (size_t c = 0; c < num_classes; ++c) {
        for (size_t v = 0; v < k; ++v) {
          double count = cat_counts[a][c * k + v];
          cat_log_likelihood_[a][c * k + v] = std::log(
              (count + 1.0) / (class_counts[c] + static_cast<double>(k)));
        }
      }
    } else {
      gaussians_[a].assign(num_classes, GaussianStats{});
      for (size_t c = 0; c < num_classes; ++c) {
        if (class_counts[c] < 1.0) continue;
        double mean = sum[a][c] / class_counts[c];
        double var = sum_sq[a][c] / class_counts[c] - mean * mean;
        gaussians_[a][c].mean = mean;
        gaussians_[a][c].variance = std::max(var, kMinVariance);
      }
    }
  }
  trained_ = true;
  return Status::OK();
}

std::vector<double> NaiveBayes::LogJoint(const Record& record) const {
  HOM_CHECK(trained_) << "Predict before Train";
  size_t num_classes = schema_->num_classes();
  std::vector<double> log_joint = log_prior_;
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      size_t k = attr.cardinality();
      size_t v = static_cast<size_t>(record.category(a));
      if (v >= k) continue;  // unseen category: uninformative
      for (size_t c = 0; c < num_classes; ++c) {
        log_joint[c] += cat_log_likelihood_[a][c * k + v];
      }
    } else {
      double x = record.values[a];
      for (size_t c = 0; c < num_classes; ++c) {
        const GaussianStats& g = gaussians_[a][c];
        double d = x - g.mean;
        log_joint[c] +=
            -0.5 * std::log(2.0 * M_PI * g.variance) - d * d / (2.0 * g.variance);
      }
    }
  }
  return log_joint;
}

Label NaiveBayes::Predict(const Record& record) const {
  std::vector<double> log_joint = LogJoint(record);
  return static_cast<Label>(std::max_element(log_joint.begin(),
                                             log_joint.end()) -
                            log_joint.begin());
}

std::vector<double> NaiveBayes::PredictProba(const Record& record) const {
  std::vector<double> log_joint = LogJoint(record);
  double max_lj = *std::max_element(log_joint.begin(), log_joint.end());
  double denom = 0.0;
  for (double& lj : log_joint) {
    lj = std::exp(lj - max_lj);
    denom += lj;
  }
  for (double& lj : log_joint) lj /= denom;
  return log_joint;
}

size_t NaiveBayes::ComplexityHint() const {
  size_t params = log_prior_.size();
  for (const auto& table : cat_log_likelihood_) params += table.size();
  for (const auto& table : gaussians_) params += 2 * table.size();
  return params;
}

Status NaiveBayes::SaveTo(BinaryWriter* writer) const {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  HOM_RETURN_NOT_OK(writer->WriteDoubleVector(log_prior_));
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    if (schema_->attribute(a).is_categorical()) {
      HOM_RETURN_NOT_OK(writer->WriteDoubleVector(cat_log_likelihood_[a]));
    } else {
      std::vector<double> flat;
      flat.reserve(2 * gaussians_[a].size());
      for (const GaussianStats& g : gaussians_[a]) {
        flat.push_back(g.mean);
        flat.push_back(g.variance);
      }
      HOM_RETURN_NOT_OK(writer->WriteDoubleVector(flat));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<NaiveBayes>> NaiveBayes::LoadFrom(BinaryReader* reader,
                                                         SchemaPtr schema) {
  auto model = std::make_unique<NaiveBayes>(schema);
  size_t num_classes = schema->num_classes();
  HOM_ASSIGN_OR_RETURN(model->log_prior_, reader->ReadDoubleVector());
  if (model->log_prior_.size() != num_classes) {
    return Status::InvalidArgument("prior arity mismatch");
  }
  model->cat_log_likelihood_.assign(schema->num_attributes(), {});
  model->gaussians_.assign(schema->num_attributes(), {});
  for (size_t a = 0; a < schema->num_attributes(); ++a) {
    const Attribute& attr = schema->attribute(a);
    HOM_ASSIGN_OR_RETURN(std::vector<double> flat,
                         reader->ReadDoubleVector());
    if (attr.is_categorical()) {
      if (flat.size() != num_classes * attr.cardinality()) {
        return Status::InvalidArgument("categorical table arity mismatch");
      }
      model->cat_log_likelihood_[a] = std::move(flat);
    } else {
      if (flat.size() != 2 * num_classes) {
        return Status::InvalidArgument("gaussian table arity mismatch");
      }
      model->gaussians_[a].resize(num_classes);
      for (size_t c = 0; c < num_classes; ++c) {
        model->gaussians_[a][c].mean = flat[2 * c];
        model->gaussians_[a][c].variance = flat[2 * c + 1];
        if (model->gaussians_[a][c].variance <= 0.0) {
          return Status::InvalidArgument("non-positive variance");
        }
      }
    }
  }
  model->trained_ = true;
  return model;
}

ClassifierFactory NaiveBayes::Factory() {
  return [](const SchemaPtr& schema) -> std::unique_ptr<Classifier> {
    return std::make_unique<NaiveBayes>(schema);
  };
}

}  // namespace hom
