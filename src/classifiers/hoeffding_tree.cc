#include "classifiers/hoeffding_tree.h"

#include <algorithm>
#include <cmath>

#include "classifiers/compiled_tree.h"
#include "common/check.h"

namespace hom {

namespace {

double Entropy(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c > 0.0) {
      double p = c / total;
      h -= p * std::log2(p);
    }
  }
  return h;
}

/// Φ(z): standard normal CDF.
double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

void HoeffdingTree::Moments::Add(double x) {
  if (count == 0.0) {
    min = x;
    max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  count += 1.0;
  double delta = x - mean;
  mean += delta / count;
  m2 += delta * (x - mean);
}

double HoeffdingTree::Moments::variance() const {
  if (count < 2.0) return 1e-9;
  return std::max(m2 / count, 1e-9);
}

HoeffdingTree::HoeffdingTree(SchemaPtr schema, HoeffdingTreeConfig config)
    : schema_(std::move(schema)), config_(config) {
  HOM_CHECK(schema_ != nullptr);
  HOM_CHECK_GE(config_.grace_period, 1u);
  HOM_CHECK_GT(config_.split_confidence, 0.0);
  HOM_CHECK_LT(config_.split_confidence, 1.0);
  HOM_CHECK_GE(config_.numeric_candidates, 1u);
  Reset();
}

void HoeffdingTree::Reset() {
  nodes_.clear();
  leaf_stats_.clear();
  records_seen_ = 0;
  compiled_.reset();
  NewLeaf(0);
}

int32_t HoeffdingTree::NewLeaf(Label majority) {
  Node leaf;
  leaf.majority = majority;
  leaf.stats = static_cast<int32_t>(leaf_stats_.size());
  LeafStats stats;
  size_t num_classes = schema_->num_classes();
  stats.class_counts.assign(num_classes, 0.0);
  stats.cat_counts.assign(schema_->num_attributes(), {});
  stats.numeric.assign(schema_->num_attributes(), {});
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      stats.cat_counts[a].assign(num_classes * attr.cardinality(), 0.0);
    } else {
      stats.numeric[a].assign(num_classes, Moments{});
    }
  }
  leaf_stats_.push_back(std::move(stats));
  nodes_.push_back(leaf);
  return static_cast<int32_t>(nodes_.size() - 1);
}

int32_t HoeffdingTree::Sink(const Record& record) const {
  int32_t idx = 0;
  while (nodes_[static_cast<size_t>(idx)].attribute >= 0) {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    const Attribute& attr = schema_->attribute(node.attribute);
    size_t child;
    if (attr.is_numeric()) {
      child = record.values[static_cast<size_t>(node.attribute)] <=
                      node.threshold
                  ? 0
                  : 1;
    } else {
      int v = record.category(static_cast<size_t>(node.attribute));
      if (v < 0 || static_cast<size_t>(v) >= node.children.size()) {
        return idx;  // unseen category: stop at this internal node
      }
      child = static_cast<size_t>(v);
    }
    idx = node.children[child];
  }
  return idx;
}

Status HoeffdingTree::Update(const Record& record) {
  if (!record.is_labeled()) {
    return Status::InvalidArgument("cannot update from an unlabeled record");
  }
  if (record.values.size() != schema_->num_attributes()) {
    return Status::InvalidArgument("record arity mismatch");
  }
  size_t c = static_cast<size_t>(record.label);
  if (c >= schema_->num_classes()) {
    return Status::OutOfRange("label out of range");
  }
  ++records_seen_;
  // Leaf statistics are about to move; any compiled snapshot is stale.
  compiled_.reset();

  int32_t leaf_idx = Sink(record);
  Node& leaf = nodes_[static_cast<size_t>(leaf_idx)];
  if (leaf.attribute >= 0) return Status::OK();  // routed to internal node
  LeafStats& stats = leaf_stats_[static_cast<size_t>(leaf.stats)];
  stats.class_counts[c] += 1.0;
  stats.total += 1.0;
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      size_t v = static_cast<size_t>(record.category(a));
      if (v >= attr.cardinality()) {
        return Status::OutOfRange("categorical value out of range");
      }
      stats.cat_counts[a][c * attr.cardinality() + v] += 1.0;
    } else {
      stats.numeric[a][c].Add(record.values[a]);
    }
  }
  // Keep the leaf's majority current so prediction never needs the stats.
  if (stats.class_counts[c] >
      stats.class_counts[static_cast<size_t>(leaf.majority)]) {
    leaf.majority = static_cast<Label>(c);
  }

  if (++stats.since_last_attempt >= config_.grace_period) {
    stats.since_last_attempt = 0;
    AttemptSplit(leaf_idx);
  }
  return Status::OK();
}

std::vector<HoeffdingTree::SplitCandidate> HoeffdingTree::EvaluateSplits(
    const LeafStats& stats) const {
  std::vector<SplitCandidate> candidates;
  double total = stats.total;
  double base = Entropy(stats.class_counts, total);
  size_t num_classes = schema_->num_classes();

  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      size_t k = attr.cardinality();
      std::vector<double> branch_totals(k, 0.0);
      for (size_t v = 0; v < k; ++v) {
        for (size_t c = 0; c < num_classes; ++c) {
          branch_totals[v] += stats.cat_counts[a][c * k + v];
        }
      }
      size_t populated = 0;
      for (double bt : branch_totals) {
        if (bt > 0) ++populated;
      }
      if (populated < 2) continue;
      double cond = 0.0;
      for (size_t v = 0; v < k; ++v) {
        if (branch_totals[v] <= 0) continue;
        std::vector<double> bc(num_classes);
        for (size_t c = 0; c < num_classes; ++c) {
          bc[c] = stats.cat_counts[a][c * k + v];
        }
        cond += (branch_totals[v] / total) * Entropy(bc, branch_totals[v]);
      }
      candidates.push_back({static_cast<int>(a), 0.0, base - cond});
    } else {
      // Gaussian approximation observer: per class we know (count, mean,
      // variance, min, max). Candidate thresholds are equally spaced over
      // the observed range; class mass on each side comes from the CDF.
      double lo = 0.0, hi = 0.0;
      bool any = false;
      for (size_t c = 0; c < num_classes; ++c) {
        const Moments& m = stats.numeric[a][c];
        if (m.count <= 0) continue;
        if (!any) {
          lo = m.min;
          hi = m.max;
          any = true;
        } else {
          lo = std::min(lo, m.min);
          hi = std::max(hi, m.max);
        }
      }
      if (!any || hi <= lo) continue;
      SplitCandidate best{static_cast<int>(a), 0.0, -1.0};
      for (size_t i = 1; i <= config_.numeric_candidates; ++i) {
        double t = lo + (hi - lo) * static_cast<double>(i) /
                            static_cast<double>(config_.numeric_candidates + 1);
        std::vector<double> left(num_classes, 0.0);
        std::vector<double> right(num_classes, 0.0);
        double lt = 0.0, rt = 0.0;
        for (size_t c = 0; c < num_classes; ++c) {
          const Moments& m = stats.numeric[a][c];
          if (m.count <= 0) continue;
          double frac =
              NormalCdf((t - m.mean) / std::sqrt(m.variance()));
          left[c] = m.count * frac;
          right[c] = m.count * (1.0 - frac);
          lt += left[c];
          rt += right[c];
        }
        if (lt <= 0 || rt <= 0) continue;
        double cond = (lt / total) * Entropy(left, lt) +
                      (rt / total) * Entropy(right, rt);
        double gain = base - cond;
        if (gain > best.gain) {
          best.gain = gain;
          best.threshold = t;
        }
      }
      if (best.gain >= 0.0) candidates.push_back(best);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const SplitCandidate& x, const SplitCandidate& y) {
              return x.gain > y.gain;
            });
  return candidates;
}

void HoeffdingTree::AttemptSplit(int32_t node_idx) {
  if (config_.max_nodes > 0 && nodes_.size() >= config_.max_nodes) return;
  LeafStats& stats =
      leaf_stats_[static_cast<size_t>(nodes_[static_cast<size_t>(node_idx)].stats)];
  // Pure leaves cannot benefit from splitting.
  size_t live_classes = 0;
  for (double c : stats.class_counts) {
    if (c > 0) ++live_classes;
  }
  if (live_classes < 2) return;

  std::vector<SplitCandidate> candidates = EvaluateSplits(stats);
  if (candidates.empty()) return;

  double range = std::log2(static_cast<double>(schema_->num_classes()));
  double epsilon = std::sqrt(range * range *
                             std::log(1.0 / config_.split_confidence) /
                             (2.0 * stats.total));
  double second = candidates.size() > 1 ? candidates[1].gain : 0.0;
  bool confident = candidates[0].gain - second > epsilon;
  bool tie = epsilon < config_.tie_threshold;
  if (candidates[0].gain <= 0.0 || (!confident && !tie)) return;

  const SplitCandidate& chosen = candidates[0];
  const Attribute& attr = schema_->attribute(chosen.attribute);
  size_t fanout = attr.is_numeric() ? 2 : attr.cardinality();

  // Children inherit branch-wise majorities estimated from the leaf stats.
  // All reads of `stats` must finish before the NewLeaf calls below:
  // NewLeaf appends to leaf_stats_, which may reallocate and leave `stats`
  // dangling.
  std::vector<Label> majorities;
  size_t num_classes = schema_->num_classes();
  for (size_t b = 0; b < fanout; ++b) {
    std::vector<double> branch(num_classes, 0.0);
    if (attr.is_categorical()) {
      size_t k = attr.cardinality();
      for (size_t c = 0; c < num_classes; ++c) {
        branch[c] = stats.cat_counts[static_cast<size_t>(chosen.attribute)]
                                    [c * k + b];
      }
    } else {
      for (size_t c = 0; c < num_classes; ++c) {
        const Moments& m =
            stats.numeric[static_cast<size_t>(chosen.attribute)][c];
        if (m.count <= 0) continue;
        double frac = NormalCdf((chosen.threshold - m.mean) /
                                std::sqrt(m.variance()));
        branch[c] = b == 0 ? m.count * frac : m.count * (1.0 - frac);
      }
    }
    majorities.push_back(static_cast<Label>(
        std::max_element(branch.begin(), branch.end()) - branch.begin()));
  }
  std::vector<int32_t> children;
  children.reserve(fanout);
  for (Label majority : majorities) children.push_back(NewLeaf(majority));
  Node& node = nodes_[static_cast<size_t>(node_idx)];
  node.attribute = chosen.attribute;
  node.threshold = chosen.threshold;
  node.children = std::move(children);
  node.stats = -1;  // statistics are dropped after the split (VFDT)
}

Label HoeffdingTree::Predict(const Record& record) const {
  const Node& node = nodes_[static_cast<size_t>(Sink(record))];
  if (config_.naive_bayes_leaves && node.attribute < 0) {
    std::vector<double> proba = PredictProba(record);
    return static_cast<Label>(
        std::max_element(proba.begin(), proba.end()) - proba.begin());
  }
  return node.majority;
}

void HoeffdingTree::PredictProbaInto(const Record& record,
                                     std::vector<double>* proba) const {
  if (compiled_ != nullptr) {
    compiled_->PredictProbaInto(record, proba);
    return;
  }
  *proba = PredictProba(record);
}

void HoeffdingTree::EnsureCompiled() {
  if (compiled_ != nullptr || config_.naive_bayes_leaves || nodes_.empty()) {
    return;
  }
  auto compiled = CompiledTree::FromHoeffdingTree(*this);
  if (compiled.ok()) compiled_ = std::move(*compiled);
}

std::vector<double> HoeffdingTree::PredictProba(const Record& record) const {
  const Node& node = nodes_[static_cast<size_t>(Sink(record))];
  size_t num_classes = schema_->num_classes();
  std::vector<double> proba(num_classes, 0.0);
  if (node.attribute >= 0 || node.stats < 0) {
    proba[static_cast<size_t>(node.majority)] = 1.0;
    return proba;
  }
  const LeafStats& stats = leaf_stats_[static_cast<size_t>(node.stats)];
  if (!config_.naive_bayes_leaves) {
    // Laplace-corrected leaf class distribution.
    double denom = stats.total + static_cast<double>(num_classes);
    for (size_t c = 0; c < num_classes; ++c) {
      proba[c] = (stats.class_counts[c] + 1.0) / denom;
    }
    return proba;
  }
  // VFDT-NB: Naive Bayes over the leaf's sufficient statistics.
  std::vector<double> log_joint(num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    log_joint[c] = std::log((stats.class_counts[c] + 1.0) /
                            (stats.total + static_cast<double>(num_classes)));
  }
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    const Attribute& attr = schema_->attribute(a);
    if (attr.is_categorical()) {
      size_t k = attr.cardinality();
      size_t v = static_cast<size_t>(record.category(a));
      if (v >= k) continue;
      for (size_t c = 0; c < num_classes; ++c) {
        log_joint[c] +=
            std::log((stats.cat_counts[a][c * k + v] + 1.0) /
                     (stats.class_counts[c] + static_cast<double>(k)));
      }
    } else {
      for (size_t c = 0; c < num_classes; ++c) {
        const Moments& m = stats.numeric[a][c];
        double var = m.count >= 2 ? m.variance() : 1.0;
        double d = record.values[a] - m.mean;
        log_joint[c] +=
            -0.5 * std::log(2.0 * M_PI * var) - d * d / (2.0 * var);
      }
    }
  }
  double max_lj = *std::max_element(log_joint.begin(), log_joint.end());
  double denom = 0.0;
  for (size_t c = 0; c < num_classes; ++c) {
    proba[c] = std::exp(log_joint[c] - max_lj);
    denom += proba[c];
  }
  for (double& p : proba) p /= denom;
  return proba;
}

size_t HoeffdingTree::num_leaves() const {
  size_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.attribute < 0) ++leaves;
  }
  return leaves;
}

IncrementalClassifierFactory HoeffdingTree::Factory(
    HoeffdingTreeConfig config) {
  return [config](const SchemaPtr& schema)
             -> std::unique_ptr<IncrementalClassifier> {
    return std::make_unique<HoeffdingTree>(schema, config);
  };
}

ClassifierFactory HoeffdingTree::BatchFactory(HoeffdingTreeConfig config) {
  return [config](const SchemaPtr& schema) -> std::unique_ptr<Classifier> {
    return std::make_unique<HoeffdingTree>(schema, config);
  };
}

}  // namespace hom
