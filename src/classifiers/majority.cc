#include "classifiers/majority.h"

#include "common/check.h"

namespace hom {

MajorityClassifier::MajorityClassifier(SchemaPtr schema)
    : schema_(std::move(schema)) {
  HOM_CHECK(schema_ != nullptr);
}

Status MajorityClassifier::Train(const DatasetView& data) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot train on empty view");
  }
  std::vector<size_t> counts = data.ClassCounts();
  size_t labeled = 0;
  for (size_t c : counts) labeled += c;
  if (labeled == 0) {
    return Status::InvalidArgument("training data has no labeled records");
  }
  majority_ = data.MajorityClass();
  proba_.assign(schema_->num_classes(), 0.0);
  for (size_t c = 0; c < counts.size(); ++c) {
    proba_[c] = static_cast<double>(counts[c]) / static_cast<double>(labeled);
  }
  trained_ = true;
  return Status::OK();
}

Label MajorityClassifier::Predict(const Record&) const {
  HOM_CHECK(trained_) << "Predict before Train";
  return majority_;
}

std::vector<double> MajorityClassifier::PredictProba(const Record&) const {
  HOM_CHECK(trained_) << "Predict before Train";
  return proba_;
}

Status MajorityClassifier::SaveTo(BinaryWriter* writer) const {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  HOM_RETURN_NOT_OK(writer->WriteI32(majority_));
  return writer->WriteDoubleVector(proba_);
}

Result<std::unique_ptr<MajorityClassifier>> MajorityClassifier::LoadFrom(
    BinaryReader* reader, SchemaPtr schema) {
  auto model = std::make_unique<MajorityClassifier>(schema);
  HOM_ASSIGN_OR_RETURN(model->majority_, reader->ReadI32());
  HOM_ASSIGN_OR_RETURN(model->proba_, reader->ReadDoubleVector());
  if (model->proba_.size() != schema->num_classes()) {
    return Status::InvalidArgument("proba arity mismatch");
  }
  if (model->majority_ < 0 ||
      static_cast<size_t>(model->majority_) >= schema->num_classes()) {
    return Status::InvalidArgument("majority label out of range");
  }
  model->trained_ = true;
  return model;
}

ClassifierFactory MajorityClassifier::Factory() {
  return [](const SchemaPtr& schema) -> std::unique_ptr<Classifier> {
    return std::make_unique<MajorityClassifier>(schema);
  };
}

}  // namespace hom
