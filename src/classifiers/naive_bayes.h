#ifndef HOM_CLASSIFIERS_NAIVE_BAYES_H_
#define HOM_CLASSIFIERS_NAIVE_BAYES_H_

#include <vector>

#include "classifiers/classifier.h"

namespace hom {

/// \brief Naive Bayes with Laplace-smoothed categorical likelihoods and
/// Gaussian numeric likelihoods.
///
/// Section II-B allows any stationary learner as the base model; Naive
/// Bayes is the cheap alternative to the C4.5 tree and is what the ablation
/// benchmarks swap in.
class NaiveBayes : public Classifier {
 public:
  explicit NaiveBayes(SchemaPtr schema);

  Status Train(const DatasetView& data) override;
  Label Predict(const Record& record) const override;
  std::vector<double> PredictProba(const Record& record) const override;
  size_t num_classes() const override { return schema_->num_classes(); }
  size_t ComplexityHint() const override;

  std::string TypeTag() const override { return "nbayes"; }
  Status SaveTo(BinaryWriter* writer) const override;
  /// Reconstructs a trained model saved by SaveTo.
  static Result<std::unique_ptr<NaiveBayes>> LoadFrom(BinaryReader* reader,
                                                      SchemaPtr schema);

  /// Factory adapter for ClassifierFactory.
  static ClassifierFactory Factory();

 private:
  /// Per-class, per-attribute sufficient statistics.
  struct GaussianStats {
    double mean = 0.0;
    double variance = 1.0;
  };

  std::vector<double> LogJoint(const Record& record) const;

  SchemaPtr schema_;
  bool trained_ = false;
  std::vector<double> log_prior_;  ///< [class]
  /// Categorical: log P(value | class), flattened [attr][class][value]
  /// (empty vector at numeric positions).
  std::vector<std::vector<double>> cat_log_likelihood_;
  /// Numeric: Gaussian fit per [attr][class] (empty at categorical
  /// positions).
  std::vector<std::vector<GaussianStats>> gaussians_;
};

}  // namespace hom

#endif  // HOM_CLASSIFIERS_NAIVE_BAYES_H_
