#ifndef HOM_CLASSIFIERS_DECISION_TREE_H_
#define HOM_CLASSIFIERS_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "classifiers/classifier.h"

namespace hom {

/// Tuning knobs of the C4.5-style tree. Defaults mirror Quinlan's release 8
/// defaults (the paper's common base classifier).
struct DecisionTreeConfig {
  /// Minimum number of records in each branch of an adopted split.
  size_t min_leaf_size = 2;
  /// Maximum tree depth; 0 means unlimited.
  size_t max_depth = 0;
  /// Select splits by gain ratio (C4.5) instead of raw information gain
  /// (ID3).
  bool use_gain_ratio = true;
  /// Apply pessimistic error-based pruning after growing.
  bool prune = true;
  /// Confidence factor CF of the pruning upper bound (C4.5 default 0.25).
  double pruning_confidence = 0.25;
};

/// \brief C4.5-style decision tree: gain-ratio splits, multiway categorical
/// branches, binary numeric thresholds, pessimistic error pruning.
///
/// Re-implemented from the algorithm description of Quinlan, "C4.5:
/// Programs for Machine Learning" (1993), which the paper uses as the common
/// base classifier for all three stream algorithms.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(SchemaPtr schema, DecisionTreeConfig config = {});

  Status Train(const DatasetView& data) override;
  Label Predict(const Record& record) const override;
  std::vector<double> PredictProba(const Record& record) const override;
  void PredictProbaInto(const Record& record,
                        std::vector<double>* proba) const override;
  size_t num_classes() const override { return schema_->num_classes(); }
  size_t ComplexityHint() const override { return nodes_.size(); }

  /// Compiled SoA form (classifiers/compiled_tree.h); nullptr until
  /// EnsureCompiled() runs after a successful Train()/LoadFrom().
  const CompiledTree* compiled() const override { return compiled_.get(); }
  void EnsureCompiled() override;

  /// Number of nodes after pruning; 0 before Train().
  size_t num_nodes() const { return nodes_.size(); }
  /// Number of leaves after pruning.
  size_t num_leaves() const;
  /// Longest root-to-leaf path length (root-only tree has depth 0).
  size_t depth() const;

  /// Indented textual dump, for debugging and the examples.
  std::string ToString() const;

  std::string TypeTag() const override { return "dtree"; }
  Status SaveTo(BinaryWriter* writer) const override;
  /// Reconstructs a trained tree saved by SaveTo.
  static Result<std::unique_ptr<DecisionTree>> LoadFrom(BinaryReader* reader,
                                                        SchemaPtr schema);

  /// Factory adapter for ClassifierFactory.
  static ClassifierFactory Factory(DecisionTreeConfig config = {});

 private:
  friend class CompiledTree;  ///< flattens nodes_ without widening the API.

  struct Node {
    int attribute = -1;  ///< -1 for leaves; else split attribute index.
    double threshold = 0.0;          ///< numeric split: <= goes to child 0.
    std::vector<int32_t> children;   ///< 2 for numeric, cardinality for cat.
    Label majority = 0;
    std::vector<double> class_counts;  ///< training distribution at node.
    double total = 0.0;                ///< sum of class_counts.
  };

  struct SplitChoice {
    int attribute = -1;
    double threshold = 0.0;
    double score = 0.0;  ///< gain ratio (or gain) of the chosen split.
  };

  int32_t BuildNode(std::vector<const Record*>* rows, size_t begin,
                    size_t end, size_t depth);
  int32_t MakeLeaf(const std::vector<double>& counts);
  SplitChoice ChooseSplit(const std::vector<const Record*>& rows,
                          size_t begin, size_t end,
                          const std::vector<double>& counts) const;
  /// Post-order pessimistic pruning; returns the estimated error count of
  /// the (possibly collapsed) subtree rooted at `node`.
  double PruneSubtree(int32_t node);
  const Node& Walk(const Record& record) const;
  void Dump(int32_t node, int indent, std::string* out) const;

  SchemaPtr schema_;
  DecisionTreeConfig config_;
  std::vector<Node> nodes_;  ///< nodes_[0] is the root once trained.
  std::shared_ptr<const CompiledTree> compiled_;  ///< see EnsureCompiled().
};

}  // namespace hom

#endif  // HOM_CLASSIFIERS_DECISION_TREE_H_
