#ifndef HOM_CLASSIFIERS_COMPILED_TREE_H_
#define HOM_CLASSIFIERS_COMPILED_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "data/record.h"
#include "data/schema.h"

namespace hom {

class DecisionTree;
class HoeffdingTree;

/// \brief A trained tree flattened into contiguous structure-of-arrays form
/// for the online prediction hot path (DESIGN.md §13).
///
/// The pointer-walking `DecisionTree::Predict` chases `Node` structs whose
/// children live behind a per-node heap `std::vector<int32_t>`, and every
/// `PredictProba` call allocates a fresh distribution vector. The compiled
/// form re-lays the tree out breadth-first so that every node's children
/// are contiguous (`first_child + branch` replaces the per-node child
/// vector — the two-child numeric case in particular loses its heap hop),
/// splits the node record into parallel flat arrays (split attribute,
/// threshold, first-child index, fanout, majority, distribution offset),
/// evaluates numeric splits branchlessly, and packs every answer node's
/// Laplace-corrected class distribution into one shared vector so
/// `PredictProbaInto` is an allocation-free copy.
///
/// Compilation is exact: `Predict`/`PredictProba`/`PredictBatch` reproduce
/// the source tree's answers bit for bit, including unseen-category
/// fallbacks (the walk answers at the internal node) and NaN ("missing")
/// numeric values, which fail `v <= threshold` and take the right branch in
/// both forms. tests/compiled_tree_test.cc asserts this across every stream
/// generator, seed, and pruning config.
class CompiledTree {
 public:
  /// Flattens a trained C4.5 tree. Fails on an untrained tree.
  static Result<std::unique_ptr<CompiledTree>> FromDecisionTree(
      const DecisionTree& tree);

  /// Flattens a Hoeffding tree frozen at its current state (the high-order
  /// model never trains concept classifiers online, so freezing is exact).
  /// Fails when `naive_bayes_leaves` is set — NB leaves answer from
  /// per-leaf sufficient statistics, not a fixed distribution.
  static Result<std::unique_ptr<CompiledTree>> FromHoeffdingTree(
      const HoeffdingTree& tree);

  /// The majority label of the node the record routes to — bit-identical
  /// to the source tree's Predict().
  Label Predict(const Record& record) const {
    return majority_[Route(record)];
  }

  /// Fills `proba` (resized to num_classes) with the routed node's packed
  /// distribution. No allocation once `proba` has capacity.
  void PredictProbaInto(const Record& record, std::vector<double>* proba) const;

  /// Allocating convenience wrapper over PredictProbaInto.
  std::vector<double> PredictProba(const Record& record) const;

  /// Routes `n` records in one pass over the node arrays and writes their
  /// predicted labels to `out` (which must hold `n` entries).
  void PredictBatch(const Record* records, size_t n, Label* out) const;

  /// Batched weighted accumulation — the ensemble-mixture kernel:
  /// for each i in [0, count),
  ///   proba[indices[i] * stride + l] += weight * M(l | records[indices[i]])
  /// One pass over the node arrays serves every listed record, amortizing
  /// the tree's memory traffic across the batch; the index list is how the
  /// caller keeps pruning-resolved records out of later passes.
  void AccumulateProbaBatch(const Record* records, const uint32_t* indices,
                            size_t count, double weight, size_t stride,
                            double* proba) const;

  size_t num_nodes() const { return split_attr_.size(); }
  size_t num_classes() const { return num_classes_; }
  /// Bytes of the flattened arrays (diagnostics).
  size_t MemoryBytes() const;

 private:
  CompiledTree() = default;

  /// Index of the node that answers for `record`: a leaf, or the internal
  /// categorical node at which routing stopped on an unseen value.
  uint32_t Route(const Record& record) const {
    uint32_t idx = 0;
    for (;;) {
      const int32_t attr = split_attr_[idx];
      if (attr < 0) return idx;  // leaf
      const double v = record.values[static_cast<size_t>(attr)];
      if (numeric_split_[idx] != 0) {
        // Branchless two-way split. `!(v <= t)` (not `v > t`) so NaN
        // routes right, exactly like the pointer walk's ternary.
        idx = static_cast<uint32_t>(first_child_[idx]) +
              static_cast<uint32_t>(!(v <= threshold_[idx]));
      } else {
        const int32_t c = static_cast<int32_t>(v);
        if (c < 0 || c >= fanout_[idx]) return idx;  // unseen category
        idx = static_cast<uint32_t>(first_child_[idx] + c);
      }
    }
  }

  // Parallel per-node arrays (SoA), breadth-first order from the root so
  // each node's children are contiguous.
  std::vector<int32_t> split_attr_;    ///< -1 for leaves.
  std::vector<double> threshold_;      ///< numeric split: <= goes left.
  std::vector<int32_t> first_child_;   ///< children occupy [first, first+fanout).
  std::vector<int32_t> fanout_;        ///< 0 for leaves.
  std::vector<uint8_t> numeric_split_; ///< 1 = numeric threshold split.
  std::vector<Label> majority_;        ///< the node's Predict() answer.
  std::vector<int32_t> dist_offset_;   ///< offset into dist_; -1 = one-hot
                                       ///< of majority_ (never packed).
  /// All answer-node distributions, packed num_classes apiece.
  std::vector<double> dist_;
  size_t num_classes_ = 0;
};

}  // namespace hom

#endif  // HOM_CLASSIFIERS_COMPILED_TREE_H_
