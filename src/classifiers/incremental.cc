#include "classifiers/incremental.h"

namespace hom {

Status IncrementalClassifier::Train(const DatasetView& data) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot train on an empty view");
  }
  Reset();
  for (size_t i = 0; i < data.size(); ++i) {
    HOM_RETURN_NOT_OK(Update(data.record(i)));
  }
  return Status::OK();
}

}  // namespace hom
