#ifndef HOM_CLASSIFIERS_MAJORITY_H_
#define HOM_CLASSIFIERS_MAJORITY_H_

#include <vector>

#include "classifiers/classifier.h"

namespace hom {

/// \brief Predicts the majority class of its training data; the floor any
/// real learner must beat, and a cheap stand-in in unit tests.
class MajorityClassifier : public Classifier {
 public:
  explicit MajorityClassifier(SchemaPtr schema);

  Status Train(const DatasetView& data) override;
  Label Predict(const Record& record) const override;
  std::vector<double> PredictProba(const Record& record) const override;
  size_t num_classes() const override { return schema_->num_classes(); }

  std::string TypeTag() const override { return "majority"; }
  Status SaveTo(BinaryWriter* writer) const override;
  /// Reconstructs a trained model saved by SaveTo.
  static Result<std::unique_ptr<MajorityClassifier>> LoadFrom(
      BinaryReader* reader, SchemaPtr schema);

  /// Factory adapter for ClassifierFactory.
  static ClassifierFactory Factory();

 private:
  SchemaPtr schema_;
  bool trained_ = false;
  Label majority_ = 0;
  std::vector<double> proba_;
};

}  // namespace hom

#endif  // HOM_CLASSIFIERS_MAJORITY_H_
