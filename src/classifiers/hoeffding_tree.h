#ifndef HOM_CLASSIFIERS_HOEFFDING_TREE_H_
#define HOM_CLASSIFIERS_HOEFFDING_TREE_H_

#include <vector>

#include "classifiers/incremental.h"

namespace hom {

/// Tuning knobs of the Hoeffding tree; defaults follow the VFDT paper.
struct HoeffdingTreeConfig {
  /// Records a leaf accumulates between split attempts.
  size_t grace_period = 200;
  /// δ of the Hoeffding bound: the probability that the chosen split is
  /// not the true best one.
  double split_confidence = 1e-6;
  /// τ: when the top two splits are within τ of each other, split anyway
  /// (ties would otherwise stall forever).
  double tie_threshold = 0.05;
  /// Candidate thresholds per numeric attribute, equally spaced between
  /// the observed min and max (Gaussian approximation observer).
  size_t numeric_candidates = 10;
  /// Predict at leaves with the leaf's Naive Bayes model instead of the
  /// majority class (VFDT-NB variant).
  bool naive_bayes_leaves = false;
  /// Hard cap on tree nodes; 0 = unlimited.
  size_t max_nodes = 0;
};

/// \brief Hoeffding tree (VFDT — Domingos & Hulten, KDD 2000, the paper's
/// reference [1]): a decision tree learned one record at a time, splitting
/// a leaf only once the Hoeffding bound guarantees the observed best
/// attribute is the true best with high probability.
///
/// This is the incremental base classifier Section II-D alludes to
/// ("unless the base classifier supports incremental learning") and a
/// drop-in Classifier for every component of this library.
class HoeffdingTree : public IncrementalClassifier {
 public:
  explicit HoeffdingTree(SchemaPtr schema, HoeffdingTreeConfig config = {});

  Status Update(const Record& record) override;
  void Reset() override;

  Label Predict(const Record& record) const override;
  std::vector<double> PredictProba(const Record& record) const override;
  void PredictProbaInto(const Record& record,
                        std::vector<double>* proba) const override;
  size_t num_classes() const override { return schema_->num_classes(); }
  size_t ComplexityHint() const override { return nodes_.size(); }

  /// Compiled SoA snapshot of the tree frozen at its current state
  /// (classifiers/compiled_tree.h). Any Update()/Reset() invalidates it,
  /// so only frozen trees — e.g. high-order concept models, which never
  /// train online — keep a compiled form alive. Unavailable (and a no-op
  /// to build) with naive_bayes_leaves, whose leaf answers are not fixed
  /// distributions.
  const CompiledTree* compiled() const override { return compiled_.get(); }
  void EnsureCompiled() override;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  size_t records_seen() const { return records_seen_; }

  /// Factory adapter.
  static IncrementalClassifierFactory Factory(HoeffdingTreeConfig config = {});
  /// Adapter usable wherever a plain (batch) ClassifierFactory is needed.
  static ClassifierFactory BatchFactory(HoeffdingTreeConfig config = {});

 private:
  friend class CompiledTree;  ///< flattens nodes_/leaf_stats_ directly.

  struct Moments {
    double count = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;

    void Add(double x);
    double variance() const;
  };

  /// Sufficient statistics of one growing leaf.
  struct LeafStats {
    std::vector<double> class_counts;
    /// Categorical: [attr] -> counts[class * cardinality + value].
    std::vector<std::vector<double>> cat_counts;
    /// Numeric: [attr] -> per-class Gaussian moments.
    std::vector<std::vector<Moments>> numeric;
    size_t since_last_attempt = 0;
    double total = 0.0;
  };

  struct Node {
    int attribute = -1;  ///< -1: leaf.
    double threshold = 0.0;
    std::vector<int32_t> children;
    Label majority = 0;
    int32_t stats = -1;  ///< index into leaf_stats_ while a leaf.
  };

  struct SplitCandidate {
    int attribute = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };

  int32_t NewLeaf(Label majority);
  /// Routes a record to its leaf; returns the node index.
  int32_t Sink(const Record& record) const;
  void AttemptSplit(int32_t node_idx);
  /// Top candidate split per attribute given the leaf's statistics.
  std::vector<SplitCandidate> EvaluateSplits(const LeafStats& stats) const;

  SchemaPtr schema_;
  HoeffdingTreeConfig config_;
  std::vector<Node> nodes_;
  std::vector<LeafStats> leaf_stats_;
  size_t records_seen_ = 0;
  std::shared_ptr<const CompiledTree> compiled_;  ///< see EnsureCompiled().
};

}  // namespace hom

#endif  // HOM_CLASSIFIERS_HOEFFDING_TREE_H_
