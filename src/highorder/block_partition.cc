#include "highorder/block_partition.h"

namespace hom {

Result<std::vector<DatasetView>> PartitionIntoBlocks(
    const DatasetView& history, size_t block_size) {
  if (block_size < 2) {
    return Status::InvalidArgument("block_size must be >= 2 (got " +
                                   std::to_string(block_size) + ")");
  }
  if (history.size() < 2) {
    return Status::InvalidArgument(
        "historical stream needs at least 2 records");
  }
  std::vector<DatasetView> blocks;
  blocks.reserve(history.size() / block_size + 1);
  const std::vector<uint32_t>& idx = history.indices();
  size_t pos = 0;
  while (pos < idx.size()) {
    size_t end = std::min(pos + block_size, idx.size());
    // Do not leave a 1-record tail: it could not be holdout-split.
    if (idx.size() - end == 1) end = idx.size();
    blocks.emplace_back(
        history.dataset(),
        std::vector<uint32_t>(idx.begin() + pos, idx.begin() + end));
    pos = end;
  }
  return blocks;
}

}  // namespace hom
