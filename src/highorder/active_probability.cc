#include "highorder/active_probability.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "obs/event_journal.h"

namespace hom {

ActiveProbabilityTracker::ActiveProbabilityTracker(ConceptStats stats)
    : stats_(std::move(stats)) {
  Reset();
}

void ActiveProbabilityTracker::Reset() {
  size_t n = stats_.num_concepts();
  prior_.assign(n, 1.0 / static_cast<double>(n));
  posterior_ = prior_;
}

Status ActiveProbabilityTracker::Restore(std::vector<double> prior,
                                         std::vector<double> posterior) {
  size_t n = stats_.num_concepts();
  if (prior.size() != n || posterior.size() != n) {
    return Status::InvalidArgument(
        "checkpoint probability vectors sized for " +
        std::to_string(prior.size()) + "/" + std::to_string(posterior.size()) +
        " concepts, model has " + std::to_string(n));
  }
  for (const std::vector<double>* v : {&prior, &posterior}) {
    double total = 0.0;
    for (double p : *v) {
      if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument(
            "checkpoint active probability outside [0, 1]");
      }
      total += p;
    }
    if (total <= 1e-300) {
      return Status::InvalidArgument(
          "checkpoint active probabilities carry no mass");
    }
  }
  prior_ = std::move(prior);
  posterior_ = std::move(posterior);
  return Status::OK();
}

void ActiveProbabilityTracker::Observe(const std::vector<double>& psi) {
  size_t n = stats_.num_concepts();
  HOM_CHECK_EQ(psi.size(), n);
  // Eq. 5: P_t−(c) = Σ_i P_{t-1}(i) χ(i, c).
  prior_ = stats_.Propagate(posterior_);
  // Eq. 9: P_t(c) ∝ P_t−(c) ψ(c, y_t).
  double total = 0.0;
  for (size_t c = 0; c < n; ++c) {
    HOM_DCHECK(psi[c] >= 0.0);
    posterior_[c] = prior_[c] * psi[c];
    total += posterior_[c];
  }
  if (total <= 1e-300) {
    // All concepts assigned (numerically) zero likelihood: fall back to the
    // propagated prior rather than a NaN distribution.
    posterior_ = prior_;
    return;
  }
  for (double& p : posterior_) p /= total;
}

void ActiveProbabilityTracker::ObserveAfterGap(const std::vector<double>& psi,
                                               size_t gap) {
  size_t n = stats_.num_concepts();
  HOM_CHECK_EQ(psi.size(), n);
  HOM_CHECK_GE(gap, 1u);
  size_t before = MostLikelyConceptPosterior();
  prior_ = stats_.PropagateSteps(posterior_, gap);
  // Bridging a label gap is pure chain prediction: record it when the
  // propagation alone moved the belief to another concept.
  size_t after = static_cast<size_t>(
      std::max_element(prior_.begin(), prior_.end()) - prior_.begin());
  if (after != before) {
    obs::EmitIfActive(obs::EventType::kHmmPrediction, "active_probability",
                      static_cast<int64_t>(gap), static_cast<int64_t>(before),
                      static_cast<int64_t>(after), prior_[after]);
  }
  double total = 0.0;
  for (size_t c = 0; c < n; ++c) {
    HOM_DCHECK(psi[c] >= 0.0);
    posterior_[c] = prior_[c] * psi[c];
    total += posterior_[c];
  }
  if (total <= 1e-300) {
    posterior_ = prior_;
    return;
  }
  for (double& p : posterior_) p /= total;
}

void ActiveProbabilityTracker::AdvanceWithoutEvidence() {
  size_t before = MostLikelyConceptPosterior();
  prior_ = stats_.Propagate(posterior_);
  posterior_ = prior_;
  size_t after = MostLikelyConcept();
  if (after != before) {
    obs::EmitIfActive(obs::EventType::kHmmPrediction, "active_probability",
                      /*record=*/1, static_cast<int64_t>(before),
                      static_cast<int64_t>(after), prior_[after]);
  }
}

size_t ActiveProbabilityTracker::MostLikelyConcept() const {
  return static_cast<size_t>(
      std::max_element(prior_.begin(), prior_.end()) - prior_.begin());
}

size_t ActiveProbabilityTracker::MostLikelyConceptPosterior() const {
  return static_cast<size_t>(
      std::max_element(posterior_.begin(), posterior_.end()) -
      posterior_.begin());
}

double ActiveProbabilityTracker::Entropy(
    const std::vector<double>& distribution) {
  double entropy = 0.0;
  for (double p : distribution) {
    if (p > 0.0) entropy -= p * std::log(p);
  }
  return entropy;
}

double ActiveProbabilityTracker::TopMargin(
    const std::vector<double>& distribution) {
  if (distribution.empty()) return 0.0;
  double top = -std::numeric_limits<double>::infinity();
  double second = -std::numeric_limits<double>::infinity();
  for (double p : distribution) {
    if (p > top) {
      second = top;
      top = p;
    } else if (p > second) {
      second = p;
    }
  }
  return std::isinf(second) ? top : top - second;
}

double ActiveProbabilityTracker::PosteriorEntropy() const {
  return Entropy(posterior_);
}

double ActiveProbabilityTracker::PosteriorEntropyRatio() const {
  if (num_concepts() <= 1) return 0.0;
  return PosteriorEntropy() / std::log(static_cast<double>(num_concepts()));
}

double ActiveProbabilityTracker::TopConceptMargin() const {
  return TopMargin(posterior_);
}

}  // namespace hom
