#ifndef HOM_HIGHORDER_SERIALIZATION_H_
#define HOM_HIGHORDER_SERIALIZATION_H_

#include <iostream>
#include <memory>
#include <string>

#include "classifiers/classifier.h"
#include "common/result.h"
#include "highorder/highorder_classifier.h"

namespace hom {

/// \brief Persistence for the offline-trained high-order model, so the
/// expensive building phase (Table IV: minutes at paper scale) runs once
/// and the resulting model ships to online services as a byte stream.
///
/// Format v2 (hardened, written by SaveHighOrderModel): magic "HOM2",
/// u32 format version, u32 section count, then CRC-framed sections
/// (binary_io.h) in order:
///   SCHM  schema (attributes, vocabularies, classes)
///   OPTS  HighOrderOptions subset (weight_by_prior, prune_prediction)
///   STAT  concept statistics (mean lengths, frequencies)
///   CONC  concept models (count, then per concept: error, |D_c|,
///         type-tagged classifier payload)
/// Every section's CRC32 is verified before its bytes are parsed, every
/// length field is bounded, and every numeric field is checked finite and
/// in range, so a truncated or bit-flipped file yields an error Status —
/// never a crash, out-of-bounds read, or multi-GB allocation. Unknown
/// trailing sections are skipped (CRC still verified) for forward
/// compatibility.
///
/// Format v1 (magic "HOM1", unframed) is still readable; v1 files detect
/// truncation but not bit flips.

/// Writes the schema (attributes, vocabularies, classes).
Status SaveSchema(BinaryWriter* writer, const Schema& schema);

/// Reads a schema written by SaveSchema.
Result<SchemaPtr> LoadSchema(BinaryReader* reader);

/// Writes `classifier` with its type tag. Fails (NotImplemented) for
/// non-serializable classifier types.
Status SaveClassifier(BinaryWriter* writer, const Classifier& classifier);

/// Reads any classifier written by SaveClassifier.
Result<std::unique_ptr<Classifier>> LoadClassifier(BinaryReader* reader,
                                                   SchemaPtr schema);

/// Writes the complete high-order model (format v2).
Status SaveHighOrderModel(std::ostream* out,
                          const HighOrderClassifier& model);

/// Reads a model written by SaveHighOrderModel (v2) or by a pre-CRC
/// release (v1). The loaded model starts from the uniform concept prior;
/// run-time state travels separately in serving checkpoints
/// (highorder/checkpoint.h).
Result<std::unique_ptr<HighOrderClassifier>> LoadHighOrderModel(
    std::istream* in);

/// Convenience file wrappers.
Status SaveHighOrderModelToFile(const std::string& path,
                                const HighOrderClassifier& model);
Result<std::unique_ptr<HighOrderClassifier>> LoadHighOrderModelFromFile(
    const std::string& path);

/// CRC32 of the model's serialized schema section — the fingerprint that
/// ties a serving checkpoint to the model it was captured from.
Result<uint32_t> SchemaFingerprint(const Schema& schema);

}  // namespace hom

#endif  // HOM_HIGHORDER_SERIALIZATION_H_
