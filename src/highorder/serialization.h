#ifndef HOM_HIGHORDER_SERIALIZATION_H_
#define HOM_HIGHORDER_SERIALIZATION_H_

#include <iostream>
#include <memory>
#include <string>

#include "classifiers/classifier.h"
#include "common/result.h"
#include "highorder/highorder_classifier.h"

namespace hom {

/// \brief Persistence for the offline-trained high-order model, so the
/// expensive building phase (Table IV: minutes at paper scale) runs once
/// and the resulting model ships to online services as a byte stream.
///
/// Format: magic "HOM1", schema, options, concept statistics, then each
/// concept's error and base classifier (type-tagged payload; decision
/// tree, Naive Bayes and majority models are supported).

/// Writes the schema (attributes, vocabularies, classes).
Status SaveSchema(BinaryWriter* writer, const Schema& schema);

/// Reads a schema written by SaveSchema.
Result<SchemaPtr> LoadSchema(BinaryReader* reader);

/// Writes `classifier` with its type tag. Fails (NotImplemented) for
/// non-serializable classifier types.
Status SaveClassifier(BinaryWriter* writer, const Classifier& classifier);

/// Reads any classifier written by SaveClassifier.
Result<std::unique_ptr<Classifier>> LoadClassifier(BinaryReader* reader,
                                                   SchemaPtr schema);

/// Writes the complete high-order model.
Status SaveHighOrderModel(std::ostream* out,
                          const HighOrderClassifier& model);

/// Reads a model written by SaveHighOrderModel. The loaded model starts
/// from the uniform concept prior (run-time state is not persisted).
Result<std::unique_ptr<HighOrderClassifier>> LoadHighOrderModel(
    std::istream* in);

/// Convenience file wrappers.
Status SaveHighOrderModelToFile(const std::string& path,
                                const HighOrderClassifier& model);
Result<std::unique_ptr<HighOrderClassifier>> LoadHighOrderModelFromFile(
    const std::string& path);

}  // namespace hom

#endif  // HOM_HIGHORDER_SERIALIZATION_H_
