#ifndef HOM_HIGHORDER_CONCEPT_CLUSTERING_H_
#define HOM_HIGHORDER_CONCEPT_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "classifiers/classifier.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/dataset_view.h"
#include "highorder/dendrogram.h"
#include "highorder/merge_queue.h"

namespace hom {

/// Tuning of the two-step concept clustering (Sections II-A..II-D). The
/// defaults follow the paper; none of them is data-dependent — the absence
/// of stream-specific user parameters is one of the paper's selling points.
struct ConceptClusteringConfig {
  /// Step-1 block size; the paper recommends 2-20 records per block.
  size_t block_size = 20;
  /// Early termination of hopeless mergers (Section II-D): clusters with at
  /// least `early_stop_min_size` records whose Err exceeds
  /// `early_stop_ratio` x Err* stop participating in mergers.
  bool early_stop = true;
  size_t early_stop_min_size = 2000;
  double early_stop_ratio = 1.2;
  /// Section II-D's second optimization: when a merge is very unbalanced
  /// (the larger side has at least `reuse_ratio` times the records of the
  /// smaller), reuse the large side's classifier for the merged cluster
  /// instead of retraining ("a possible optimization is to simply reuse
  /// the existing classifier from the large cluster").
  bool reuse_on_unbalanced_merge = true;
  double reuse_ratio = 20.0;
  /// Statistical guard on the early-stop ratio test: the cluster is only
  /// frozen when Err - Err* also exceeds this many standard errors of the
  /// holdout estimate. Without it, near-zero errors (accurate base models)
  /// trip the 1.2x ratio on pure sampling noise and correct merges are
  /// frozen out. 0 reproduces the paper's literal Section II-D rule.
  double early_stop_z = 2.0;
  /// Estimate holdout errors with Laplace smoothing, (errors + 1) /
  /// (n + 2), instead of the raw ratio. Small clusters frequently draw a
  /// lucky zero-error holdout sample; the raw estimate then makes Err*
  /// undercut Err by pure sampling noise and the final cut shatters good
  /// merges. Smoothing prices that uncertainty in and recovers the paper's
  /// concept counts at reduced data scale. Set to false for the paper's
  /// literal Eq. 1 (the ablation bench compares both).
  bool laplace_error_smoothing = true;
  /// Significance guards of the two final cuts (see Dendrogram::FinalCut):
  /// split a dendrogram node only when Err - Err* exceeds this many
  /// standard errors of the holdout estimate. 0 reproduces the paper's
  /// literal rule. Step 1 (occurrence boundaries) stays aggressive so real
  /// concept changes are never papered over; step 2 (grouping occurrences
  /// into concepts) is guarded so holdout sampling noise does not shatter
  /// recurring concepts into fragments at reduced data scale.
  double step1_cut_z = 1.0;
  double step2_cut_z = 2.0;
  /// Thread-pool size for the offline build's parallel loops (leaf
  /// training, the initial batch of adjacent ΔQ candidates, step-2 sample
  /// prediction and pairwise distances). 0 = auto: the HOM_THREADS
  /// environment variable when set, else std::thread::hardware_concurrency.
  /// 1 runs everything inline on the calling thread. The clustering result
  /// — dendrogram, final cut, serialized model — is bit-identical at every
  /// thread count: all randomness is derived per node as
  /// hash(build_seed, node_id), never from scheduling order.
  size_t num_threads = 0;
};

/// One maximal run of records assigned to a single concept — the "concept
/// occurrence" of Section II-A, labeled with the discovered concept id.
struct ConceptOccurrence {
  size_t begin = 0;  ///< first record offset within the historical view
  size_t end = 0;    ///< one past the last record offset
  int concept_id = -1;

  size_t length() const { return end - begin; }
};

/// Output of concept clustering.
struct ConceptClusteringResult {
  /// Data of each discovered concept (union of its occurrences, in stream
  /// order).
  std::vector<DatasetView> concept_data;
  /// Holdout validation error Err_c of each concept's base model, from the
  /// concept's dendrogram node.
  std::vector<double> concept_errors;
  /// The occurrence sequence in stream order; adjacent occurrences always
  /// have different concept ids.
  std::vector<ConceptOccurrence> occurrences;
  /// Number of chunks produced by step 1 (diagnostic).
  size_t num_chunks = 0;
  /// Q(P) of the final partition (Eq. 1, diagnostic).
  double final_q = 0.0;
  /// Effective thread-pool size the build ran with (>= 1).
  size_t threads_used = 1;
  /// Tasks executed on pool worker threads during this clustering (0 when
  /// single-threaded; the calling thread's inline work is not counted).
  uint64_t pool_tasks = 0;
};

/// \brief The two-step agglomerative concept clustering of Section II.
///
/// Step 1 joins adjacent fixed-size blocks into chunks (concept
/// occurrences) using the ΔQ merge criterion (Eq. 2); step 2 joins chunks
/// into concepts on a complete graph using the model-similarity distance
/// (Eqs. 3-4) over a shared shuffled sample list. Both steps run Algorithm
/// 1: greedy min-heap merging followed by the Err*-guided final cut.
class ConceptClusterer {
 public:
  ConceptClusterer(ClassifierFactory base_factory,
                   ConceptClusteringConfig config = {});

  /// Clusters the time-ordered historical view. Deterministic given `rng`'s
  /// state.
  Result<ConceptClusteringResult> Cluster(const DatasetView& history,
                                          Rng* rng) const;

 private:
  /// Builds a leaf ClusterNode: holdout split, base model, Err (Algorithm 1
  /// lines 2-7).
  Result<ClusterNode> MakeLeaf(const DatasetView& data, Rng* rng) const;

  /// Merges two cluster nodes: unions data and holdout halves, retrains,
  /// and applies the Err* recursion (Algorithm 1 lines 11-19).
  Result<ClusterNode> MergeNodes(const ClusterNode& u,
                                 const ClusterNode& v) const;

  /// Scores the ΔQ candidate (Eq. 2) for adjacent clusters (u, v): trains
  /// (or reuses, Section II-D) the union classifier and returns the heap
  /// entry carrying ΔQ and the trained error. Thread-safe: reads the nodes
  /// and the factory only, so the initial batch of adjacent candidates is
  /// scored concurrently.
  Result<CandidateMerge> ScoreAdjacentMerge(const ClusterNode& u_node,
                                            const ClusterNode& v_node,
                                            int32_t u, int32_t v) const;

  /// True when Section II-D early termination removes `node` from play.
  bool ShouldStopMerging(const ClusterNode& node) const;

  /// Holdout error of `model` on `test`, Laplace-smoothed when configured.
  double EstimateError(const Classifier& model, const DatasetView& test) const;

  ClassifierFactory base_factory_;
  ConceptClusteringConfig config_;
};

}  // namespace hom

#endif  // HOM_HIGHORDER_CONCEPT_CLUSTERING_H_
