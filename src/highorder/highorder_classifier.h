#ifndef HOM_HIGHORDER_HIGHORDER_CLASSIFIER_H_
#define HOM_HIGHORDER_HIGHORDER_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "classifiers/classifier.h"
#include "common/result.h"
#include "data/sanitize.h"
#include "eval/serving_status.h"
#include "eval/stream_classifier.h"
#include "highorder/active_probability.h"

namespace hom {

/// One stable concept of the high-order model: its offline-trained base
/// classifier M_c and its validation error Err_c (used by the likelihood
/// ψ of Eq. 8).
struct ConceptModel {
  std::unique_ptr<Classifier> model;
  double error = 0.0;
  size_t training_records = 0;  ///< diagnostic: |D_c|
};

/// Behaviour switches of the online phase. All default to the paper's
/// choices; the alternatives exist for the ablation benchmarks.
struct HighOrderOptions {
  /// Weigh concept classifiers by the prior P_t− (Eq. 10). When false, the
  /// posterior P_t is used instead (ablation).
  bool weight_by_prior = true;
  /// Section III-C speedup: when only the argmax label is needed, evaluate
  /// concepts in decreasing active probability and stop once the answer
  /// can no longer change.
  bool prune_prediction = true;
  /// Flatten every concept's frozen tree into a compiled SoA kernel
  /// (classifiers/compiled_tree.h) at construction and serve predictions
  /// from it. The compiled walk is verified bit-identical to the pointer
  /// walk; disabling this (ablation / bench baseline) falls back to the
  /// per-call allocating pointer walk the pre-kernel code used.
  bool use_compiled_kernels = true;
  /// Every `latency_sample_period`-th Predict() is wall-clock timed into
  /// the "hom.online.predict_latency_us" histogram; 0 disables sampling
  /// entirely. The default (64) keeps the two clock reads per sample well
  /// inside the 5% instrumentation budget even on trivial base models
  /// while still filling the histogram quickly. Also settable after model
  /// load via set_latency_sample_period() (homctl --latency-sample).
  size_t latency_sample_period = 64;
  /// Drift event hysteresis for the journal (obs::EventJournal): a
  /// DriftSuspected fires when the top concept's prediction weight sinks
  /// below `drift_suspect_weight` (its grip on the stream is slipping);
  /// the suspicion is withdrawn once the weight recovers above
  /// `drift_clear_weight`. A weight-argmax change always emits
  /// DriftSuspected (if not already pending) + DriftConfirmed +
  /// ConceptSwitch, in that order.
  double drift_suspect_weight = 0.55;
  double drift_clear_weight = 0.70;
};

/// \brief Everything the online classifier accumulates while serving a
/// stream — the state a serving checkpoint (highorder/checkpoint.h) must
/// capture so a restarted process continues bit-for-bit where the dead one
/// stopped. The offline-trained model itself (concepts, stats, schema) is
/// NOT here; it reloads from the model file.
struct HighOrderRuntimeState {
  /// Markov-filter state: P_t−(c) and P_t(c) (Eqs. 5-9).
  std::vector<double> prior;
  std::vector<double> posterior;
  /// Cached prediction weights and whether a labeled record has arrived
  /// since they were last refreshed.
  std::vector<double> weights;
  bool weights_stale = false;
  /// Counters feeding metrics and journal record numbers.
  uint64_t base_evaluations = 0;
  uint64_t predictions = 0;
  uint64_t observations = 0;
  /// Drift-hysteresis state (-1 = no top concept yet).
  int64_t last_top_concept = -1;
  bool drift_suspected = false;
  /// Predictions left until the next sampled latency measurement.
  uint64_t until_latency_sample = 0;
  /// Fallback answer for unclassifiable (wrong-arity) records.
  int32_t last_prediction = 0;
};

/// \brief The online high-order classifier of Section III: a Markov filter
/// over the discovered stable concepts plus a probability-weighted ensemble
/// of their offline-trained classifiers.
///
/// ObserveLabeled() consumes the online training stream Y and maintains
/// each concept's active probability; Predict()/PredictProba() classify the
/// unlabeled stream X via Eq. 10/11. Unlike the baselines, no classifier is
/// ever trained online — that is the entire point of the paper.
class HighOrderClassifier : public StreamClassifier {
 public:
  /// Validates inputs and assembles the classifier. `concepts` and `stats`
  /// must agree on the number of concepts; every error must be in [0, 1].
  static Result<std::unique_ptr<HighOrderClassifier>> Make(
      SchemaPtr schema, std::vector<ConceptModel> concepts,
      ConceptStats stats, HighOrderOptions options = {});

  Label Predict(const Record& x) override;
  std::vector<double> PredictProba(const Record& x) override;
  void PredictProbaInto(const Record& x, std::vector<double>* proba) override;
  void ObserveLabeled(const Record& y) override;

  /// Classifies `n` records in one pass: for each concept (most active
  /// first under prune_prediction) the compiled kernel sweeps every record
  /// still undecided, so a tree's arrays are streamed once per concept
  /// instead of once per record. Weights are refreshed once up front —
  /// batching is only meaningful between ObserveLabeled() calls, when the
  /// weights are constant — and the outputs are exactly what n Predict()
  /// calls would have returned (same accumulation order, same pruning
  /// stops). Falls back to per-record Predict() when any record needs
  /// sanitizing. Latency sampling does not apply to batched calls.
  void PredictBatch(const Record* records, size_t n, Label* out);
  std::string name() const override { return "High-order"; }
  size_t num_classes() const override { return schema_->num_classes(); }
  /// The concept currently holding the largest prediction weight (as of
  /// the last weight refresh), or -1 before the first one.
  int64_t ActiveConcept() const override;

  /// Runtime override of HighOrderOptions::latency_sample_period (0
  /// disables latency sampling); applies from the next Predict().
  void set_latency_sample_period(size_t period);

  /// Malformed-input policy for the online streams. The default (kSkip)
  /// drops bad labeled records; kImputeMajority repairs them from running
  /// statistics. kError behaves like kSkip here — the online loop has no
  /// caller to hand a Status to; strict rejection belongs to ingest
  /// (ReadCsv). Predictions are never refused: a repairable record is
  /// always imputed for Predict() and an unrepairable one answers with the
  /// previous prediction. Every rejection/imputation bumps the
  /// "hom.online.input_rejected"/"hom.online.input_imputed" counters and
  /// journals an InputRejected/InputImputed event.
  void set_input_policy(InputPolicy policy) { input_policy_ = policy; }
  InputPolicy input_policy() const { return input_policy_; }

  /// Snapshots the serving state for a checkpoint. Pure read; the
  /// classifier keeps running unaffected.
  HighOrderRuntimeState ExportRuntimeState() const;

  /// Reinstates a snapshot taken by ExportRuntimeState on a classifier
  /// loaded from the same model, after which predictions and journal
  /// events continue exactly as if the process had never stopped. Rejects
  /// state whose vectors do not match this model's concept count or whose
  /// values are non-finite/out of range (a corrupt or mismatched
  /// checkpoint), leaving the classifier untouched.
  Status RestoreRuntimeState(const HighOrderRuntimeState& state);

  /// Fills the drift-filter view of a ServingStatusBoard::Progress — the
  /// active concept and the Markov filter's prior/posterior — leaving the
  /// stream counts (records/errors) to the caller, which owns them. Pure
  /// read; the serving loop calls it from its progress callback.
  void ExportServingStatus(ServingStatusBoard::Progress* progress) const;

  /// Serialized imputation statistics, checkpointed alongside the runtime
  /// state so majority imputation survives a restart.
  Result<std::string> ExportSanitizerState() const;
  Status RestoreSanitizerState(const std::string& bytes);

  size_t num_concepts() const { return concepts_.size(); }
  const ConceptModel& concept_model(size_t c) const { return concepts_[c]; }
  const ActiveProbabilityTracker& tracker() const { return tracker_; }
  const HighOrderOptions& options() const { return options_; }
  const SchemaPtr& schema() const { return schema_; }

  /// Active probabilities P_t−(c) used to weigh the next prediction.
  const std::vector<double>& active_probabilities();

  /// Diagnostics for the pruning ablation: base-model evaluations spent in
  /// Predict() so far, and Predict() call count.
  size_t base_evaluations() const { return base_evaluations_; }
  size_t predictions() const { return predictions_; }

 private:
  HighOrderClassifier(SchemaPtr schema, std::vector<ConceptModel> concepts,
                      ConceptStats stats, HighOrderOptions options);

  /// Recomputes the cached prior if a labeled record arrived since the
  /// last prediction.
  void RefreshWeights();

  /// Predict()/ObserveLabeled() bodies once the record is known clean;
  /// the public entry points sanitize first.
  Label PredictClean(const Record& x);
  void ObserveLabeledClean(const Record& y);

  /// Predict() body; split out so the public entry point can time a
  /// sampled subset of calls without paying for a clock on every record.
  Label PredictImpl(const Record& x);

  /// Writes concept c's class distribution for `x` into `*mc`: compiled
  /// kernel when available, allocation-free pointer walk otherwise, or the
  /// legacy allocating walk when use_compiled_kernels is off (so the bench
  /// ablation measures exactly the pre-kernel hot path).
  void ConceptProbaInto(size_t c, const Record& x, std::vector<double>* mc);

  /// Adds weights_[c] * M_c(l | records[idx[i]]) into the batch_proba_
  /// rows selected by `idx` (batched counterpart of ConceptProbaInto).
  void AccumulateConceptBatch(size_t c, const Record* records,
                              const uint32_t* idx, size_t count,
                              size_t num_classes);

  SchemaPtr schema_;
  std::vector<ConceptModel> concepts_;
  ActiveProbabilityTracker tracker_;
  HighOrderOptions options_;
  InputPolicy input_policy_ = InputPolicy::kSkip;
  InputSanitizer sanitizer_;
  /// Fallback answer when a record is too malformed to classify (wrong
  /// arity): the previous prediction, the cheapest persistence forecast.
  Label last_prediction_ = 0;
  /// Concept weights for the current timestamp (P_t− by default), cached
  /// across the unlabeled records sharing that timestamp.
  std::vector<double> weights_;
  bool weights_stale_ = false;
  std::vector<size_t> weight_order_;  ///< concepts sorted by weight, desc.
  size_t base_evaluations_ = 0;
  size_t predictions_ = 0;
  /// Labeled records consumed so far; the `record` field of emitted
  /// journal events.
  size_t observations_ = 0;
  /// Most recent argmax of the concept weights; tracks concept switches
  /// for the "hom.online.concept_switches" counter and the journal's
  /// ConceptSwitch events.
  size_t last_top_concept_ = static_cast<size_t>(-1);
  /// Whether a DriftSuspected is pending (emitted, not yet confirmed or
  /// withdrawn) — see HighOrderOptions::drift_suspect_weight.
  bool drift_suspected_ = false;
  /// observations_ at the moment the pending suspicion was raised; the
  /// exported drift-dwell signal is observations_ - this while suspected.
  /// Monitoring-only (not checkpointed): a resumed run restarts the dwell
  /// clock at the restore point.
  size_t drift_suspected_since_ = 0;
  /// Predictions left until the next sampled latency measurement.
  size_t until_latency_sample_ = 0;
  /// Per-concept compiled kernels, parallel to concepts_; nullptr entries
  /// fall back to the virtual PredictProba path (non-tree models,
  /// use_compiled_kernels off). Owned by the concept models themselves.
  std::vector<const CompiledTree*> compiled_;
  /// Reused scratch: one concept's distribution (mc_scratch_), the mixture
  /// accumulator of the argmax paths (proba_scratch_), and the batch
  /// row-major [record][class] accumulator plus undecided-record list.
  std::vector<double> mc_scratch_;
  std::vector<double> proba_scratch_;
  std::vector<double> batch_proba_;
  std::vector<uint32_t> batch_active_;
};

}  // namespace hom

#endif  // HOM_HIGHORDER_HIGHORDER_CLASSIFIER_H_
