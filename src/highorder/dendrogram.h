#ifndef HOM_HIGHORDER_DENDROGRAM_H_
#define HOM_HIGHORDER_DENDROGRAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "classifiers/classifier.h"
#include "data/dataset_view.h"

namespace hom {

/// \brief One cluster in the agglomerative process of Algorithm 1: its
/// data, its holdout split, its base model M_i with validation error
/// Err_i, and the optimal-partition error Err*_i maintained during merging.
struct ClusterNode {
  DatasetView data;   ///< D_i — all records of the cluster.
  DatasetView train;  ///< D_i^train (random half).
  DatasetView test;   ///< D_i^test (the other half).
  /// M_i trained on `train`. Shared because the Section II-D unbalanced-
  /// merge optimization lets a merged cluster reuse its large child's
  /// classifier instead of retraining.
  std::shared_ptr<Classifier> model;
  double err = 0.0;        ///< Err_i: error of `model` on `test`.
  double err_star = 0.0;   ///< Err*_i: error of the best partition of D_i.
  int32_t left = -1;       ///< child cluster ids; -1 for input leaves.
  int32_t right = -1;
  /// Step-2 similarity cache: model predictions on the shared sample list
  /// L[0 .. |test|) (Section II-C.1).
  std::vector<Label> sample_predictions;
};

/// \brief The merge tree built by concept clustering, plus the top-down
/// "final cut" (Section II-C.2) that extracts the best partition.
///
/// Nodes are owned in an arena indexed by int32_t ids; leaves are the input
/// clusters, internal nodes record which pair merged into them.
class Dendrogram {
 public:
  /// Pre-allocates node storage. An agglomeration over n leaves builds at
  /// most 2n-1 nodes; reserving that once spares every AddLeaf/AddMerge
  /// the amortized reallocation (each of which copies DatasetViews and
  /// sample caches).
  void Reserve(size_t num_nodes) { nodes_.reserve(num_nodes); }

  /// Adds an input cluster; returns its id.
  int32_t AddLeaf(ClusterNode node);

  /// Adds the merger of `left` and `right`; `node.left/right` are set by
  /// this call. Returns the new cluster's id.
  int32_t AddMerge(int32_t left, int32_t right, ClusterNode node);

  ClusterNode& node(int32_t id);
  const ClusterNode& node(int32_t id) const;
  size_t size() const { return nodes_.size(); }

  /// The final cut: starting from `roots` (the clusters still unmerged when
  /// merging stopped), split every node whose Err* is below its Err,
  /// repeating until no split is warranted. Returns the ids of the
  /// resulting partition.
  ///
  /// `significance_z` guards the split decision against holdout sampling
  /// noise: a node is split only when Err - Err* exceeds z standard errors
  /// of the node's error estimate (SE = sqrt(Err(1-Err)/|D^test|)). z = 0
  /// reproduces the paper's literal rule; the clusterer defaults to z > 0
  /// because at small cluster sizes the raw rule shatters correct merges on
  /// lucky zero-error holdout samples.
  std::vector<int32_t> FinalCut(const std::vector<int32_t>& roots,
                                double significance_z = 0.0) const;

 private:
  std::vector<ClusterNode> nodes_;
};

}  // namespace hom

#endif  // HOM_HIGHORDER_DENDROGRAM_H_
