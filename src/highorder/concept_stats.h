#ifndef HOM_HIGHORDER_CONCEPT_STATS_H_
#define HOM_HIGHORDER_CONCEPT_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "highorder/concept_clustering.h"

namespace hom {

/// \brief Historical concept change statistics (Section III-B): per-concept
/// mean occurrence length Len_i, occurrence frequency Freq_i, and the
/// induced transition kernel χ(i, j) of Eq. 6.
///
/// χ(i, i) = 1 - 1/Len_i (probability of staying), and for i != j,
/// χ(i, j) = (1/Len_i) * Freq_j / (1 - Freq_i) (probability of leaving
/// times the chance that j is the successor). Rows sum to 1.
class ConceptStats {
 public:
  /// Derives statistics from the occurrence sequence found by concept
  /// clustering. `num_concepts` must cover every id in `occurrences`.
  static Result<ConceptStats> FromOccurrences(
      const std::vector<ConceptOccurrence>& occurrences, size_t num_concepts);

  /// Builds statistics directly (tests and simulation scenarios).
  static Result<ConceptStats> FromLengthsAndFrequencies(
      std::vector<double> mean_lengths, std::vector<double> frequencies);

  size_t num_concepts() const { return mean_lengths_.size(); }
  double mean_length(size_t c) const { return mean_lengths_[c]; }
  double frequency(size_t c) const { return frequencies_[c]; }

  /// Transition probability χ(from, to).
  double Chi(size_t from, size_t to) const;

  /// Applies one step of the concept Markov chain: out[j] = Σ_i p[i]χ(i,j)
  /// (Eq. 5). `p` must have num_concepts() entries.
  std::vector<double> Propagate(const std::vector<double>& p) const;

  /// Applies `steps` chain steps at once — the Section III-B variable-rate
  /// revision: when records arrive with gaps (in record-clock units), the
  /// prior must be propagated through every elapsed tick, not just one.
  /// Uses χ^steps via exponentiation-by-squaring for large gaps.
  std::vector<double> PropagateSteps(const std::vector<double>& p,
                                     size_t steps) const;

  std::string ToString() const;

 private:
  ConceptStats(std::vector<double> lengths, std::vector<double> freqs);
  void BuildChi();

  std::vector<double> mean_lengths_;
  std::vector<double> frequencies_;
  std::vector<double> chi_;  ///< row-major [from][to]
};

}  // namespace hom

#endif  // HOM_HIGHORDER_CONCEPT_STATS_H_
