#include "highorder/checkpoint.h"

#include <cmath>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "common/file_io.h"
#include "highorder/serialization.h"
#include "obs/event_journal.h"
#include "obs/trace_context.h"

namespace hom {

namespace {

constexpr char kMagic[] = "HOMC";
// v2: OnlineConceptStats entries grew per-concept Brier calibration
// accounting (sum + sample count); v1 checkpoints are rejected cleanly.
constexpr uint32_t kCheckpointVersion = 2;

constexpr uint32_t kMetaTag = SectionTag('M', 'E', 'T', 'A');
constexpr uint32_t kTrackerTag = SectionTag('T', 'R', 'K', 'R');
constexpr uint32_t kSanitizerTag = SectionTag('S', 'N', 'T', 'Z');
constexpr uint32_t kConceptStatsTag = SectionTag('C', 'S', 'T', 'A');
constexpr uint32_t kReplicationTag = SectionTag('R', 'P', 'L', 'C');

// Version of the RPLC payload itself. The section is optional and old
// readers skip it, but a payload from a *newer* writer must be rejected
// rather than misread — the version field is checked before anything else.
constexpr uint32_t kReplicationVersion = 1;
constexpr size_t kMaxPrimaryIdBytes = 256;

// Delta framing: magic, delta version, base/new CRCs, then per-section
// entries that either reference an unchanged base section by tag or carry
// a replacement section inline.
constexpr char kDeltaMagic[] = "HOMD";
constexpr uint32_t kDeltaVersion = 1;
constexpr uint8_t kDeltaCopyFromBase = 0;
constexpr uint8_t kDeltaInline = 1;

// Checkpoints are small (three probability vectors plus counters; the
// concept-stats section adds confusion matrices). These caps bound what a
// corrupt length field can demand.
constexpr size_t kMaxMetaBytes = size_t{1} << 10;
constexpr size_t kMaxTrackerBytes = size_t{1} << 24;        // 16 MiB
constexpr size_t kMaxConceptStatsBytes = size_t{1} << 28;   // 256 MiB
constexpr size_t kMaxFileBytes = size_t{1} << 29;
constexpr size_t kMaxSections = 16;
constexpr uint32_t kMaxConcepts = 100000;

template <typename Fn>
Result<std::string> BuildPayload(Fn&& write) {
  std::ostringstream buffer(std::ios::binary);
  BinaryWriter writer(&buffer);
  HOM_RETURN_NOT_OK(write(&writer));
  return std::move(buffer).str();
}

template <typename T, typename Fn>
Result<T> ParsePayload(const Section& section, Fn&& parse) {
  std::istringstream buffer(section.payload, std::ios::binary);
  BinaryReader reader(&buffer);
  HOM_ASSIGN_OR_RETURN(T value, parse(&reader));
  if (!reader.AtEof()) {
    return Status::InvalidArgument("section " + SectionTagName(section.tag) +
                                   " has trailing bytes");
  }
  return value;
}

struct Meta {
  uint32_t schema_fingerprint = 0;
  uint64_t stream_offset = 0;
  uint64_t num_errors = 0;
  uint64_t window_errors = 0;
  uint64_t window_fill = 0;
};

Result<Meta> ParseMeta(BinaryReader* reader) {
  Meta meta;
  HOM_ASSIGN_OR_RETURN(meta.schema_fingerprint, reader->ReadU32());
  HOM_ASSIGN_OR_RETURN(meta.stream_offset, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(meta.num_errors, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(meta.window_errors, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(meta.window_fill, reader->ReadU64());
  if (meta.num_errors > meta.stream_offset) {
    return Status::InvalidArgument(
        "checkpoint reports more errors than records");
  }
  if (meta.window_errors > meta.window_fill) {
    return Status::InvalidArgument(
        "checkpoint window block has more errors than records");
  }
  return meta;
}

Status ValidateProbabilityVector(const std::vector<double>& v,
                                 const char* what) {
  for (double p : v) {
    if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(std::string("checkpoint ") + what +
                                     " outside [0, 1]");
    }
  }
  return Status::OK();
}

Result<HighOrderRuntimeState> ParseRuntime(BinaryReader* reader) {
  HighOrderRuntimeState state;
  HOM_ASSIGN_OR_RETURN(state.prior, reader->ReadDoubleVector(kMaxConcepts));
  HOM_ASSIGN_OR_RETURN(state.posterior,
                       reader->ReadDoubleVector(kMaxConcepts));
  HOM_ASSIGN_OR_RETURN(state.weights, reader->ReadDoubleVector(kMaxConcepts));
  if (state.posterior.size() != state.prior.size() ||
      state.weights.size() != state.prior.size()) {
    return Status::InvalidArgument(
        "checkpoint state vectors disagree on the concept count");
  }
  HOM_RETURN_NOT_OK(ValidateProbabilityVector(state.prior, "prior"));
  HOM_RETURN_NOT_OK(ValidateProbabilityVector(state.posterior, "posterior"));
  HOM_RETURN_NOT_OK(ValidateProbabilityVector(state.weights, "weight"));
  HOM_ASSIGN_OR_RETURN(uint8_t stale, reader->ReadU8());
  if (stale > 1) {
    return Status::InvalidArgument("checkpoint flags must be 0 or 1");
  }
  state.weights_stale = stale != 0;
  HOM_ASSIGN_OR_RETURN(state.base_evaluations, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(state.predictions, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(state.observations, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(state.last_top_concept, reader->ReadI64());
  if (state.last_top_concept < -1 ||
      state.last_top_concept >= static_cast<int64_t>(state.prior.size())) {
    return Status::InvalidArgument("checkpoint top concept out of range");
  }
  HOM_ASSIGN_OR_RETURN(uint8_t drift, reader->ReadU8());
  if (drift > 1) {
    return Status::InvalidArgument("checkpoint flags must be 0 or 1");
  }
  state.drift_suspected = drift != 0;
  HOM_ASSIGN_OR_RETURN(state.until_latency_sample, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(state.last_prediction, reader->ReadI32());
  if (state.last_prediction < 0) {
    return Status::InvalidArgument(
        "checkpoint fallback prediction out of range");
  }
  return state;
}

Result<CheckpointReplication> ParseReplication(BinaryReader* reader) {
  HOM_ASSIGN_OR_RETURN(uint32_t version, reader->ReadU32());
  if (version > kReplicationVersion) {
    return Status::InvalidArgument(
        "checkpoint replication metadata written by a newer writer "
        "(version " +
        std::to_string(version) + ", this reader understands " +
        std::to_string(kReplicationVersion) + ")");
  }
  if (version == 0) {
    return Status::InvalidArgument(
        "checkpoint replication metadata version must be positive");
  }
  CheckpointReplication replication;
  HOM_ASSIGN_OR_RETURN(replication.sequence, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(replication.primary_epoch, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(replication.primary_id,
                       reader->ReadString(kMaxPrimaryIdBytes));
  return replication;
}

/// Structural (header + CRC-framed sections) parse without semantic
/// validation, shared by the delta encoder/applier. Section payload CRCs
/// are verified by ReadSection.
struct RawCheckpoint {
  uint32_t version = 0;
  std::vector<Section> sections;
};

Result<RawCheckpoint> ShallowParseCheckpoint(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader reader(&in);
  HOM_ASSIGN_OR_RETURN(std::string magic, reader.ReadString(16));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a HOM checkpoint (bad magic)");
  }
  RawCheckpoint raw;
  HOM_ASSIGN_OR_RETURN(raw.version, reader.ReadU32());
  HOM_ASSIGN_OR_RETURN(uint32_t section_count, reader.ReadU32());
  if (section_count < 2 || section_count > kMaxSections) {
    return Status::InvalidArgument("checkpoint section count out of range");
  }
  raw.sections.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    HOM_ASSIGN_OR_RETURN(Section section, ReadSection(&reader, kMaxFileBytes));
    for (const Section& seen : raw.sections) {
      if (seen.tag == section.tag) {
        return Status::InvalidArgument("duplicate checkpoint section " +
                                       SectionTagName(section.tag));
      }
    }
    raw.sections.push_back(std::move(section));
  }
  if (!reader.AtEof()) {
    return Status::InvalidArgument("checkpoint has trailing bytes");
  }
  return raw;
}

/// Identity over the parsed structure. A whole-file Crc32 would be blind
/// here: each section is framed payload||crc32(payload), and the CRC32
/// register after M||crc32(M) does not depend on M, so payload edits
/// cancel out of a raw-byte CRC. Hashing (tag, size, payload CRC) tuples
/// as data keeps every payload bit load-bearing.
uint32_t IdentityOf(const RawCheckpoint& raw) {
  std::string buf;
  auto put_u32 = [&buf](uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      buf.push_back(static_cast<char>((v >> shift) & 0xFF));
    }
  };
  put_u32(raw.version);
  put_u32(static_cast<uint32_t>(raw.sections.size()));
  for (const Section& section : raw.sections) {
    put_u32(section.tag);
    put_u32(static_cast<uint32_t>(section.payload.size()));
    put_u32(static_cast<uint32_t>(section.payload.size() >> 32));
    put_u32(Crc32(section.payload));
  }
  return Crc32(buf);
}

}  // namespace

Result<uint32_t> CheckpointIdentity(const std::string& bytes) {
  HOM_ASSIGN_OR_RETURN(RawCheckpoint raw, ShallowParseCheckpoint(bytes));
  return IdentityOf(raw);
}

Result<ServingCheckpoint> CaptureCheckpoint(const HighOrderClassifier& model) {
  // Traced only when a context is already installed (a checkpoint round,
  // a swap): bare captures from tests and the CLI stay span-free instead
  // of minting unlinked root traces.
  std::optional<obs::DistSpan> span;
  if (obs::CurrentTraceContext() != nullptr) {
    span.emplace("checkpoint.capture", obs::SpanKind::kInternal);
  }
  ServingCheckpoint ckpt;
  HOM_ASSIGN_OR_RETURN(ckpt.schema_fingerprint,
                       SchemaFingerprint(*model.schema()));
  ckpt.runtime = model.ExportRuntimeState();
  HOM_ASSIGN_OR_RETURN(ckpt.sanitizer_state, model.ExportSanitizerState());
  return ckpt;
}

Result<std::string> SerializeCheckpoint(const ServingCheckpoint& ckpt) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(&out);
  HOM_RETURN_NOT_OK(writer.WriteString(kMagic));
  HOM_RETURN_NOT_OK(writer.WriteU32(kCheckpointVersion));
  uint32_t sections = 2;
  if (ckpt.has_replication) ++sections;
  if (!ckpt.sanitizer_state.empty()) ++sections;
  if (ckpt.concept_stats != nullptr) ++sections;
  HOM_RETURN_NOT_OK(writer.WriteU32(sections));

  HOM_ASSIGN_OR_RETURN(std::string meta, BuildPayload([&](BinaryWriter* w) {
    HOM_RETURN_NOT_OK(w->WriteU32(ckpt.schema_fingerprint));
    HOM_RETURN_NOT_OK(w->WriteU64(ckpt.stream_offset));
    HOM_RETURN_NOT_OK(w->WriteU64(ckpt.num_errors));
    HOM_RETURN_NOT_OK(w->WriteU64(ckpt.window_errors));
    return w->WriteU64(ckpt.window_fill);
  }));
  HOM_RETURN_NOT_OK(WriteSection(&writer, kMetaTag, meta));

  if (ckpt.has_replication) {
    if (ckpt.replication.primary_id.size() > kMaxPrimaryIdBytes) {
      return Status::InvalidArgument("replication primary_id too long");
    }
    HOM_ASSIGN_OR_RETURN(std::string rplc, BuildPayload([&](BinaryWriter* w) {
      HOM_RETURN_NOT_OK(w->WriteU32(kReplicationVersion));
      HOM_RETURN_NOT_OK(w->WriteU64(ckpt.replication.sequence));
      HOM_RETURN_NOT_OK(w->WriteU64(ckpt.replication.primary_epoch));
      return w->WriteString(ckpt.replication.primary_id);
    }));
    HOM_RETURN_NOT_OK(WriteSection(&writer, kReplicationTag, rplc));
  }

  const HighOrderRuntimeState& rt = ckpt.runtime;
  HOM_ASSIGN_OR_RETURN(std::string tracker, BuildPayload([&](BinaryWriter* w) {
    HOM_RETURN_NOT_OK(w->WriteDoubleVector(rt.prior));
    HOM_RETURN_NOT_OK(w->WriteDoubleVector(rt.posterior));
    HOM_RETURN_NOT_OK(w->WriteDoubleVector(rt.weights));
    HOM_RETURN_NOT_OK(w->WriteU8(rt.weights_stale ? 1 : 0));
    HOM_RETURN_NOT_OK(w->WriteU64(rt.base_evaluations));
    HOM_RETURN_NOT_OK(w->WriteU64(rt.predictions));
    HOM_RETURN_NOT_OK(w->WriteU64(rt.observations));
    HOM_RETURN_NOT_OK(w->WriteI64(rt.last_top_concept));
    HOM_RETURN_NOT_OK(w->WriteU8(rt.drift_suspected ? 1 : 0));
    HOM_RETURN_NOT_OK(w->WriteU64(rt.until_latency_sample));
    return w->WriteI32(rt.last_prediction);
  }));
  HOM_RETURN_NOT_OK(WriteSection(&writer, kTrackerTag, tracker));

  if (!ckpt.sanitizer_state.empty()) {
    HOM_RETURN_NOT_OK(
        WriteSection(&writer, kSanitizerTag, ckpt.sanitizer_state));
  }
  if (ckpt.concept_stats != nullptr) {
    HOM_ASSIGN_OR_RETURN(std::string stats, BuildPayload([&](BinaryWriter* w) {
      return ckpt.concept_stats->SaveTo(w);
    }));
    HOM_RETURN_NOT_OK(WriteSection(&writer, kConceptStatsTag, stats));
  }
  return std::move(out).str();
}

Status SaveCheckpointToFile(const std::string& path,
                            const ServingCheckpoint& ckpt) {
  HOM_ASSIGN_OR_RETURN(std::string bytes, SerializeCheckpoint(ckpt));
  HOM_RETURN_NOT_OK(AtomicWriteFile(path, std::move(bytes)));
  obs::EmitIfActive(obs::EventType::kCheckpointSave, "checkpoint",
                    static_cast<int64_t>(ckpt.stream_offset),
                    ckpt.runtime.last_top_concept, -1,
                    static_cast<double>(ckpt.num_errors));
  return Status::OK();
}

Result<ServingCheckpoint> ParseCheckpoint(const std::string& bytes) {
  if (bytes.size() > kMaxFileBytes) {
    return Status::InvalidArgument("checkpoint exceeds the size cap");
  }
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader reader(&in);
  HOM_ASSIGN_OR_RETURN(std::string magic, reader.ReadString(16));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a HOM checkpoint (bad magic)");
  }
  HOM_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  HOM_ASSIGN_OR_RETURN(uint32_t section_count, reader.ReadU32());
  if (section_count < 2 || section_count > kMaxSections) {
    return Status::InvalidArgument("checkpoint section count out of range");
  }

  bool have_meta = false;
  bool have_tracker = false;
  bool have_replication = false;
  Meta meta;
  HighOrderRuntimeState runtime;
  std::string sanitizer_state;
  std::shared_ptr<OnlineConceptStats> concept_stats;
  CheckpointReplication replication;
  for (uint32_t i = 0; i < section_count; ++i) {
    HOM_ASSIGN_OR_RETURN(Section section,
                         ReadSection(&reader, kMaxFileBytes));
    if (section.tag == kMetaTag) {
      if (have_meta) {
        return Status::InvalidArgument("duplicate META section");
      }
      if (section.payload.size() > kMaxMetaBytes) {
        return Status::InvalidArgument("META section oversized");
      }
      HOM_ASSIGN_OR_RETURN(meta, ParsePayload<Meta>(section, ParseMeta));
      have_meta = true;
    } else if (section.tag == kTrackerTag) {
      if (have_tracker) {
        return Status::InvalidArgument("duplicate TRKR section");
      }
      if (section.payload.size() > kMaxTrackerBytes) {
        return Status::InvalidArgument("TRKR section oversized");
      }
      HOM_ASSIGN_OR_RETURN(
          runtime, ParsePayload<HighOrderRuntimeState>(section, ParseRuntime));
      have_tracker = true;
    } else if (section.tag == kSanitizerTag) {
      if (!sanitizer_state.empty()) {
        return Status::InvalidArgument("duplicate SNTZ section");
      }
      if (section.payload.empty() ||
          section.payload.size() > kMaxTrackerBytes) {
        return Status::InvalidArgument("SNTZ section size out of range");
      }
      // Opaque here; validated against the model schema at Apply time.
      sanitizer_state = std::move(section.payload);
    } else if (section.tag == kReplicationTag) {
      if (have_replication) {
        return Status::InvalidArgument("duplicate RPLC section");
      }
      if (section.payload.size() > kMaxMetaBytes) {
        return Status::InvalidArgument("RPLC section oversized");
      }
      HOM_ASSIGN_OR_RETURN(replication, ParsePayload<CheckpointReplication>(
                                            section, ParseReplication));
      have_replication = true;
    } else if (section.tag == kConceptStatsTag) {
      if (concept_stats != nullptr) {
        return Status::InvalidArgument("duplicate CSTA section");
      }
      if (section.payload.size() > kMaxConceptStatsBytes) {
        return Status::InvalidArgument("CSTA section oversized");
      }
      HOM_ASSIGN_OR_RETURN(OnlineConceptStats stats,
                           ParsePayload<OnlineConceptStats>(
                               section, OnlineConceptStats::LoadFrom));
      concept_stats = std::make_shared<OnlineConceptStats>(std::move(stats));
    }
    // Unknown tags: CRC already verified, payload skipped (forward compat).
  }
  if (!have_meta || !have_tracker) {
    return Status::InvalidArgument(
        "checkpoint is missing a required section (META, TRKR)");
  }
  if (!reader.AtEof()) {
    return Status::InvalidArgument("checkpoint has trailing bytes");
  }

  ServingCheckpoint ckpt;
  ckpt.schema_fingerprint = meta.schema_fingerprint;
  ckpt.stream_offset = meta.stream_offset;
  ckpt.num_errors = meta.num_errors;
  ckpt.window_errors = meta.window_errors;
  ckpt.window_fill = meta.window_fill;
  ckpt.runtime = std::move(runtime);
  ckpt.sanitizer_state = std::move(sanitizer_state);
  ckpt.concept_stats = std::move(concept_stats);
  ckpt.has_replication = have_replication;
  ckpt.replication = std::move(replication);
  return ckpt;
}

Result<ServingCheckpoint> LoadCheckpointFromFile(const std::string& path) {
  HOM_ASSIGN_OR_RETURN(std::string bytes,
                       ReadFileToString(path, kMaxFileBytes));
  Result<ServingCheckpoint> parsed = ParseCheckpoint(bytes);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  parsed.status().message() + ": " + path);
  }
  return parsed;
}

Result<std::string> EncodeCheckpointDelta(const std::string& base_bytes,
                                          const std::string& new_bytes) {
  HOM_ASSIGN_OR_RETURN(RawCheckpoint base, ShallowParseCheckpoint(base_bytes));
  HOM_ASSIGN_OR_RETURN(RawCheckpoint updated,
                       ShallowParseCheckpoint(new_bytes));
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(&out);
  HOM_RETURN_NOT_OK(writer.WriteString(kDeltaMagic));
  HOM_RETURN_NOT_OK(writer.WriteU32(kDeltaVersion));
  HOM_RETURN_NOT_OK(writer.WriteU32(IdentityOf(base)));
  HOM_RETURN_NOT_OK(writer.WriteU32(IdentityOf(updated)));
  HOM_RETURN_NOT_OK(writer.WriteU32(updated.version));
  HOM_RETURN_NOT_OK(
      writer.WriteU32(static_cast<uint32_t>(updated.sections.size())));
  for (const Section& section : updated.sections) {
    const Section* unchanged = nullptr;
    for (const Section& candidate : base.sections) {
      if (candidate.tag == section.tag) {
        if (candidate.payload == section.payload) unchanged = &candidate;
        break;
      }
    }
    if (unchanged != nullptr) {
      HOM_RETURN_NOT_OK(writer.WriteU8(kDeltaCopyFromBase));
      HOM_RETURN_NOT_OK(writer.WriteU32(section.tag));
    } else {
      HOM_RETURN_NOT_OK(writer.WriteU8(kDeltaInline));
      HOM_RETURN_NOT_OK(WriteSection(&writer, section.tag, section.payload));
    }
  }
  return std::move(out).str();
}

Result<std::string> ApplyCheckpointDelta(const std::string& base_bytes,
                                         const std::string& delta_bytes) {
  if (delta_bytes.size() > kMaxFileBytes) {
    return Status::InvalidArgument("checkpoint delta exceeds the size cap");
  }
  std::istringstream in(delta_bytes, std::ios::binary);
  BinaryReader reader(&in);
  HOM_ASSIGN_OR_RETURN(std::string magic, reader.ReadString(16));
  if (magic != kDeltaMagic) {
    return Status::InvalidArgument("not a HOM checkpoint delta (bad magic)");
  }
  HOM_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kDeltaVersion) {
    return Status::InvalidArgument("unsupported checkpoint delta version " +
                                   std::to_string(version));
  }
  HOM_ASSIGN_OR_RETURN(uint32_t base_crc, reader.ReadU32());
  HOM_ASSIGN_OR_RETURN(uint32_t new_crc, reader.ReadU32());
  HOM_ASSIGN_OR_RETURN(RawCheckpoint base, ShallowParseCheckpoint(base_bytes));
  // A base-identity mismatch means "resend a full checkpoint", not
  // "corrupt delta" — hence FailedPrecondition, not InvalidArgument.
  if (IdentityOf(base) != base_crc) {
    return Status::FailedPrecondition(
        "delta encoded against a different base checkpoint");
  }
  HOM_ASSIGN_OR_RETURN(uint32_t checkpoint_version, reader.ReadU32());
  HOM_ASSIGN_OR_RETURN(uint32_t section_count, reader.ReadU32());
  if (section_count < 2 || section_count > kMaxSections) {
    return Status::InvalidArgument("delta section count out of range");
  }
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(&out);
  HOM_RETURN_NOT_OK(writer.WriteString(kMagic));
  HOM_RETURN_NOT_OK(writer.WriteU32(checkpoint_version));
  HOM_RETURN_NOT_OK(writer.WriteU32(section_count));
  for (uint32_t i = 0; i < section_count; ++i) {
    HOM_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
    if (kind == kDeltaCopyFromBase) {
      HOM_ASSIGN_OR_RETURN(uint32_t tag, reader.ReadU32());
      const Section* found = nullptr;
      for (const Section& candidate : base.sections) {
        if (candidate.tag == tag) {
          found = &candidate;
          break;
        }
      }
      if (found == nullptr) {
        return Status::InvalidArgument(
            "delta references base section " + SectionTagName(tag) +
            " which the base checkpoint does not have");
      }
      HOM_RETURN_NOT_OK(WriteSection(&writer, found->tag, found->payload));
    } else if (kind == kDeltaInline) {
      HOM_ASSIGN_OR_RETURN(Section section,
                           ReadSection(&reader, kMaxFileBytes));
      HOM_RETURN_NOT_OK(WriteSection(&writer, section.tag, section.payload));
    } else {
      return Status::InvalidArgument("unknown delta entry kind " +
                                     std::to_string(kind));
    }
  }
  if (!reader.AtEof()) {
    return Status::InvalidArgument("checkpoint delta has trailing bytes");
  }
  std::string rebuilt = std::move(out).str();
  // Re-shallow-parsing the reconstruction also rejects deltas that smuggle
  // in duplicate sections, which WriteSection alone would not catch.
  Result<RawCheckpoint> rebuilt_raw = ShallowParseCheckpoint(rebuilt);
  if (!rebuilt_raw.ok() ||
      IdentityOf(rebuilt_raw.ValueOrDie()) != new_crc) {
    return Status::InvalidArgument(
        "reconstructed checkpoint fails its CRC (delta corrupt)");
  }
  return rebuilt;
}

Status ApplyCheckpoint(const ServingCheckpoint& ckpt,
                       HighOrderClassifier* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  // Same only-if-traced rule as CaptureCheckpoint: on the standby this
  // nests under replica.apply and carries the primary's trace id.
  std::optional<obs::DistSpan> span;
  if (obs::CurrentTraceContext() != nullptr) {
    span.emplace("checkpoint.apply", obs::SpanKind::kInternal);
  }
  HOM_ASSIGN_OR_RETURN(uint32_t fingerprint,
                       SchemaFingerprint(*model->schema()));
  if (fingerprint != ckpt.schema_fingerprint) {
    return Status::InvalidArgument(
        "checkpoint was captured from a different model (schema "
        "fingerprint mismatch)");
  }
  HOM_RETURN_NOT_OK(model->RestoreRuntimeState(ckpt.runtime));
  if (!ckpt.sanitizer_state.empty()) {
    HOM_RETURN_NOT_OK(model->RestoreSanitizerState(ckpt.sanitizer_state));
  }
  obs::EmitIfActive(obs::EventType::kCheckpointLoad, "checkpoint",
                    static_cast<int64_t>(ckpt.stream_offset),
                    -1, ckpt.runtime.last_top_concept,
                    static_cast<double>(ckpt.num_errors));
  return Status::OK();
}

}  // namespace hom
