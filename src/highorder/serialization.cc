#include "highorder/serialization.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "classifiers/decision_tree.h"
#include "classifiers/majority.h"
#include "classifiers/naive_bayes.h"
#include "common/crc32.h"

namespace hom {

namespace {

constexpr char kMagicV1[] = "HOM1";
constexpr char kMagicV2[] = "HOM2";
constexpr uint32_t kFormatVersion = 2;

constexpr uint32_t kSchemaTag = SectionTag('S', 'C', 'H', 'M');
constexpr uint32_t kOptionsTag = SectionTag('O', 'P', 'T', 'S');
constexpr uint32_t kStatsTag = SectionTag('S', 'T', 'A', 'T');
constexpr uint32_t kConceptsTag = SectionTag('C', 'O', 'N', 'C');

// Per-section payload caps: generous for any plausible model, small enough
// that a corrupt length field cannot demand a pathological allocation.
constexpr size_t kMaxSchemaBytes = size_t{1} << 26;    // 64 MiB
constexpr size_t kMaxOptionsBytes = size_t{1} << 10;
constexpr size_t kMaxStatsBytes = size_t{1} << 24;     // 16 MiB
constexpr size_t kMaxConceptsBytes = size_t{1} << 30;  // 1 GiB
constexpr size_t kMaxSections = 64;
constexpr uint32_t kMaxConcepts = 100000;

/// Serializes one logical section into a standalone byte buffer via the
/// supplied writer callback, so it can be framed with its CRC.
template <typename Fn>
Result<std::string> BuildPayload(Fn&& write) {
  std::ostringstream buffer(std::ios::binary);
  BinaryWriter writer(&buffer);
  HOM_RETURN_NOT_OK(write(&writer));
  return std::move(buffer).str();
}

/// Parses a section payload with `parse` and rejects trailing bytes — a
/// payload that decodes "successfully" but leaves unread bytes is corrupt
/// (or written by a format this reader does not understand).
template <typename T, typename Fn>
Result<T> ParsePayload(const Section& section, Fn&& parse) {
  std::istringstream buffer(section.payload, std::ios::binary);
  BinaryReader reader(&buffer);
  HOM_ASSIGN_OR_RETURN(T value, parse(&reader));
  if (!reader.AtEof()) {
    return Status::InvalidArgument("section " + SectionTagName(section.tag) +
                                   " has trailing bytes");
  }
  return value;
}

Status ValidateFiniteVector(const std::vector<double>& v, const char* what) {
  for (double x : v) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument(std::string("non-finite ") + what +
                                     " in model file");
    }
  }
  return Status::OK();
}

struct LoadedOptions {
  HighOrderOptions options;
};

Result<LoadedOptions> ParseOptions(BinaryReader* reader) {
  LoadedOptions out;
  HOM_ASSIGN_OR_RETURN(uint8_t weight_by_prior, reader->ReadU8());
  HOM_ASSIGN_OR_RETURN(uint8_t prune, reader->ReadU8());
  if (weight_by_prior > 1 || prune > 1) {
    return Status::InvalidArgument("model option flags must be 0 or 1");
  }
  out.options.weight_by_prior = weight_by_prior != 0;
  out.options.prune_prediction = prune != 0;
  return out;
}

Result<ConceptStats> ParseStats(BinaryReader* reader) {
  HOM_ASSIGN_OR_RETURN(std::vector<double> lengths,
                       reader->ReadDoubleVector(kMaxConcepts));
  HOM_ASSIGN_OR_RETURN(std::vector<double> freqs,
                       reader->ReadDoubleVector(kMaxConcepts));
  HOM_RETURN_NOT_OK(ValidateFiniteVector(lengths, "mean length"));
  HOM_RETURN_NOT_OK(ValidateFiniteVector(freqs, "frequency"));
  return ConceptStats::FromLengthsAndFrequencies(std::move(lengths),
                                                 std::move(freqs));
}

Result<std::vector<ConceptModel>> ParseConcepts(BinaryReader* reader,
                                                const SchemaPtr& schema,
                                                size_t expected) {
  HOM_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
  if (n != expected) {
    return Status::InvalidArgument(
        "concept count mismatch: " + std::to_string(n) + " models vs " +
        std::to_string(expected) + " statistics entries");
  }
  std::vector<ConceptModel> concepts;
  concepts.reserve(n);
  for (uint32_t c = 0; c < n; ++c) {
    ConceptModel cm;
    HOM_ASSIGN_OR_RETURN(cm.error, reader->ReadDouble());
    if (!std::isfinite(cm.error) || cm.error < 0.0 || cm.error > 1.0) {
      return Status::InvalidArgument("concept " + std::to_string(c) +
                                     " error is not in [0, 1]");
    }
    HOM_ASSIGN_OR_RETURN(uint64_t records, reader->ReadU64());
    cm.training_records = static_cast<size_t>(records);
    HOM_ASSIGN_OR_RETURN(cm.model, LoadClassifier(reader, schema));
    concepts.push_back(std::move(cm));
  }
  return concepts;
}

/// v1 reader (magic already consumed): the pre-CRC layout, kept for models
/// serialized by earlier releases. Truncation is detected (every Read
/// checks stream state) but bit flips are not.
Result<std::unique_ptr<HighOrderClassifier>> LoadHighOrderModelV1(
    BinaryReader* reader) {
  HOM_ASSIGN_OR_RETURN(SchemaPtr schema, LoadSchema(reader));
  HighOrderOptions options;
  HOM_ASSIGN_OR_RETURN(uint8_t weight_by_prior, reader->ReadU8());
  HOM_ASSIGN_OR_RETURN(uint8_t prune, reader->ReadU8());
  options.weight_by_prior = weight_by_prior != 0;
  options.prune_prediction = prune != 0;

  HOM_ASSIGN_OR_RETURN(std::vector<double> lengths,
                       reader->ReadDoubleVector(kMaxConcepts));
  HOM_ASSIGN_OR_RETURN(std::vector<double> freqs,
                       reader->ReadDoubleVector(kMaxConcepts));
  HOM_RETURN_NOT_OK(ValidateFiniteVector(lengths, "mean length"));
  HOM_RETURN_NOT_OK(ValidateFiniteVector(freqs, "frequency"));
  size_t expected = lengths.size();
  HOM_ASSIGN_OR_RETURN(
      ConceptStats stats,
      ConceptStats::FromLengthsAndFrequencies(std::move(lengths),
                                              std::move(freqs)));
  HOM_ASSIGN_OR_RETURN(std::vector<ConceptModel> concepts,
                       ParseConcepts(reader, schema, expected));
  return HighOrderClassifier::Make(std::move(schema), std::move(concepts),
                                   std::move(stats), options);
}

}  // namespace

Status SaveSchema(BinaryWriter* writer, const Schema& schema) {
  HOM_RETURN_NOT_OK(
      writer->WriteU32(static_cast<uint32_t>(schema.num_attributes())));
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    HOM_RETURN_NOT_OK(writer->WriteString(attr.name));
    HOM_RETURN_NOT_OK(
        writer->WriteU8(attr.is_categorical() ? 1 : 0));
    if (attr.is_categorical()) {
      HOM_RETURN_NOT_OK(
          writer->WriteU32(static_cast<uint32_t>(attr.cardinality())));
      for (const std::string& name : attr.categories) {
        HOM_RETURN_NOT_OK(writer->WriteString(name));
      }
    }
  }
  HOM_RETURN_NOT_OK(
      writer->WriteU32(static_cast<uint32_t>(schema.num_classes())));
  for (const std::string& name : schema.classes()) {
    HOM_RETURN_NOT_OK(writer->WriteString(name));
  }
  return Status::OK();
}

Result<SchemaPtr> LoadSchema(BinaryReader* reader) {
  HOM_ASSIGN_OR_RETURN(uint32_t num_attrs, reader->ReadU32());
  if (num_attrs == 0 || num_attrs > 100000) {
    return Status::InvalidArgument("implausible attribute count");
  }
  std::vector<Attribute> attrs;
  attrs.reserve(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    HOM_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    HOM_ASSIGN_OR_RETURN(uint8_t categorical, reader->ReadU8());
    if (categorical > 1) {
      return Status::InvalidArgument("attribute kind flag must be 0 or 1");
    }
    if (categorical != 0) {
      HOM_ASSIGN_OR_RETURN(uint32_t card, reader->ReadU32());
      if (card < 2 || card > 1000000) {
        return Status::InvalidArgument("implausible cardinality");
      }
      std::vector<std::string> categories;
      categories.reserve(card);
      for (uint32_t v = 0; v < card; ++v) {
        HOM_ASSIGN_OR_RETURN(std::string cat, reader->ReadString());
        categories.push_back(std::move(cat));
      }
      attrs.push_back(Attribute::Categorical(std::move(name),
                                             std::move(categories)));
    } else {
      attrs.push_back(Attribute::Numeric(std::move(name)));
    }
  }
  HOM_ASSIGN_OR_RETURN(uint32_t num_classes, reader->ReadU32());
  if (num_classes < 2 || num_classes > 1000000) {
    return Status::InvalidArgument("implausible class count");
  }
  std::vector<std::string> classes;
  classes.reserve(num_classes);
  for (uint32_t c = 0; c < num_classes; ++c) {
    HOM_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    classes.push_back(std::move(name));
  }
  return Schema::Make(std::move(attrs), std::move(classes));
}

Status SaveClassifier(BinaryWriter* writer, const Classifier& classifier) {
  std::string tag = classifier.TypeTag();
  if (tag.empty()) {
    return Status::NotImplemented("classifier type is not serializable");
  }
  HOM_RETURN_NOT_OK(writer->WriteString(tag));
  return classifier.SaveTo(writer);
}

Result<std::unique_ptr<Classifier>> LoadClassifier(BinaryReader* reader,
                                                   SchemaPtr schema) {
  HOM_ASSIGN_OR_RETURN(std::string tag, reader->ReadString(64));
  if (tag == "dtree") {
    HOM_ASSIGN_OR_RETURN(std::unique_ptr<DecisionTree> tree,
                         DecisionTree::LoadFrom(reader, schema));
    return std::unique_ptr<Classifier>(std::move(tree));
  }
  if (tag == "nbayes") {
    HOM_ASSIGN_OR_RETURN(std::unique_ptr<NaiveBayes> nb,
                         NaiveBayes::LoadFrom(reader, schema));
    return std::unique_ptr<Classifier>(std::move(nb));
  }
  if (tag == "majority") {
    HOM_ASSIGN_OR_RETURN(std::unique_ptr<MajorityClassifier> mc,
                         MajorityClassifier::LoadFrom(reader, schema));
    return std::unique_ptr<Classifier>(std::move(mc));
  }
  return Status::InvalidArgument("unknown classifier tag '" + tag + "'");
}

Status SaveHighOrderModel(std::ostream* out,
                          const HighOrderClassifier& model) {
  BinaryWriter writer(out);
  HOM_RETURN_NOT_OK(writer.WriteString(kMagicV2));
  HOM_RETURN_NOT_OK(writer.WriteU32(kFormatVersion));
  HOM_RETURN_NOT_OK(writer.WriteU32(4));  // section count

  HOM_ASSIGN_OR_RETURN(std::string schema_payload,
                       BuildPayload([&](BinaryWriter* w) {
                         return SaveSchema(w, *model.schema());
                       }));
  HOM_RETURN_NOT_OK(WriteSection(&writer, kSchemaTag, schema_payload));

  HOM_ASSIGN_OR_RETURN(
      std::string options_payload, BuildPayload([&](BinaryWriter* w) {
        HOM_RETURN_NOT_OK(
            w->WriteU8(model.options().weight_by_prior ? 1 : 0));
        return w->WriteU8(model.options().prune_prediction ? 1 : 0);
      }));
  HOM_RETURN_NOT_OK(WriteSection(&writer, kOptionsTag, options_payload));

  const ConceptStats& stats = model.tracker().stats();
  size_t n = model.num_concepts();
  HOM_ASSIGN_OR_RETURN(
      std::string stats_payload, BuildPayload([&](BinaryWriter* w) {
        std::vector<double> lengths(n);
        std::vector<double> freqs(n);
        for (size_t c = 0; c < n; ++c) {
          lengths[c] = stats.mean_length(c);
          freqs[c] = stats.frequency(c);
        }
        HOM_RETURN_NOT_OK(w->WriteDoubleVector(lengths));
        return w->WriteDoubleVector(freqs);
      }));
  HOM_RETURN_NOT_OK(WriteSection(&writer, kStatsTag, stats_payload));

  HOM_ASSIGN_OR_RETURN(
      std::string concepts_payload, BuildPayload([&](BinaryWriter* w) {
        HOM_RETURN_NOT_OK(w->WriteU32(static_cast<uint32_t>(n)));
        for (size_t c = 0; c < n; ++c) {
          const ConceptModel& cm = model.concept_model(c);
          HOM_RETURN_NOT_OK(w->WriteDouble(cm.error));
          HOM_RETURN_NOT_OK(
              w->WriteU64(static_cast<uint64_t>(cm.training_records)));
          HOM_RETURN_NOT_OK(SaveClassifier(w, *cm.model));
        }
        return Status::OK();
      }));
  return WriteSection(&writer, kConceptsTag, concepts_payload);
}

Result<std::unique_ptr<HighOrderClassifier>> LoadHighOrderModel(
    std::istream* in) {
  BinaryReader reader(in);
  HOM_ASSIGN_OR_RETURN(std::string magic, reader.ReadString(16));
  if (magic == kMagicV1) return LoadHighOrderModelV1(&reader);
  if (magic != kMagicV2) {
    return Status::InvalidArgument("bad magic: not a hom model file");
  }
  HOM_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported model format version " +
                                   std::to_string(version));
  }
  HOM_ASSIGN_OR_RETURN(uint32_t section_count, reader.ReadU32());
  if (section_count == 0 || section_count > kMaxSections) {
    return Status::InvalidArgument("implausible section count " +
                                   std::to_string(section_count));
  }

  // Collect sections first: each CRC is verified by ReadSection before any
  // payload byte is interpreted. Unknown tags are skipped for forward
  // compatibility; duplicates are corruption.
  Section schema_section, options_section, stats_section, concepts_section;
  for (uint32_t i = 0; i < section_count; ++i) {
    size_t cap = kMaxConceptsBytes;
    HOM_ASSIGN_OR_RETURN(Section section, ReadSection(&reader, cap));
    Section* slot = nullptr;
    switch (section.tag) {
      case kSchemaTag: slot = &schema_section; cap = kMaxSchemaBytes; break;
      case kOptionsTag: slot = &options_section; cap = kMaxOptionsBytes; break;
      case kStatsTag: slot = &stats_section; cap = kMaxStatsBytes; break;
      case kConceptsTag: slot = &concepts_section; break;
      default: continue;  // future section: CRC checked, content skipped
    }
    if (section.payload.size() > cap) {
      return Status::InvalidArgument("section " + SectionTagName(section.tag) +
                                     " is implausibly large");
    }
    if (slot->tag != 0) {
      return Status::InvalidArgument("duplicate section " +
                                     SectionTagName(section.tag));
    }
    *slot = std::move(section);
  }
  for (const auto* required :
       {&schema_section, &options_section, &stats_section,
        &concepts_section}) {
    if (required->tag == 0) {
      return Status::InvalidArgument("model file is missing a section");
    }
  }

  HOM_ASSIGN_OR_RETURN(SchemaPtr schema,
                       ParsePayload<SchemaPtr>(schema_section, LoadSchema));
  HOM_ASSIGN_OR_RETURN(LoadedOptions options,
                       ParsePayload<LoadedOptions>(options_section,
                                                   ParseOptions));
  HOM_ASSIGN_OR_RETURN(ConceptStats stats,
                       ParsePayload<ConceptStats>(stats_section, ParseStats));
  size_t expected = stats.num_concepts();
  HOM_ASSIGN_OR_RETURN(
      std::vector<ConceptModel> concepts,
      ParsePayload<std::vector<ConceptModel>>(
          concepts_section, [&](BinaryReader* r) {
            return ParseConcepts(r, schema, expected);
          }));
  return HighOrderClassifier::Make(std::move(schema), std::move(concepts),
                                   std::move(stats), options.options);
}

Status SaveHighOrderModelToFile(const std::string& path,
                                const HighOrderClassifier& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  HOM_RETURN_NOT_OK(SaveHighOrderModel(&out, model));
  out.flush();
  if (!out) return Status::IoError("flush of '" + path + "' failed");
  return Status::OK();
}

Result<std::unique_ptr<HighOrderClassifier>> LoadHighOrderModelFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  return LoadHighOrderModel(&in);
}

Result<uint32_t> SchemaFingerprint(const Schema& schema) {
  HOM_ASSIGN_OR_RETURN(std::string payload, BuildPayload([&](BinaryWriter* w) {
    return SaveSchema(w, schema);
  }));
  return Crc32(payload);
}

}  // namespace hom
