#include "highorder/serialization.h"

#include <fstream>

#include "classifiers/decision_tree.h"
#include "classifiers/majority.h"
#include "classifiers/naive_bayes.h"

namespace hom {

namespace {
constexpr char kMagic[] = "HOM1";
}  // namespace

Status SaveSchema(BinaryWriter* writer, const Schema& schema) {
  HOM_RETURN_NOT_OK(
      writer->WriteU32(static_cast<uint32_t>(schema.num_attributes())));
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    HOM_RETURN_NOT_OK(writer->WriteString(attr.name));
    HOM_RETURN_NOT_OK(
        writer->WriteU8(attr.is_categorical() ? 1 : 0));
    if (attr.is_categorical()) {
      HOM_RETURN_NOT_OK(
          writer->WriteU32(static_cast<uint32_t>(attr.cardinality())));
      for (const std::string& name : attr.categories) {
        HOM_RETURN_NOT_OK(writer->WriteString(name));
      }
    }
  }
  HOM_RETURN_NOT_OK(
      writer->WriteU32(static_cast<uint32_t>(schema.num_classes())));
  for (const std::string& name : schema.classes()) {
    HOM_RETURN_NOT_OK(writer->WriteString(name));
  }
  return Status::OK();
}

Result<SchemaPtr> LoadSchema(BinaryReader* reader) {
  HOM_ASSIGN_OR_RETURN(uint32_t num_attrs, reader->ReadU32());
  if (num_attrs == 0 || num_attrs > 100000) {
    return Status::InvalidArgument("implausible attribute count");
  }
  std::vector<Attribute> attrs;
  attrs.reserve(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    HOM_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    HOM_ASSIGN_OR_RETURN(uint8_t categorical, reader->ReadU8());
    if (categorical != 0) {
      HOM_ASSIGN_OR_RETURN(uint32_t card, reader->ReadU32());
      if (card < 2 || card > 1000000) {
        return Status::InvalidArgument("implausible cardinality");
      }
      std::vector<std::string> categories;
      categories.reserve(card);
      for (uint32_t v = 0; v < card; ++v) {
        HOM_ASSIGN_OR_RETURN(std::string cat, reader->ReadString());
        categories.push_back(std::move(cat));
      }
      attrs.push_back(Attribute::Categorical(std::move(name),
                                             std::move(categories)));
    } else {
      attrs.push_back(Attribute::Numeric(std::move(name)));
    }
  }
  HOM_ASSIGN_OR_RETURN(uint32_t num_classes, reader->ReadU32());
  if (num_classes < 2 || num_classes > 1000000) {
    return Status::InvalidArgument("implausible class count");
  }
  std::vector<std::string> classes;
  classes.reserve(num_classes);
  for (uint32_t c = 0; c < num_classes; ++c) {
    HOM_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    classes.push_back(std::move(name));
  }
  return Schema::Make(std::move(attrs), std::move(classes));
}

Status SaveClassifier(BinaryWriter* writer, const Classifier& classifier) {
  std::string tag = classifier.TypeTag();
  if (tag.empty()) {
    return Status::NotImplemented("classifier type is not serializable");
  }
  HOM_RETURN_NOT_OK(writer->WriteString(tag));
  return classifier.SaveTo(writer);
}

Result<std::unique_ptr<Classifier>> LoadClassifier(BinaryReader* reader,
                                                   SchemaPtr schema) {
  HOM_ASSIGN_OR_RETURN(std::string tag, reader->ReadString(64));
  if (tag == "dtree") {
    HOM_ASSIGN_OR_RETURN(std::unique_ptr<DecisionTree> tree,
                         DecisionTree::LoadFrom(reader, schema));
    return std::unique_ptr<Classifier>(std::move(tree));
  }
  if (tag == "nbayes") {
    HOM_ASSIGN_OR_RETURN(std::unique_ptr<NaiveBayes> nb,
                         NaiveBayes::LoadFrom(reader, schema));
    return std::unique_ptr<Classifier>(std::move(nb));
  }
  if (tag == "majority") {
    HOM_ASSIGN_OR_RETURN(std::unique_ptr<MajorityClassifier> mc,
                         MajorityClassifier::LoadFrom(reader, schema));
    return std::unique_ptr<Classifier>(std::move(mc));
  }
  return Status::InvalidArgument("unknown classifier tag '" + tag + "'");
}

Status SaveHighOrderModel(std::ostream* out,
                          const HighOrderClassifier& model) {
  BinaryWriter writer(out);
  HOM_RETURN_NOT_OK(writer.WriteString(kMagic));
  HOM_RETURN_NOT_OK(SaveSchema(&writer, *model.schema()));
  HOM_RETURN_NOT_OK(
      writer.WriteU8(model.options().weight_by_prior ? 1 : 0));
  HOM_RETURN_NOT_OK(
      writer.WriteU8(model.options().prune_prediction ? 1 : 0));

  const ConceptStats& stats = model.tracker().stats();
  size_t n = model.num_concepts();
  std::vector<double> lengths(n);
  std::vector<double> freqs(n);
  for (size_t c = 0; c < n; ++c) {
    lengths[c] = stats.mean_length(c);
    freqs[c] = stats.frequency(c);
  }
  HOM_RETURN_NOT_OK(writer.WriteDoubleVector(lengths));
  HOM_RETURN_NOT_OK(writer.WriteDoubleVector(freqs));

  HOM_RETURN_NOT_OK(writer.WriteU32(static_cast<uint32_t>(n)));
  for (size_t c = 0; c < n; ++c) {
    const ConceptModel& cm = model.concept_model(c);
    HOM_RETURN_NOT_OK(writer.WriteDouble(cm.error));
    HOM_RETURN_NOT_OK(
        writer.WriteU64(static_cast<uint64_t>(cm.training_records)));
    HOM_RETURN_NOT_OK(SaveClassifier(&writer, *cm.model));
  }
  return Status::OK();
}

Result<std::unique_ptr<HighOrderClassifier>> LoadHighOrderModel(
    std::istream* in) {
  BinaryReader reader(in);
  HOM_ASSIGN_OR_RETURN(std::string magic, reader.ReadString(16));
  if (magic != kMagic) {
    return Status::InvalidArgument("bad magic: not a hom model file");
  }
  HOM_ASSIGN_OR_RETURN(SchemaPtr schema, LoadSchema(&reader));
  HighOrderOptions options;
  HOM_ASSIGN_OR_RETURN(uint8_t weight_by_prior, reader.ReadU8());
  HOM_ASSIGN_OR_RETURN(uint8_t prune, reader.ReadU8());
  options.weight_by_prior = weight_by_prior != 0;
  options.prune_prediction = prune != 0;

  HOM_ASSIGN_OR_RETURN(std::vector<double> lengths,
                       reader.ReadDoubleVector());
  HOM_ASSIGN_OR_RETURN(std::vector<double> freqs, reader.ReadDoubleVector());
  HOM_ASSIGN_OR_RETURN(
      ConceptStats stats,
      ConceptStats::FromLengthsAndFrequencies(lengths, freqs));

  HOM_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
  if (n != lengths.size()) {
    return Status::InvalidArgument("concept count mismatch");
  }
  std::vector<ConceptModel> concepts;
  concepts.reserve(n);
  for (uint32_t c = 0; c < n; ++c) {
    ConceptModel cm;
    HOM_ASSIGN_OR_RETURN(cm.error, reader.ReadDouble());
    HOM_ASSIGN_OR_RETURN(uint64_t records, reader.ReadU64());
    cm.training_records = static_cast<size_t>(records);
    HOM_ASSIGN_OR_RETURN(cm.model, LoadClassifier(&reader, schema));
    concepts.push_back(std::move(cm));
  }
  return HighOrderClassifier::Make(std::move(schema), std::move(concepts),
                                   std::move(stats), options);
}

Status SaveHighOrderModelToFile(const std::string& path,
                                const HighOrderClassifier& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  HOM_RETURN_NOT_OK(SaveHighOrderModel(&out, model));
  out.flush();
  if (!out) return Status::IoError("flush of '" + path + "' failed");
  return Status::OK();
}

Result<std::unique_ptr<HighOrderClassifier>> LoadHighOrderModelFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  return LoadHighOrderModel(&in);
}

}  // namespace hom
