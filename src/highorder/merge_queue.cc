#include "highorder/merge_queue.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace hom {

void MergeQueue::RegisterCluster(int32_t id) {
  HOM_CHECK_GE(id, 0);
  if (static_cast<size_t>(id) >= live_.size()) {
    live_.resize(static_cast<size_t>(id) + 1, false);
  }
  live_[static_cast<size_t>(id)] = true;
}

void MergeQueue::Retire(int32_t id) {
  HOM_CHECK_GE(id, 0);
  HOM_CHECK_LT(static_cast<size_t>(id), live_.size());
  live_[static_cast<size_t>(id)] = false;
}

bool MergeQueue::IsLive(int32_t id) const {
  return id >= 0 && static_cast<size_t>(id) < live_.size() &&
         live_[static_cast<size_t>(id)];
}

void MergeQueue::Push(CandidateMerge candidate) {
  HOM_CHECK(IsLive(candidate.u)) << "candidate with retired cluster";
  HOM_CHECK(IsLive(candidate.v)) << "candidate with retired cluster";
  HOM_COUNTER_INC("hom.merge_queue.pushes");
  heap_.push_back(candidate);
  std::push_heap(heap_.begin(), heap_.end(), ByDistance());
}

bool MergeQueue::Pop(CandidateMerge* out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), ByDistance());
    CandidateMerge top = heap_.back();
    heap_.pop_back();
    if (IsLive(top.u) && IsLive(top.v)) {
      HOM_COUNTER_INC("hom.merge_queue.pops");
      *out = top;
      return true;
    }
    // Lazy deletion: entries referring to retired clusters are discarded
    // on the way out instead of being rebuilt into the heap.
    HOM_COUNTER_INC("hom.merge_queue.stale_pops");
  }
  return false;
}

}  // namespace hom
