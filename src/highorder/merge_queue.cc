#include "highorder/merge_queue.h"

#include "common/check.h"

namespace hom {

void MergeQueue::RegisterCluster(int32_t id) {
  HOM_CHECK_GE(id, 0);
  if (static_cast<size_t>(id) >= live_.size()) {
    live_.resize(static_cast<size_t>(id) + 1, false);
  }
  live_[static_cast<size_t>(id)] = true;
}

void MergeQueue::Retire(int32_t id) {
  HOM_CHECK_GE(id, 0);
  HOM_CHECK_LT(static_cast<size_t>(id), live_.size());
  live_[static_cast<size_t>(id)] = false;
}

bool MergeQueue::IsLive(int32_t id) const {
  return id >= 0 && static_cast<size_t>(id) < live_.size() &&
         live_[static_cast<size_t>(id)];
}

void MergeQueue::Push(CandidateMerge candidate) {
  HOM_CHECK(IsLive(candidate.u)) << "candidate with retired cluster";
  HOM_CHECK(IsLive(candidate.v)) << "candidate with retired cluster";
  heap_.push(candidate);
}

bool MergeQueue::Pop(CandidateMerge* out) {
  while (!heap_.empty()) {
    CandidateMerge top = heap_.top();
    heap_.pop();
    if (IsLive(top.u) && IsLive(top.v)) {
      *out = top;
      return true;
    }
  }
  return false;
}

}  // namespace hom
