#include "highorder/dendrogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace hom {

namespace {
// Err* <= Err always holds (Err* minimizes over partitions including the
// trivial one); a node is split when Err* is meaningfully below Err.
constexpr double kCutTolerance = 1e-12;
}  // namespace

int32_t Dendrogram::AddLeaf(ClusterNode node) {
  node.left = -1;
  node.right = -1;
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size() - 1);
}

int32_t Dendrogram::AddMerge(int32_t left, int32_t right, ClusterNode node) {
  HOM_CHECK_GE(left, 0);
  HOM_CHECK_GE(right, 0);
  HOM_CHECK_LT(static_cast<size_t>(left), nodes_.size());
  HOM_CHECK_LT(static_cast<size_t>(right), nodes_.size());
  node.left = left;
  node.right = right;
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size() - 1);
}

ClusterNode& Dendrogram::node(int32_t id) {
  HOM_CHECK_GE(id, 0);
  HOM_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

const ClusterNode& Dendrogram::node(int32_t id) const {
  HOM_CHECK_GE(id, 0);
  HOM_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

std::vector<int32_t> Dendrogram::FinalCut(const std::vector<int32_t>& roots,
                                          double significance_z) const {
  std::vector<int32_t> partition;
  std::vector<int32_t> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    const ClusterNode& n = node(id);
    double margin = kCutTolerance;
    if (significance_z > 0.0 && !n.test.empty()) {
      double p = std::min(std::max(n.err, 1e-6), 1.0 - 1e-6);
      margin += significance_z *
                std::sqrt(p * (1.0 - p) / static_cast<double>(n.test.size()));
    }
    if (n.left >= 0 && n.err_star < n.err - margin) {
      HOM_COUNTER_INC("hom.dendrogram.cut_splits");
      stack.push_back(n.left);
      stack.push_back(n.right);
    } else {
      HOM_COUNTER_INC("hom.dendrogram.cut_keeps");
      partition.push_back(id);
    }
  }
  return partition;
}

}  // namespace hom
