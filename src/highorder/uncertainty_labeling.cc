#include "highorder/uncertainty_labeling.h"

#include <cmath>

#include "common/check.h"

namespace hom {

UncertaintyLabelingPolicy::UncertaintyLabelingPolicy(
    UncertaintyLabelingConfig config)
    : config_(config), rng_(config.seed) {
  HOM_CHECK_GE(config_.entropy_threshold, 0.0);
  HOM_CHECK_LE(config_.entropy_threshold, 1.0);
  HOM_CHECK_GE(config_.trickle, 0.0);
  HOM_CHECK_LE(config_.trickle, 1.0);
}

bool UncertaintyLabelingPolicy::ShouldRequestLabel(
    StreamClassifier* classifier, const Record&) {
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    return true;
  }
  auto* highorder = dynamic_cast<HighOrderClassifier*>(classifier);
  if (highorder != nullptr && highorder->num_concepts() > 1) {
    const std::vector<double>& active = highorder->active_probabilities();
    double entropy = 0.0;
    for (double p : active) {
      if (p > 0.0) entropy -= p * std::log2(p);
    }
    double normalized =
        entropy / std::log2(static_cast<double>(active.size()));
    if (normalized > config_.entropy_threshold) return true;
  }
  return rng_.NextBernoulli(config_.trickle);
}

void UncertaintyLabelingPolicy::OnLabelRevealed(StreamClassifier* classifier,
                                                const Record& y, Label) {
  auto* highorder = dynamic_cast<HighOrderClassifier*>(classifier);
  if (highorder == nullptr) return;
  size_t map_concept = highorder->tracker().MostLikelyConcept();
  if (highorder->concept_model(map_concept).model->Predict(y) != y.label) {
    burst_remaining_ = config_.surprise_burst;
  }
}

}  // namespace hom
