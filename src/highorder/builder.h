#ifndef HOM_HIGHORDER_BUILDER_H_
#define HOM_HIGHORDER_BUILDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "highorder/concept_clustering.h"
#include "highorder/highorder_classifier.h"
#include "obs/trace.h"

namespace hom {

/// End-to-end configuration of the offline building phase.
struct HighOrderBuildConfig {
  ConceptClusteringConfig clustering;
  HighOrderOptions options;
  /// Train each final concept classifier on ALL of the concept's records
  /// (the paper's "we are the only approach that manages to use all data
  /// scattered in the stream but pertaining to a unique concept"). When
  /// false, models keep a fresh holdout split (ablation).
  bool train_on_full_data = true;
};

/// Diagnostics of one build, feeding Table IV and Figure 4.
struct HighOrderBuildReport {
  size_t num_records = 0;
  size_t num_chunks = 0;
  size_t num_concepts = 0;
  double build_seconds = 0.0;
  double final_q = 0.0;
  std::vector<ConceptOccurrence> occurrences;
  std::vector<double> concept_errors;
  std::vector<size_t> concept_sizes;
  /// Effective thread-pool size the clustering ran with (>= 1; see
  /// ConceptClusteringConfig::num_threads).
  size_t effective_threads = 1;
  /// Tasks executed on pool worker threads during clustering (0 when
  /// single-threaded).
  uint64_t pool_tasks = 0;
  /// Wall-clock phase tree of this build (root "build": block_partition,
  /// step1_chunk_merging, step2_concept_merging, classifier_training,
  /// hmm_fitting, ...). Empty-named root when tracing was unavailable.
  obs::PhaseNode phases;
  /// Registry counter activity attributed to this build (snapshot delta),
  /// e.g. "hom.cluster.classifiers_trained". Empty under
  /// HOM_DISABLE_METRICS.
  std::map<std::string, uint64_t> counters;
};

/// \brief The offline phase of Section II end to end: cluster the
/// historical stream into concepts, learn the change statistics, train one
/// classifier per concept, and assemble the online HighOrderClassifier.
class HighOrderModelBuilder {
 public:
  HighOrderModelBuilder(ClassifierFactory base_factory,
                        HighOrderBuildConfig config = {});

  /// Builds from a labeled, time-ordered historical dataset. Deterministic
  /// given `rng`'s state. Optionally fills `report` with diagnostics.
  Result<std::unique_ptr<HighOrderClassifier>> Build(
      const Dataset& history, Rng* rng,
      HighOrderBuildReport* report = nullptr) const;

 private:
  ClassifierFactory base_factory_;
  HighOrderBuildConfig config_;
};

}  // namespace hom

#endif  // HOM_HIGHORDER_BUILDER_H_
