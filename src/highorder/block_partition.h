#ifndef HOM_HIGHORDER_BLOCK_PARTITION_H_
#define HOM_HIGHORDER_BLOCK_PARTITION_H_

#include <vector>

#include "common/result.h"
#include "data/dataset_view.h"

namespace hom {

/// \brief Splits the time-ordered historical stream into contiguous blocks
/// of `block_size` records (Section II-A step 1: "small enough (e.g., 2-20)
/// such that data within a block represents a same concept with high
/// probability").
///
/// A trailing remainder of fewer than 2 records is folded into the last
/// block so every block supports a holdout split. Fails if `history` has
/// fewer than 2 records or `block_size` < 2.
Result<std::vector<DatasetView>> PartitionIntoBlocks(
    const DatasetView& history, size_t block_size);

}  // namespace hom

#endif  // HOM_HIGHORDER_BLOCK_PARTITION_H_
