#ifndef HOM_HIGHORDER_CHECKPOINT_H_
#define HOM_HIGHORDER_CHECKPOINT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "eval/online_stats.h"
#include "highorder/highorder_classifier.h"

namespace hom {

/// \brief Serving checkpoints: periodic snapshots of the online phase so a
/// crashed or restarted service resumes mid-stream instead of rewinding to
/// the uniform prior and re-learning which concept holds the stream.
///
/// A checkpoint captures the classifier's run-time state
/// (HighOrderRuntimeState), the prequential harness position (records
/// scored, errors, the partial WindowError block), and optionally the
/// per-concept online accounting. It does NOT duplicate the offline-trained
/// model; the model file reloads separately and the checkpoint's schema
/// fingerprint ties the two together — applying a checkpoint captured from
/// a different model is an error, not silent corruption.
///
/// File format: magic "HOMC", u32 version, u32 section count, then
/// CRC-framed sections (binary_io.h): META (fingerprint + harness
/// counters), TRKR (runtime state), and optionally CSTA (concept stats).
/// Files are written atomically (temp + fsync + rename), so a crash during
/// a save leaves the previous checkpoint intact, and any truncated or
/// bit-flipped file is rejected with an error Status on load.
struct ServingCheckpoint {
  /// SchemaFingerprint of the model this state was captured from.
  uint32_t schema_fingerprint = 0;
  /// Records the prequential harness had scored at capture time.
  uint64_t stream_offset = 0;
  /// Prequential errors among those records.
  uint64_t num_errors = 0;
  /// The partial WindowError block in flight at capture time, so resumed
  /// runs emit the same journal blocks as uninterrupted ones.
  uint64_t window_errors = 0;
  uint64_t window_fill = 0;
  /// Classifier run-time state (filter probabilities, cached weights,
  /// counters, drift hysteresis).
  HighOrderRuntimeState runtime;
  /// Serialized imputation statistics
  /// (HighOrderClassifier::ExportSanitizerState); empty = not captured.
  std::string sanitizer_state;
  /// Per-concept online accounting; null when the run did not track it.
  std::shared_ptr<OnlineConceptStats> concept_stats;
};

/// Snapshots `model`'s run-time state and schema fingerprint. Harness
/// counters (stream_offset, num_errors, window carry, concept_stats) are
/// the caller's to fill in.
Result<ServingCheckpoint> CaptureCheckpoint(const HighOrderClassifier& model);

/// Serializes `ckpt` and writes it atomically: the file at `path` is
/// either the previous checkpoint or the new one, never a torn mix.
Status SaveCheckpointToFile(const std::string& path,
                            const ServingCheckpoint& ckpt);

/// Reads a checkpoint written by SaveCheckpointToFile. Corruption at any
/// layer (magic, CRC, lengths, value ranges) yields an error Status.
Result<ServingCheckpoint> LoadCheckpointFromFile(const std::string& path);

/// Verifies the schema fingerprint, then reinstates the checkpoint's
/// run-time state into `model`. On any failure the model is untouched.
Status ApplyCheckpoint(const ServingCheckpoint& ckpt,
                       HighOrderClassifier* model);

}  // namespace hom

#endif  // HOM_HIGHORDER_CHECKPOINT_H_
