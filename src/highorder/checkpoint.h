#ifndef HOM_HIGHORDER_CHECKPOINT_H_
#define HOM_HIGHORDER_CHECKPOINT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "eval/online_stats.h"
#include "highorder/highorder_classifier.h"

namespace hom {

/// \brief Serving checkpoints: periodic snapshots of the online phase so a
/// crashed or restarted service resumes mid-stream instead of rewinding to
/// the uniform prior and re-learning which concept holds the stream.
///
/// A checkpoint captures the classifier's run-time state
/// (HighOrderRuntimeState), the prequential harness position (records
/// scored, errors, the partial WindowError block), and optionally the
/// per-concept online accounting. It does NOT duplicate the offline-trained
/// model; the model file reloads separately and the checkpoint's schema
/// fingerprint ties the two together — applying a checkpoint captured from
/// a different model is an error, not silent corruption.
///
/// File format: magic "HOMC", u32 version, u32 section count, then
/// CRC-framed sections (binary_io.h): META (fingerprint + harness
/// counters), TRKR (runtime state), and optionally RPLC (replication
/// metadata), SNTZ (sanitizer state), and CSTA (concept stats).
/// Files are written atomically (temp + fsync + rename), so a crash during
/// a save leaves the previous checkpoint intact, and any truncated or
/// bit-flipped file is rejected with an error Status on load.
struct CheckpointReplication {
  /// Monotonic ship counter on the primary; a standby uses it to order
  /// applies and report lag.
  uint64_t sequence = 0;
  /// Bumped on every promotion, so a checkpoint from a deposed primary
  /// (lower epoch) is recognizable.
  uint64_t primary_epoch = 0;
  /// Free-form identity of the writer ("host:port" by convention).
  std::string primary_id;
};

struct ServingCheckpoint {
  /// SchemaFingerprint of the model this state was captured from.
  uint32_t schema_fingerprint = 0;
  /// Records the prequential harness had scored at capture time.
  uint64_t stream_offset = 0;
  /// Prequential errors among those records.
  uint64_t num_errors = 0;
  /// The partial WindowError block in flight at capture time, so resumed
  /// runs emit the same journal blocks as uninterrupted ones.
  uint64_t window_errors = 0;
  uint64_t window_fill = 0;
  /// Classifier run-time state (filter probabilities, cached weights,
  /// counters, drift hysteresis).
  HighOrderRuntimeState runtime;
  /// Serialized imputation statistics
  /// (HighOrderClassifier::ExportSanitizerState); empty = not captured.
  std::string sanitizer_state;
  /// Per-concept online accounting; null when the run did not track it.
  std::shared_ptr<OnlineConceptStats> concept_stats;
  /// Replication metadata (RPLC section); stamped by the shipping primary,
  /// absent in locally saved checkpoints.
  bool has_replication = false;
  CheckpointReplication replication;
};

/// Snapshots `model`'s run-time state and schema fingerprint. Harness
/// counters (stream_offset, num_errors, window carry, concept_stats) are
/// the caller's to fill in.
Result<ServingCheckpoint> CaptureCheckpoint(const HighOrderClassifier& model);

/// Serializes `ckpt` to the HOMC byte format — the exact bytes
/// SaveCheckpointToFile would write. Used by replication to ship
/// checkpoints over the wire without touching disk.
Result<std::string> SerializeCheckpoint(const ServingCheckpoint& ckpt);

/// Parses HOMC bytes (the inverse of SerializeCheckpoint). Corruption at
/// any layer (magic, CRC, lengths, value ranges) yields an error Status;
/// a replication metadata section written by a newer writer version is
/// rejected cleanly rather than misread.
Result<ServingCheckpoint> ParseCheckpoint(const std::string& bytes);

/// \name Checkpoint deltas (HOMD framing)
///
/// A replication delta re-frames only the sections that changed relative
/// to a base checkpoint both sides already hold; unchanged sections are
/// referenced by tag. The delta carries the structural identity (see
/// CheckpointIdentity) of both the base and the reconstructed checkpoint,
/// so applying against the wrong base — or any in-flight corruption — is
/// a clean error, never a torn state.
/// @{

/// Structural identity of serialized HOMC bytes: a CRC over the parsed
/// shape (version, section count, and each section's tag, payload size,
/// and payload CRC) rather than over the raw byte stream.
///
/// The raw stream cannot be used for identity: sections are framed as
/// payload||crc32(payload), and the CRC32 register after consuming
/// M||crc32(M) is independent of M, so two checkpoints differing only
/// inside correctly framed equal-length sections share a whole-file
/// CRC32. Folding the payload CRCs in as *data* restores sensitivity.
/// Fails when the bytes do not parse as a checkpoint.
Result<uint32_t> CheckpointIdentity(const std::string& bytes);

/// Encodes `new_bytes` as a delta against `base_bytes` (both HOMC byte
/// strings). The result is typically much smaller than a full checkpoint
/// when only META/TRKR moved between ships.
Result<std::string> EncodeCheckpointDelta(const std::string& base_bytes,
                                          const std::string& new_bytes);

/// Reconstructs the full HOMC bytes from `base_bytes` + `delta_bytes`.
/// Fails with FailedPrecondition when the base does not match the CRC the
/// delta was encoded against (the caller should fall back to a full
/// checkpoint transfer), and InvalidArgument on any structural damage.
Result<std::string> ApplyCheckpointDelta(const std::string& base_bytes,
                                         const std::string& delta_bytes);
/// @}

/// Serializes `ckpt` and writes it atomically: the file at `path` is
/// either the previous checkpoint or the new one, never a torn mix.
Status SaveCheckpointToFile(const std::string& path,
                            const ServingCheckpoint& ckpt);

/// Reads a checkpoint written by SaveCheckpointToFile. Corruption at any
/// layer (magic, CRC, lengths, value ranges) yields an error Status.
Result<ServingCheckpoint> LoadCheckpointFromFile(const std::string& path);

/// Verifies the schema fingerprint, then reinstates the checkpoint's
/// run-time state into `model`. On any failure the model is untouched.
Status ApplyCheckpoint(const ServingCheckpoint& ckpt,
                       HighOrderClassifier* model);

}  // namespace hom

#endif  // HOM_HIGHORDER_CHECKPOINT_H_
