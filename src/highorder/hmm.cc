#include "highorder/hmm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"

namespace hom {

namespace {
constexpr double kTiny = 1e-300;
constexpr double kLogTiny = -1e18;
}  // namespace

ConceptHmm::ConceptHmm(ConceptStats stats) : stats_(std::move(stats)) {}

Status ConceptHmm::ValidatePsi(
    const std::vector<std::vector<double>>& psi) const {
  if (psi.empty()) {
    return Status::InvalidArgument("empty emission sequence");
  }
  for (const std::vector<double>& row : psi) {
    if (row.size() != num_concepts()) {
      return Status::InvalidArgument("psi row arity mismatch");
    }
    double best = 0.0;
    for (double p : row) {
      if (p < 0.0) {
        return Status::InvalidArgument("negative emission likelihood");
      }
      best = std::max(best, p);
    }
    if (best <= 0.0) {
      return Status::InvalidArgument(
          "emission row with no positive likelihood");
    }
  }
  return Status::OK();
}

Result<std::vector<int>> ConceptHmm::Viterbi(
    const std::vector<std::vector<double>>& psi) const {
  HOM_COUNTER_INC("hom.hmm.viterbi_calls");
  HOM_RETURN_NOT_OK(ValidatePsi(psi));
  size_t n = num_concepts();
  size_t t_max = psi.size();

  std::vector<std::vector<double>> delta(t_max, std::vector<double>(n));
  std::vector<std::vector<int>> argmax(t_max, std::vector<int>(n, 0));

  auto log_or_tiny = [](double v) {
    return v > kTiny ? std::log(v) : kLogTiny;
  };

  double log_uniform = -std::log(static_cast<double>(n));
  for (size_t c = 0; c < n; ++c) {
    delta[0][c] = log_uniform + log_or_tiny(psi[0][c]);
  }
  // Precompute log χ.
  std::vector<double> log_chi(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      log_chi[i * n + j] = log_or_tiny(stats_.Chi(i, j));
    }
  }
  for (size_t t = 1; t < t_max; ++t) {
    for (size_t j = 0; j < n; ++j) {
      double best = delta[t - 1][0] + log_chi[j];  // i = 0
      int best_i = 0;
      for (size_t i = 1; i < n; ++i) {
        double v = delta[t - 1][i] + log_chi[i * n + j];
        if (v > best) {
          best = v;
          best_i = static_cast<int>(i);
        }
      }
      delta[t][j] = best + log_or_tiny(psi[t][j]);
      argmax[t][j] = best_i;
    }
  }
  std::vector<int> path(t_max);
  path[t_max - 1] = static_cast<int>(
      std::max_element(delta[t_max - 1].begin(), delta[t_max - 1].end()) -
      delta[t_max - 1].begin());
  for (size_t t = t_max - 1; t > 0; --t) {
    path[t - 1] = argmax[t][static_cast<size_t>(path[t])];
  }
  // Journal each decoded transition: the HMM's retrospective verdict on
  // where the concept chain jumped. `record` is the position in the
  // decoded sequence, `value` the step's best log-probability.
  for (size_t t = 1; t < t_max; ++t) {
    if (path[t] != path[t - 1]) {
      obs::EmitIfActive(obs::EventType::kHmmPrediction, "hmm",
                        static_cast<int64_t>(t), path[t - 1], path[t],
                        delta[t][static_cast<size_t>(path[t])]);
    }
  }
  return path;
}

Status ConceptHmm::Forward(const std::vector<std::vector<double>>& psi,
                           std::vector<std::vector<double>>* alpha,
                           std::vector<double>* log_scale) const {
  HOM_COUNTER_INC("hom.hmm.forward_calls");
  size_t n = num_concepts();
  size_t t_max = psi.size();
  alpha->assign(t_max, std::vector<double>(n, 0.0));
  log_scale->assign(t_max, 0.0);

  double total = 0.0;
  for (size_t c = 0; c < n; ++c) {
    (*alpha)[0][c] = psi[0][c] / static_cast<double>(n);
    total += (*alpha)[0][c];
  }
  if (total <= kTiny) return Status::Internal("forward underflow at t=0");
  for (double& a : (*alpha)[0]) a /= total;
  (*log_scale)[0] = std::log(total);

  for (size_t t = 1; t < t_max; ++t) {
    std::vector<double> propagated = stats_.Propagate((*alpha)[t - 1]);
    total = 0.0;
    for (size_t c = 0; c < n; ++c) {
      (*alpha)[t][c] = propagated[c] * psi[t][c];
      total += (*alpha)[t][c];
    }
    if (total <= kTiny) {
      return Status::Internal("forward underflow at t=" + std::to_string(t));
    }
    for (double& a : (*alpha)[t]) a /= total;
    (*log_scale)[t] = std::log(total);
  }
  return Status::OK();
}

Result<double> ConceptHmm::LogLikelihood(
    const std::vector<std::vector<double>>& psi) const {
  HOM_RETURN_NOT_OK(ValidatePsi(psi));
  std::vector<std::vector<double>> alpha;
  std::vector<double> log_scale;
  HOM_RETURN_NOT_OK(Forward(psi, &alpha, &log_scale));
  double ll = 0.0;
  for (double s : log_scale) ll += s;
  return ll;
}

Result<std::vector<std::vector<double>>> ConceptHmm::ForwardBackward(
    const std::vector<std::vector<double>>& psi) const {
  HOM_RETURN_NOT_OK(ValidatePsi(psi));
  size_t n = num_concepts();
  size_t t_max = psi.size();

  std::vector<std::vector<double>> alpha;
  std::vector<double> log_scale;
  HOM_RETURN_NOT_OK(Forward(psi, &alpha, &log_scale));

  // Scaled backward pass (same scales).
  std::vector<std::vector<double>> beta(t_max, std::vector<double>(n, 1.0));
  for (size_t t = t_max - 1; t > 0; --t) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (size_t j = 0; j < n; ++j) {
        sum += stats_.Chi(i, j) * psi[t][j] * beta[t][j];
      }
      beta[t - 1][i] = sum;
      total += sum;
    }
    if (total <= kTiny) {
      return Status::Internal("backward underflow at t=" +
                              std::to_string(t));
    }
    for (double& b : beta[t - 1]) b /= total;
  }

  std::vector<std::vector<double>> gamma(t_max, std::vector<double>(n));
  for (size_t t = 0; t < t_max; ++t) {
    double total = 0.0;
    for (size_t c = 0; c < n; ++c) {
      gamma[t][c] = alpha[t][c] * beta[t][c];
      total += gamma[t][c];
    }
    HOM_CHECK_GT(total, 0.0);
    for (double& g : gamma[t]) g /= total;
  }
  return gamma;
}

Result<ConceptHmm> ConceptHmm::BaumWelchStep(
    const std::vector<std::vector<double>>& psi) const {
  HOM_COUNTER_INC("hom.hmm.baum_welch_steps");
  HOM_RETURN_NOT_OK(ValidatePsi(psi));
  size_t n = num_concepts();
  size_t t_max = psi.size();
  if (t_max < 2) {
    return Status::InvalidArgument(
        "Baum-Welch needs at least two observations");
  }

  std::vector<std::vector<double>> alpha;
  std::vector<double> log_scale;
  HOM_RETURN_NOT_OK(Forward(psi, &alpha, &log_scale));
  std::vector<std::vector<double>> beta(t_max, std::vector<double>(n, 1.0));
  for (size_t t = t_max - 1; t > 0; --t) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (size_t j = 0; j < n; ++j) {
        sum += stats_.Chi(i, j) * psi[t][j] * beta[t][j];
      }
      beta[t - 1][i] = sum;
      total += sum;
    }
    if (total <= kTiny) {
      return Status::Internal("backward underflow");
    }
    for (double& b : beta[t - 1]) b /= total;
  }

  // Expected transition counts ξ summed over time (unnormalized rows).
  std::vector<std::vector<double>> counts(n, std::vector<double>(n, 1e-9));
  for (size_t t = 0; t + 1 < t_max; ++t) {
    double total = 0.0;
    std::vector<double> xi(n * n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        double v = alpha[t][i] * stats_.Chi(i, j) * psi[t + 1][j] *
                   beta[t + 1][j];
        xi[i * n + j] = v;
        total += v;
      }
    }
    if (total <= kTiny) continue;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        counts[i][j] += xi[i * n + j] / total;
      }
    }
  }
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (double c : counts[i]) row += c;
    for (size_t j = 0; j < n; ++j) matrix[i][j] = counts[i][j] / row;
  }
  HOM_ASSIGN_OR_RETURN(ConceptStats refined,
                       StatsFromTransitionMatrix(matrix));
  return ConceptHmm(std::move(refined));
}

Result<ConceptStats> ConceptHmm::StatsFromTransitionMatrix(
    const std::vector<std::vector<double>>& matrix) {
  size_t n = matrix.size();
  if (n == 0) return Status::InvalidArgument("empty transition matrix");
  for (const std::vector<double>& row : matrix) {
    if (row.size() != n) {
      return Status::InvalidArgument("transition matrix must be square");
    }
    double sum = 0.0;
    for (double v : row) {
      if (v < -1e-9) {
        return Status::InvalidArgument("negative transition probability");
      }
      sum += v;
    }
    if (std::abs(sum - 1.0) > 1e-6) {
      return Status::InvalidArgument("transition rows must sum to 1");
    }
  }

  // Len_i from the self-loop; the jump chain J_ij = a_ij / (1 - a_ii)
  // yields the occurrence-level frequencies as its stationary vector.
  std::vector<double> lengths(n);
  std::vector<std::vector<double>> jump(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    double stay = std::min(matrix[i][i], 1.0 - 1e-9);
    lengths[i] = 1.0 / (1.0 - stay);
    double leave = 1.0 - matrix[i][i];
    if (leave <= 1e-12) {
      // Absorbing state: pretend a uniform jump so the chain stays ergodic.
      for (size_t j = 0; j < n; ++j) {
        jump[i][j] = i == j ? 0.0 : 1.0 / static_cast<double>(n - 1);
      }
      if (n == 1) jump[i][i] = 1.0;
    } else {
      for (size_t j = 0; j < n; ++j) {
        jump[i][j] = i == j ? 0.0 : matrix[i][j] / leave;
      }
    }
  }
  std::vector<double> freq(n, 1.0 / static_cast<double>(n));
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<double> next(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        next[j] += freq[i] * jump[i][j];
      }
    }
    double total = 0.0;
    for (double v : next) total += v;
    if (total <= 0.0) break;
    for (double& v : next) v /= total;
    double diff = 0.0;
    for (size_t c = 0; c < n; ++c) diff += std::abs(next[c] - freq[c]);
    freq = std::move(next);
    if (diff < 1e-12) break;
  }
  return ConceptStats::FromLengthsAndFrequencies(std::move(lengths),
                                                 std::move(freq));
}

}  // namespace hom
