#include "highorder/concept_clustering.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <utility>

#include "classifiers/evaluation.h"
#include "common/check.h"
#include "common/logging.h"
#include "highorder/block_partition.h"
#include "highorder/merge_queue.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/thread_pool.h"

namespace hom {

namespace {

// Safety valve: step 2 is quadratic in the number of chunks. With the
// paper's parameters (block size 20, lambda 0.001) chunk counts are a few
// hundred; hitting this cap means step 1 over-fragmented.
constexpr size_t kMaxChunksForStep2 = 4000;

// Rng::Derive domains: independent uses of the same index space must not
// correlate, so each draws from its own domain of the build seed.
constexpr uint64_t kLeafSplitDomain = 1;      ///< per-block holdout splits
constexpr uint64_t kSampleShuffleDomain = 2;  ///< step-2 shared sample list

/// Collects the input-leaf descendants of `id`, left to right.
void CollectLeaves(const Dendrogram& dendro, int32_t id,
                   std::vector<int32_t>* leaves) {
  const ClusterNode& n = dendro.node(id);
  if (n.left < 0) {
    leaves->push_back(id);
    return;
  }
  CollectLeaves(dendro, n.left, leaves);
  CollectLeaves(dendro, n.right, leaves);
}

/// Number of shared-sample predictions a ModelDistance(u, v) call compares
/// from each cache; callers tally 2x this as similarity-cache hits.
size_t SharedSamples(const ClusterNode& u, const ClusterNode& v) {
  return std::min(u.sample_predictions.size(), v.sample_predictions.size());
}

/// Model-similarity distance of Eq. 3/4 evaluated on the shared sample
/// list: sim is the agreement fraction over the first
/// min(|D_u^test|, |D_v^test|) shared samples. Every compared prediction
/// is served from the nodes' sample caches, so this is a pure read of the
/// two nodes and safe to evaluate concurrently for disjoint pairs.
double ModelDistance(const ClusterNode& u, const ClusterNode& v) {
  size_t k = SharedSamples(u, v);
  double sim = 0.0;
  if (k > 0) {
    size_t agree = 0;
    for (size_t i = 0; i < k; ++i) {
      if (u.sample_predictions[i] == v.sample_predictions[i]) ++agree;
    }
    sim = static_cast<double>(agree) / static_cast<double>(k);
  }
  return static_cast<double>(u.data.size() + v.data.size()) * (1.0 - sim);
}

}  // namespace

ConceptClusterer::ConceptClusterer(ClassifierFactory base_factory,
                                   ConceptClusteringConfig config)
    : base_factory_(std::move(base_factory)), config_(config) {
  HOM_CHECK(base_factory_ != nullptr);
  HOM_CHECK_GE(config_.block_size, 2u);
  HOM_CHECK_GT(config_.early_stop_ratio, 1.0);
}

double ConceptClusterer::EstimateError(const Classifier& model,
                                       const DatasetView& test) const {
  size_t errors = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const Record& r = test.record(i);
    if (model.Predict(r) != r.label) ++errors;
  }
  if (config_.laplace_error_smoothing) {
    return (static_cast<double>(errors) + 1.0) /
           (static_cast<double>(test.size()) + 2.0);
  }
  return test.empty() ? 0.0
                      : static_cast<double>(errors) /
                            static_cast<double>(test.size());
}

Result<ClusterNode> ConceptClusterer::MakeLeaf(const DatasetView& data,
                                               Rng* rng) const {
  ClusterNode node;
  node.data = data;
  auto [train, test] = data.SplitHoldout(rng);
  node.train = std::move(train);
  node.test = std::move(test);
  node.model = base_factory_(data.schema());
  HOM_RETURN_NOT_OK(node.model->Train(node.train));
  HOM_COUNTER_INC_LABELED("hom.cluster.classifiers_trained",
                          {{"phase", "leaf"}});
  node.err = EstimateError(*node.model, node.test);
  node.err_star = node.err;
  return node;
}

Result<ClusterNode> ConceptClusterer::MergeNodes(const ClusterNode& u,
                                                 const ClusterNode& v) const {
  ClusterNode w;
  w.data = DatasetView::Union(u.data, v.data);
  w.train = DatasetView::Union(u.train, v.train);
  w.test = DatasetView::Union(u.test, v.test);
  const ClusterNode& large = u.data.size() >= v.data.size() ? u : v;
  const ClusterNode& small = u.data.size() >= v.data.size() ? v : u;
  if (config_.reuse_on_unbalanced_merge &&
      static_cast<double>(large.data.size()) >=
          config_.reuse_ratio * static_cast<double>(small.data.size())) {
    // Section II-D: the tiny side barely changes the model; reuse the
    // large cluster's classifier instead of retraining on the union.
    w.model = large.model;
    HOM_COUNTER_INC_LABELED("hom.cluster.classifiers_reused",
                            {{"phase", "merge"}});
  } else {
    std::unique_ptr<Classifier> fresh = base_factory_(w.data.schema());
    HOM_RETURN_NOT_OK(fresh->Train(w.train));
    HOM_COUNTER_INC_LABELED("hom.cluster.classifiers_trained",
                            {{"phase", "merge"}});
    w.model = std::move(fresh);
  }
  w.err = EstimateError(*w.model, w.test);
  double nu = static_cast<double>(u.data.size());
  double nv = static_cast<double>(v.data.size());
  // Err* recursion (Algorithm 1 line 19): the best partition of D_w either
  // keeps D_w whole or combines the best partitions of its halves.
  w.err_star =
      std::min(w.err, (nu * u.err_star + nv * v.err_star) / (nu + nv));
  return w;
}

Result<CandidateMerge> ConceptClusterer::ScoreAdjacentMerge(
    const ClusterNode& nu, const ClusterNode& nv, int32_t u,
    int32_t v) const {
  HOM_COUNTER_INC_LABELED("hom.cluster.candidates", {{"step", "1"}});
  DatasetView train = DatasetView::Union(nu.train, nv.train);
  DatasetView test = DatasetView::Union(nu.test, nv.test);
  // Training the union classifier here is what makes step-1 candidates
  // expensive; the trained error is kept in the heap entry so the eventual
  // merge can reuse it.
  double err_w;
  const ClusterNode* big = nu.data.size() >= nv.data.size() ? &nu : &nv;
  const ClusterNode* tiny = nu.data.size() >= nv.data.size() ? &nv : &nu;
  if (config_.reuse_on_unbalanced_merge &&
      static_cast<double>(big->data.size()) >=
          config_.reuse_ratio * static_cast<double>(tiny->data.size())) {
    HOM_COUNTER_INC_LABELED("hom.cluster.classifiers_reused",
                            {{"phase", "score"}});
    err_w = EstimateError(*big->model, test);
  } else {
    std::unique_ptr<Classifier> model = base_factory_(train.schema());
    HOM_RETURN_NOT_OK(model->Train(train));
    HOM_COUNTER_INC_LABELED("hom.cluster.classifiers_trained",
                            {{"phase", "score"}});
    err_w = EstimateError(*model, test);
  }
  double size_w = static_cast<double>(nu.data.size() + nv.data.size());
  double delta_q = size_w * err_w -
                   static_cast<double>(nu.data.size()) * nu.err -
                   static_cast<double>(nv.data.size()) * nv.err;
  return CandidateMerge{delta_q, u, v, err_w};
}

bool ConceptClusterer::ShouldStopMerging(const ClusterNode& node) const {
  if (!config_.early_stop) return false;
  if (node.data.size() < config_.early_stop_min_size) return false;
  if (node.err <= node.err_star * config_.early_stop_ratio + 1e-12) {
    return false;
  }
  // The ratio alone misfires when both errors are near zero; also require
  // the gap to be statistically meaningful at this holdout size.
  double p = std::min(std::max(node.err, 1e-6), 1.0 - 1e-6);
  double margin =
      config_.early_stop_z *
      std::sqrt(p * (1.0 - p) /
                static_cast<double>(std::max<size_t>(node.test.size(), 1)));
  return node.err - node.err_star > margin;
}

Result<ConceptClusteringResult> ConceptClusterer::Cluster(
    const DatasetView& history, Rng* rng) const {
  par::ThreadPool pool(par::ResolveThreadCount(config_.num_threads));
  // The two draws below are the only reads of `rng` in this function. All
  // build randomness is derived statelessly from this one seed as
  // Rng::Derive(build_seed, domain, index), so a work item draws the same
  // stream no matter which lane runs it or in what order — the dendrogram,
  // final cut, and serialized model are bit-identical at every thread
  // count.
  const uint64_t build_seed =
      (static_cast<uint64_t>(rng->NextUint32()) << 32) | rng->NextUint32();

  // ---------------------------------------------------------------- Step 1
  std::vector<DatasetView> blocks;
  Dendrogram dendro1;
  // Record-position extent of every cluster within the history view;
  // step-1 merges are adjacency-only, so extents stay contiguous.
  std::vector<std::pair<size_t, size_t>> extent;
  std::vector<int32_t> block_ids;
  {
    obs::ScopedSpan span("block_partition");
    HOM_ASSIGN_OR_RETURN(blocks,
                         PartitionIntoBlocks(history, config_.block_size));
  }
  {
    obs::ScopedSpan span("leaf_training");
    // Leaves are independent: each block's holdout split draws from its own
    // derived stream and its classifier trains on that block alone.
    HOM_ASSIGN_OR_RETURN(
        std::vector<ClusterNode> leaves,
        par::ParallelMap<ClusterNode>(
            &pool, blocks.size(), [&](size_t i) -> Result<ClusterNode> {
              Rng leaf_rng = Rng::Derive(build_seed, kLeafSplitDomain, i);
              return MakeLeaf(blocks[i], &leaf_rng);
            }));
    // An agglomeration over n leaves builds at most 2n-1 nodes; reserving
    // the ceiling once keeps AddLeaf/AddMerge from ever reallocating.
    dendro1.Reserve(2 * blocks.size());
    extent.reserve(2 * blocks.size());
    block_ids.reserve(blocks.size());
    size_t pos = 0;
    for (size_t i = 0; i < leaves.size(); ++i) {
      size_t len = blocks[i].size();
      block_ids.push_back(dendro1.AddLeaf(std::move(leaves[i])));
      extent.emplace_back(pos, pos + len);
      pos += len;
    }
  }

  std::vector<int32_t> chunk_ids;
  {
    obs::ScopedSpan span("step1_chunk_merging");
    MergeQueue queue1;
    // n-1 initial candidates plus at most 2 per merge over <= n-1 merges.
    queue1.Reserve(3 * block_ids.size());
    for (int32_t id : block_ids) queue1.RegisterCluster(id);

    // Chain adjacency: left/right neighbour ids per cluster (-1 at the
    // ends), pre-sized to the 2n-1 node ceiling so the merge loop never
    // pays a per-merge resize.
    std::vector<int32_t> left_of(2 * block_ids.size(), -1);
    std::vector<int32_t> right_of(2 * block_ids.size(), -1);
    for (size_t i = 0; i + 1 < block_ids.size(); ++i) {
      right_of[static_cast<size_t>(block_ids[i])] = block_ids[i + 1];
      left_of[static_cast<size_t>(block_ids[i + 1])] = block_ids[i];
    }

    {
      obs::ScopedSpan cand_span("initial_candidates");
      // The initial adjacent ΔQ candidates only read their two leaves, so
      // the whole batch is scored concurrently; pushes happen afterwards in
      // index order (heap contents are order-sensitive only through the
      // deterministic tie-break, but keeping insertion order fixed makes
      // the heap layout itself reproducible too).
      size_t num_pairs = block_ids.empty() ? 0 : block_ids.size() - 1;
      HOM_ASSIGN_OR_RETURN(
          std::vector<CandidateMerge> initial,
          par::ParallelMap<CandidateMerge>(
              &pool, num_pairs, [&](size_t i) -> Result<CandidateMerge> {
                return ScoreAdjacentMerge(dendro1.node(block_ids[i]),
                                          dendro1.node(block_ids[i + 1]),
                                          block_ids[i], block_ids[i + 1]);
              }));
      for (const CandidateMerge& c : initial) queue1.Push(c);
    }

    // The merge loop itself is inherently sequential: each Pop depends on
    // every prior merge through heap contents, adjacency, and early-stop
    // state, and post-merge candidates are at most two per iteration.
    CandidateMerge cand;
    while (queue1.Pop(&cand)) {
      HOM_ASSIGN_OR_RETURN(
          ClusterNode merged,
          MergeNodes(dendro1.node(cand.u), dendro1.node(cand.v)));
      int32_t wid = dendro1.AddMerge(cand.u, cand.v, std::move(merged));
      HOM_COUNTER_INC_LABELED("hom.cluster.merges", {{"step", "1"}});
      queue1.Retire(cand.u);
      queue1.Retire(cand.v);
      queue1.RegisterCluster(wid);

      HOM_CHECK_LT(static_cast<size_t>(wid), left_of.size());
      extent.emplace_back(extent[static_cast<size_t>(cand.u)].first,
                          extent[static_cast<size_t>(cand.v)].second);
      int32_t lhs = left_of[static_cast<size_t>(cand.u)];
      int32_t rhs = right_of[static_cast<size_t>(cand.v)];
      left_of[static_cast<size_t>(wid)] = lhs;
      right_of[static_cast<size_t>(wid)] = rhs;
      if (lhs >= 0) right_of[static_cast<size_t>(lhs)] = wid;
      if (rhs >= 0) left_of[static_cast<size_t>(rhs)] = wid;

      if (ShouldStopMerging(dendro1.node(wid))) {
        // Section II-D: no further mergers involving this cluster; its
        // final cut will be decided purely from its Err* history.
        HOM_COUNTER_INC("hom.cluster.early_terminations");
        continue;
      }
      if (lhs >= 0 && queue1.IsLive(lhs)) {
        HOM_ASSIGN_OR_RETURN(
            CandidateMerge c,
            ScoreAdjacentMerge(dendro1.node(lhs), dendro1.node(wid), lhs,
                               wid));
        queue1.Push(c);
      }
      if (rhs >= 0 && queue1.IsLive(rhs)) {
        HOM_ASSIGN_OR_RETURN(
            CandidateMerge c,
            ScoreAdjacentMerge(dendro1.node(wid), dendro1.node(rhs), wid,
                               rhs));
        queue1.Push(c);
      }
    }

    {
      obs::ScopedSpan cut_span("final_cut");
      // Roots of step 1 = clusters never merged away.
      std::vector<int32_t> roots1;
      for (size_t id = 0; id < dendro1.size(); ++id) {
        if (queue1.IsLive(static_cast<int32_t>(id))) {
          roots1.push_back(static_cast<int32_t>(id));
        }
      }
      chunk_ids = dendro1.FinalCut(roots1, config_.step1_cut_z);
      // Stream order.
      std::sort(chunk_ids.begin(), chunk_ids.end(),
                [&](int32_t a, int32_t b) {
                  return extent[static_cast<size_t>(a)].first <
                         extent[static_cast<size_t>(b)].first;
                });
    }
  }
  if (chunk_ids.size() > kMaxChunksForStep2) {
    return Status::FailedPrecondition(
        "step 1 produced " + std::to_string(chunk_ids.size()) +
        " chunks (> " + std::to_string(kMaxChunksForStep2) +
        "); increase block_size or provide more stable history");
  }
  HOM_LOG(kInfo) << "concept clustering: " << blocks.size() << " blocks -> "
                 << chunk_ids.size() << " chunks";

  // ---------------------------------------------------------------- Step 2
  // Chunks become the leaves of a fresh dendrogram; their models and
  // holdout splits are moved over, and Err* restarts at Err.
  // The per-node sample-prediction lists act as a similarity cache: every
  // ModelDistance evaluation reads 2·k cached predictions (hits) that
  // each replaced a base-model evaluation; the cache is filled once per
  // node (misses).
  size_t sim_cache_hits = 0;
  size_t sim_cache_misses = 0;
  Dendrogram dendro2;
  std::vector<int32_t> live;
  {
    obs::ScopedSpan span("step2_concept_merging");
    std::vector<int32_t> leaf_ids;
    dendro2.Reserve(2 * chunk_ids.size());
    leaf_ids.reserve(chunk_ids.size());
    for (int32_t cid : chunk_ids) {
      ClusterNode& src = dendro1.node(cid);
      ClusterNode leaf;
      leaf.data = src.data;
      leaf.train = src.train;
      leaf.test = src.test;
      leaf.model = src.model;
      leaf.err = src.err;
      leaf.err_star = src.err;
      leaf_ids.push_back(dendro2.AddLeaf(std::move(leaf)));
    }

    // Shared sample list L (Section II-C.1): all holdout halves, shuffled
    // once, so every similarity evaluation sees the same distribution.
    std::vector<uint32_t> sample_rows;
    for (int32_t id : leaf_ids) {
      const DatasetView& test = dendro2.node(id).test;
      sample_rows.insert(sample_rows.end(), test.indices().begin(),
                         test.indices().end());
    }
    Rng shuffle_rng = Rng::Derive(build_seed, kSampleShuffleDomain, 0);
    shuffle_rng.Shuffle(&sample_rows);
    const Dataset* base = history.dataset();

    // Returns the number of predictions cached (the cache misses).
    auto fill_sample_predictions = [&](ClusterNode* node) -> size_t {
      size_t k = std::min(node->test.size(), sample_rows.size());
      node->sample_predictions.resize(k);
      for (size_t i = 0; i < k; ++i) {
        node->sample_predictions[i] =
            node->model->Predict(base->record(sample_rows[i]));
      }
      return k;
    };
    {
      obs::ScopedSpan samples_span("similarity_samples");
      // Each leaf's cache is filled over L independently — only the node's
      // own prediction vector is written.
      std::atomic<size_t> misses{0};
      HOM_RETURN_NOT_OK(par::ParallelFor(
          &pool, leaf_ids.size(), /*grain=*/1, [&](size_t i) -> Status {
            misses.fetch_add(
                fill_sample_predictions(&dendro2.node(leaf_ids[i])),
                std::memory_order_relaxed);
            return Status::OK();
          }));
      sim_cache_misses += misses.load(std::memory_order_relaxed);
    }

    MergeQueue queue2;
    for (int32_t id : leaf_ids) queue2.RegisterCluster(id);
    live = leaf_ids;

    size_t step2_candidates = 0;
    {
      obs::ScopedSpan pair_span("pairwise_distances");
      // The complete graph over non-frozen leaves (Section II-C.1). Each
      // distance is a pure read of two prediction caches, so the whole
      // O(k^2) batch is scored in parallel into a flat array, then pushed
      // in pair order.
      std::vector<std::pair<int32_t, int32_t>> pairs;
      for (size_t i = 0; i < leaf_ids.size(); ++i) {
        if (ShouldStopMerging(dendro2.node(leaf_ids[i]))) continue;
        for (size_t j = i + 1; j < leaf_ids.size(); ++j) {
          if (ShouldStopMerging(dendro2.node(leaf_ids[j]))) continue;
          pairs.emplace_back(leaf_ids[i], leaf_ids[j]);
        }
      }
      std::vector<double> dists(pairs.size());
      // Individual distances are cheap; chunk the cursor so lanes grab
      // batches instead of contending per pair.
      size_t grain =
          std::max<size_t>(1, pairs.size() / (pool.num_threads() * 16));
      HOM_RETURN_NOT_OK(par::ParallelFor(
          &pool, pairs.size(), grain, [&](size_t i) -> Status {
            dists[i] = ModelDistance(dendro2.node(pairs[i].first),
                                     dendro2.node(pairs[i].second));
            return Status::OK();
          }));
      queue2.Reserve(pairs.size());
      for (size_t i = 0; i < pairs.size(); ++i) {
        sim_cache_hits += 2 * SharedSamples(dendro2.node(pairs[i].first),
                                            dendro2.node(pairs[i].second));
        queue2.Push({dists[i], pairs[i].first, pairs[i].second, 0.0});
      }
      step2_candidates += pairs.size();
    }

    // Sequential from here: each merge invalidates candidates and emits
    // fresh ones against every live cluster, so iteration order is the
    // algorithm.
    CandidateMerge cand;
    while (queue2.Pop(&cand)) {
      HOM_ASSIGN_OR_RETURN(
          ClusterNode merged,
          MergeNodes(dendro2.node(cand.u), dendro2.node(cand.v)));
      HOM_LOG(kDebug) << "step2 merge " << cand.u << "(|D|="
                      << dendro2.node(cand.u).data.size()
                      << ",err=" << dendro2.node(cand.u).err << ") + "
                      << cand.v << "(|D|="
                      << dendro2.node(cand.v).data.size()
                      << ",err=" << dendro2.node(cand.v).err
                      << ") dist=" << cand.distance << " -> err="
                      << merged.err << " err*=" << merged.err_star;
      sim_cache_misses += fill_sample_predictions(&merged);
      int32_t wid = dendro2.AddMerge(cand.u, cand.v, std::move(merged));
      HOM_COUNTER_INC_LABELED("hom.cluster.merges", {{"step", "2"}});
      queue2.Retire(cand.u);
      queue2.Retire(cand.v);
      queue2.RegisterCluster(wid);
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](int32_t id) {
                                  return id == cand.u || id == cand.v;
                                }),
                 live.end());
      if (!ShouldStopMerging(dendro2.node(wid))) {
        for (int32_t other : live) {
          if (ShouldStopMerging(dendro2.node(other))) continue;
          ++step2_candidates;
          sim_cache_hits +=
              2 * SharedSamples(dendro2.node(wid), dendro2.node(other));
          queue2.Push({ModelDistance(dendro2.node(wid), dendro2.node(other)),
                       wid, other, 0.0});
        }
      } else {
        HOM_COUNTER_INC("hom.cluster.early_terminations");
      }
      live.push_back(wid);
    }
    HOM_COUNTER_ADD_LABELED("hom.cluster.candidates", step2_candidates,
                            {{"step", "2"}});
  }

  std::vector<int32_t> concept_ids;
  {
    obs::ScopedSpan cut_span("final_cut");
    concept_ids = dendro2.FinalCut(live, config_.step2_cut_z);
  }

  HOM_COUNTER_ADD("hom.cluster.simcache.hits", sim_cache_hits);
  HOM_COUNTER_ADD("hom.cluster.simcache.misses", sim_cache_misses);
  if (sim_cache_hits + sim_cache_misses > 0) {
    HOM_GAUGE_SET("hom.cluster.simcache.hit_rate",
                  static_cast<double>(sim_cache_hits) /
                      static_cast<double>(sim_cache_hits + sim_cache_misses));
  }

  // ------------------------------------------------------------- Assemble
  ConceptClusteringResult result;
  result.num_chunks = chunk_ids.size();
  result.threads_used = pool.num_threads();
  result.pool_tasks = pool.tasks_executed();
  HOM_GAUGE_SET("hom.par.threads", static_cast<double>(result.threads_used));

  // Map each step-2 leaf (chunk) to its concept. Step-2 leaves occupy ids
  // [0, chunk_ids.size()) of dendro2 in stream order.
  size_t num_leaves = chunk_ids.size();
  std::vector<int> chunk_concept(num_leaves, -1);
  for (size_t c = 0; c < concept_ids.size(); ++c) {
    std::vector<int32_t> members;
    CollectLeaves(dendro2, concept_ids[c], &members);
    for (int32_t leaf : members) {
      HOM_CHECK_GE(leaf, 0);
      HOM_CHECK_LT(static_cast<size_t>(leaf), num_leaves);
      chunk_concept[static_cast<size_t>(leaf)] = static_cast<int>(c);
    }
  }

  // Occurrences: chunks in stream order, adjacent same-concept chunks
  // fused. chunk_ids is in stream order and step-2 leaf i came from
  // chunk_ids[i], so extent lookup goes through chunk_ids.
  for (size_t i = 0; i < num_leaves; ++i) {
    int cid = chunk_concept[i];
    HOM_CHECK_GE(cid, 0);
    const auto& ext = extent[static_cast<size_t>(chunk_ids[i])];
    if (!result.occurrences.empty() &&
        result.occurrences.back().concept_id == cid &&
        result.occurrences.back().end == ext.first) {
      result.occurrences.back().end = ext.second;
    } else {
      result.occurrences.push_back({ext.first, ext.second, cid});
    }
  }

  result.final_q = 0.0;
  for (size_t c = 0; c < concept_ids.size(); ++c) {
    const ClusterNode& node = dendro2.node(concept_ids[c]);
    result.concept_data.push_back(node.data);
    result.concept_errors.push_back(node.err);
    result.final_q += static_cast<double>(node.data.size()) * node.err;
  }
  HOM_COUNTER_ADD("hom.cluster.chunks", result.num_chunks);
  HOM_COUNTER_ADD("hom.cluster.concepts", result.concept_data.size());
  HOM_LOG(kInfo) << "concept clustering: " << result.num_chunks
                 << " chunks -> " << result.concept_data.size()
                 << " concepts (Q=" << result.final_q << ")";
  return result;
}

}  // namespace hom
