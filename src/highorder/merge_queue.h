#ifndef HOM_HIGHORDER_MERGE_QUEUE_H_
#define HOM_HIGHORDER_MERGE_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hom {

/// One candidate merger (u, v) with its distance key, plus whatever
/// precomputed merge statistics the clustering step wants to carry (the
/// step-1 strategy stores the merged holdout error so it is not recomputed).
struct CandidateMerge {
  double distance = 0.0;
  int32_t u = -1;
  int32_t v = -1;
  double merged_err = 0.0;  ///< Err_w of the candidate union (step 1 only).
};

/// \brief The min-heap of candidate mergers from Section II-C.1 ("a
/// min-heap is maintained to manage all candidate mergers with their
/// distances as keys"), with lazy invalidation.
///
/// When a cluster is merged away it is Retire()d; stale heap entries that
/// mention it are discarded on Pop instead of being searched for and
/// erased, which keeps every operation O(log n).
class MergeQueue {
 public:
  /// Pre-allocates heap storage for `num_candidates` entries; the batch
  /// loaders (initial adjacent candidates, the step-2 complete graph) know
  /// their exact candidate count up front.
  void Reserve(size_t num_candidates) { heap_.reserve(num_candidates); }

  /// Declares a cluster id as live. Ids must be registered before they
  /// appear in Push/Retire.
  void RegisterCluster(int32_t id);

  /// Marks a cluster as merged-away; all its pending candidates become
  /// stale.
  void Retire(int32_t id);

  bool IsLive(int32_t id) const;

  /// Adds a candidate merger between two live clusters.
  void Push(CandidateMerge candidate);

  /// Pops the smallest-distance candidate whose two clusters are both
  /// still live. Returns false when no valid candidate remains.
  bool Pop(CandidateMerge* out);

  /// Number of entries currently stored (including stale ones).
  size_t raw_size() const { return heap_.size(); }

 private:
  struct ByDistance {
    bool operator()(const CandidateMerge& a, const CandidateMerge& b) const {
      if (a.distance != b.distance) return a.distance > b.distance;
      // Deterministic tie-break so runs are reproducible.
      if (a.u != b.u) return a.u > b.u;
      return a.v > b.v;
    }
  };

  /// Min-heap via std::push_heap/pop_heap on a plain vector (rather than
  /// std::priority_queue) so Reserve can pre-size the backing store.
  std::vector<CandidateMerge> heap_;
  std::vector<bool> live_;
};

}  // namespace hom

#endif  // HOM_HIGHORDER_MERGE_QUEUE_H_
