#include "highorder/concept_stats.h"

#include <sstream>

#include "common/check.h"

namespace hom {

Result<ConceptStats> ConceptStats::FromOccurrences(
    const std::vector<ConceptOccurrence>& occurrences, size_t num_concepts) {
  if (num_concepts == 0) {
    return Status::InvalidArgument("need at least one concept");
  }
  if (occurrences.empty()) {
    return Status::InvalidArgument("need at least one occurrence");
  }
  std::vector<double> counts(num_concepts, 0.0);
  std::vector<double> record_totals(num_concepts, 0.0);
  for (const ConceptOccurrence& occ : occurrences) {
    if (occ.concept_id < 0 ||
        static_cast<size_t>(occ.concept_id) >= num_concepts) {
      return Status::OutOfRange("occurrence concept id " +
                                std::to_string(occ.concept_id) +
                                " out of range");
    }
    if (occ.end <= occ.begin) {
      return Status::InvalidArgument("empty occurrence");
    }
    counts[static_cast<size_t>(occ.concept_id)] += 1.0;
    record_totals[static_cast<size_t>(occ.concept_id)] +=
        static_cast<double>(occ.length());
  }

  double grand_mean = 0.0;
  double total_occ = 0.0;
  for (size_t c = 0; c < num_concepts; ++c) {
    grand_mean += record_totals[c];
    total_occ += counts[c];
  }
  grand_mean /= total_occ;

  std::vector<double> lengths(num_concepts);
  std::vector<double> freqs(num_concepts);
  for (size_t c = 0; c < num_concepts; ++c) {
    // A concept that clustering produced but that never occurs can only
    // arise from hand-built inputs; give it neutral statistics.
    lengths[c] = counts[c] > 0 ? record_totals[c] / counts[c] : grand_mean;
    freqs[c] = counts[c] / total_occ;
  }
  return ConceptStats(std::move(lengths), std::move(freqs));
}

Result<ConceptStats> ConceptStats::FromLengthsAndFrequencies(
    std::vector<double> mean_lengths, std::vector<double> frequencies) {
  if (mean_lengths.empty() || mean_lengths.size() != frequencies.size()) {
    return Status::InvalidArgument(
        "lengths and frequencies must be non-empty and equal-sized");
  }
  double freq_sum = 0.0;
  for (size_t c = 0; c < mean_lengths.size(); ++c) {
    if (mean_lengths[c] < 1.0) {
      return Status::InvalidArgument("mean length must be >= 1");
    }
    if (frequencies[c] < 0.0) {
      return Status::InvalidArgument("frequencies must be non-negative");
    }
    freq_sum += frequencies[c];
  }
  if (freq_sum <= 0.0) {
    return Status::InvalidArgument("frequencies must not all be zero");
  }
  for (double& f : frequencies) f /= freq_sum;
  return ConceptStats(std::move(mean_lengths), std::move(frequencies));
}

ConceptStats::ConceptStats(std::vector<double> lengths,
                           std::vector<double> freqs)
    : mean_lengths_(std::move(lengths)), frequencies_(std::move(freqs)) {
  BuildChi();
}

void ConceptStats::BuildChi() {
  size_t n = mean_lengths_.size();
  chi_.assign(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double len = std::max(mean_lengths_[i], 1.0);
    double leave = 1.0 / len;
    if (n == 1) {
      chi_[0] = 1.0;
      break;
    }
    chi_[i * n + i] = 1.0 - leave;
    double denom = 1.0 - frequencies_[i];
    if (denom > 1e-12) {
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        chi_[i * n + j] = leave * frequencies_[j] / denom;
      }
    } else {
      // Degenerate history: concept i is the only one ever observed.
      // Spread the leaving mass uniformly over the alternatives.
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        chi_[i * n + j] = leave / static_cast<double>(n - 1);
      }
    }
  }
}

double ConceptStats::Chi(size_t from, size_t to) const {
  HOM_CHECK_LT(from, num_concepts());
  HOM_CHECK_LT(to, num_concepts());
  return chi_[from * num_concepts() + to];
}

std::vector<double> ConceptStats::Propagate(
    const std::vector<double>& p) const {
  size_t n = num_concepts();
  HOM_CHECK_EQ(p.size(), n);
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (p[i] == 0.0) continue;
    for (size_t j = 0; j < n; ++j) {
      out[j] += p[i] * chi_[i * n + j];
    }
  }
  return out;
}

std::vector<double> ConceptStats::PropagateSteps(
    const std::vector<double>& p, size_t steps) const {
  size_t n = num_concepts();
  HOM_CHECK_EQ(p.size(), n);
  if (steps == 0) return p;
  // Small gaps: repeated single-step propagation is cheapest (O(k n²)).
  if (steps <= 8 || n == 1) {
    std::vector<double> out = p;
    for (size_t s = 0; s < steps; ++s) out = Propagate(out);
    return out;
  }
  // Large gaps: χ^steps by exponentiation-by-squaring, O(n³ log k).
  std::vector<double> power = chi_;               // χ^(2^b)
  std::vector<double> acc;                        // product so far
  bool has_acc = false;
  auto multiply = [n](const std::vector<double>& a,
                      const std::vector<double>& b) {
    std::vector<double> out(n * n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t k = 0; k < n; ++k) {
        double aik = a[i * n + k];
        if (aik == 0.0) continue;
        for (size_t j = 0; j < n; ++j) {
          out[i * n + j] += aik * b[k * n + j];
        }
      }
    }
    return out;
  };
  size_t k = steps;
  while (k > 0) {
    if (k & 1u) {
      acc = has_acc ? multiply(acc, power) : power;
      has_acc = true;
    }
    k >>= 1u;
    if (k > 0) power = multiply(power, power);
  }
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (p[i] == 0.0) continue;
    for (size_t j = 0; j < n; ++j) {
      out[j] += p[i] * acc[i * n + j];
    }
  }
  return out;
}

std::string ConceptStats::ToString() const {
  std::ostringstream out;
  for (size_t c = 0; c < num_concepts(); ++c) {
    out << "concept " << c << ": Len=" << mean_lengths_[c]
        << " Freq=" << frequencies_[c] << "\n";
  }
  return out.str();
}

}  // namespace hom
