#ifndef HOM_HIGHORDER_HMM_H_
#define HOM_HIGHORDER_HMM_H_

#include <vector>

#include "common/result.h"
#include "highorder/concept_stats.h"

namespace hom {

/// \brief The hidden Markov model view of concept-shifting streams that
/// Section III-A sketches and leaves to future work: "To certain extent, we
/// are training a Hidden Markov Model from concept changing data streams...
/// given a sequence of observations, we can use a Viterbi-like algorithm to
/// find the most likely sequence of underlying concepts."
///
/// States are the stable concepts; the transition kernel is χ (Eq. 6); the
/// emission likelihood of a labeled record under concept c is the ψ proxy
/// of Eq. 8 (supplied by the caller as `psi[t][c]`). The online
/// ActiveProbabilityTracker is exactly the forward filter of this model —
/// ConceptHmm adds the offline-capable pieces: Viterbi decoding, smoothed
/// (forward-backward) posteriors, sequence likelihood, and a Baum-Welch
/// refinement of the transition statistics from unsegmented streams.
class ConceptHmm {
 public:
  explicit ConceptHmm(ConceptStats stats);

  size_t num_concepts() const { return stats_.num_concepts(); }
  const ConceptStats& stats() const { return stats_; }

  /// Most likely concept sequence given per-record emission likelihoods
  /// `psi[t][c]` (each row must have num_concepts() entries and at least
  /// one positive value). Uniform initial distribution, log-space dynamic
  /// program.
  Result<std::vector<int>> Viterbi(
      const std::vector<std::vector<double>>& psi) const;

  /// Smoothed posteriors γ[t][c] = p(C_t = c | ψ_1..T) via the scaled
  /// forward-backward recursion. Unlike the online filter, record t's
  /// posterior uses evidence from the *future* too — useful for offline
  /// relabeling of a historical stream.
  Result<std::vector<std::vector<double>>> ForwardBackward(
      const std::vector<std::vector<double>>& psi) const;

  /// Log-likelihood of the emission sequence under the model (scaled
  /// forward pass).
  Result<double> LogLikelihood(
      const std::vector<std::vector<double>>& psi) const;

  /// One Baum-Welch expectation-maximization pass over the sequence:
  /// re-estimates the transition matrix from expected transition counts
  /// and re-derives ConceptStats from it (Len_i = 1/(1 - a_ii); Freq from
  /// the stationary distribution of the jump chain). Returns the refined
  /// model; `this` is unchanged.
  Result<ConceptHmm> BaumWelchStep(
      const std::vector<std::vector<double>>& psi) const;

  /// Converts an arbitrary row-stochastic transition matrix back into the
  /// paper's (Len, Freq) parameterization: Len_i = 1/(1 - a_ii), Freq =
  /// stationary distribution of the occurrence-level jump chain (power
  /// iteration). Exposed for tests and for importing externally learned
  /// transition matrices.
  static Result<ConceptStats> StatsFromTransitionMatrix(
      const std::vector<std::vector<double>>& matrix);

 private:
  Status ValidatePsi(const std::vector<std::vector<double>>& psi) const;
  /// Scaled forward pass; fills alpha (normalized) and per-step scales.
  Status Forward(const std::vector<std::vector<double>>& psi,
                 std::vector<std::vector<double>>* alpha,
                 std::vector<double>* log_scale) const;

  ConceptStats stats_;
};

}  // namespace hom

#endif  // HOM_HIGHORDER_HMM_H_
