#include "highorder/builder.h"

#include "classifiers/evaluation.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace hom {

HighOrderModelBuilder::HighOrderModelBuilder(ClassifierFactory base_factory,
                                             HighOrderBuildConfig config)
    : base_factory_(std::move(base_factory)), config_(config) {
  HOM_CHECK(base_factory_ != nullptr);
}

Result<std::unique_ptr<HighOrderClassifier>> HighOrderModelBuilder::Build(
    const Dataset& history, Rng* rng, HighOrderBuildReport* report) const {
  if (history.size() < 2) {
    return Status::InvalidArgument(
        "historical dataset needs at least 2 records");
  }
  Stopwatch timer;
  obs::PhaseTracer tracer("build");
  obs::ScopedTracer activate(&tracer);
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();

  ConceptClusterer clusterer(base_factory_, config_.clustering);
  DatasetView full(&history);
  HOM_ASSIGN_OR_RETURN(ConceptClusteringResult clustering,
                       clusterer.Cluster(full, rng));

  auto fit_stats = [&]() -> Result<ConceptStats> {
    obs::ScopedSpan span("hmm_fitting");
    return ConceptStats::FromOccurrences(clustering.occurrences,
                                         clustering.concept_data.size());
  };
  HOM_ASSIGN_OR_RETURN(ConceptStats stats, fit_stats());

  // Final per-concept classifiers: by default trained on every record of
  // the concept (all occurrences pooled), with Err_c taken from the
  // clustering holdout so ψ stays an honest error estimate.
  std::vector<ConceptModel> concepts;
  concepts.reserve(clustering.concept_data.size());
  {
    obs::ScopedSpan span("classifier_training");
    for (size_t c = 0; c < clustering.concept_data.size(); ++c) {
      ConceptModel cm;
      cm.training_records = clustering.concept_data[c].size();
      if (config_.train_on_full_data) {
        cm.model = base_factory_(history.schema());
        HOM_RETURN_NOT_OK(cm.model->Train(clustering.concept_data[c]));
        cm.error = clustering.concept_errors[c];
      } else {
        HOM_ASSIGN_OR_RETURN(
            HoldoutModel holdout,
            TrainHoldout(base_factory_, clustering.concept_data[c], rng));
        cm.model = std::move(holdout.model);
        cm.error = holdout.error;
      }
      HOM_COUNTER_INC("hom.build.final_classifiers_trained");
      concepts.push_back(std::move(cm));
    }
  }

  HOM_ASSIGN_OR_RETURN(
      std::unique_ptr<HighOrderClassifier> classifier,
      HighOrderClassifier::Make(history.schema(), std::move(concepts),
                                std::move(stats), config_.options));

  double build_seconds = timer.ElapsedSeconds();
  HOM_COUNTER_INC("hom.build.count");
  HOM_COUNTER_ADD("hom.build.records", history.size());
  HOM_GAUGE_SET("hom.build.last_seconds", build_seconds);

  if (report != nullptr) {
    report->num_records = history.size();
    report->num_chunks = clustering.num_chunks;
    report->num_concepts = clustering.concept_data.size();
    report->build_seconds = build_seconds;
    report->final_q = clustering.final_q;
    report->occurrences = clustering.occurrences;
    report->concept_errors = clustering.concept_errors;
    report->effective_threads = clustering.threads_used;
    report->pool_tasks = clustering.pool_tasks;
    report->concept_sizes.clear();
    for (const DatasetView& v : clustering.concept_data) {
      report->concept_sizes.push_back(v.size());
    }
    report->phases = tracer.root();
    // The tracer's root total includes Snapshot() overhead and report
    // assembly; pin it to the measured build time instead.
    report->phases.seconds = build_seconds;
    report->counters = obs::MetricsRegistry::Global()
                           .Snapshot()
                           .DeltaSince(before)
                           .CountersFlattened();
  }
  return classifier;
}

}  // namespace hom
