#ifndef HOM_HIGHORDER_ACTIVE_PROBABILITY_H_
#define HOM_HIGHORDER_ACTIVE_PROBABILITY_H_

#include <vector>

#include "highorder/concept_stats.h"

namespace hom {

/// \brief The online concept filter of Section III-B: tracks each concept's
/// active probability — P_t−(c) before seeing y_t (Eq. 5) and P_t(c) after
/// (Eqs. 7-9).
///
/// This is the forward pass of an HMM whose states are the stable concepts
/// and whose emission model is the per-concept classifier correctness
/// likelihood ψ (Eq. 8). The tracker itself is emission-agnostic: callers
/// supply ψ(c, y_t) values and it handles propagation + Bayes update.
class ActiveProbabilityTracker {
 public:
  /// Starts at the uniform prior P_1(c) = 1/N (Section III-B).
  explicit ActiveProbabilityTracker(ConceptStats stats);

  /// Prior active probabilities P_t−(c) — the weights Eq. 10 uses to
  /// classify the unlabeled record at time t.
  const std::vector<double>& prior() const { return prior_; }

  /// Posterior active probabilities P_t(c) after the last Observe().
  const std::vector<double>& posterior() const { return posterior_; }

  /// Consumes one labeled record's evidence: `psi[c]` = ψ(c, y_t) from
  /// Eq. 8 (1 - Err_c if M_c classified y_t correctly, else Err_c).
  /// Computes P_t−  from the previous posterior via χ, multiplies in the
  /// evidence, and renormalizes.
  void Observe(const std::vector<double>& psi);

  /// Advances the prior one step without evidence (used when labeled data
  /// stalls but time passes).
  void AdvanceWithoutEvidence();

  /// Consumes evidence that arrives after a `gap`-record silence (the
  /// Section III-B variable-rate setting): the prior is propagated through
  /// all `gap` elapsed ticks before the Bayes update. gap = 1 is Observe().
  void ObserveAfterGap(const std::vector<double>& psi, size_t gap);

  /// Resets to the uniform prior.
  void Reset();

  /// Reinstates the filter state captured in a serving checkpoint
  /// (highorder/checkpoint.h). Both vectors must have num_concepts()
  /// entries of finite, non-negative probabilities with positive mass;
  /// anything else (a corrupt checkpoint) is rejected with an error
  /// Status and the tracker is left untouched.
  Status Restore(std::vector<double> prior, std::vector<double> posterior);

  /// Index of the most probable current concept (by prior).
  size_t MostLikelyConcept() const;

  /// Index of the most probable current concept (by posterior).
  size_t MostLikelyConceptPosterior() const;

  /// Shannon entropy (nats) of the posterior — the model-health signal
  /// behind the "possible novel concept" alert: a posterior that stays
  /// near-uniform means no stored concept explains the stream.
  double PosteriorEntropy() const;

  /// PosteriorEntropy normalized by ln(num_concepts) into [0, 1]
  /// (0 when there is a single concept: a one-state filter is always
  /// certain).
  double PosteriorEntropyRatio() const;

  /// Posterior gap between the two most probable concepts (1.0 with a
  /// single concept): the confidence margin of the active choice.
  double TopConceptMargin() const;

  /// Entropy (nats) of an arbitrary distribution; zero-mass entries
  /// contribute nothing. Exposed for the serving layer to reuse on
  /// distributions it carries around as plain vectors.
  static double Entropy(const std::vector<double>& distribution);

  /// Gap between the largest and second-largest entry (the vector's own
  /// scale; 0 for empty, the single entry's value for size 1).
  static double TopMargin(const std::vector<double>& distribution);

  size_t num_concepts() const { return stats_.num_concepts(); }
  const ConceptStats& stats() const { return stats_; }

 private:
  ConceptStats stats_;
  std::vector<double> prior_;
  std::vector<double> posterior_;
};

}  // namespace hom

#endif  // HOM_HIGHORDER_ACTIVE_PROBABILITY_H_
