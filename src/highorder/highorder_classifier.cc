#include "highorder/highorder_classifier.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/request_timer.h"

namespace hom {

Result<std::unique_ptr<HighOrderClassifier>> HighOrderClassifier::Make(
    SchemaPtr schema, std::vector<ConceptModel> concepts, ConceptStats stats,
    HighOrderOptions options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (concepts.empty()) {
    return Status::InvalidArgument("need at least one concept model");
  }
  if (concepts.size() != stats.num_concepts()) {
    return Status::InvalidArgument(
        "concept count mismatch: " + std::to_string(concepts.size()) +
        " models vs " + std::to_string(stats.num_concepts()) + " stats");
  }
  for (const ConceptModel& c : concepts) {
    if (c.model == nullptr) {
      return Status::InvalidArgument("concept model must not be null");
    }
    if (!std::isfinite(c.error) || c.error < 0.0 || c.error > 1.0) {
      return Status::InvalidArgument("concept error must be in [0, 1]");
    }
  }
  return std::unique_ptr<HighOrderClassifier>(new HighOrderClassifier(
      std::move(schema), std::move(concepts), std::move(stats), options));
}

HighOrderClassifier::HighOrderClassifier(SchemaPtr schema,
                                         std::vector<ConceptModel> concepts,
                                         ConceptStats stats,
                                         HighOrderOptions options)
    : schema_(std::move(schema)),
      concepts_(std::move(concepts)),
      tracker_(std::move(stats)),
      options_(options),
      sanitizer_(schema_),
      until_latency_sample_(options.latency_sample_period) {
  weights_ = tracker_.prior();
  weight_order_.resize(concepts_.size());
  std::iota(weight_order_.begin(), weight_order_.end(), 0);
}

void HighOrderClassifier::ObserveLabeled(const Record& y) {
  Record fixed;
  bool use_fixed = false;
  {
    // The hardening work (clean check / repair / distribution update) is
    // the request's sanitize stage; learning proper stays in observe.
    obs::ScopedRequestStage sanitize(obs::RequestStage::kSanitize);
    if (!y.is_labeled() || !sanitizer_.IsClean(y)) {
      if (y.is_labeled() &&
          input_policy_ == InputPolicy::kImputeMajority) {
        fixed = y;
        InputSanitizer::Report repair = sanitizer_.Repair(&fixed);
        if (repair.arity_ok) {
          HOM_COUNTER_INC("hom.online.input_imputed");
          obs::EmitIfActive(
              obs::EventType::kInputImputed, "highorder",
              static_cast<int64_t>(observations_), -1, -1,
              static_cast<double>(repair.repaired_fields +
                                  (repair.label_repaired ? 1 : 0)));
          use_fixed = true;
        }
      }
      if (!use_fixed) {
        // kError behaves like kSkip here: ObserveLabeled has no caller to
        // hand a Status to, so strictness is enforced at ingest (ReadCsv)
        // and the serving loop degrades to "drop and count" instead of
        // aborting.
        HOM_COUNTER_INC("hom.online.input_rejected");
        obs::EmitIfActive(obs::EventType::kInputRejected, "highorder",
                          static_cast<int64_t>(observations_), -1, -1, 0.0);
        return;
      }
    } else {
      sanitizer_.Learn(y);
    }
  }
  ObserveLabeledClean(use_fixed ? fixed : y);
}

void HighOrderClassifier::ObserveLabeledClean(const Record& y) {
  // ψ(c, y_t) of Eq. 8: the concept's classifier vouches for the record
  // with probability 1 - Err_c when it gets it right, Err_c otherwise.
  std::vector<double> psi(concepts_.size());
  for (size_t c = 0; c < concepts_.size(); ++c) {
    bool correct = concepts_[c].model->Predict(y) == y.label;
    psi[c] = correct ? 1.0 - concepts_[c].error : concepts_[c].error;
  }
  tracker_.Observe(psi);
  weights_stale_ = true;
  ++observations_;
  HOM_COUNTER_INC("hom.online.observations");
  HOM_COUNTER_ADD("hom.online.psi_evaluations", concepts_.size());
}

void HighOrderClassifier::RefreshWeights() {
  if (!weights_stale_) return;
  weights_stale_ = false;
  // Eq. 10 weighs by the prior P_t− of the *next* timestamp, i.e. the
  // propagated posterior; the ablation flag weighs by the posterior P_t.
  if (options_.weight_by_prior) {
    weights_ = tracker_.stats().Propagate(tracker_.posterior());
  } else {
    weights_ = tracker_.posterior();
  }
  std::iota(weight_order_.begin(), weight_order_.end(), 0);
  std::sort(weight_order_.begin(), weight_order_.end(),
            [&](size_t a, size_t b) { return weights_[a] > weights_[b]; });
  if (weight_order_.empty()) return;
  size_t top = weight_order_[0];
  double top_weight = weights_[top];
  int64_t record = static_cast<int64_t>(observations_);
  if (options_.weight_by_prior) {
    // When the weights come from the propagated prior, a weight argmax that
    // disagrees with the posterior argmax is the Markov chain predicting the
    // next concept ahead of the evidence — the paper's proactive adaptation.
    const std::vector<double>& post = tracker_.posterior();
    size_t post_top = static_cast<size_t>(
        std::max_element(post.begin(), post.end()) - post.begin());
    if (top != post_top) {
      obs::EmitIfActive(obs::EventType::kHmmPrediction, "highorder", record,
                        static_cast<int64_t>(post_top),
                        static_cast<int64_t>(top), top_weight);
    }
  }
  if (last_top_concept_ != static_cast<size_t>(-1) &&
      top != last_top_concept_) {
    // A switch confirms the drift whether or not the weight dipped first;
    // emit the suspicion late if the hysteresis never caught it so a
    // ConceptSwitch is always preceded by a DriftSuspected/Confirmed pair.
    if (!drift_suspected_) {
      obs::EmitIfActive(obs::EventType::kDriftSuspected, "highorder", record,
                        static_cast<int64_t>(last_top_concept_), -1,
                        top_weight);
    }
    obs::EmitIfActive(obs::EventType::kDriftConfirmed, "highorder", record,
                      static_cast<int64_t>(last_top_concept_),
                      static_cast<int64_t>(top), top_weight);
    obs::EmitIfActive(obs::EventType::kConceptSwitch, "highorder", record,
                      static_cast<int64_t>(last_top_concept_),
                      static_cast<int64_t>(top), top_weight);
    drift_suspected_ = false;
    HOM_COUNTER_INC("hom.online.concept_switches");
#ifndef HOM_DISABLE_METRICS
    // Per-destination breakdown of the aggregate above. Switches fire at
    // concept-transition granularity, so the WithLabels mutex is nowhere
    // near the hot path; the label value set is bounded by the (small,
    // fixed) concept count.
    obs::MetricsRegistry::Global()
        .GetCounterFamily("hom.online.concept_switches")
        ->WithLabels({{"concept", std::to_string(top)}})
        ->Add();
#endif
  } else if (!drift_suspected_ && top_weight < options_.drift_suspect_weight) {
    obs::EmitIfActive(obs::EventType::kDriftSuspected, "highorder", record,
                      static_cast<int64_t>(top), -1, top_weight);
    drift_suspected_ = true;
    drift_suspected_since_ = observations_;
  } else if (drift_suspected_ && top_weight >= options_.drift_clear_weight) {
    // The incumbent recovered its grip; withdraw the suspicion silently.
    drift_suspected_ = false;
  }
  last_top_concept_ = top;
}

HighOrderRuntimeState HighOrderClassifier::ExportRuntimeState() const {
  HighOrderRuntimeState state;
  state.prior = tracker_.prior();
  state.posterior = tracker_.posterior();
  state.weights = weights_;
  state.weights_stale = weights_stale_;
  state.base_evaluations = base_evaluations_;
  state.predictions = predictions_;
  state.observations = observations_;
  state.last_top_concept = last_top_concept_ == static_cast<size_t>(-1)
                               ? -1
                               : static_cast<int64_t>(last_top_concept_);
  state.drift_suspected = drift_suspected_;
  state.until_latency_sample = until_latency_sample_;
  state.last_prediction = static_cast<int32_t>(last_prediction_);
  return state;
}

Status HighOrderClassifier::RestoreRuntimeState(
    const HighOrderRuntimeState& state) {
  size_t n = concepts_.size();
  if (state.weights.size() != n) {
    return Status::InvalidArgument(
        "checkpoint weights sized for " + std::to_string(state.weights.size()) +
        " concepts, model has " + std::to_string(n));
  }
  for (double w : state.weights) {
    if (!std::isfinite(w) || w < 0.0 || w > 1.0) {
      return Status::InvalidArgument(
          "checkpoint prediction weight outside [0, 1]");
    }
  }
  if (state.last_top_concept < -1 ||
      state.last_top_concept >= static_cast<int64_t>(n)) {
    return Status::InvalidArgument("checkpoint top concept out of range");
  }
  if (state.last_prediction < 0 ||
      static_cast<size_t>(state.last_prediction) >= schema_->num_classes()) {
    return Status::InvalidArgument(
        "checkpoint fallback prediction out of range");
  }
  // Validates prior/posterior; on failure the tracker (and therefore the
  // whole classifier) is untouched.
  HOM_RETURN_NOT_OK(tracker_.Restore(state.prior, state.posterior));
  weights_ = state.weights;
  weights_stale_ = state.weights_stale;
  // Re-derive the pruning order exactly as RefreshWeights would have left
  // it: same iota + sort over the same weights yields the same permutation.
  std::iota(weight_order_.begin(), weight_order_.end(), 0);
  std::sort(weight_order_.begin(), weight_order_.end(),
            [&](size_t a, size_t b) { return weights_[a] > weights_[b]; });
  base_evaluations_ = state.base_evaluations;
  predictions_ = state.predictions;
  observations_ = state.observations;
  last_top_concept_ = state.last_top_concept < 0
                          ? static_cast<size_t>(-1)
                          : static_cast<size_t>(state.last_top_concept);
  drift_suspected_ = state.drift_suspected;
  // The suspicion-start offset is not checkpointed; restart the dwell
  // clock at the restore point (monitoring-only divergence).
  drift_suspected_since_ = observations_;
  until_latency_sample_ = state.until_latency_sample;
  last_prediction_ = static_cast<Label>(state.last_prediction);
  return Status::OK();
}

Result<std::string> HighOrderClassifier::ExportSanitizerState() const {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(&out);
  HOM_RETURN_NOT_OK(sanitizer_.SaveTo(&writer));
  return std::move(out).str();
}

Status HighOrderClassifier::RestoreSanitizerState(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader reader(&in);
  HOM_RETURN_NOT_OK(sanitizer_.RestoreFrom(&reader));
  if (!reader.AtEof()) {
    return Status::InvalidArgument("sanitizer state has trailing bytes");
  }
  return Status::OK();
}

int64_t HighOrderClassifier::ActiveConcept() const {
  return last_top_concept_ == static_cast<size_t>(-1)
             ? -1
             : static_cast<int64_t>(last_top_concept_);
}

void HighOrderClassifier::ExportServingStatus(
    ServingStatusBoard::Progress* progress) const {
  progress->active_concept = ActiveConcept();
  progress->prior = tracker_.prior();
  progress->posterior = tracker_.posterior();
  progress->posterior_entropy = tracker_.PosteriorEntropy();
  progress->posterior_entropy_ratio = tracker_.PosteriorEntropyRatio();
  progress->top_concept_margin = tracker_.TopConceptMargin();
  progress->drift_suspected = drift_suspected_;
  progress->drift_dwell =
      drift_suspected_ ? observations_ - drift_suspected_since_ : 0;
}

void HighOrderClassifier::set_latency_sample_period(size_t period) {
  options_.latency_sample_period = period;
  until_latency_sample_ = period;
}

const std::vector<double>& HighOrderClassifier::active_probabilities() {
  RefreshWeights();
  return weights_;
}

std::vector<double> HighOrderClassifier::PredictProba(const Record& x) {
  RefreshWeights();
  std::vector<double> proba(schema_->num_classes(), 0.0);
  for (size_t c = 0; c < concepts_.size(); ++c) {
    if (weights_[c] <= 0.0) continue;
    std::vector<double> mc = concepts_[c].model->PredictProba(x);
    ++base_evaluations_;
    HOM_COUNTER_INC("hom.online.base_evaluations");
    for (size_t l = 0; l < proba.size(); ++l) {
      proba[l] += weights_[c] * mc[l];
    }
  }
  return proba;
}

Label HighOrderClassifier::Predict(const Record& x) {
  Record fixed;
  bool use_fixed = false;
  {
    obs::ScopedRequestStage sanitize(obs::RequestStage::kSanitize);
    if (!sanitizer_.IsClean(x)) {
      // A prediction must always answer; repair what can be repaired
      // regardless of policy (the policy governs what *learns*, not what
      // the service returns).
      fixed = x;
      InputSanitizer::Report repair = sanitizer_.Repair(&fixed);
      if (!repair.arity_ok) {
        HOM_COUNTER_INC("hom.online.input_rejected");
        obs::EmitIfActive(obs::EventType::kInputRejected, "highorder",
                          static_cast<int64_t>(observations_), -1, -1, 0.0);
        return last_prediction_;
      }
      HOM_COUNTER_INC("hom.online.input_imputed");
      obs::EmitIfActive(obs::EventType::kInputImputed, "highorder",
                        static_cast<int64_t>(observations_), -1, -1,
                        static_cast<double>(repair.repaired_fields));
      use_fixed = true;
    }
  }
  last_prediction_ = PredictClean(use_fixed ? fixed : x);
  return last_prediction_;
}

Label HighOrderClassifier::PredictClean(const Record& x) {
  ++predictions_;
#ifndef HOM_DISABLE_METRICS
  // Sampled latency: timing every record would cost two clock reads per
  // prediction, which alone can break the <5% overhead budget on cheap
  // base models. Every latency_sample_period-th call (default 64) is
  // plenty for a stable histogram; 0 disables the clock entirely.
  if (options_.latency_sample_period != 0 && --until_latency_sample_ == 0) {
    until_latency_sample_ = options_.latency_sample_period;
    Stopwatch sw;
    Label out = PredictImpl(x);
    HOM_HISTOGRAM_RECORD("hom.online.predict_latency_us",
                         sw.ElapsedSeconds() * 1e6,
                         ::hom::obs::Histogram::DefaultLatencyBoundsUs());
    return out;
  }
#endif
  return PredictImpl(x);
}

Label HighOrderClassifier::PredictImpl(const Record& x) {
  RefreshWeights();
  if (!options_.prune_prediction) {
    std::vector<double> proba = PredictProba(x);
    return static_cast<Label>(
        std::max_element(proba.begin(), proba.end()) - proba.begin());
  }
  // Section III-C pruning: walk concepts from the most to the least active.
  // After consuming probability mass `seen`, no trailing concept can add
  // more than (1 - seen) to any class score; once the leader's margin over
  // the runner-up exceeds that, the answer is final. With a clear current
  // concept this evaluates a single base classifier.
  std::vector<double> proba(schema_->num_classes(), 0.0);
  double seen = 0.0;
  for (size_t rank = 0; rank < weight_order_.size(); ++rank) {
    size_t c = weight_order_[rank];
    if (weights_[c] <= 0.0) break;  // sorted: the rest are zero too
    std::vector<double> mc = concepts_[c].model->PredictProba(x);
    ++base_evaluations_;
    HOM_COUNTER_INC("hom.online.base_evaluations");
    for (size_t l = 0; l < proba.size(); ++l) {
      proba[l] += weights_[c] * mc[l];
    }
    seen += weights_[c];
    double remaining = 1.0 - seen;
    if (remaining <= 0.0) break;
    double best = -1.0;
    double second = -1.0;
    for (double p : proba) {
      if (p > best) {
        second = best;
        best = p;
      } else if (p > second) {
        second = p;
      }
    }
    if (best - second > remaining) break;
  }
  return static_cast<Label>(std::max_element(proba.begin(), proba.end()) -
                            proba.begin());
}

}  // namespace hom
