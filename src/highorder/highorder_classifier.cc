#include "highorder/highorder_classifier.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "classifiers/compiled_tree.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/request_timer.h"

namespace hom {

Result<std::unique_ptr<HighOrderClassifier>> HighOrderClassifier::Make(
    SchemaPtr schema, std::vector<ConceptModel> concepts, ConceptStats stats,
    HighOrderOptions options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (concepts.empty()) {
    return Status::InvalidArgument("need at least one concept model");
  }
  if (concepts.size() != stats.num_concepts()) {
    return Status::InvalidArgument(
        "concept count mismatch: " + std::to_string(concepts.size()) +
        " models vs " + std::to_string(stats.num_concepts()) + " stats");
  }
  for (const ConceptModel& c : concepts) {
    if (c.model == nullptr) {
      return Status::InvalidArgument("concept model must not be null");
    }
    if (!std::isfinite(c.error) || c.error < 0.0 || c.error > 1.0) {
      return Status::InvalidArgument("concept error must be in [0, 1]");
    }
  }
  return std::unique_ptr<HighOrderClassifier>(new HighOrderClassifier(
      std::move(schema), std::move(concepts), std::move(stats), options));
}

HighOrderClassifier::HighOrderClassifier(SchemaPtr schema,
                                         std::vector<ConceptModel> concepts,
                                         ConceptStats stats,
                                         HighOrderOptions options)
    : schema_(std::move(schema)),
      concepts_(std::move(concepts)),
      tracker_(std::move(stats)),
      options_(options),
      sanitizer_(schema_),
      until_latency_sample_(options.latency_sample_period) {
  weights_ = tracker_.prior();
  weight_order_.resize(concepts_.size());
  std::iota(weight_order_.begin(), weight_order_.end(), 0);
  // Concept models are frozen after the offline build, so their trees can
  // be flattened once here and served from the compiled form for the whole
  // online phase. Models without a compilable form (naive Bayes, NB-leaf
  // Hoeffding trees) keep a null entry and go through the virtual path.
  compiled_.assign(concepts_.size(), nullptr);
  if (options_.use_compiled_kernels) {
    for (size_t c = 0; c < concepts_.size(); ++c) {
      concepts_[c].model->EnsureCompiled();
      compiled_[c] = concepts_[c].model->compiled();
    }
  }
}

void HighOrderClassifier::ObserveLabeled(const Record& y) {
  Record fixed;
  bool use_fixed = false;
  {
    // The hardening work (clean check / repair / distribution update) is
    // the request's sanitize stage; learning proper stays in observe.
    obs::ScopedRequestStage sanitize(obs::RequestStage::kSanitize);
    if (!y.is_labeled() || !sanitizer_.IsClean(y)) {
      if (y.is_labeled() &&
          input_policy_ == InputPolicy::kImputeMajority) {
        fixed = y;
        InputSanitizer::Report repair = sanitizer_.Repair(&fixed);
        if (repair.arity_ok) {
          HOM_COUNTER_INC("hom.online.input_imputed");
          obs::EmitIfActive(
              obs::EventType::kInputImputed, "highorder",
              static_cast<int64_t>(observations_), -1, -1,
              static_cast<double>(repair.repaired_fields +
                                  (repair.label_repaired ? 1 : 0)));
          use_fixed = true;
        }
      }
      if (!use_fixed) {
        // kError behaves like kSkip here: ObserveLabeled has no caller to
        // hand a Status to, so strictness is enforced at ingest (ReadCsv)
        // and the serving loop degrades to "drop and count" instead of
        // aborting.
        HOM_COUNTER_INC("hom.online.input_rejected");
        obs::EmitIfActive(obs::EventType::kInputRejected, "highorder",
                          static_cast<int64_t>(observations_), -1, -1, 0.0);
        return;
      }
    } else {
      sanitizer_.Learn(y);
    }
  }
  ObserveLabeledClean(use_fixed ? fixed : y);
}

void HighOrderClassifier::ObserveLabeledClean(const Record& y) {
  // ψ(c, y_t) of Eq. 8: the concept's classifier vouches for the record
  // with probability 1 - Err_c when it gets it right, Err_c otherwise.
  std::vector<double> psi(concepts_.size());
  for (size_t c = 0; c < concepts_.size(); ++c) {
    Label guess = compiled_[c] != nullptr ? compiled_[c]->Predict(y)
                                          : concepts_[c].model->Predict(y);
    psi[c] = guess == y.label ? 1.0 - concepts_[c].error : concepts_[c].error;
  }
  tracker_.Observe(psi);
  weights_stale_ = true;
  ++observations_;
  HOM_COUNTER_INC("hom.online.observations");
  HOM_COUNTER_ADD("hom.online.psi_evaluations", concepts_.size());
}

void HighOrderClassifier::RefreshWeights() {
  if (!weights_stale_) return;
  weights_stale_ = false;
  // Eq. 10 weighs by the prior P_t− of the *next* timestamp, i.e. the
  // propagated posterior; the ablation flag weighs by the posterior P_t.
  if (options_.weight_by_prior) {
    weights_ = tracker_.stats().Propagate(tracker_.posterior());
  } else {
    weights_ = tracker_.posterior();
  }
  std::iota(weight_order_.begin(), weight_order_.end(), 0);
  std::sort(weight_order_.begin(), weight_order_.end(),
            [&](size_t a, size_t b) { return weights_[a] > weights_[b]; });
  if (weight_order_.empty()) return;
  size_t top = weight_order_[0];
  double top_weight = weights_[top];
  int64_t record = static_cast<int64_t>(observations_);
  if (options_.weight_by_prior) {
    // When the weights come from the propagated prior, a weight argmax that
    // disagrees with the posterior argmax is the Markov chain predicting the
    // next concept ahead of the evidence — the paper's proactive adaptation.
    const std::vector<double>& post = tracker_.posterior();
    size_t post_top = static_cast<size_t>(
        std::max_element(post.begin(), post.end()) - post.begin());
    if (top != post_top) {
      obs::EmitIfActive(obs::EventType::kHmmPrediction, "highorder", record,
                        static_cast<int64_t>(post_top),
                        static_cast<int64_t>(top), top_weight);
    }
  }
  if (last_top_concept_ != static_cast<size_t>(-1) &&
      top != last_top_concept_) {
    // A switch confirms the drift whether or not the weight dipped first;
    // emit the suspicion late if the hysteresis never caught it so a
    // ConceptSwitch is always preceded by a DriftSuspected/Confirmed pair.
    if (!drift_suspected_) {
      obs::EmitIfActive(obs::EventType::kDriftSuspected, "highorder", record,
                        static_cast<int64_t>(last_top_concept_), -1,
                        top_weight);
    }
    obs::EmitIfActive(obs::EventType::kDriftConfirmed, "highorder", record,
                      static_cast<int64_t>(last_top_concept_),
                      static_cast<int64_t>(top), top_weight);
    obs::EmitIfActive(obs::EventType::kConceptSwitch, "highorder", record,
                      static_cast<int64_t>(last_top_concept_),
                      static_cast<int64_t>(top), top_weight);
    drift_suspected_ = false;
    HOM_COUNTER_INC("hom.online.concept_switches");
#ifndef HOM_DISABLE_METRICS
    // Per-destination breakdown of the aggregate above. Switches fire at
    // concept-transition granularity, so the WithLabels mutex is nowhere
    // near the hot path; the label value set is bounded by the (small,
    // fixed) concept count.
    obs::MetricsRegistry::Global()
        .GetCounterFamily("hom.online.concept_switches")
        ->WithLabels({{"concept", std::to_string(top)}})
        ->Add();
#endif
  } else if (!drift_suspected_ && top_weight < options_.drift_suspect_weight) {
    obs::EmitIfActive(obs::EventType::kDriftSuspected, "highorder", record,
                      static_cast<int64_t>(top), -1, top_weight);
    drift_suspected_ = true;
    drift_suspected_since_ = observations_;
  } else if (drift_suspected_ && top_weight >= options_.drift_clear_weight) {
    // The incumbent recovered its grip; withdraw the suspicion silently.
    drift_suspected_ = false;
  }
  last_top_concept_ = top;
}

HighOrderRuntimeState HighOrderClassifier::ExportRuntimeState() const {
  HighOrderRuntimeState state;
  state.prior = tracker_.prior();
  state.posterior = tracker_.posterior();
  state.weights = weights_;
  state.weights_stale = weights_stale_;
  state.base_evaluations = base_evaluations_;
  state.predictions = predictions_;
  state.observations = observations_;
  state.last_top_concept = last_top_concept_ == static_cast<size_t>(-1)
                               ? -1
                               : static_cast<int64_t>(last_top_concept_);
  state.drift_suspected = drift_suspected_;
  state.until_latency_sample = until_latency_sample_;
  state.last_prediction = static_cast<int32_t>(last_prediction_);
  return state;
}

Status HighOrderClassifier::RestoreRuntimeState(
    const HighOrderRuntimeState& state) {
  size_t n = concepts_.size();
  if (state.weights.size() != n) {
    return Status::InvalidArgument(
        "checkpoint weights sized for " + std::to_string(state.weights.size()) +
        " concepts, model has " + std::to_string(n));
  }
  for (double w : state.weights) {
    if (!std::isfinite(w) || w < 0.0 || w > 1.0) {
      return Status::InvalidArgument(
          "checkpoint prediction weight outside [0, 1]");
    }
  }
  if (state.last_top_concept < -1 ||
      state.last_top_concept >= static_cast<int64_t>(n)) {
    return Status::InvalidArgument("checkpoint top concept out of range");
  }
  if (state.last_prediction < 0 ||
      static_cast<size_t>(state.last_prediction) >= schema_->num_classes()) {
    return Status::InvalidArgument(
        "checkpoint fallback prediction out of range");
  }
  // Validates prior/posterior; on failure the tracker (and therefore the
  // whole classifier) is untouched.
  HOM_RETURN_NOT_OK(tracker_.Restore(state.prior, state.posterior));
  weights_ = state.weights;
  weights_stale_ = state.weights_stale;
  // Re-derive the pruning order exactly as RefreshWeights would have left
  // it: same iota + sort over the same weights yields the same permutation.
  std::iota(weight_order_.begin(), weight_order_.end(), 0);
  std::sort(weight_order_.begin(), weight_order_.end(),
            [&](size_t a, size_t b) { return weights_[a] > weights_[b]; });
  base_evaluations_ = state.base_evaluations;
  predictions_ = state.predictions;
  observations_ = state.observations;
  last_top_concept_ = state.last_top_concept < 0
                          ? static_cast<size_t>(-1)
                          : static_cast<size_t>(state.last_top_concept);
  drift_suspected_ = state.drift_suspected;
  // The suspicion-start offset is not checkpointed; restart the dwell
  // clock at the restore point (monitoring-only divergence).
  drift_suspected_since_ = observations_;
  until_latency_sample_ = state.until_latency_sample;
  last_prediction_ = static_cast<Label>(state.last_prediction);
  return Status::OK();
}

Result<std::string> HighOrderClassifier::ExportSanitizerState() const {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(&out);
  HOM_RETURN_NOT_OK(sanitizer_.SaveTo(&writer));
  return std::move(out).str();
}

Status HighOrderClassifier::RestoreSanitizerState(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader reader(&in);
  HOM_RETURN_NOT_OK(sanitizer_.RestoreFrom(&reader));
  if (!reader.AtEof()) {
    return Status::InvalidArgument("sanitizer state has trailing bytes");
  }
  return Status::OK();
}

int64_t HighOrderClassifier::ActiveConcept() const {
  return last_top_concept_ == static_cast<size_t>(-1)
             ? -1
             : static_cast<int64_t>(last_top_concept_);
}

void HighOrderClassifier::ExportServingStatus(
    ServingStatusBoard::Progress* progress) const {
  progress->active_concept = ActiveConcept();
  progress->prior = tracker_.prior();
  progress->posterior = tracker_.posterior();
  progress->posterior_entropy = tracker_.PosteriorEntropy();
  progress->posterior_entropy_ratio = tracker_.PosteriorEntropyRatio();
  progress->top_concept_margin = tracker_.TopConceptMargin();
  progress->drift_suspected = drift_suspected_;
  progress->drift_dwell =
      drift_suspected_ ? observations_ - drift_suspected_since_ : 0;
}

void HighOrderClassifier::set_latency_sample_period(size_t period) {
  options_.latency_sample_period = period;
  until_latency_sample_ = period;
}

const std::vector<double>& HighOrderClassifier::active_probabilities() {
  RefreshWeights();
  return weights_;
}

void HighOrderClassifier::ConceptProbaInto(size_t c, const Record& x,
                                           std::vector<double>* mc) {
  if (compiled_[c] != nullptr) {
    compiled_[c]->PredictProbaInto(x, mc);
  } else if (options_.use_compiled_kernels) {
    concepts_[c].model->PredictProbaInto(x, mc);
  } else {
    // Ablation/bench baseline: the exact pre-kernel hot path, per-call
    // allocation included.
    *mc = concepts_[c].model->PredictProba(x);
  }
}

std::vector<double> HighOrderClassifier::PredictProba(const Record& x) {
  std::vector<double> proba;
  PredictProbaInto(x, &proba);
  return proba;
}

void HighOrderClassifier::PredictProbaInto(const Record& x,
                                           std::vector<double>* proba) {
  RefreshWeights();
  proba->assign(schema_->num_classes(), 0.0);
  size_t evaluated = 0;
  for (size_t c = 0; c < concepts_.size(); ++c) {
    if (weights_[c] <= 0.0) continue;
    ConceptProbaInto(c, x, &mc_scratch_);
    ++evaluated;
    for (size_t l = 0; l < proba->size(); ++l) {
      (*proba)[l] += weights_[c] * mc_scratch_[l];
    }
  }
  base_evaluations_ += evaluated;
  HOM_COUNTER_ADD("hom.online.base_evaluations", evaluated);
  HOM_COUNTER_ADD("hom.predict.concepts_skipped_total",
                  concepts_.size() - evaluated);
}

Label HighOrderClassifier::Predict(const Record& x) {
  Record fixed;
  bool use_fixed = false;
  {
    obs::ScopedRequestStage sanitize(obs::RequestStage::kSanitize);
    if (!sanitizer_.IsClean(x)) {
      // A prediction must always answer; repair what can be repaired
      // regardless of policy (the policy governs what *learns*, not what
      // the service returns).
      fixed = x;
      InputSanitizer::Report repair = sanitizer_.Repair(&fixed);
      if (!repair.arity_ok) {
        HOM_COUNTER_INC("hom.online.input_rejected");
        obs::EmitIfActive(obs::EventType::kInputRejected, "highorder",
                          static_cast<int64_t>(observations_), -1, -1, 0.0);
        return last_prediction_;
      }
      HOM_COUNTER_INC("hom.online.input_imputed");
      obs::EmitIfActive(obs::EventType::kInputImputed, "highorder",
                        static_cast<int64_t>(observations_), -1, -1,
                        static_cast<double>(repair.repaired_fields));
      use_fixed = true;
    }
  }
  last_prediction_ = PredictClean(use_fixed ? fixed : x);
  return last_prediction_;
}

Label HighOrderClassifier::PredictClean(const Record& x) {
  ++predictions_;
#ifndef HOM_DISABLE_METRICS
  // Sampled latency: timing every record would cost two clock reads per
  // prediction, which alone can break the <5% overhead budget on cheap
  // base models. Every latency_sample_period-th call (default 64) is
  // plenty for a stable histogram; 0 disables the clock entirely.
  if (options_.latency_sample_period != 0 && --until_latency_sample_ == 0) {
    until_latency_sample_ = options_.latency_sample_period;
    Stopwatch sw;
    Label out = PredictImpl(x);
    HOM_HISTOGRAM_RECORD("hom.online.predict_latency_us",
                         sw.ElapsedSeconds() * 1e6,
                         ::hom::obs::Histogram::DefaultLatencyBoundsUs());
    return out;
  }
#endif
  return PredictImpl(x);
}

Label HighOrderClassifier::PredictImpl(const Record& x) {
  RefreshWeights();
  if (!options_.prune_prediction) {
    PredictProbaInto(x, &proba_scratch_);
    return static_cast<Label>(
        std::max_element(proba_scratch_.begin(), proba_scratch_.end()) -
        proba_scratch_.begin());
  }
  // Section III-C pruning: walk concepts from the most to the least active.
  // After consuming probability mass `seen`, no trailing concept can add
  // more than (1 - seen) to any class score; once the leader's margin over
  // the runner-up exceeds that, the answer is final. With a clear current
  // concept this evaluates a single base classifier.
  std::vector<double>& proba = proba_scratch_;
  proba.assign(schema_->num_classes(), 0.0);
  double seen = 0.0;
  size_t evaluated = 0;
  for (size_t rank = 0; rank < weight_order_.size(); ++rank) {
    size_t c = weight_order_[rank];
    if (weights_[c] <= 0.0) break;  // sorted: the rest are zero too
    ConceptProbaInto(c, x, &mc_scratch_);
    ++evaluated;
    for (size_t l = 0; l < proba.size(); ++l) {
      proba[l] += weights_[c] * mc_scratch_[l];
    }
    seen += weights_[c];
    double remaining = 1.0 - seen;
    if (remaining <= 0.0) break;
    double best = -1.0;
    double second = -1.0;
    for (double p : proba) {
      if (p > best) {
        second = best;
        best = p;
      } else if (p > second) {
        second = p;
      }
    }
    if (best - second > remaining) break;
  }
  base_evaluations_ += evaluated;
  HOM_COUNTER_ADD("hom.online.base_evaluations", evaluated);
  HOM_COUNTER_ADD("hom.predict.concepts_skipped_total",
                  concepts_.size() - evaluated);
  return static_cast<Label>(std::max_element(proba.begin(), proba.end()) -
                            proba.begin());
}

void HighOrderClassifier::AccumulateConceptBatch(size_t c,
                                                 const Record* records,
                                                 const uint32_t* idx,
                                                 size_t count,
                                                 size_t num_classes) {
  const double w = weights_[c];
  if (compiled_[c] != nullptr) {
    compiled_[c]->AccumulateProbaBatch(records, idx, count, w, num_classes,
                                       batch_proba_.data());
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    const Record& x = records[idx[i]];
    ConceptProbaInto(c, x, &mc_scratch_);
    double* row = batch_proba_.data() + static_cast<size_t>(idx[i]) * num_classes;
    for (size_t l = 0; l < num_classes; ++l) {
      row[l] += w * mc_scratch_[l];
    }
  }
}

void HighOrderClassifier::PredictBatch(const Record* records, size_t n,
                                       Label* out) {
  if (n == 0) return;
  bool all_clean = true;
  {
    obs::ScopedRequestStage sanitize(obs::RequestStage::kSanitize);
    for (size_t i = 0; i < n; ++i) {
      if (!sanitizer_.IsClean(records[i])) {
        all_clean = false;
        break;
      }
    }
  }
  if (!all_clean) {
    // Repair/fallback handling is per-record business; let the scalar
    // entry point deal with it for the whole batch.
    for (size_t i = 0; i < n; ++i) out[i] = Predict(records[i]);
    return;
  }
  RefreshWeights();
  const size_t num_classes = schema_->num_classes();
  batch_proba_.assign(n * num_classes, 0.0);
  size_t evaluated = 0;
  if (!options_.prune_prediction) {
    // Full mixture, concepts in index order — the same accumulation order
    // as PredictProbaInto, one sweep over the batch per concept.
    batch_active_.resize(n);
    std::iota(batch_active_.begin(), batch_active_.end(), 0u);
    for (size_t c = 0; c < concepts_.size(); ++c) {
      if (weights_[c] <= 0.0) continue;
      AccumulateConceptBatch(c, records, batch_active_.data(), n, num_classes);
      evaluated += n;
    }
  } else {
    // Section III-C pruning, batched: concepts go most-active-first and the
    // undecided-record list shrinks after each sweep. A record leaves the
    // list exactly when the scalar loop would have broken for it, so the
    // per-record evaluation sets (and sums, bit for bit) match Predict().
    batch_active_.resize(n);
    std::iota(batch_active_.begin(), batch_active_.end(), 0u);
    double seen = 0.0;
    for (size_t rank = 0;
         rank < weight_order_.size() && !batch_active_.empty(); ++rank) {
      size_t c = weight_order_[rank];
      if (weights_[c] <= 0.0) break;  // sorted: the rest are zero too
      AccumulateConceptBatch(c, records, batch_active_.data(),
                             batch_active_.size(), num_classes);
      evaluated += batch_active_.size();
      seen += weights_[c];
      double remaining = 1.0 - seen;
      if (remaining <= 0.0) break;
      size_t kept = 0;
      for (uint32_t r : batch_active_) {
        const double* row =
            batch_proba_.data() + static_cast<size_t>(r) * num_classes;
        double best = -1.0;
        double second = -1.0;
        for (size_t l = 0; l < num_classes; ++l) {
          double p = row[l];
          if (p > best) {
            second = best;
            best = p;
          } else if (p > second) {
            second = p;
          }
        }
        if (!(best - second > remaining)) batch_active_[kept++] = r;
      }
      batch_active_.resize(kept);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const double* row = batch_proba_.data() + i * num_classes;
    size_t best = 0;
    for (size_t l = 1; l < num_classes; ++l) {
      if (row[l] > row[best]) best = l;
    }
    out[i] = static_cast<Label>(best);
  }
  predictions_ += n;
  last_prediction_ = out[n - 1];
  base_evaluations_ += evaluated;
  HOM_COUNTER_ADD("hom.online.base_evaluations", evaluated);
  HOM_COUNTER_ADD("hom.predict.batch_records", n);
  HOM_COUNTER_ADD("hom.predict.concepts_skipped_total",
                  n * concepts_.size() - evaluated);
}

}  // namespace hom
