#ifndef HOM_HIGHORDER_UNCERTAINTY_LABELING_H_
#define HOM_HIGHORDER_UNCERTAINTY_LABELING_H_

#include <string>

#include "common/rng.h"
#include "eval/selective_labeling.h"
#include "highorder/highorder_classifier.h"

namespace hom {

/// Tuning of the uncertainty-driven labeling policy.
struct UncertaintyLabelingConfig {
  /// Request labels while the normalized entropy of the concept posterior
  /// exceeds this threshold (0 = always certain, 1 = uniform). Set high
  /// enough that only genuine ambiguity (not residual tail mass) spends
  /// budget; the surprise burst handles resolution speed.
  double entropy_threshold = 0.3;
  /// Background trickle: probability of requesting a label even when
  /// certain, so a concept change during a confident stretch is still
  /// noticed quickly.
  double trickle = 0.02;
  /// When a revealed label contradicts the currently dominant concept's
  /// model, request this many follow-up labels unconditionally — the
  /// change is resolved in one burst instead of waiting on the trickle.
  size_t surprise_burst = 15;
  uint64_t seed = 97;
};

/// \brief Labeling policy built on the high-order model's own concept
/// posterior: labels are bought while the tracker is unsure which concept
/// is active, plus a small constant trickle as a change detector.
///
/// The rationale comes straight from the paper's structure: the classifiers
/// are fixed offline, so labels carry value only for concept
/// *identification* — a few bits per concept change — not for training.
/// Spending the labeling budget where identification is uncertain buys
/// almost the full-label accuracy at a fraction of the cost (see
/// bench_labeling).
class UncertaintyLabelingPolicy : public LabelingPolicy {
 public:
  explicit UncertaintyLabelingPolicy(UncertaintyLabelingConfig config = {});

  /// `classifier` must be the HighOrderClassifier the harness is driving;
  /// other classifier types fall back to the trickle rate only.
  bool ShouldRequestLabel(StreamClassifier* classifier,
                          const Record& x) override;
  void OnLabelRevealed(StreamClassifier* classifier, const Record& y,
                       Label predicted) override;
  std::string name() const override { return "uncertainty"; }

 private:
  UncertaintyLabelingConfig config_;
  Rng rng_;
  size_t burst_remaining_ = 0;
};

}  // namespace hom

#endif  // HOM_HIGHORDER_UNCERTAINTY_LABELING_H_
