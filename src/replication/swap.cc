#include "replication/swap.h"

#include <algorithm>
#include <optional>

#include "highorder/serialization.h"
#include "obs/trace_context.h"

namespace hom::replication {

Result<ConceptMapping> MapConcepts(const HighOrderClassifier& old_model,
                                   const HighOrderClassifier& new_model,
                                   const Dataset& probe) {
  if (probe.empty()) {
    return Status::InvalidArgument("concept mapping needs a non-empty probe");
  }
  HOM_ASSIGN_OR_RETURN(uint32_t old_fp, SchemaFingerprint(*old_model.schema()));
  HOM_ASSIGN_OR_RETURN(uint32_t new_fp, SchemaFingerprint(*new_model.schema()));
  if (old_fp != new_fp) {
    return Status::InvalidArgument(
        "models disagree on the schema (fingerprint mismatch); a swap "
        "must stay on the same stream");
  }
  size_t old_n = old_model.num_concepts();
  size_t new_n = new_model.num_concepts();
  if (old_n == 0 || new_n == 0) {
    return Status::InvalidArgument("cannot map to or from an empty model");
  }
  // Each concept's base classifier labels the probe once; agreement is
  // then a pairwise comparison of cached label vectors.
  auto label_probe = [&probe](const HighOrderClassifier& model, size_t c) {
    std::vector<Label> labels(probe.size());
    for (size_t r = 0; r < probe.size(); ++r) {
      labels[r] = model.concept_model(c).model->Predict(probe.record(r));
    }
    return labels;
  };
  std::vector<std::vector<Label>> old_labels(old_n);
  for (size_t i = 0; i < old_n; ++i) old_labels[i] = label_probe(old_model, i);
  std::vector<std::vector<Label>> new_labels(new_n);
  for (size_t j = 0; j < new_n; ++j) new_labels[j] = label_probe(new_model, j);

  ConceptMapping mapping;
  mapping.old_to_new.resize(old_n);
  mapping.agreement.resize(old_n);
  for (size_t i = 0; i < old_n; ++i) {
    size_t best = 0;
    size_t best_matches = 0;
    for (size_t j = 0; j < new_n; ++j) {
      size_t matches = 0;
      for (size_t r = 0; r < probe.size(); ++r) {
        if (old_labels[i][r] == new_labels[j][r]) ++matches;
      }
      if (matches > best_matches) {  // strict: ties keep the lowest j
        best_matches = matches;
        best = j;
      }
    }
    mapping.old_to_new[i] = best;
    mapping.agreement[i] =
        static_cast<double>(best_matches) / static_cast<double>(probe.size());
  }
  return mapping;
}

Result<HighOrderRuntimeState> MigrateRuntimeState(
    const HighOrderRuntimeState& old_state, const ConceptMapping& mapping,
    size_t new_num_concepts) {
  size_t old_n = old_state.posterior.size();
  if (old_state.prior.size() != old_n) {
    return Status::InvalidArgument(
        "state prior/posterior disagree on the concept count");
  }
  if (mapping.old_to_new.size() != old_n) {
    return Status::InvalidArgument(
        "mapping covers " + std::to_string(mapping.old_to_new.size()) +
        " concepts, state has " + std::to_string(old_n));
  }
  if (new_num_concepts == 0) {
    return Status::InvalidArgument("cannot migrate onto zero concepts");
  }
  for (size_t target : mapping.old_to_new) {
    if (target >= new_num_concepts) {
      return Status::InvalidArgument("mapping target out of range");
    }
  }
  HighOrderRuntimeState migrated;
  migrated.prior.assign(new_num_concepts, 0.0);
  migrated.posterior.assign(new_num_concepts, 0.0);
  for (size_t i = 0; i < old_n; ++i) {
    size_t j = mapping.old_to_new[i];
    migrated.prior[j] += old_state.prior[i];
    migrated.posterior[j] += old_state.posterior[i];
  }
  // Summed probabilities can exceed 1.0 by a few ulps; clamp so the
  // restore-side range validation never trips on float dust.
  for (std::vector<double>* v : {&migrated.prior, &migrated.posterior}) {
    for (double& p : *v) p = std::min(p, 1.0);
  }
  // Weights are a derived cache keyed to the old concept set; zero them
  // and let the next labeled record rebuild against the new model.
  migrated.weights.assign(new_num_concepts, 0.0);
  migrated.weights_stale = true;
  migrated.base_evaluations = old_state.base_evaluations;
  migrated.predictions = old_state.predictions;
  migrated.observations = old_state.observations;
  migrated.last_top_concept =
      old_state.last_top_concept >= 0
          ? static_cast<int64_t>(
                mapping.old_to_new[static_cast<size_t>(
                    old_state.last_top_concept)])
          : -1;
  migrated.drift_suspected = old_state.drift_suspected;
  migrated.until_latency_sample = old_state.until_latency_sample;
  migrated.last_prediction = old_state.last_prediction;
  return migrated;
}

Result<ConceptMapping> MigrateModelState(const HighOrderClassifier& old_model,
                                         HighOrderClassifier* new_model,
                                         const Dataset& probe) {
  if (new_model == nullptr) {
    return Status::InvalidArgument("new model must not be null");
  }
  // Under a /swapz trace this is the "migrate" leg of the
  // pause -> migrate -> resume sequence; untraced callers (tests, offline
  // verification) stay span-free.
  std::optional<obs::DistSpan> span;
  if (obs::CurrentTraceContext() != nullptr) {
    span.emplace("swap.migrate_state", obs::SpanKind::kInternal);
  }
  HOM_ASSIGN_OR_RETURN(ConceptMapping mapping,
                       MapConcepts(old_model, *new_model, probe));
  HOM_ASSIGN_OR_RETURN(
      HighOrderRuntimeState migrated,
      MigrateRuntimeState(old_model.ExportRuntimeState(), mapping,
                          new_model->num_concepts()));
  // Restore state first (it validates and can fail without touching the
  // model), then carry the input sanitizer's imputation statistics so the
  // repair policy keeps its learned column medians across the swap.
  HOM_RETURN_NOT_OK(new_model->RestoreRuntimeState(migrated));
  HOM_ASSIGN_OR_RETURN(std::string sanitizer,
                       old_model.ExportSanitizerState());
  if (!sanitizer.empty()) {
    HOM_RETURN_NOT_OK(new_model->RestoreSanitizerState(sanitizer));
  }
  return mapping;
}

}  // namespace hom::replication
