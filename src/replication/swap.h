#ifndef HOM_REPLICATION_SWAP_H_
#define HOM_REPLICATION_SWAP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "highorder/highorder_classifier.h"

namespace hom::replication {

/// Old-concept -> new-concept correspondence computed by MapConcepts.
struct ConceptMapping {
  /// For each old concept, the new concept whose base classifier agrees
  /// with it most often on the probe set (ties break to the lowest new
  /// index, so the mapping is deterministic).
  std::vector<size_t> old_to_new;
  /// The winning agreement fraction per old concept, in [0, 1].
  std::vector<double> agreement;
};

/// Computes the concept correspondence between two models trained for the
/// same schema by probing every (old, new) concept pair on `probe`:
/// agreement(i, j) is the fraction of probe records where old concept i's
/// base classifier and new concept j's predict the same label. The probe
/// set is the caller's choice but must be deterministic (the serving swap
/// uses a fixed prefix of the online stream) — the mapping, and therefore
/// the migrated posterior, must be reproducible offline.
Result<ConceptMapping> MapConcepts(const HighOrderClassifier& old_model,
                                   const HighOrderClassifier& new_model,
                                   const Dataset& probe);

/// Projects a Markov-filter state through `mapping` onto a model with
/// `new_num_concepts` concepts: the posterior (and prior) mass of each old
/// concept lands on its mapped new concept, so the drift filter keeps its
/// accumulated belief about which regime holds the stream instead of
/// rewinding to the uniform prior. Prediction weights are zeroed and
/// marked stale — they are a cache, rebuilt from the next labeled record.
/// Counters and hysteresis flags carry over unchanged.
Result<HighOrderRuntimeState> MigrateRuntimeState(
    const HighOrderRuntimeState& old_state, const ConceptMapping& mapping,
    size_t new_num_concepts);

/// The full swap: captures `old_model`'s runtime + sanitizer state, maps
/// concepts over `probe`, migrates the state, and restores it into
/// `new_model`. On any failure `new_model` keeps its pre-call state.
/// Returns the mapping actually used (for logs and verification).
Result<ConceptMapping> MigrateModelState(const HighOrderClassifier& old_model,
                                         HighOrderClassifier* new_model,
                                         const Dataset& probe);

}  // namespace hom::replication

#endif  // HOM_REPLICATION_SWAP_H_
