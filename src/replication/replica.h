#ifndef HOM_REPLICATION_REPLICA_H_
#define HOM_REPLICATION_REPLICA_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"
#include "highorder/checkpoint.h"
#include "highorder/highorder_classifier.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/trace_context.h"

namespace hom::replication {

struct ReplicaOptions {
  /// Sustained heartbeat loss (milliseconds since the primary was last
  /// heard) after which MaybePromote() takes over. 0 disables automatic
  /// promotion — only POST /replicaz/promote or Promote() promote.
  uint64_t promote_after_ms = 10000;
  /// Identity reported on /replicaz and stamped when this replica later
  /// ships as a primary.
  std::string replica_id = "standby";
};

/// \brief Standby-side replication: applies checkpoints uploaded by a
/// CheckpointShipper to a warm model, tracks lag and primary liveness,
/// serves /replicaz status, and promotes to primary on sustained
/// heartbeat loss.
///
/// Promotion freezes the replica: once promoted, further uploads and
/// heartbeats answer 409 (a deposed primary must stop, not fork state).
/// The last applied checkpoint — harness counters and all — is the resume
/// point; PR 4's exact-resume guarantee makes the promoted standby's
/// subsequent predictions bit-identical to an uninterrupted run.
///
/// Thread model: the upload/heartbeat handlers run on the HttpServer
/// worker thread, the promotion poll on the serving thread; one mutex
/// guards all replica state. The model pointer is only written through
/// ApplyCheckpoint before promotion, and the serving loop only reads it
/// after promotion, so the two sides never race on the classifier.
class StandbyReplica {
 public:
  StandbyReplica(HighOrderClassifier* model, ReplicaOptions options);

  /// Registers POST /replicaz/checkpoint, POST /replicaz/heartbeat,
  /// POST /replicaz/promote, and GET /replicaz on `server`. Call before
  /// server->Start().
  void RegisterHandlers(obs::HttpServer* server);

  /// POST /replicaz/checkpoint — also callable directly in tests.
  /// `request.body` holds HOMC bytes (content-type
  /// application/x-hom-checkpoint) or HOMD delta bytes
  /// (application/x-hom-checkpoint-delta).
  obs::HttpResponse HandleCheckpointUpload(const obs::HttpRequest& request);

  /// POST /replicaz/heartbeat with {"record","epoch","sequence",...}.
  obs::HttpResponse HandleHeartbeat(const obs::HttpRequest& request);

  /// POST /replicaz/promote — manual failover.
  obs::HttpResponse HandlePromoteRequest(const obs::HttpRequest& request);

  /// GET /replicaz status document.
  obs::JsonValue StatusJson() const;

  /// Promotes when the primary has been silent for promote_after_ms.
  /// Returns true when a promotion happened on this call.
  bool MaybePromote();

  /// Unconditional promotion (manual failover, tests). Idempotent.
  void Promote(const std::string& reason);

  bool promoted() const;
  /// True once at least one checkpoint has been applied.
  bool has_checkpoint() const;
  /// Copy of the last applied checkpoint (the promotion resume point).
  ServingCheckpoint last_checkpoint() const;
  uint64_t applied_sequence() const;
  /// Epoch this replica serves with after promotion (last primary's + 1).
  uint64_t promoted_epoch() const;
  /// Records the primary has scored beyond our last applied checkpoint,
  /// going by its most recent heartbeat.
  uint64_t lag_records() const;
  double heartbeat_age_ms() const;

  /// Refreshes the hom.replication.{lag_records,heartbeat_age_seconds}
  /// gauges; the standby wait loop calls this periodically.
  void UpdateGauges() const;

  /// Trace context of the last successfully applied checkpoint (invalid
  /// before the first traced apply). Promote() opens the promotion span
  /// under this context, so the standby's takeover links back to the
  /// primary's last acknowledged ship on a merged timeline.
  obs::TraceContext last_apply_context() const;

 private:
  /// HandleCheckpointUpload minus the span bookkeeping around it.
  obs::HttpResponse DoHandleCheckpointUpload(const obs::HttpRequest& request);

  /// Full-checkpoint apply path shared by full and delta uploads.
  /// `full_bytes` must be HOMC bytes. Maps failures to HTTP codes via
  /// the returned response.
  obs::HttpResponse ApplyFullBytesLocked(std::string full_bytes);

  mutable std::mutex mu_;
  HighOrderClassifier* model_;
  ReplicaOptions options_;
  std::string applied_bytes_;  ///< delta base: last applied full bytes
  uint32_t applied_crc_ = 0;
  ServingCheckpoint last_ckpt_;
  bool have_ckpt_ = false;
  uint64_t applied_sequence_ = 0;
  uint64_t primary_epoch_ = 0;
  uint64_t primary_record_ = 0;
  std::string primary_id_;
  std::chrono::steady_clock::time_point last_heard_;
  bool promoted_ = false;
  obs::TraceContext last_apply_ctx_;
};

}  // namespace hom::replication

#endif  // HOM_REPLICATION_REPLICA_H_
