#include "replication/shipper.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace hom::replication {

namespace {

constexpr char kCheckpointPath[] = "/replicaz/checkpoint";
constexpr char kHeartbeatPath[] = "/replicaz/heartbeat";
constexpr char kFullContentType[] = "application/x-hom-checkpoint";
constexpr char kDeltaContentType[] = "application/x-hom-checkpoint-delta";

/// The standby's applied_sequence from an ack or stale-sequence body, or
/// 0 when the body carries none (other 409 flavors, non-JSON bodies).
uint64_t AppliedSequenceIn(const std::string& body) {
  Result<obs::JsonValue> parsed = obs::JsonValue::Parse(body);
  if (!parsed.ok() || !parsed->is_object()) return 0;
  const obs::JsonValue* seq = parsed->Find("applied_sequence");
  if (seq == nullptr || !seq->is_number() || seq->as_double() < 0.0) {
    return 0;
  }
  return static_cast<uint64_t>(seq->as_double());
}

/// Installs the trace-propagation seam before the client copies the
/// options: every shipper request then carries the calling thread's
/// context as a traceparent header (nothing when no context is active).
ShipperOptions WithTraceProvider(ShipperOptions options) {
  if (!options.http.traceparent_provider) {
    options.http.traceparent_provider = obs::CurrentTraceparentOrEmpty;
  }
  return options;
}

}  // namespace

CheckpointShipper::CheckpointShipper(ShipperOptions options)
    : options_(WithTraceProvider(std::move(options))),
      client_(options_.host, options_.port, options_.http) {}

Result<HttpResponseMessage> CheckpointShipper::PostBody(
    const std::string& content_type, const std::string& body,
    size_t attempt) {
  HOM_COUNTER_INC("hom.replication.ship_attempts");
  std::string wire = body;
  if (options_.fault_hook) options_.fault_hook(attempt, &wire);
  return client_.Post(kCheckpointPath, content_type, wire);
}

Result<ShipReport> CheckpointShipper::Ship(const ServingCheckpoint& ckpt) {
  // One ship round is one linked-span subtree: the round itself, a
  // serialize child, and one client-kind child per wire attempt. The
  // standby's server/apply spans parent onto the attempt that reached it.
  obs::DistSpan round_span("ship.round", obs::SpanKind::kInternal);
  auto stamp_full = [&]() -> Result<std::string> {
    ServingCheckpoint stamped = ckpt;
    stamped.has_replication = true;
    stamped.replication.sequence = sequence_ + 1;
    stamped.replication.primary_epoch = options_.primary_epoch;
    stamped.replication.primary_id = options_.primary_id;
    return SerializeCheckpoint(stamped);
  };
  std::string full_bytes;
  bool use_delta = false;
  std::string delta_bytes;
  {
    obs::DistSpan serialize_span("ship.serialize",
                                 obs::SpanKind::kInternal);
    HOM_ASSIGN_OR_RETURN(full_bytes, stamp_full());
    use_delta = options_.prefer_delta && !acked_bytes_.empty();
    if (use_delta) {
      Result<std::string> encoded =
          EncodeCheckpointDelta(acked_bytes_, full_bytes);
      if (encoded.ok()) {
        delta_bytes = std::move(encoded).ValueOrDie();
      } else {
        use_delta = false;  // unencodable base: ship full instead of failing
      }
    }
  }

  BackoffSchedule schedule(options_.backoff, options_.port);
  ShipReport report;
  Status last_error;
  bool resynced = false;
  for (size_t attempt = 0;; ++attempt) {
    const std::string& body = use_delta ? delta_bytes : full_bytes;
    Result<HttpResponseMessage> sent = Status::Internal("not attempted");
    {
      obs::DistSpan post_span("ship.post", obs::SpanKind::kClient);
      sent = PostBody(use_delta ? kDeltaContentType : kFullContentType,
                      body, attempt);
      if (!sent.ok()) {
        post_span.set_status(sent.status().ToString());
      } else if (sent->status != 200) {
        post_span.set_status("http " + std::to_string(sent->status));
      }
    }
    report.attempts = attempt + 1;
    if (sent.ok() && sent->status == 200) {
      // The ack (duplicate re-acks included) names the standby's applied
      // sequence; adopt it if it is ahead of our accounting.
      sequence_ = std::max(sequence_ + 1, AppliedSequenceIn(sent->body));
      acked_bytes_ = full_bytes;
      report.sequence = sequence_;
      report.delta = use_delta;
      report.wire_bytes = body.size();
      HOM_COUNTER_INC("hom.replication.ships");
      HOM_COUNTER_ADD("hom.replication.shipped_bytes",
                      static_cast<double>(body.size()));
      HOM_GAUGE_SET("hom.replication.acked_sequence",
                    static_cast<double>(sequence_));
      return report;
    }
    bool retryable;
    if (!sent.ok()) {
      // Transport: refused, deadline, truncated response — the classic
      // transient set.
      last_error = sent.status();
      retryable = true;
    } else if (sent->status == 409 && use_delta) {
      // The standby does not hold our delta base (it restarted, or this
      // is the first contact after a promotion). Not a failure — switch
      // to a full transfer and keep the same attempt budget.
      use_delta = false;
      retryable = true;
      last_error = Status::FailedPrecondition("standby rejected delta base");
    } else if (uint64_t applied = 0;
               sent->status == 409 && !resynced &&
               (applied = AppliedSequenceIn(sent->body)) > sequence_) {
      // Stale sequence: the standby already applied a ship whose ack we
      // lost, or we restarted behind it. Fast-forward past its applied
      // sequence and restamp; the delta base is no longer agreed on, so
      // the resend goes full. One resync per round — a second structural
      // 409 is a real rejection, not a lost ack.
      resynced = true;
      sequence_ = applied;
      Result<std::string> restamped = stamp_full();
      if (!restamped.ok()) {
        last_error = restamped.status();
        break;
      }
      full_bytes = std::move(restamped).ValueOrDie();
      use_delta = false;
      retryable = true;
      last_error = Status::FailedPrecondition(
          "resynced sequence past standby's applied " +
          std::to_string(applied));
      HOM_COUNTER_INC("hom.replication.ship_resyncs");
    } else if (sent->status == 400 || sent->status >= 500) {
      // 400 means the body arrived but failed validation; our local copy
      // is intact, so the damage happened in flight — retrying sends a
      // fresh copy. 5xx/503 is the standby overloaded or restarting.
      last_error = Status::IoError(
          "standby answered " + std::to_string(sent->status) + ": " +
          sent->body);
      retryable = true;
    } else {
      HOM_COUNTER_INC("hom.replication.ship_failures");
      round_span.set_status("permanent rejection (HTTP " +
                            std::to_string(sent->status) + ")");
      return Status::FailedPrecondition(
          "standby permanently rejected checkpoint (HTTP " +
          std::to_string(sent->status) + "): " + sent->body);
    }
    if (!retryable || schedule.ShouldGiveUp(report.attempts)) break;
    HOM_COUNTER_INC("hom.replication.ship_retries");
    uint64_t delay = schedule.DelayMs(attempt);
    if (options_.http.sleep_ms) {
      options_.http.sleep_ms(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  HOM_COUNTER_INC("hom.replication.ship_failures");
  round_span.set_status("gave up after " + std::to_string(report.attempts) +
                        " attempts");
  return Status::IoError("checkpoint ship gave up after " +
                         std::to_string(report.attempts) +
                         " attempts: " + last_error.ToString());
}

Status CheckpointShipper::Heartbeat(uint64_t stream_record) {
  // Heartbeats fire a few times a second for the life of the primary;
  // tracing every one would drown the span buffer in identical beacons.
  // 1-in-kHeartbeatSampleEvery gets a root span (and thus a traceparent
  // header); the rest go untraced.
  bool sampled = heartbeat_count_++ % kHeartbeatSampleEvery == 0;
  std::optional<obs::DistSpan> span;
  if (sampled) span.emplace("ship.heartbeat", obs::SpanKind::kClient);
  obs::JsonValue beat = obs::JsonValue::Object();
  beat.Set("record", obs::JsonValue(stream_record));
  beat.Set("epoch", obs::JsonValue(options_.primary_epoch));
  beat.Set("sequence", obs::JsonValue(sequence_));
  beat.Set("primary_id", obs::JsonValue(options_.primary_id));
  Result<HttpResponseMessage> reply =
      client_.Post(kHeartbeatPath, "application/json", beat.Dump());
  if (!reply.ok()) {
    if (span.has_value()) span->set_status(reply.status().ToString());
    return reply.status();
  }
  if (reply->status != 200) {
    if (span.has_value()) {
      span->set_status("http " + std::to_string(reply->status));
    }
    return Status::IoError("heartbeat answered " +
                           std::to_string(reply->status) + ": " +
                           reply->body);
  }
  return Status::OK();
}

}  // namespace hom::replication
