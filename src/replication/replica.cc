#include "replication/replica.h"

#include <utility>

#include "obs/event_journal.h"
#include "obs/metrics.h"

namespace hom::replication {

namespace {

constexpr char kFullContentType[] = "application/x-hom-checkpoint";
constexpr char kDeltaContentType[] = "application/x-hom-checkpoint-delta";

obs::HttpResponse JsonResponse(int status, obs::JsonValue body) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = body.Dump() + "\n";
  return response;
}

obs::HttpResponse ErrorResponse(int status, const std::string& error,
                                const std::string& detail = std::string()) {
  obs::JsonValue body = obs::JsonValue::Object();
  body.Set("error", obs::JsonValue(error));
  if (!detail.empty()) body.Set("detail", obs::JsonValue(detail));
  return JsonResponse(status, std::move(body));
}

}  // namespace

StandbyReplica::StandbyReplica(HighOrderClassifier* model,
                               ReplicaOptions options)
    : model_(model),
      options_(std::move(options)),
      last_heard_(std::chrono::steady_clock::now()) {}

void StandbyReplica::RegisterHandlers(obs::HttpServer* server) {
  server->HandlePost("/replicaz/checkpoint",
                     [this](const obs::HttpRequest& request) {
                       return HandleCheckpointUpload(request);
                     });
  server->HandlePost("/replicaz/heartbeat",
                     [this](const obs::HttpRequest& request) {
                       return HandleHeartbeat(request);
                     });
  server->HandlePost("/replicaz/promote",
                     [this](const obs::HttpRequest& request) {
                       return HandlePromoteRequest(request);
                     });
  server->Handle("/replicaz", [this](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = StatusJson().Dump(2) + "\n";
    return response;
  });
}

obs::HttpResponse StandbyReplica::ApplyFullBytesLocked(
    std::string full_bytes) {
  Result<ServingCheckpoint> parsed = ParseCheckpoint(full_bytes);
  if (!parsed.ok()) {
    HOM_COUNTER_INC("hom.replication.apply_failures");
    return ErrorResponse(400, "checkpoint rejected",
                         parsed.status().ToString());
  }
  ServingCheckpoint ckpt = std::move(parsed).ValueOrDie();
  if (!ckpt.has_replication) {
    HOM_COUNTER_INC("hom.replication.apply_failures");
    return ErrorResponse(400, "checkpoint rejected",
                         "missing replication metadata (RPLC section)");
  }
  // Structural identity, not a raw-byte CRC: the HOMC section framing
  // makes whole-file Crc32 blind to payload edits (see CheckpointIdentity).
  Result<uint32_t> identity = CheckpointIdentity(full_bytes);
  if (!identity.ok()) {
    HOM_COUNTER_INC("hom.replication.apply_failures");
    return ErrorResponse(400, "checkpoint rejected",
                         identity.status().ToString());
  }
  uint32_t crc = identity.ValueOrDie();
  if (ckpt.replication.primary_epoch < primary_epoch_) {
    return ErrorResponse(409, "stale epoch",
                         "checkpoint epoch " +
                             std::to_string(ckpt.replication.primary_epoch) +
                             " below current " +
                             std::to_string(primary_epoch_));
  }
  if (ckpt.replication.primary_epoch == primary_epoch_ &&
      ckpt.replication.sequence <= applied_sequence_) {
    if (ckpt.replication.sequence == applied_sequence_ &&
        crc == applied_crc_) {
      // A retry of the ship whose ack we already sent; acknowledge again
      // rather than punishing the primary for a lost response.
      obs::JsonValue ok = obs::JsonValue::Object();
      ok.Set("applied_sequence", obs::JsonValue(applied_sequence_));
      ok.Set("crc", obs::JsonValue(static_cast<uint64_t>(applied_crc_)));
      ok.Set("duplicate", obs::JsonValue(true));
      return JsonResponse(200, std::move(ok));
    }
    // Carry applied_sequence so a primary whose ack got lost (or that
    // restarted behind us) can fast-forward instead of wedging.
    obs::JsonValue body = obs::JsonValue::Object();
    body.Set("error", obs::JsonValue("stale sequence"));
    body.Set("detail",
             obs::JsonValue("checkpoint sequence " +
                            std::to_string(ckpt.replication.sequence) +
                            " not beyond applied " +
                            std::to_string(applied_sequence_)));
    body.Set("applied_sequence", obs::JsonValue(applied_sequence_));
    return JsonResponse(409, std::move(body));
  }
  Status applied = ApplyCheckpoint(ckpt, model_);
  if (!applied.ok()) {
    HOM_COUNTER_INC("hom.replication.apply_failures");
    return ErrorResponse(400, "checkpoint rejected", applied.ToString());
  }
  applied_bytes_ = std::move(full_bytes);
  applied_crc_ = crc;
  applied_sequence_ = ckpt.replication.sequence;
  primary_epoch_ = ckpt.replication.primary_epoch;
  primary_id_ = ckpt.replication.primary_id;
  if (ckpt.stream_offset > primary_record_) {
    primary_record_ = ckpt.stream_offset;
  }
  last_ckpt_ = std::move(ckpt);
  have_ckpt_ = true;
  last_heard_ = std::chrono::steady_clock::now();
  HOM_COUNTER_INC("hom.replication.applied");
  HOM_GAUGE_SET("hom.replication.applied_sequence",
                static_cast<double>(applied_sequence_));
  HOM_GAUGE_SET("hom.replication.lag_records",
                static_cast<double>(primary_record_ -
                                    last_ckpt_.stream_offset));
  obs::JsonValue ok = obs::JsonValue::Object();
  ok.Set("applied_sequence", obs::JsonValue(applied_sequence_));
  ok.Set("crc", obs::JsonValue(static_cast<uint64_t>(applied_crc_)));
  ok.Set("stream_offset", obs::JsonValue(last_ckpt_.stream_offset));
  return JsonResponse(200, std::move(ok));
}

obs::HttpResponse StandbyReplica::HandleCheckpointUpload(
    const obs::HttpRequest& request) {
  // Child of the server span the HTTP layer installed from the shipper's
  // traceparent — the standby's apply carries the primary's trace id.
  obs::DistSpan span("replica.apply", obs::SpanKind::kInternal);
  obs::HttpResponse response = DoHandleCheckpointUpload(request);
  if (response.status == 200) {
    std::lock_guard<std::mutex> lock(mu_);
    if (span.active()) last_apply_ctx_ = span.context();
  } else {
    span.set_status("http " + std::to_string(response.status));
  }
  return response;
}

obs::HttpResponse StandbyReplica::DoHandleCheckpointUpload(
    const obs::HttpRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (promoted_) {
    return ErrorResponse(409, "replica promoted",
                         "this replica is primary now (epoch " +
                             std::to_string(primary_epoch_ + 1) + ")");
  }
  // Content type arrives via query parameter `kind` when the uploader
  // cannot set headers; the shipper uses the content type itself, which
  // the server does not parse — so the path splits on the body magic.
  if (request.body.size() >= 8 && request.body.compare(4, 4, "HOMD") == 0) {
    if (applied_bytes_.empty()) {
      return ErrorResponse(409, "unknown delta base",
                           "no checkpoint applied yet; send a full one");
    }
    Result<std::string> rebuilt =
        ApplyCheckpointDelta(applied_bytes_, request.body);
    if (!rebuilt.ok()) {
      if (rebuilt.status().IsFailedPrecondition()) {
        return ErrorResponse(409, "unknown delta base",
                             rebuilt.status().ToString());
      }
      HOM_COUNTER_INC("hom.replication.apply_failures");
      return ErrorResponse(400, "checkpoint delta rejected",
                           rebuilt.status().ToString());
    }
    return ApplyFullBytesLocked(std::move(rebuilt).ValueOrDie());
  }
  return ApplyFullBytesLocked(request.body);
}

obs::HttpResponse StandbyReplica::HandleHeartbeat(
    const obs::HttpRequest& request) {
  Result<obs::JsonValue> parsed = obs::JsonValue::Parse(request.body);
  if (!parsed.ok() || !parsed->is_object()) {
    return ErrorResponse(400, "malformed heartbeat");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (promoted_) {
    return ErrorResponse(409, "replica promoted",
                         "stop shipping; this replica is primary now");
  }
  if (const obs::JsonValue* record = parsed->Find("record");
      record != nullptr && record->is_number() &&
      record->as_double() >= 0.0) {
    uint64_t position = static_cast<uint64_t>(record->as_double());
    if (position > primary_record_) primary_record_ = position;
  }
  // Heartbeats seed the primary's epoch even before the first checkpoint
  // lands, so a promotion with zero applied checkpoints still serves with
  // an epoch beyond the deposed primary's.
  if (const obs::JsonValue* epoch = parsed->Find("epoch");
      epoch != nullptr && epoch->is_number() && epoch->as_double() > 0.0) {
    uint64_t primary_epoch = static_cast<uint64_t>(epoch->as_double());
    if (primary_epoch > primary_epoch_) primary_epoch_ = primary_epoch;
  }
  if (const obs::JsonValue* id = parsed->Find("primary_id");
      id != nullptr && id->is_string()) {
    primary_id_ = id->as_string();
  }
  last_heard_ = std::chrono::steady_clock::now();
  obs::JsonValue ok = obs::JsonValue::Object();
  uint64_t applied_offset = have_ckpt_ ? last_ckpt_.stream_offset : 0;
  ok.Set("lag_records",
         obs::JsonValue(primary_record_ > applied_offset
                            ? primary_record_ - applied_offset
                            : 0));
  return JsonResponse(200, std::move(ok));
}

obs::HttpResponse StandbyReplica::HandlePromoteRequest(
    const obs::HttpRequest&) {
  Promote("manual request");
  obs::JsonValue ok = obs::JsonValue::Object();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ok.Set("promoted", obs::JsonValue(true));
    ok.Set("epoch", obs::JsonValue(primary_epoch_ + 1));
    ok.Set("resume_offset",
           obs::JsonValue(have_ckpt_ ? last_ckpt_.stream_offset : 0));
  }
  return JsonResponse(200, std::move(ok));
}

obs::JsonValue StandbyReplica::StatusJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::JsonValue status = obs::JsonValue::Object();
  status.Set("state",
             obs::JsonValue(promoted_ ? "primary" : "standby"));
  status.Set("replica_id", obs::JsonValue(options_.replica_id));
  status.Set("applied_sequence", obs::JsonValue(applied_sequence_));
  status.Set("primary_epoch", obs::JsonValue(primary_epoch_));
  status.Set("primary_id", obs::JsonValue(primary_id_));
  uint64_t applied_offset = have_ckpt_ ? last_ckpt_.stream_offset : 0;
  status.Set("applied_offset", obs::JsonValue(applied_offset));
  status.Set("lag_records",
             obs::JsonValue(primary_record_ > applied_offset
                                ? primary_record_ - applied_offset
                                : 0));
  if (have_ckpt_) {
    obs::JsonValue fingerprint = obs::JsonValue::Object();
    fingerprint.Set("schema",
                    obs::JsonValue(static_cast<uint64_t>(
                        last_ckpt_.schema_fingerprint)));
    fingerprint.Set("crc",
                    obs::JsonValue(static_cast<uint64_t>(applied_crc_)));
    status.Set("last_checkpoint", std::move(fingerprint));
  }
  double age_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - last_heard_)
          .count();
  status.Set("heartbeat_age_ms", obs::JsonValue(age_ms));
  status.Set("promote_after_ms",
             obs::JsonValue(options_.promote_after_ms));
  status.Set("primary_alive",
             obs::JsonValue(options_.promote_after_ms == 0 ||
                            age_ms < options_.promote_after_ms));
  return status;
}

bool StandbyReplica::MaybePromote() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (promoted_ || options_.promote_after_ms == 0) return false;
    double age_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - last_heard_)
            .count();
    if (age_ms < static_cast<double>(options_.promote_after_ms)) {
      return false;
    }
  }
  Promote("heartbeat loss");
  return true;
}

void StandbyReplica::Promote(const std::string& reason) {
  // The promotion span adopts the trace of the last applied checkpoint:
  // on a merged timeline the takeover hangs off the primary's final
  // acknowledged ship instead of floating as an unlinked root. The span's
  // context is installed for the scope, so the kReplicaPromoted journal
  // line carries the same trace id.
  obs::DistSpan span("replica.promote", obs::SpanKind::kInternal,
                     last_apply_context());
  std::lock_guard<std::mutex> lock(mu_);
  if (promoted_) return;
  promoted_ = true;
  HOM_COUNTER_INC("hom.replication.promotions");
  obs::EmitIfActive(
      obs::EventType::kReplicaPromoted, reason,
      have_ckpt_ ? static_cast<int64_t>(last_ckpt_.stream_offset) : -1, -1,
      -1, static_cast<double>(primary_epoch_ + 1));
}

obs::TraceContext StandbyReplica::last_apply_context() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_apply_ctx_;
}

bool StandbyReplica::promoted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return promoted_;
}

bool StandbyReplica::has_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return have_ckpt_;
}

ServingCheckpoint StandbyReplica::last_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_ckpt_;
}

uint64_t StandbyReplica::applied_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_sequence_;
}

uint64_t StandbyReplica::promoted_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primary_epoch_ + 1;
}

uint64_t StandbyReplica::lag_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t applied_offset = have_ckpt_ ? last_ckpt_.stream_offset : 0;
  return primary_record_ > applied_offset ? primary_record_ - applied_offset
                                          : 0;
}

double StandbyReplica::heartbeat_age_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - last_heard_)
      .count();
}

void StandbyReplica::UpdateGauges() const {
  HOM_GAUGE_SET("hom.replication.lag_records",
                static_cast<double>(lag_records()));
  HOM_GAUGE_SET("hom.replication.heartbeat_age_seconds",
                heartbeat_age_ms() / 1000.0);
}

}  // namespace hom::replication
