#ifndef HOM_REPLICATION_SHIPPER_H_
#define HOM_REPLICATION_SHIPPER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/backoff.h"
#include "common/http_client.h"
#include "common/result.h"
#include "highorder/checkpoint.h"

namespace hom::replication {

/// Heartbeat span sampling: one heartbeat in this many gets a trace
/// (root span + traceparent header); the rest stay untraced. Heartbeats
/// are periodic and identical, so sampling loses nothing a timeline needs
/// while keeping the span buffer for the events that matter.
inline constexpr uint64_t kHeartbeatSampleEvery = 16;

/// What one Ship() round accomplished, for logs and bench.
struct ShipReport {
  uint64_t sequence = 0;   ///< sequence number the standby acknowledged
  bool delta = false;      ///< true when a delta (not a full) went over
  size_t wire_bytes = 0;   ///< request body size of the successful attempt
  size_t attempts = 0;     ///< total wire attempts spent (>= 1)
};

struct ShipperOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Identity stamped into each checkpoint's RPLC section ("host:port" by
  /// convention; shows up on the standby's /replicaz).
  std::string primary_id = "primary";
  /// Epoch stamped into shipped checkpoints. A promoted standby ships
  /// with a higher epoch, so checkpoints from a deposed primary are
  /// recognizably stale.
  uint64_t primary_epoch = 1;
  /// Ship deltas against the last acknowledged checkpoint when possible;
  /// falls back to full transfers automatically on a 409 (unknown base).
  bool prefer_delta = true;
  /// Retry schedule for one Ship() round.
  BackoffPolicy backoff;
  /// Transport deadlines.
  HttpClientOptions http;
  /// Chaos seam: mutate the outgoing body per attempt (0-based) before it
  /// hits the wire — bit flips and truncation of in-flight checkpoints.
  std::function<void(size_t attempt, std::string* body)> fault_hook;
};

/// \brief Primary-side replication: serializes ServingCheckpoints
/// (stamped with sequence/epoch/identity), encodes them as deltas against
/// the last acknowledged state, and POSTs them to a standby's
/// /replicaz/checkpoint with capped exponential backoff.
///
/// Failure handling, per attempt:
///  - transport errors (refused, timeout, truncated) retry on the backoff
///    schedule — the standby being down briefly must not kill the primary;
///  - 400 retries with a freshly serialized body (our copy is intact, so
///    a CRC rejection means in-flight corruption — transient);
///  - 409 with an unknown-base detail switches to a full transfer;
///  - 409 with the standby's applied_sequence ahead of ours (our ack was
///    lost, or we restarted behind it) fast-forwards the sequence,
///    restamps, and resends full — replication self-heals instead of
///    wedging on "stale sequence" forever;
///  - anything else (404, 405, 413) is a permanent configuration error.
/// Every outcome is a clean Status; Ship() never throws or crashes.
class CheckpointShipper {
 public:
  explicit CheckpointShipper(ShipperOptions options);

  /// Ships `ckpt` (harness counters filled by the caller) and returns
  /// once the standby acknowledged it or the backoff policy gave up.
  Result<ShipReport> Ship(const ServingCheckpoint& ckpt);

  /// Lightweight liveness + position beacon between checkpoints: POSTs
  /// {record, epoch, sequence} to /replicaz/heartbeat, single-shot (the
  /// next heartbeat supersedes a lost one, so no retry).
  Status Heartbeat(uint64_t stream_record);

  /// Sequence number the next Ship() will stamp.
  uint64_t next_sequence() const { return sequence_ + 1; }
  /// Sequence of the last acknowledged ship (0 before the first).
  uint64_t acked_sequence() const { return sequence_; }

 private:
  /// One POST of `body` to /replicaz/checkpoint. Fills `reply` on any
  /// HTTP response; a non-OK return is a transport failure.
  Result<HttpResponseMessage> PostBody(const std::string& content_type,
                                       const std::string& body,
                                       size_t attempt);

  ShipperOptions options_;
  HttpClient client_;
  uint64_t sequence_ = 0;
  /// Heartbeats sent so far, for 1-in-kHeartbeatSampleEvery span sampling.
  uint64_t heartbeat_count_ = 0;
  /// Full serialized bytes of the last checkpoint the standby
  /// acknowledged — the delta base both sides agree on.
  std::string acked_bytes_;
};

}  // namespace hom::replication

#endif  // HOM_REPLICATION_SHIPPER_H_
