#ifndef HOM_STREAMS_CONCEPT_SCHEDULE_H_
#define HOM_STREAMS_CONCEPT_SCHEDULE_H_

#include <cstddef>

#include "common/rng.h"
#include "common/zipf.h"

namespace hom {

/// \brief The paper's concept switching process (Section IV-A): before each
/// record there is probability λ of leaving the current concept, and the
/// next concept is drawn from a Zipf(z) law over the remaining concepts.
///
/// λ = 0.001 and z = 1 are the paper's defaults; 1/λ is the expected
/// occurrence length plotted on the x-axis of Figure 3.
class ConceptSchedule {
 public:
  /// \param num_concepts number of stable concepts (>= 2)
  /// \param lambda per-record change probability in [0, 1]
  /// \param zipf_z skew of the next-concept distribution
  /// \param initial starting concept (defaults to 0)
  ConceptSchedule(size_t num_concepts, double lambda, double zipf_z,
                  int initial = 0);

  /// Advances one record tick; returns true when a concept change fired
  /// (current() then already names the new concept_id).
  bool Step(Rng* rng);

  int current() const { return current_; }
  size_t num_concepts() const { return zipf_.n(); }
  double lambda() const { return lambda_; }

  /// Forces the current concept (used by tests to script transitions).
  void SetCurrent(int concept_id);

 private:
  ZipfDistribution zipf_;
  double lambda_;
  int current_;
};

}  // namespace hom

#endif  // HOM_STREAMS_CONCEPT_SCHEDULE_H_
