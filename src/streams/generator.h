#ifndef HOM_STREAMS_GENERATOR_H_
#define HOM_STREAMS_GENERATOR_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "data/record.h"
#include "data/schema.h"

namespace hom {

/// \brief Ground-truth annotations emitted alongside a generated stream.
///
/// The benchmark figures (Fig. 5/6) align error traces to the true concept
/// change points; generators record them here. Real deployments do not have
/// this information — it is strictly evaluation metadata.
struct StreamTrace {
  /// True concept id of each record (for drifting streams: the drift
  /// target once a transition starts).
  std::vector<int> concept_ids;
  /// Indices where a new concept (occurrence) begins; index 0 is always a
  /// change point.
  std::vector<size_t> change_points;
  /// True when the record was generated mid-drift (Hyperplane only; empty
  /// for abrupt-shift streams).
  std::vector<bool> drifting;
};

/// \brief Source of an endless labeled evolving stream over a fixed schema.
///
/// Implementations are deterministic given their constructor seed; Next()
/// advances both the concept schedule and the record sampler.
class StreamGenerator {
 public:
  virtual ~StreamGenerator() = default;

  virtual SchemaPtr schema() const = 0;

  /// Generates the next labeled record and advances the stream clock.
  virtual Record Next() = 0;

  /// Ground-truth concept id of the record most recently returned by
  /// Next(); meaningful only after the first Next().
  virtual int current_concept() const = 0;

  /// True if the most recent record was generated during a drift interval.
  virtual bool is_drifting() const { return false; }

  /// Number of distinct stable concepts the generator switches between.
  virtual size_t num_concepts() const = 0;

  /// Materializes `n` records into a Dataset, optionally filling ground
  /// truth (appended, so one trace can span several Generate calls).
  Dataset Generate(size_t n, StreamTrace* trace = nullptr);
};

}  // namespace hom

#endif  // HOM_STREAMS_GENERATOR_H_
