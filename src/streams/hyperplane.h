#ifndef HOM_STREAMS_HYPERPLANE_H_
#define HOM_STREAMS_HYPERPLANE_H_

#include <vector>

#include "common/rng.h"
#include "streams/concept_schedule.h"
#include "streams/generator.h"

namespace hom {

/// Parameters of the Hyperplane stream; defaults are the paper's (Section
/// IV-A: d = 3, four concepts, λ = 0.001, ~100-step drifts, z = 1).
struct HyperplaneConfig {
  size_t dims = 3;
  size_t num_concepts = 4;
  double lambda = 0.001;
  double zipf_z = 1.0;
  /// Drift duration is drawn uniformly from [min, max]; the paper states
  /// drifting "finishes within an average of 100 steps".
  size_t drift_steps_min = 50;
  size_t drift_steps_max = 150;
  /// Label noise probability (paper runs are noise-free).
  double noise = 0.0;
};

/// \brief The concept-drifting Hyperplane benchmark (Section IV-A).
///
/// Records are uniform in [0,1]^d; a record is positive iff
/// Σ a_i x_i >= a_0 with a_0 = ½ Σ a_i (so each concept splits the space in
/// half). Each concept is a randomly drawn weight vector. When the schedule
/// fires a change, the active hyperplane drifts *linearly* to the next
/// concept's hyperplane over ~100 records, then stabilizes.
class HyperplaneGenerator : public StreamGenerator {
 public:
  explicit HyperplaneGenerator(uint64_t seed, HyperplaneConfig config = {});

  SchemaPtr schema() const override { return schema_; }
  Record Next() override;
  /// During a drift this reports the drift *target* concept.
  int current_concept() const override { return schedule_.current(); }
  bool is_drifting() const override { return drift_remaining_ > 0; }
  size_t num_concepts() const override { return config_.num_concepts; }

  /// Weight vector of stable concept `c` (exposed for tests and the
  /// optimal-error oracle).
  const std::vector<double>& concept_weights(int c) const;

  /// Label of `x` under weight vector `w` (threshold at ½ Σ w_i).
  static Label LabelFor(const std::vector<double>& x,
                        const std::vector<double>& w);

 private:
  SchemaPtr schema_;
  HyperplaneConfig config_;
  Rng rng_;
  ConceptSchedule schedule_;
  std::vector<std::vector<double>> weights_;  ///< per-concept hyperplanes
  std::vector<double> active_;                ///< currently used weights
  std::vector<double> drift_from_;
  size_t drift_total_ = 0;
  size_t drift_remaining_ = 0;
};

}  // namespace hom

#endif  // HOM_STREAMS_HYPERPLANE_H_
