#ifndef HOM_STREAMS_INTRUSION_H_
#define HOM_STREAMS_INTRUSION_H_

#include <vector>

#include "common/rng.h"
#include "streams/concept_schedule.h"
#include "streams/generator.h"

namespace hom {

/// Parameters of the synthetic network-intrusion stream.
struct IntrusionConfig {
  /// Number of traffic regimes (= stable concepts). The paper reports the
  /// high-order model discovering 11 ± 2 concepts in KDD-99.
  size_t num_regimes = 10;
  /// Pool of shared traffic patterns that classes map onto. Must be >= the
  /// number of classes (5). With `num_regimes` regimes and `num_patterns`
  /// patterns there are min(num_regimes, num_patterns) distinct
  /// class-to-pattern mappings, i.e. truly distinct concepts.
  size_t num_patterns = 8;
  /// Per-record regime change probability. KDD-99's bursts are long, so the
  /// default is lower than Stagger/Hyperplane's λ.
  double lambda = 0.0005;
  double zipf_z = 1.0;
  /// Standard deviation of numeric attributes around their pattern means.
  double numeric_sigma = 1.0;
  /// Label noise probability.
  double noise = 0.0;
};

/// \brief Synthetic stand-in for the KDD-CUP'99 network intrusion stream
/// (Section IV-A, Table I), which is not redistributable here.
///
/// Shape preserved from the paper: 41 attributes (34 continuous, 7
/// discrete) and a `normal` class plus four attack classes. The stream
/// exercises *sampling change* the way the paper uses KDD-99:
///
///  * Long bursty regimes, each dominated by a different class ("different
///    periods witness bursts of different intrusion classes").
///  * A shared pool of traffic *patterns* (signatures in attribute space).
///    Each regime assigns classes to patterns with a regime-specific
///    rotation, so the same observable pattern can be benign traffic in one
///    period and an attack signature in another. A classifier trained in
///    one regime therefore genuinely conflicts with other regimes, and
///    regimes sharing a rotation are true recurring concepts.
class IntrusionGenerator : public StreamGenerator {
 public:
  explicit IntrusionGenerator(uint64_t seed, IntrusionConfig config = {});

  SchemaPtr schema() const override { return schema_; }
  Record Next() override;
  int current_concept() const override { return schedule_.current(); }
  size_t num_concepts() const override { return config_.num_regimes; }

  /// Class mixture of regime `r` (probability per class).
  const std::vector<double>& regime_mixture(int r) const;

  /// Pattern id that class `c` emits in regime `r`. Regimes with identical
  /// rows are the same underlying concept.
  size_t PatternOf(int r, int c) const;

  /// Number of distinct class-to-pattern mappings among the regimes.
  size_t num_distinct_mappings() const;

  /// The 34-numeric + 7-categorical schema with classes
  /// {normal, dos, probe, r2l, u2r}.
  static SchemaPtr MakeSchema();

 private:
  /// One shared traffic pattern: a signature in attribute space.
  struct Pattern {
    std::vector<double> numeric_means;         ///< [numeric attr]
    std::vector<std::vector<double>> cat_cdf;  ///< [cat attr][category]
  };

  SchemaPtr schema_;
  IntrusionConfig config_;
  Rng rng_;
  ConceptSchedule schedule_;
  std::vector<Pattern> patterns_;
  std::vector<std::vector<double>> mixtures_;     ///< [regime][class] cdf
  std::vector<std::vector<double>> mixture_pmf_;  ///< [regime][class] pmf
  std::vector<size_t> rotation_;                  ///< [regime] pattern offset
  size_t num_numeric_ = 0;
  std::vector<size_t> cat_attr_indices_;
};

}  // namespace hom

#endif  // HOM_STREAMS_INTRUSION_H_
