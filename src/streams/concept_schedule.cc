#include "streams/concept_schedule.h"

#include "common/check.h"

namespace hom {

ConceptSchedule::ConceptSchedule(size_t num_concepts, double lambda,
                                 double zipf_z, int initial)
    : zipf_(num_concepts, zipf_z), lambda_(lambda), current_(initial) {
  HOM_CHECK_GE(num_concepts, 2u);
  HOM_CHECK_GE(lambda, 0.0);
  HOM_CHECK_LE(lambda, 1.0);
  HOM_CHECK_GE(initial, 0);
  HOM_CHECK_LT(static_cast<size_t>(initial), num_concepts);
}

bool ConceptSchedule::Step(Rng* rng) {
  if (!rng->NextBernoulli(lambda_)) return false;
  // Draw the next concept from the Zipf law, excluding the current one so a
  // "change" always changes something.
  int next = current_;
  while (next == current_) {
    next = static_cast<int>(zipf_.Sample(rng));
  }
  current_ = next;
  return true;
}

void ConceptSchedule::SetCurrent(int concept_id) {
  HOM_CHECK_GE(concept_id, 0);
  HOM_CHECK_LT(static_cast<size_t>(concept_id), zipf_.n());
  current_ = concept_id;
}

}  // namespace hom
