#ifndef HOM_STREAMS_SEA_H_
#define HOM_STREAMS_SEA_H_

#include <vector>

#include "common/rng.h"
#include "streams/concept_schedule.h"
#include "streams/generator.h"

namespace hom {

/// Parameters of the SEA stream; thresholds and noise follow Street & Kim.
struct SeaConfig {
  /// Per-record concept change probability (the original paper streams
  /// four fixed 12.5k blocks; we use the recurring Markov/Zipf schedule so
  /// concepts reappear, as the high-order model expects).
  double lambda = 0.001;
  double zipf_z = 1.0;
  /// Class noise: fraction of labels flipped (10% in the original).
  double noise = 0.10;
  /// Decision thresholds θ of the concepts: positive iff x0 + x1 <= θ.
  std::vector<double> thresholds = {8.0, 9.0, 7.0, 9.5};
};

/// \brief The SEA concepts benchmark (Street & Kim, KDD 2001 — the paper's
/// reference [2]): three uniform attributes in [0, 10], of which only the
/// first two matter; a record is positive iff x0 + x1 <= θ, and θ jumps
/// between concepts. Class noise is part of the benchmark's definition.
class SeaGenerator : public StreamGenerator {
 public:
  explicit SeaGenerator(uint64_t seed, SeaConfig config = {});

  SchemaPtr schema() const override { return schema_; }
  Record Next() override;
  int current_concept() const override { return schedule_.current(); }
  size_t num_concepts() const override { return config_.thresholds.size(); }

  /// Noise-free oracle label of `record` under concept `concept_id`.
  Label TrueLabel(const Record& record, int concept_id) const;

  static SchemaPtr MakeSchema();

 private:
  SchemaPtr schema_;
  SeaConfig config_;
  Rng rng_;
  ConceptSchedule schedule_;
};

}  // namespace hom

#endif  // HOM_STREAMS_SEA_H_
