#include "streams/sea.h"

#include "common/check.h"

namespace hom {

namespace {
constexpr Label kNegative = 0;
constexpr Label kPositive = 1;
}  // namespace

SchemaPtr SeaGenerator::MakeSchema() {
  return Schema::Make(
             {Attribute::Numeric("x0"), Attribute::Numeric("x1"),
              Attribute::Numeric("x2")},
             {"negative", "positive"})
      .ValueOrDie();
}

SeaGenerator::SeaGenerator(uint64_t seed, SeaConfig config)
    : schema_(MakeSchema()),
      config_(std::move(config)),
      rng_(seed),
      schedule_(config_.thresholds.size(), config_.lambda, config_.zipf_z) {
  HOM_CHECK_GE(config_.thresholds.size(), 2u);
  HOM_CHECK_GE(config_.noise, 0.0);
  HOM_CHECK_LT(config_.noise, 1.0);
}

Label SeaGenerator::TrueLabel(const Record& record, int concept_id) const {
  HOM_CHECK_GE(concept_id, 0);
  HOM_CHECK_LT(static_cast<size_t>(concept_id), config_.thresholds.size());
  return record.values[0] + record.values[1] <=
                 config_.thresholds[static_cast<size_t>(concept_id)]
             ? kPositive
             : kNegative;
}

Record SeaGenerator::Next() {
  schedule_.Step(&rng_);
  Record record;
  record.values = {10.0 * rng_.NextDouble(), 10.0 * rng_.NextDouble(),
                   10.0 * rng_.NextDouble()};
  record.label = TrueLabel(record, schedule_.current());
  if (config_.noise > 0.0 && rng_.NextBernoulli(config_.noise)) {
    record.label = record.label == kPositive ? kNegative : kPositive;
  }
  return record;
}

}  // namespace hom
