#include "streams/hyperplane.h"

#include <string>

#include "common/check.h"

namespace hom {

namespace {
constexpr Label kNegative = 0;
constexpr Label kPositive = 1;
}  // namespace

HyperplaneGenerator::HyperplaneGenerator(uint64_t seed,
                                         HyperplaneConfig config)
    : config_(config),
      rng_(seed),
      schedule_(config.num_concepts, config.lambda, config.zipf_z) {
  HOM_CHECK_GE(config_.dims, 1u);
  HOM_CHECK_GE(config_.num_concepts, 2u);
  HOM_CHECK_GE(config_.drift_steps_max, config_.drift_steps_min);
  HOM_CHECK_GE(config_.drift_steps_min, 1u);

  std::vector<Attribute> attrs;
  for (size_t i = 0; i < config_.dims; ++i) {
    attrs.push_back(Attribute::Numeric("x" + std::to_string(i)));
  }
  schema_ = Schema::Make(std::move(attrs), {"negative", "positive"})
                .ValueOrDie();

  // Each concept is a random hyperplane; weights uniform in [0, 1] (with the
  // threshold pinned at half the weight mass, Section IV-A).
  weights_.resize(config_.num_concepts);
  for (auto& w : weights_) {
    w.resize(config_.dims);
    for (double& wi : w) wi = rng_.NextDouble();
  }
  active_ = weights_[0];
}

const std::vector<double>& HyperplaneGenerator::concept_weights(int c) const {
  HOM_CHECK_GE(c, 0);
  HOM_CHECK_LT(static_cast<size_t>(c), weights_.size());
  return weights_[static_cast<size_t>(c)];
}

Label HyperplaneGenerator::LabelFor(const std::vector<double>& x,
                                    const std::vector<double>& w) {
  HOM_CHECK_EQ(x.size(), w.size());
  double sum = 0.0;
  double threshold = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum += w[i] * x[i];
    threshold += w[i];
  }
  threshold *= 0.5;
  return sum >= threshold ? kPositive : kNegative;
}

Record HyperplaneGenerator::Next() {
  if (drift_remaining_ > 0) {
    // Mid-drift: keep interpolating, no new change can fire.
    --drift_remaining_;
    const std::vector<double>& target =
        weights_[static_cast<size_t>(schedule_.current())];
    double progress = drift_total_ > 0
                          ? 1.0 - static_cast<double>(drift_remaining_) /
                                      static_cast<double>(drift_total_)
                          : 1.0;
    for (size_t i = 0; i < active_.size(); ++i) {
      active_[i] = drift_from_[i] + progress * (target[i] - drift_from_[i]);
    }
  } else if (schedule_.Step(&rng_)) {
    // A change fired: start drifting from the current plane to the new
    // concept's plane.
    drift_from_ = active_;
    drift_total_ = config_.drift_steps_min +
                   rng_.NextBounded(static_cast<uint32_t>(
                       config_.drift_steps_max - config_.drift_steps_min + 1));
    drift_remaining_ = drift_total_;
  }

  Record record;
  record.values.resize(config_.dims);
  for (double& v : record.values) v = rng_.NextDouble();
  record.label = LabelFor(record.values, active_);
  if (config_.noise > 0.0 && rng_.NextBernoulli(config_.noise)) {
    record.label = record.label == kPositive ? kNegative : kPositive;
  }
  return record;
}

}  // namespace hom
