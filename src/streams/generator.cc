#include "streams/generator.h"

namespace hom {

Dataset StreamGenerator::Generate(size_t n, StreamTrace* trace) {
  Dataset dataset(schema());
  dataset.Reserve(n);
  int previous = -1;
  if (trace != nullptr && !trace->concept_ids.empty()) {
    previous = trace->concept_ids.back();
  }
  for (size_t i = 0; i < n; ++i) {
    dataset.AppendUnchecked(Next());
    if (trace != nullptr) {
      int concept_id = current_concept();
      if (concept_id != previous) {
        trace->change_points.push_back(trace->concept_ids.size());
        previous = concept_id;
      }
      trace->concept_ids.push_back(concept_id);
      trace->drifting.push_back(is_drifting());
    }
  }
  return dataset;
}

}  // namespace hom
