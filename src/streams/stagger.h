#ifndef HOM_STREAMS_STAGGER_H_
#define HOM_STREAMS_STAGGER_H_

#include "common/rng.h"
#include "streams/concept_schedule.h"
#include "streams/generator.h"

namespace hom {

/// Parameters of the Stagger stream; defaults are the paper's (Section
/// IV-A: λ = 0.001, Zipf z = 1).
struct StaggerConfig {
  double lambda = 0.001;
  double zipf_z = 1.0;
  /// Label noise: probability of flipping the class of an emitted record.
  /// The paper's runs are noise-free; tests use this to stress robustness.
  double noise = 0.0;
};

/// \brief The Stagger concept-shifting benchmark (Schlimmer & Granger,
/// 1986; used in Section IV-A).
///
/// Three categorical attributes — color ∈ {green, blue, red}, shape ∈
/// {triangle, circle, rectangle}, size ∈ {small, medium, large} — and three
/// alternating target concepts:
///   A: positive iff color = red and size = small
///   B: positive iff color = green or shape = circle
///   C: positive iff size = medium or large
class StaggerGenerator : public StreamGenerator {
 public:
  explicit StaggerGenerator(uint64_t seed, StaggerConfig config = {});

  SchemaPtr schema() const override { return schema_; }
  Record Next() override;
  int current_concept() const override { return schedule_.current(); }
  size_t num_concepts() const override { return 3; }

  /// True label of `record` under concept `concept` (noise-free oracle;
  /// used by tests and by the optimal-error baseline).
  static Label TrueLabel(const Record& record, int concept_id);

  /// The shared Stagger schema.
  static SchemaPtr MakeSchema();

 private:
  SchemaPtr schema_;
  StaggerConfig config_;
  Rng rng_;
  ConceptSchedule schedule_;
};

}  // namespace hom

#endif  // HOM_STREAMS_STAGGER_H_
