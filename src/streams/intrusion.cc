#include "streams/intrusion.h"

#include <cmath>
#include <set>
#include <string>

#include "common/check.h"

namespace hom {

namespace {

constexpr size_t kNumNumeric = 34;
constexpr size_t kNumClasses = 5;  // normal, dos, probe, r2l, u2r

// Category vocabularies of the 7 discrete attributes (modeled after
// KDD-99's protocol_type / service / flag / binary indicator columns).
const char* const kProtocols[] = {"tcp", "udp", "icmp"};
const char* const kServices[] = {"http", "smtp", "ftp", "dns", "other"};
const char* const kFlags[] = {"SF", "S0", "REJ", "RSTO"};

std::vector<std::string> ToVector(const char* const* names, size_t n) {
  return std::vector<std::string>(names, names + n);
}

}  // namespace

SchemaPtr IntrusionGenerator::MakeSchema() {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < kNumNumeric; ++i) {
    attrs.push_back(Attribute::Numeric("num" + std::to_string(i)));
  }
  attrs.push_back(Attribute::Categorical("protocol", ToVector(kProtocols, 3)));
  attrs.push_back(Attribute::Categorical("service", ToVector(kServices, 5)));
  attrs.push_back(Attribute::Categorical("flag", ToVector(kFlags, 4)));
  attrs.push_back(Attribute::Categorical("land", {"0", "1"}));
  attrs.push_back(Attribute::Categorical("logged_in", {"0", "1"}));
  attrs.push_back(Attribute::Categorical("is_guest", {"0", "1"}));
  attrs.push_back(Attribute::Categorical("root_shell", {"0", "1"}));
  return Schema::Make(std::move(attrs),
                      {"normal", "dos", "probe", "r2l", "u2r"})
      .ValueOrDie();
}

IntrusionGenerator::IntrusionGenerator(uint64_t seed, IntrusionConfig config)
    : schema_(MakeSchema()),
      config_(config),
      rng_(seed),
      schedule_(config.num_regimes, config.lambda, config.zipf_z) {
  HOM_CHECK_GE(config_.num_regimes, 2u);
  HOM_CHECK_GE(config_.num_patterns, kNumClasses);
  num_numeric_ = 0;
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    if (schema_->attribute(a).is_numeric()) {
      ++num_numeric_;
    } else {
      cat_attr_indices_.push_back(a);
    }
  }

  // Shared traffic patterns: signatures in attribute space. The patterns
  // themselves never change — what changes across regimes is which class a
  // pattern belongs to.
  patterns_.resize(config_.num_patterns);
  for (Pattern& pattern : patterns_) {
    pattern.numeric_means.resize(num_numeric_);
    for (double& m : pattern.numeric_means) m = 10.0 * rng_.NextDouble();
    pattern.cat_cdf.resize(cat_attr_indices_.size());
    for (size_t k = 0; k < cat_attr_indices_.size(); ++k) {
      const Attribute& attr = schema_->attribute(cat_attr_indices_[k]);
      std::vector<double> weights(attr.cardinality());
      for (double& w : weights) w = 0.1 + rng_.NextDouble();
      // Every pattern has one strongly preferred category per attribute.
      weights[rng_.NextBounded(static_cast<uint32_t>(attr.cardinality()))] +=
          3.0;
      double wsum = 0.0;
      for (double w : weights) wsum += w;
      pattern.cat_cdf[k].resize(attr.cardinality());
      double cum = 0.0;
      for (size_t v = 0; v < attr.cardinality(); ++v) {
        cum += weights[v] / wsum;
        pattern.cat_cdf[k][v] = cum;
      }
      pattern.cat_cdf[k].back() = 1.0;
    }
  }

  mixtures_.resize(config_.num_regimes);
  mixture_pmf_.resize(config_.num_regimes);
  rotation_.resize(config_.num_regimes);
  for (size_t r = 0; r < config_.num_regimes; ++r) {
    // The class-to-pattern rotation: regime r maps class c to pattern
    // (c + r) mod P, so two regimes conflict on every shared pattern and
    // regimes r and r+P recur as the same concept.
    rotation_[r] = r % config_.num_patterns;

    // Bursty class mixture: one dominant class per regime (rotating), the
    // rest of the mass mostly on `normal` background traffic.
    size_t dominant = r % kNumClasses;
    std::vector<double> pmf(kNumClasses, 0.05);
    pmf[dominant] += 0.55;
    pmf[0] += 0.20;
    double total = 0.0;
    for (double p : pmf) total += p;
    for (double& p : pmf) p /= total;
    mixture_pmf_[r] = pmf;
    mixtures_[r].resize(kNumClasses);
    double cum = 0.0;
    for (size_t c = 0; c < kNumClasses; ++c) {
      cum += pmf[c];
      mixtures_[r][c] = cum;
    }
    mixtures_[r].back() = 1.0;
  }
}

const std::vector<double>& IntrusionGenerator::regime_mixture(int r) const {
  HOM_CHECK_GE(r, 0);
  HOM_CHECK_LT(static_cast<size_t>(r), mixture_pmf_.size());
  return mixture_pmf_[static_cast<size_t>(r)];
}

size_t IntrusionGenerator::PatternOf(int r, int c) const {
  HOM_CHECK_GE(r, 0);
  HOM_CHECK_LT(static_cast<size_t>(r), rotation_.size());
  HOM_CHECK_GE(c, 0);
  HOM_CHECK_LT(static_cast<size_t>(c), kNumClasses);
  return (static_cast<size_t>(c) + rotation_[static_cast<size_t>(r)]) %
         config_.num_patterns;
}

size_t IntrusionGenerator::num_distinct_mappings() const {
  std::set<size_t> rotations(rotation_.begin(), rotation_.end());
  return rotations.size();
}

Record IntrusionGenerator::Next() {
  schedule_.Step(&rng_);
  int regime = schedule_.current();

  // Draw the class from the regime's bursty mixture.
  double u = rng_.NextDouble();
  size_t cls = 0;
  while (cls + 1 < kNumClasses &&
         u > mixtures_[static_cast<size_t>(regime)][cls]) {
    ++cls;
  }

  const Pattern& pattern =
      patterns_[PatternOf(regime, static_cast<int>(cls))];
  Record record;
  record.values.resize(schema_->num_attributes());
  size_t numeric_pos = 0;
  size_t cat_pos = 0;
  for (size_t a = 0; a < schema_->num_attributes(); ++a) {
    if (schema_->attribute(a).is_numeric()) {
      record.values[a] = pattern.numeric_means[numeric_pos++] +
                         config_.numeric_sigma * rng_.NextGaussian();
    } else {
      double v = rng_.NextDouble();
      const std::vector<double>& cdf = pattern.cat_cdf[cat_pos++];
      size_t code = 0;
      while (code + 1 < cdf.size() && v > cdf[code]) ++code;
      record.values[a] = static_cast<double>(code);
    }
  }
  record.label = static_cast<Label>(cls);
  if (config_.noise > 0.0 && rng_.NextBernoulli(config_.noise)) {
    record.label = static_cast<Label>(
        (cls + 1 + rng_.NextBounded(kNumClasses - 1)) % kNumClasses);
  }
  return record;
}

}  // namespace hom
