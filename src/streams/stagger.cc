#include "streams/stagger.h"

#include "common/check.h"

namespace hom {

namespace {
// Attribute indices and the category codes the concepts test.
constexpr size_t kColor = 0;
constexpr size_t kShape = 1;
constexpr size_t kSize = 2;
constexpr int kGreen = 0;
constexpr int kRed = 2;
constexpr int kCircle = 1;
constexpr int kSmall = 0;
constexpr int kMedium = 1;
constexpr int kLarge = 2;
constexpr Label kNegative = 0;
constexpr Label kPositive = 1;
}  // namespace

SchemaPtr StaggerGenerator::MakeSchema() {
  auto schema = Schema::Make(
      {
          Attribute::Categorical("color", {"green", "blue", "red"}),
          Attribute::Categorical("shape", {"triangle", "circle", "rectangle"}),
          Attribute::Categorical("size", {"small", "medium", "large"}),
      },
      {"negative", "positive"});
  return schema.ValueOrDie();
}

StaggerGenerator::StaggerGenerator(uint64_t seed, StaggerConfig config)
    : schema_(MakeSchema()),
      config_(config),
      rng_(seed),
      schedule_(3, config.lambda, config.zipf_z) {}

Label StaggerGenerator::TrueLabel(const Record& record, int concept_id) {
  int color = record.category(kColor);
  int shape = record.category(kShape);
  int size = record.category(kSize);
  bool positive = false;
  switch (concept_id) {
    case 0:  // A: color = red and size = small
      positive = color == kRed && size == kSmall;
      break;
    case 1:  // B: color = green or shape = circle
      positive = color == kGreen || shape == kCircle;
      break;
    case 2:  // C: size = medium or large
      positive = size == kMedium || size == kLarge;
      break;
    default:
      HOM_CHECK(false) << "invalid Stagger concept " << concept_id;
  }
  return positive ? kPositive : kNegative;
}

Record StaggerGenerator::Next() {
  schedule_.Step(&rng_);
  Record record;
  record.values = {static_cast<double>(rng_.NextBounded(3)),
                   static_cast<double>(rng_.NextBounded(3)),
                   static_cast<double>(rng_.NextBounded(3))};
  record.label = TrueLabel(record, schedule_.current());
  if (config_.noise > 0.0 && rng_.NextBernoulli(config_.noise)) {
    record.label = record.label == kPositive ? kNegative : kPositive;
  }
  return record;
}

}  // namespace hom
