#ifndef HOM_COMMON_FILE_IO_H_
#define HOM_COMMON_FILE_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace hom {

/// \brief Crash-safe whole-file helpers for model files and serving
/// checkpoints.
///
/// A serving process that dies mid-checkpoint must never leave a torn file
/// where the previous good checkpoint used to be: AtomicWriteFile stages
/// the bytes in a sibling temp file, fsyncs it, and renames it over the
/// destination, so readers observe either the old complete file or the new
/// complete file — never a prefix.

/// Reads the entire file into a string. IoError if the file cannot be
/// opened or read; `max_bytes` guards against slurping an unexpectedly
/// huge path into memory.
Result<std::string> ReadFileToString(const std::string& path,
                                     size_t max_bytes = size_t{1} << 31);

/// Atomically replaces `path` with `bytes`: writes `path`.tmp.<pid>,
/// fsyncs, renames over `path`, then fsyncs the containing directory so
/// the rename itself survives a power loss. On any failure the temp file
/// is removed and `path` is untouched.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

}  // namespace hom

#endif  // HOM_COMMON_FILE_IO_H_
