#ifndef HOM_COMMON_LOGGING_H_
#define HOM_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace hom {

/// Severity of a log line; lines below the global threshold are dropped.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the global logging threshold (default: kWarning, so library code is
/// silent in tests and benchmarks unless something is wrong).
void SetLogLevel(LogLevel level);

/// Returns the current global logging threshold.
LogLevel GetLogLevel();

namespace internal {

/// One log line; flushed to stderr on destruction if enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hom

#define HOM_LOG(level) \
  ::hom::internal::LogMessage(::hom::LogLevel::level, __FILE__, __LINE__)

#endif  // HOM_COMMON_LOGGING_H_
