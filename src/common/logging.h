#ifndef HOM_COMMON_LOGGING_H_
#define HOM_COMMON_LOGGING_H_

#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace hom {

/// Severity of a log line; lines below the global threshold are dropped.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the global logging threshold (default: kWarning, so library code is
/// silent in tests and benchmarks unless something is wrong).
void SetLogLevel(LogLevel level);

/// Returns the current global logging threshold.
LogLevel GetLogLevel();

/// Receives every emitted log line: its severity and the formatted text
/// (prefix included, no trailing newline). Must be callable from any
/// thread that logs.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Routes emitted lines to `sink` instead of stderr; pass nullptr to
/// restore the default stderr sink. Embedders use this to forward library
/// logs into their own logging system.
void SetLogSink(LogSink sink);

/// Prefixes each line with a wall-clock timestamp
/// ("2026-08-07 14:03:07.123"). Off by default, so existing output (and
/// tests that scrape it) is unchanged.
void SetLogTimestamps(bool enabled);

namespace internal {

/// One log line; flushed to the active sink (stderr by default) on
/// destruction if enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hom

#define HOM_LOG(level) \
  ::hom::internal::LogMessage(::hom::LogLevel::level, __FILE__, __LINE__)

#endif  // HOM_COMMON_LOGGING_H_
