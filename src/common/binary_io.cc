#include "common/binary_io.h"

#include <cctype>
#include <cstring>

#include "common/crc32.h"

namespace hom {

namespace {
// The on-disk format is little-endian; this library targets little-endian
// hosts (x86-64, AArch64 in LE mode), so raw copies are correct.
static_assert(sizeof(double) == 8, "expect IEEE-754 binary64 doubles");
}  // namespace

Status BinaryWriter::WriteBytes(const void* data, size_t n) {
  out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!*out_) return Status::IoError("write failed");
  return Status::OK();
}

Status BinaryWriter::WriteU8(uint8_t v) { return WriteBytes(&v, 1); }

Status BinaryWriter::WriteU32(uint32_t v) { return WriteBytes(&v, 4); }

Status BinaryWriter::WriteU64(uint64_t v) { return WriteBytes(&v, 8); }

Status BinaryWriter::WriteI32(int32_t v) { return WriteBytes(&v, 4); }

Status BinaryWriter::WriteI64(int64_t v) { return WriteBytes(&v, 8); }

Status BinaryWriter::WriteRaw(const void* data, size_t n) {
  if (n == 0) return Status::OK();
  return WriteBytes(data, n);
}

Status BinaryWriter::WriteDouble(double v) { return WriteBytes(&v, 8); }

Status BinaryWriter::WriteString(const std::string& s) {
  HOM_RETURN_NOT_OK(WriteU32(static_cast<uint32_t>(s.size())));
  if (!s.empty()) HOM_RETURN_NOT_OK(WriteBytes(s.data(), s.size()));
  return Status::OK();
}

Status BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  HOM_RETURN_NOT_OK(WriteU32(static_cast<uint32_t>(v.size())));
  if (!v.empty()) {
    HOM_RETURN_NOT_OK(WriteBytes(v.data(), v.size() * sizeof(double)));
  }
  return Status::OK();
}

Status BinaryReader::ReadBytes(void* data, size_t n) {
  in_->read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_->gcount()) != n) {
    return Status::IoError("unexpected end of stream");
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  uint8_t v = 0;
  HOM_RETURN_NOT_OK(ReadBytes(&v, 1));
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t v = 0;
  HOM_RETURN_NOT_OK(ReadBytes(&v, 4));
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  HOM_RETURN_NOT_OK(ReadBytes(&v, 8));
  return v;
}

Result<int32_t> BinaryReader::ReadI32() {
  int32_t v = 0;
  HOM_RETURN_NOT_OK(ReadBytes(&v, 4));
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  int64_t v = 0;
  HOM_RETURN_NOT_OK(ReadBytes(&v, 8));
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  double v = 0;
  HOM_RETURN_NOT_OK(ReadBytes(&v, 8));
  return v;
}

Result<std::string> BinaryReader::ReadString(size_t limit) {
  HOM_ASSIGN_OR_RETURN(uint32_t size, ReadU32());
  if (size > limit) {
    return Status::InvalidArgument("string length " + std::to_string(size) +
                                   " exceeds limit");
  }
  std::string s(size, '\0');
  if (size > 0) HOM_RETURN_NOT_OK(ReadBytes(s.data(), size));
  return s;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVector(size_t limit) {
  HOM_ASSIGN_OR_RETURN(uint32_t size, ReadU32());
  if (size > limit) {
    return Status::InvalidArgument("vector length " + std::to_string(size) +
                                   " exceeds limit");
  }
  std::vector<double> v(size);
  if (size > 0) {
    HOM_RETURN_NOT_OK(ReadBytes(v.data(), size * sizeof(double)));
  }
  return v;
}

Result<std::string> BinaryReader::ReadBlob(size_t n) {
  std::string bytes(n, '\0');
  if (n > 0) HOM_RETURN_NOT_OK(ReadBytes(bytes.data(), n));
  return bytes;
}

bool BinaryReader::AtEof() const {
  return in_->peek() == std::istream::traits_type::eof();
}

std::string SectionTagName(uint32_t tag) {
  std::string name(4, '?');
  for (int i = 0; i < 4; ++i) {
    char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    if (std::isprint(static_cast<unsigned char>(c))) name[i] = c;
  }
  return name;
}

Status WriteSection(BinaryWriter* writer, uint32_t tag,
                    std::string_view payload) {
  HOM_RETURN_NOT_OK(writer->WriteU32(tag));
  HOM_RETURN_NOT_OK(writer->WriteU64(payload.size()));
  HOM_RETURN_NOT_OK(writer->WriteRaw(payload.data(), payload.size()));
  return writer->WriteU32(Crc32(payload));
}

Result<Section> ReadSection(BinaryReader* reader, size_t max_payload) {
  Section section;
  HOM_ASSIGN_OR_RETURN(section.tag, reader->ReadU32());
  HOM_ASSIGN_OR_RETURN(uint64_t size, reader->ReadU64());
  if (size > max_payload) {
    return Status::InvalidArgument(
        "section " + SectionTagName(section.tag) + " declares " +
        std::to_string(size) + " bytes, over the " +
        std::to_string(max_payload) + " byte cap (corrupt length field?)");
  }
  HOM_ASSIGN_OR_RETURN(section.payload,
                       reader->ReadBlob(static_cast<size_t>(size)));
  HOM_ASSIGN_OR_RETURN(uint32_t expected, reader->ReadU32());
  uint32_t actual = Crc32(section.payload);
  if (actual != expected) {
    return Status::InvalidArgument(
        "section " + SectionTagName(section.tag) +
        " failed its CRC32 check (file corrupted)");
  }
  return section;
}

}  // namespace hom
