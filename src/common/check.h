#ifndef HOM_COMMON_CHECK_H_
#define HOM_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace hom::internal {

/// Accumulates a failure message and aborts the process when destroyed (at
/// the end of the full expression). Used only via the HOM_CHECK family.
class CheckFailMessage {
 public:
  CheckFailMessage(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }

  CheckFailMessage(const CheckFailMessage&) = delete;
  CheckFailMessage& operator=(const CheckFailMessage&) = delete;

  [[noreturn]] ~CheckFailMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< sink that turns the streamed chain into void,
/// so HOM_CHECK can sit inside a ternary expression.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace hom::internal

/// Aborts with a diagnostic when `cond` is false; extra context can be
/// streamed: HOM_CHECK(a < b) << "a=" << a;
/// For invariants and programmer errors; recoverable conditions use
/// Status/Result instead.
#define HOM_CHECK(cond)                                         \
  (cond) ? (void)0                                              \
         : ::hom::internal::Voidify() &                         \
               ::hom::internal::CheckFailMessage(__FILE__, __LINE__, #cond) \
                   .stream()

#define HOM_CHECK_EQ(a, b) \
  HOM_CHECK((a) == (b)) << #a << "=" << (a) << " vs " << #b << "=" << (b)
#define HOM_CHECK_NE(a, b) HOM_CHECK((a) != (b))
#define HOM_CHECK_LT(a, b) \
  HOM_CHECK((a) < (b)) << #a << "=" << (a) << " vs " << #b << "=" << (b)
#define HOM_CHECK_LE(a, b) \
  HOM_CHECK((a) <= (b)) << #a << "=" << (a) << " vs " << #b << "=" << (b)
#define HOM_CHECK_GT(a, b) \
  HOM_CHECK((a) > (b)) << #a << "=" << (a) << " vs " << #b << "=" << (b)
#define HOM_CHECK_GE(a, b) \
  HOM_CHECK((a) >= (b)) << #a << "=" << (a) << " vs " << #b << "=" << (b)

#ifdef NDEBUG
#define HOM_DCHECK(cond) HOM_CHECK(true)
#else
/// Debug-only invariant check; compiles to a no-op in NDEBUG builds.
#define HOM_DCHECK(cond) HOM_CHECK(cond)
#endif

#endif  // HOM_COMMON_CHECK_H_
