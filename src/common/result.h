#ifndef HOM_COMMON_RESULT_H_
#define HOM_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace hom {

/// \brief Value-or-Status holder for fallible producers.
///
/// Mirrors arrow::Result: construct from a value or from a non-OK Status;
/// `ok()` selects which side is live. Accessing the wrong side aborts via
/// HOM_CHECK (programming error, not a recoverable condition).
template <typename T>
class Result {
 public:
  /// Wraps a successful value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Wraps a failure. `status` must be non-OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    HOM_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& ValueOrDie() & {
    HOM_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  const T& ValueOrDie() const& {
    HOM_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    HOM_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace hom

/// Unwraps a Result into `lhs`, propagating a failure Status to the caller.
#define HOM_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  HOM_ASSIGN_OR_RETURN_IMPL_(                            \
      HOM_CONCAT_(_hom_result_, __LINE__), lhs, rexpr)

#define HOM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define HOM_CONCAT_(a, b) HOM_CONCAT_IMPL_(a, b)
#define HOM_CONCAT_IMPL_(a, b) a##b

#endif  // HOM_COMMON_RESULT_H_
