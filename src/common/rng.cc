#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace hom {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;

/// SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom
/// number generators"): bijective avalanche mixer, the standard choice for
/// turning structured integers (ids, counters) into seed material.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextUint32();
  state_ += seed;
  NextUint32();
}

uint32_t Rng::NextUint32() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

uint32_t Rng::NextBounded(uint32_t bound) {
  HOM_CHECK_GT(bound, 0u);
  // Rejection sampling: discard the low remainder region so every value in
  // [0, bound) is equally likely.
  uint32_t threshold = (-bound) % bound;
  for (;;) {
    uint32_t r = NextUint32();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  uint64_t hi = NextUint32();
  uint64_t lo = NextUint32();
  uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

int Rng::NextInt(int lo, int hi) {
  HOM_CHECK_LE(lo, hi);
  return lo + static_cast<int>(
                  NextBounded(static_cast<uint32_t>(hi - lo + 1)));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() {
  uint64_t seed = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  uint64_t stream = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  return Rng(seed, stream);
}

Rng Rng::Derive(uint64_t seed, uint64_t domain, uint64_t index) {
  uint64_t mixed = SplitMix64(seed ^ SplitMix64(domain));
  mixed = SplitMix64(mixed ^ SplitMix64(index));
  return Rng(mixed, SplitMix64(mixed));
}

}  // namespace hom
