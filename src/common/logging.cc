#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <utility>

namespace hom {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
std::atomic<bool> g_log_timestamps{false};

// The sink is read on every emitted line and swapped rarely; a mutex around
// a std::function copy is fine at that rate (the level check above already
// filtered the hot path).
std::mutex g_sink_mu;
LogSink& SinkSlot() {
  static LogSink* sink = new LogSink();  // leaked: usable during shutdown
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// "2026-08-07 14:03:07.123" in local time.
std::string FormatTimestamp() {
  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now.time_since_epoch())
                    .count() %
                1000;
  std::tm tm{};
  localtime_r(&seconds, &tm);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02d %02d:%02d:%02d.%03d", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(millis));
  return buffer;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  SinkSlot() = std::move(sink);
}

void SetLogTimestamps(bool enabled) {
  g_log_timestamps.store(enabled, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    if (g_log_timestamps.load(std::memory_order_relaxed)) {
      stream_ << FormatTimestamp() << " ";
    }
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    sink = SinkSlot();
  }
  if (sink) {
    sink(level_, stream_.str());
  } else {
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace hom
