#include "common/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace hom {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

/// Directory part of `path` ("." when there is no separator); the rename
/// durability fsync targets this.
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path,
                                     size_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read of '" + path + "' failed");
  std::string bytes = std::move(buffer).str();
  if (bytes.size() > max_bytes) {
    return Status::InvalidArgument("'" + path + "' is " +
                                   std::to_string(bytes.size()) +
                                   " bytes, larger than the " +
                                   std::to_string(max_bytes) + " byte cap");
  }
  return bytes;
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot create", tmp));

  Status failure;
  const char* data = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      failure = Status::IoError(ErrnoMessage("write to", tmp));
      break;
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  if (failure.ok() && ::fsync(fd) != 0) {
    failure = Status::IoError(ErrnoMessage("fsync of", tmp));
  }
  if (::close(fd) != 0 && failure.ok()) {
    failure = Status::IoError(ErrnoMessage("close of", tmp));
  }
  if (failure.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    failure = Status::IoError(ErrnoMessage("rename to", path));
  }
  if (!failure.ok()) {
    ::unlink(tmp.c_str());
    return failure;
  }
  // Persist the rename: fsync the directory entry. Failure here is
  // reported (the data may not survive power loss) but the file content
  // itself is already complete and visible.
  int dir_fd = ::open(DirName(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    bool synced = ::fsync(dir_fd) == 0;
    ::close(dir_fd);
    if (!synced) {
      return Status::IoError(ErrnoMessage("directory fsync for", path));
    }
  }
  return Status::OK();
}

}  // namespace hom
