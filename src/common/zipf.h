#ifndef HOM_COMMON_ZIPF_H_
#define HOM_COMMON_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hom {

/// \brief Samples ranks from a Zipf distribution.
///
/// P(rank = k) ∝ 1 / k^z for k in [1, n]. The paper's Stagger and
/// Hyperplane generators pick the *next* concept from a Zipf law with
/// exponent z = 1 (Section IV-A), so concept popularity is skewed.
class ZipfDistribution {
 public:
  /// \param n number of ranks (must be >= 1)
  /// \param z skew exponent; z = 0 degenerates to uniform.
  ZipfDistribution(size_t n, double z);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of rank `k` (0-based).
  double Pmf(size_t k) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative masses, cdf_.back() == 1.0
};

}  // namespace hom

#endif  // HOM_COMMON_ZIPF_H_
