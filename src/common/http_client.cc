#include "common/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace hom {

namespace {

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

/// RAII socket close so every early return in RoundTrip stays leak-free.
struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

void SetIoTimeout(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Non-blocking connect bounded by `timeout_ms`, then back to blocking
/// mode. Returns a Status instead of hanging the caller on a dead peer.
Status ConnectWithDeadline(int fd, const sockaddr_in& addr, int timeout_ms) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      return Status::IoError(std::string("connect: ") + std::strerror(errno));
    }
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return Status::IoError("connect: deadline exceeded");
    if (ready < 0) {
      return Status::IoError(std::string("connect poll: ") +
                             std::strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return Status::IoError(std::string("connect: ") + std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return Status::OK();
}

Status SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IoError(std::string("send: ") +
                             (n < 0 ? std::strerror(errno) : "peer closed"));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Case-insensitive "Content-Length" / "Content-Type" lookup in a raw
/// header block. Returns false when the header is absent or malformed.
bool FindHeader(std::string_view head, std::string_view name,
                std::string* value) {
  size_t pos = head.find('\n');  // skip the status line
  while (pos != std::string_view::npos && pos + 1 < head.size()) {
    size_t line_start = pos + 1;
    size_t line_end = head.find('\n', line_start);
    std::string_view line = head.substr(
        line_start, line_end == std::string_view::npos ? std::string_view::npos
                                                       : line_end - line_start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    size_t colon = line.find(':');
    if (colon != std::string_view::npos && colon == name.size()) {
      bool match = true;
      for (size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        std::string_view v = line.substr(colon + 1);
        while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
          v.remove_prefix(1);
        }
        while (!v.empty() && (v.back() == ' ' || v.back() == '\t')) {
          v.remove_suffix(1);
        }
        value->assign(v);
        return true;
      }
    }
    pos = line_end;
  }
  return false;
}

}  // namespace

HttpClient::HttpClient(std::string host, uint16_t port,
                       HttpClientOptions options)
    : host_(std::move(host)), port_(port), options_(std::move(options)) {
  if (host_ == "localhost") host_ = "127.0.0.1";
}

Result<HttpResponseMessage> HttpClient::Get(
    const std::string& path, const HttpHeaderList& extra_headers) {
  return RoundTrip("GET", path, std::string(), std::string_view(),
                   extra_headers);
}

Result<HttpResponseMessage> HttpClient::Post(
    const std::string& path, const std::string& content_type,
    std::string_view body, const HttpHeaderList& extra_headers) {
  return RoundTrip("POST", path, content_type, body, extra_headers);
}

Result<HttpResponseMessage> HttpClient::PostWithRetry(
    const std::string& path, const std::string& content_type,
    std::string_view body, HttpRetryStats* stats,
    const HttpHeaderList& extra_headers) {
  BackoffSchedule schedule(options_.backoff, port_);
  HttpRetryStats local;
  Result<HttpResponseMessage> last = Status::Internal("no attempt made");
  for (size_t attempt = 0;; ++attempt) {
    std::string wire(body);
    if (options_.transport_fault_hook) {
      options_.transport_fault_hook(attempt, &wire);
    }
    last = RoundTrip("POST", path, content_type, wire, extra_headers);
    local.attempts = attempt + 1;
    // Transport errors and 5xx retry; anything the server parsed and
    // answered below 500 is final.
    bool retryable = !last.ok() || last->status >= 500;
    if (!retryable || schedule.ShouldGiveUp(local.attempts)) break;
    uint64_t delay = schedule.DelayMs(attempt);
    local.backoff_ms += delay;
    ++local.retries;
    if (options_.sleep_ms) {
      options_.sleep_ms(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  if (stats != nullptr) *stats = local;
  return last;
}

Result<HttpResponseMessage> HttpClient::RoundTrip(
    const std::string& method, const std::string& path,
    const std::string& content_type, std::string_view body,
    const HttpHeaderList& extra_headers) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host '" + host_ +
                                   "' (numeric IPv4 required)");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  FdCloser closer{fd};
  HOM_RETURN_NOT_OK(
      ConnectWithDeadline(fd, addr, options_.connect_timeout_ms));
  SetIoTimeout(fd, options_.io_timeout_ms);

  std::string request = method + " " + path + " HTTP/1.1\r\n";
  request += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  if (!content_type.empty()) {
    request += "Content-Type: " + content_type + "\r\n";
  }
  if (method == "POST") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  bool caller_sent_traceparent = false;
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
    if (name == "traceparent") caller_sent_traceparent = true;
  }
  if (!caller_sent_traceparent && options_.traceparent_provider) {
    std::string traceparent = options_.traceparent_provider();
    if (!traceparent.empty()) {
      request += "traceparent: " + traceparent + "\r\n";
    }
  }
  request += "Connection: close\r\n\r\n";
  HOM_RETURN_NOT_OK(SendAll(fd, request));
  if (!body.empty()) HOM_RETURN_NOT_OK(SendAll(fd, body));

  // Read the whole response (the server closes after one exchange), but
  // stop early once Content-Length bytes of body have arrived.
  std::string raw;
  size_t head_end = std::string::npos;
  size_t want_body = std::string::npos;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;  // EOF
    raw.append(buf, static_cast<size_t>(n));
    if (raw.size() > options_.max_response_bytes) {
      return Status::IoError("response exceeds max_response_bytes");
    }
    if (head_end == std::string::npos) {
      size_t pos = raw.find("\r\n\r\n");
      if (pos != std::string::npos) {
        head_end = pos + 4;
      } else if ((pos = raw.find("\n\n")) != std::string::npos) {
        head_end = pos + 2;
      }
      if (head_end != std::string::npos) {
        std::string length;
        if (FindHeader(raw.substr(0, head_end), "Content-Length", &length)) {
          errno = 0;
          char* end = nullptr;
          unsigned long long v = std::strtoull(length.c_str(), &end, 10);
          if (errno != 0 || end == length.c_str() || *end != '\0') {
            return Status::IoError("unparsable Content-Length '" + length +
                                   "'");
          }
          if (v > options_.max_response_bytes) {
            return Status::IoError("response exceeds max_response_bytes");
          }
          want_body = static_cast<size_t>(v);
        }
      }
    }
    if (head_end != std::string::npos && want_body != std::string::npos &&
        raw.size() - head_end >= want_body) {
      break;
    }
  }
  if (head_end == std::string::npos) {
    return Status::IoError("truncated response: no header terminator");
  }

  HttpResponseMessage response;
  // Status line: HTTP/1.1 SP code SP reason.
  size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return Status::IoError("malformed status line");
  }
  response.status = std::atoi(raw.c_str() + sp + 1);
  if (response.status < 100 || response.status > 599) {
    return Status::IoError("malformed status code");
  }
  FindHeader(raw.substr(0, head_end), "Content-Type",
             &response.content_type);
  response.body = raw.substr(head_end);
  if (want_body != std::string::npos) {
    if (response.body.size() < want_body) {
      return Status::IoError("truncated response body: got " +
                             std::to_string(response.body.size()) + " of " +
                             std::to_string(want_body) + " bytes");
    }
    response.body.resize(want_body);
  }
  return response;
}

}  // namespace hom
