#ifndef HOM_COMMON_STOPWATCH_H_
#define HOM_COMMON_STOPWATCH_H_

#include <chrono>

namespace hom {

/// \brief Wall-clock timer used by the benchmark harnesses to reproduce the
/// paper's build-time / test-time tables.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the accumulated time and starts a fresh measurement.
  void Restart() {
    accumulated_ = Duration::zero();
    start_ = Clock::now();
    running_ = true;
  }

  /// Pauses accumulation (e.g., to exclude data-generation time).
  void Pause() {
    if (running_) {
      accumulated_ += Clock::now() - start_;
      running_ = false;
    }
  }

  /// Resumes after Pause().
  void Resume() {
    if (!running_) {
      start_ = Clock::now();
      running_ = true;
    }
  }

  /// Seconds elapsed while running since the last Restart().
  double ElapsedSeconds() const {
    Duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;

  Duration accumulated_{};
  Clock::time_point start_;
  bool running_ = false;
};

}  // namespace hom

#endif  // HOM_COMMON_STOPWATCH_H_
