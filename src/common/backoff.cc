#include "common/backoff.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace hom {

BackoffSchedule::BackoffSchedule(const BackoffPolicy& policy, uint64_t domain)
    : policy_(policy), domain_(domain) {
  if (policy_.multiplier < 1.0) policy_.multiplier = 1.0;
  if (policy_.jitter_fraction < 0.0) policy_.jitter_fraction = 0.0;
  if (policy_.jitter_fraction > 1.0) policy_.jitter_fraction = 1.0;
  if (policy_.max_delay_ms < policy_.initial_delay_ms) {
    policy_.max_delay_ms = policy_.initial_delay_ms;
  }
}

uint64_t BackoffSchedule::DelayMs(size_t attempt) const {
  // Grow in double space and clamp before converting back so large
  // attempt numbers saturate at the cap instead of overflowing.
  double base = static_cast<double>(policy_.initial_delay_ms) *
                std::pow(policy_.multiplier, static_cast<double>(attempt));
  base = std::min(base, static_cast<double>(policy_.max_delay_ms));
  if (policy_.jitter_fraction == 0.0) {
    return static_cast<uint64_t>(base);
  }
  // Symmetric jitter in [-f, +f] * base from the stateless stream: the
  // delay for (seed, domain, attempt) is the same in every process.
  constexpr uint64_t kJitterDomainSalt = 0x626b6f66ULL;  // "bkof"
  Rng rng = Rng::Derive(policy_.seed, domain_ ^ kJitterDomainSalt, attempt);
  double factor = 1.0 + policy_.jitter_fraction * (2.0 * rng.NextDouble() - 1.0);
  double jittered = std::max(0.0, base * factor);
  return static_cast<uint64_t>(jittered);
}

bool BackoffSchedule::ShouldGiveUp(size_t attempts_made) const {
  return policy_.max_attempts != 0 && attempts_made >= policy_.max_attempts;
}

}  // namespace hom
