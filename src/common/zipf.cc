#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hom {

ZipfDistribution::ZipfDistribution(size_t n, double z) {
  HOM_CHECK_GE(n, 1u);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), z);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t k) const {
  HOM_CHECK_LT(k, cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace hom
