#ifndef HOM_COMMON_HTTP_CLIENT_H_
#define HOM_COMMON_HTTP_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/result.h"

namespace hom {

/// Extra request headers for one call, written verbatim (name: value).
using HttpHeaderList = std::vector<std::pair<std::string, std::string>>;

/// One parsed HTTP response. `status` is the numeric code from the status
/// line; `body` holds exactly Content-Length bytes (or the bytes until EOF
/// when the server omitted the header).
struct HttpResponseMessage {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// Attempt accounting for the retrying entry points.
struct HttpRetryStats {
  size_t attempts = 0;       ///< Tries sent on the wire (>= 1).
  size_t retries = 0;        ///< attempts - 1.
  uint64_t backoff_ms = 0;   ///< Total scheduled backoff slept.
};

struct HttpClientOptions {
  /// Deadline for the TCP connect itself.
  int connect_timeout_ms = 1000;
  /// Per-socket read/write deadline once connected.
  int io_timeout_ms = 2000;
  /// Responses larger than this are an error, not an allocation.
  size_t max_response_bytes = 64u << 20;
  /// Retry schedule for the *WithRetry entry points. Transport failures
  /// (refused, timeout, truncated response) and 5xx responses retry;
  /// 2xx-4xx return immediately — the request, not the network, decided.
  BackoffPolicy backoff;
  /// Test seam: replaces the real sleep between retries. Receives the
  /// scheduled delay in milliseconds.
  std::function<void(uint64_t)> sleep_ms;
  /// Chaos seam: invoked per attempt with the attempt index (0-based) and
  /// the outgoing request body, which it may corrupt or truncate in
  /// flight. Content-Length is computed after mutation, so a truncated
  /// body arrives "complete" at the transport level and must be caught by
  /// checksums one layer up.
  std::function<void(size_t attempt, std::string* body)> transport_fault_hook;
  /// Trace-propagation seam: when set and returning a non-empty string,
  /// every request carries it as a `traceparent` header (unless the call's
  /// extra headers already supply one). hom_common cannot depend on the
  /// obs trace layer, so obs-linking callers wire this to
  /// obs::CurrentTraceparentOrEmpty and the client stays dependency-free.
  std::function<std::string()> traceparent_provider;
};

/// \brief Minimal dependency-free blocking HTTP/1.1 client, the peer of
/// obs::HttpServer: numeric-host TCP, explicit deadlines on connect and
/// IO, `Connection: close` per request, and capped exponential backoff on
/// the retrying entry points.
///
/// Only numeric IPv4 hosts (and the literal "localhost") are accepted —
/// replication targets are addressed explicitly, and resolving names here
/// would drag wall-clock DNS variance into an otherwise deterministic
/// retry schedule.
///
/// Every failure is a clean Status (never an exception, never a crash):
/// connection refusal, deadline expiry, oversized or truncated responses
/// all come back as IoError with the failing stage in the message.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, HttpClientOptions options = {});

  /// One GET round trip, no retries.
  Result<HttpResponseMessage> Get(const std::string& path,
                                  const HttpHeaderList& extra_headers = {});

  /// One POST round trip, no retries.
  Result<HttpResponseMessage> Post(const std::string& path,
                                   const std::string& content_type,
                                   std::string_view body,
                                   const HttpHeaderList& extra_headers = {});

  /// POST with the options' backoff schedule. Retries transport errors
  /// and 5xx responses until the policy gives up; the last failure (Status
  /// or 5xx response) is returned as-is. 2xx-4xx responses short-circuit.
  Result<HttpResponseMessage> PostWithRetry(
      const std::string& path, const std::string& content_type,
      std::string_view body, HttpRetryStats* stats = nullptr,
      const HttpHeaderList& extra_headers = {});

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  void set_port(uint16_t port) { port_ = port; }

 private:
  Result<HttpResponseMessage> RoundTrip(const std::string& method,
                                        const std::string& path,
                                        const std::string& content_type,
                                        std::string_view body,
                                        const HttpHeaderList& extra_headers);

  std::string host_;
  uint16_t port_;
  HttpClientOptions options_;
};

}  // namespace hom

#endif  // HOM_COMMON_HTTP_CLIENT_H_
