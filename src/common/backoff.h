#ifndef HOM_COMMON_BACKOFF_H_
#define HOM_COMMON_BACKOFF_H_

#include <cstddef>
#include <cstdint>

namespace hom {

/// \brief Capped exponential backoff with seeded, deterministic jitter.
///
/// The schedule is a pure function of the policy: attempt k waits
/// `initial_delay_ms * multiplier^k`, capped at `max_delay_ms`, then
/// spread by +/- `jitter_fraction` using `Rng::Derive(seed, domain, k)`.
/// Because the jitter stream is derived statelessly, two processes with
/// the same policy draw identical delays — tests can assert the exact
/// schedule and replicated runs stay reproducible.
struct BackoffPolicy {
  /// Delay before the first retry.
  uint64_t initial_delay_ms = 50;
  /// Growth factor between consecutive retries. Must be >= 1.
  double multiplier = 2.0;
  /// Ceiling applied before jitter.
  uint64_t max_delay_ms = 5000;
  /// Total attempts (first try + retries) before giving up. 0 means
  /// retry forever.
  size_t max_attempts = 5;
  /// Fraction of the base delay used as a symmetric jitter range, in
  /// [0, 1]. 0 disables jitter.
  double jitter_fraction = 0.2;
  /// Seed for the jitter stream.
  uint64_t seed = 1;
};

/// Deterministic view over a BackoffPolicy. `domain` separates independent
/// users of the same seed (e.g. two shippers in one process).
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const BackoffPolicy& policy, uint64_t domain = 0);

  /// Delay in milliseconds before retry number `attempt` (0-based: 0 is
  /// the wait between the first failure and the first retry). Pure
  /// function of (policy, domain, attempt).
  uint64_t DelayMs(size_t attempt) const;

  /// True once `attempts_made` tries have been spent and the policy says
  /// to stop. With max_attempts == 0 this never returns true.
  bool ShouldGiveUp(size_t attempts_made) const;

  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  uint64_t domain_;
};

}  // namespace hom

#endif  // HOM_COMMON_BACKOFF_H_
