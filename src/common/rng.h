#ifndef HOM_COMMON_RNG_H_
#define HOM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hom {

/// \brief Deterministic pseudo-random number generator (PCG32).
///
/// Every stochastic component in the library takes an explicit Rng so that
/// experiments are reproducible bit-for-bit from a seed. PCG32 (O'Neill,
/// 2014) is small, fast, and has far better statistical quality than LCGs
/// of the same size.
class Rng {
 public:
  /// Seeds the generator; two Rngs with the same (seed, stream) produce
  /// identical sequences.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Returns a uniformly distributed 32-bit value.
  uint32_t NextUint32();

  /// Returns a uniform integer in [0, bound). Uses rejection sampling to
  /// avoid modulo bias. `bound` must be positive.
  uint32_t NextBounded(uint32_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns a standard normal deviate (Box-Muller, cached second value).
  double NextGaussian();

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = NextBounded(static_cast<uint32_t>(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// experiment run its own stream while keeping top-level determinism.
  Rng Fork();

  /// Stateless derivation of an independent generator from a (seed, domain,
  /// index) triple, via SplitMix64 hashing. Unlike Fork(), the result does
  /// not depend on any generator's mutable state, so work items scheduled
  /// in any order — or on any number of threads — draw identical streams:
  /// `Derive(s, d, i)` is a pure function. `domain` separates independent
  /// uses of the same index space (e.g. leaf holdout splits vs. sample
  /// shuffles) so they never correlate.
  static Rng Derive(uint64_t seed, uint64_t domain, uint64_t index);

 private:
  uint64_t state_;
  uint64_t inc_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace hom

#endif  // HOM_COMMON_RNG_H_
