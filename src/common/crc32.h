#ifndef HOM_COMMON_CRC32_H_
#define HOM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hom {

/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the
/// integrity check behind the v2 model format and the serving checkpoints.
///
/// A corrupted model file must never reach the deserializers' structural
/// parsing with silently flipped bits: every framed section (binary_io.h)
/// carries the CRC of its payload, so any single-bit flip, byte smear, or
/// splice is detected before a length field or index is trusted. CRC-32 is
/// not cryptographic — it guards against storage/transport corruption, not
/// adversaries.

/// CRC of `n` bytes. `seed` is the running CRC of the preceding bytes
/// (0 to start), so large buffers can be folded incrementally:
/// `Crc32(b, m, Crc32(a, n))` == CRC of a||b.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace hom

#endif  // HOM_COMMON_CRC32_H_
