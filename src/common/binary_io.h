#ifndef HOM_COMMON_BINARY_IO_H_
#define HOM_COMMON_BINARY_IO_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hom {

/// \brief Little-endian primitive writer for model serialization.
///
/// Serialization keeps the offline-trained high-order model deployable:
/// build once on the archive machine, ship the bytes, load in the online
/// service. Format details live with the writers/readers of each type.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  Status WriteU8(uint8_t v);
  Status WriteU32(uint32_t v);
  Status WriteU64(uint64_t v);
  Status WriteI32(int32_t v);
  Status WriteDouble(double v);
  Status WriteString(const std::string& s);
  Status WriteDoubleVector(const std::vector<double>& v);

 private:
  Status WriteBytes(const void* data, size_t n);
  std::ostream* out_;
};

/// \brief Little-endian primitive reader; every method validates stream
/// state and returns IoError on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<double> ReadDouble();
  /// Strings and vectors are length-prefixed; `limit` bounds the length so
  /// corrupted files cannot trigger huge allocations.
  Result<std::string> ReadString(size_t limit = 1 << 20);
  Result<std::vector<double>> ReadDoubleVector(size_t limit = 1 << 26);

 private:
  Status ReadBytes(void* data, size_t n);
  std::istream* in_;
};

}  // namespace hom

#endif  // HOM_COMMON_BINARY_IO_H_
