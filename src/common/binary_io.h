#ifndef HOM_COMMON_BINARY_IO_H_
#define HOM_COMMON_BINARY_IO_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hom {

/// \brief Little-endian primitive writer for model serialization.
///
/// Serialization keeps the offline-trained high-order model deployable:
/// build once on the archive machine, ship the bytes, load in the online
/// service. Format details live with the writers/readers of each type.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  Status WriteU8(uint8_t v);
  Status WriteU32(uint32_t v);
  Status WriteU64(uint64_t v);
  Status WriteI32(int32_t v);
  Status WriteI64(int64_t v);
  Status WriteDouble(double v);
  Status WriteString(const std::string& s);
  Status WriteDoubleVector(const std::vector<double>& v);
  /// Writes `n` raw bytes with no length prefix (section payloads).
  Status WriteRaw(const void* data, size_t n);

 private:
  Status WriteBytes(const void* data, size_t n);
  std::ostream* out_;
};

/// \brief Little-endian primitive reader; every method validates stream
/// state and returns IoError on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  /// Strings and vectors are length-prefixed; `limit` bounds the length so
  /// corrupted files cannot trigger huge allocations.
  Result<std::string> ReadString(size_t limit = 1 << 20);
  Result<std::vector<double>> ReadDoubleVector(size_t limit = 1 << 26);
  /// Reads exactly `n` raw bytes (no length prefix); IoError on truncation.
  Result<std::string> ReadBlob(size_t n);
  /// True once the underlying stream is exhausted (peek hits EOF).
  bool AtEof() const;

 private:
  Status ReadBytes(void* data, size_t n);
  std::istream* in_;
};

// ---------------------------------------------------------------------------
// CRC-framed sections (model format v2, serving checkpoints)
//
// A section is {u32 tag, u64 payload_size, payload bytes, u32 crc32}.
// The CRC covers the payload only; the reader verifies it BEFORE any
// structural parsing, so a bit-flipped or truncated file is rejected while
// its bytes are still an opaque blob — no length field or index inside a
// corrupt payload is ever trusted.

/// Four-character section tag packed little-endian ("SCHM" et al.).
constexpr uint32_t SectionTag(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/// Renders a tag for error messages ("SCHM"; non-printable bytes as '?').
std::string SectionTagName(uint32_t tag);

/// One decoded section: its tag and the CRC-verified payload bytes.
struct Section {
  uint32_t tag = 0;
  std::string payload;
};

/// Frames `payload` under `tag` with its CRC32.
Status WriteSection(BinaryWriter* writer, uint32_t tag,
                    std::string_view payload);

/// Reads one section and verifies its CRC. `max_payload` bounds the
/// declared size so a corrupt length field cannot trigger a huge
/// allocation; truncation and CRC mismatch both surface as error Status.
Result<Section> ReadSection(BinaryReader* reader,
                            size_t max_payload = size_t{1} << 30);

}  // namespace hom

#endif  // HOM_COMMON_BINARY_IO_H_
