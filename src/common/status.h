#ifndef HOM_COMMON_STATUS_H_
#define HOM_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace hom {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
};

/// \brief Returns a human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation (Arrow/RocksDB idiom; the library
/// does not throw exceptions).
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Functions that produce a value use Result<T> (result.h) instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

}  // namespace hom

/// Propagates a non-OK Status to the caller.
#define HOM_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::hom::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // HOM_COMMON_STATUS_H_
