#include "baselines/dwm.h"

#include <algorithm>

#include "common/check.h"
#include "obs/event_journal.h"

namespace hom {

Dwm::Dwm(SchemaPtr schema, IncrementalClassifierFactory expert_factory,
         DwmConfig config)
    : schema_(std::move(schema)),
      expert_factory_(std::move(expert_factory)),
      config_(config) {
  HOM_CHECK(expert_factory_ != nullptr);
  HOM_CHECK_GT(config_.beta, 0.0);
  HOM_CHECK_LT(config_.beta, 1.0);
  HOM_CHECK_GE(config_.period, 1u);
  HOM_CHECK_GE(config_.max_experts, 1u);
  SpawnExpert();
}

void Dwm::SpawnExpert() {
  Expert expert;
  expert.model = expert_factory_(schema_);
  expert.weight = 1.0;
  experts_.push_back(std::move(expert));
}

void Dwm::WeightedVote(const Record& x, std::vector<double>* votes) const {
  votes->assign(schema_->num_classes(), 0.0);
  for (const Expert& e : experts_) {
    Label l = e.model->Predict(x);
    if (l >= 0 && static_cast<size_t>(l) < votes->size()) {
      (*votes)[static_cast<size_t>(l)] += e.weight;
    }
  }
}

Label Dwm::Predict(const Record& x) {
  WeightedVote(x, &votes_scratch_);
  return static_cast<Label>(
      std::max_element(votes_scratch_.begin(), votes_scratch_.end()) -
      votes_scratch_.begin());
}

std::vector<double> Dwm::PredictProba(const Record& x) {
  std::vector<double> votes;
  PredictProbaInto(x, &votes);
  return votes;
}

void Dwm::PredictProbaInto(const Record& x, std::vector<double>* proba) {
  WeightedVote(x, proba);
  double total = 0.0;
  for (double v : *proba) total += v;
  if (total > 0.0) {
    for (double& v : *proba) v /= total;
  }
}

void Dwm::ObserveLabeled(const Record& y) {
  HOM_DCHECK(y.is_labeled());
  ++ticks_;
  bool update_point = ticks_ % config_.period == 0;

  // Global (ensemble) prediction before training, for the expert-spawn
  // rule; expert-local errors drive the weight decay.
  std::vector<double> votes(schema_->num_classes(), 0.0);
  for (Expert& e : experts_) {
    Label l = e.model->Predict(y);
    bool wrong = l != y.label;
    if (wrong && update_point) e.weight *= config_.beta;
    if (l >= 0 && static_cast<size_t>(l) < votes.size()) {
      votes[static_cast<size_t>(l)] += e.weight;
    }
  }
  Label global = static_cast<Label>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());

  if (update_point) {
    // Normalize, drop feeble experts, and spawn a fresh one if the
    // ensemble as a whole was wrong.
    double max_w = 0.0;
    for (const Expert& e : experts_) max_w = std::max(max_w, e.weight);
    if (max_w > 0.0) {
      for (Expert& e : experts_) e.weight /= max_w;
    }
    experts_.erase(
        std::remove_if(experts_.begin(), experts_.end(),
                       [&](const Expert& e) {
                         return e.weight < config_.removal_threshold;
                       }),
        experts_.end());
    if (global != y.label && experts_.size() < config_.max_experts) {
      // A spawned expert is DWM's relearn: the ensemble erred, so a blank
      // model starts over on the current trend.
      obs::EmitIfActive(obs::EventType::kModelRelearn, "dwm",
                        static_cast<int64_t>(ticks_), -1,
                        static_cast<int64_t>(experts_.size()),
                        static_cast<double>(experts_.size() + 1));
      SpawnExpert();
    }
    if (experts_.empty()) SpawnExpert();
  }

  for (Expert& e : experts_) {
    Status st = e.model->Update(y);
    HOM_DCHECK(st.ok()) << st.ToString();
  }
}

}  // namespace hom
