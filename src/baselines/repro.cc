#include "baselines/repro.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "obs/event_journal.h"

namespace hom {

RePro::RePro(SchemaPtr schema, ClassifierFactory base_factory,
             ReProConfig config)
    : schema_(std::move(schema)),
      base_factory_(std::move(base_factory)),
      config_(config),
      buffer_(schema_),
      buffer_class_counts_(schema_->num_classes(), 0) {
  HOM_CHECK(base_factory_ != nullptr);
  HOM_CHECK_GE(config_.trigger_window, 1u);
  HOM_CHECK_GE(config_.stable_size, 2u);
  HOM_CHECK_GT(config_.trigger_threshold, 0.0);
}

Label RePro::Predict(const Record& x) {
  if (current_ >= 0) {
    return concepts_[static_cast<size_t>(current_)].model->Predict(x);
  }
  // Bootstrap (or failed proactive state): majority of the records seen so
  // far.
  size_t best = 0;
  for (size_t c = 1; c < buffer_class_counts_.size(); ++c) {
    if (buffer_class_counts_[c] > buffer_class_counts_[best]) best = c;
  }
  return static_cast<Label>(best);
}

void RePro::ObserveLabeled(const Record& y) {
  HOM_DCHECK(y.is_labeled());
  ++ticks_;
  switch (mode_) {
    case Mode::kBootstrap: {
      ++buffer_class_counts_[static_cast<size_t>(y.label)];
      buffer_.AppendUnchecked(y);
      if (buffer_.size() >= config_.stable_size) {
        Concept first;
        first.model = base_factory_(schema_);
        Status st = first.model->Train(DatasetView(&buffer_));
        HOM_CHECK(st.ok()) << st.ToString();
        concepts_.push_back(std::move(first));
        transitions_.emplace_back(1, 0);
        for (auto& row : transitions_) row.resize(1, 0);
        obs::EmitIfActive(obs::EventType::kModelRelearn, "repro",
                          static_cast<int64_t>(ticks_), -1, 0,
                          static_cast<double>(buffer_.size()));
        current_ = 0;
        buffer_ = Dataset(schema_);
        std::fill(buffer_class_counts_.begin(), buffer_class_counts_.end(),
                  0);
        mode_ = Mode::kStable;
      }
      return;
    }
    case Mode::kStable: {
      // Trigger detection: error of the current classifier over the last
      // `trigger_window` labeled records.
      bool wrong =
          concepts_[static_cast<size_t>(current_)].model->Predict(y) !=
          y.label;
      window_.push_back(wrong ? 1 : 0);
      window_errors_ += wrong ? 1 : 0;
      if (window_.size() > config_.trigger_window) {
        window_errors_ -= window_.front();
        window_.pop_front();
      }
      if (window_.size() == config_.trigger_window &&
          static_cast<double>(window_errors_) /
                  static_cast<double>(window_.size()) >=
              config_.trigger_threshold) {
        HandleTrigger();
      }
      return;
    }
    case Mode::kLearning: {
      ++buffer_class_counts_[static_cast<size_t>(y.label)];
      buffer_.AppendUnchecked(y);
      ++since_recheck_;
      // Periodically scan the concept history for a reappearing concept so
      // recovery does not have to wait for the full stable buffer.
      if (since_recheck_ >= config_.recheck_interval &&
          buffer_.size() >= config_.trigger_window) {
        since_recheck_ = 0;
        double acc = 0.0;
        int match = FindReappearing(&acc);
        if (match >= 0) {
          RecordTransition(pre_trigger_, match);
          JournalAdoption(match, /*relearned=*/false, acc);
          current_ = match;
          buffer_ = Dataset(schema_);
          std::fill(buffer_class_counts_.begin(),
                    buffer_class_counts_.end(), 0);
          mode_ = Mode::kStable;
          window_.clear();
          window_errors_ = 0;
          return;
        }
      }
      if (buffer_.size() >= config_.stable_size) {
        ConcludeLearning();
      }
      return;
    }
  }
}

void RePro::HandleTrigger() {
  ++num_triggers_;
  // The trigger IS RePro's drift suspicion: journal it with the window
  // error that fired it, before the window is cleared.
  obs::EmitIfActive(obs::EventType::kDriftSuspected, "repro",
                    static_cast<int64_t>(ticks_), current_, -1,
                    static_cast<double>(window_errors_) /
                        static_cast<double>(window_.size()));
  pre_trigger_ = current_;
  mode_ = Mode::kLearning;
  buffer_ = Dataset(schema_);
  std::fill(buffer_class_counts_.begin(), buffer_class_counts_.end(), 0);
  window_.clear();
  window_errors_ = 0;
  since_recheck_ = 0;
  // Proactive jump: if the transition history is confident about the
  // successor, start predicting with it immediately instead of clinging to
  // the outdated classifier.
  double confidence = 0.0;
  int successor = ProactiveSuccessor(pre_trigger_, &confidence);
  if (successor >= 0) {
    obs::EmitIfActive(obs::EventType::kHmmPrediction, "repro",
                      static_cast<int64_t>(ticks_), pre_trigger_, successor,
                      confidence);
    current_ = successor;
  }
}

int RePro::FindReappearing(double* acc) const {
  DatasetView view(&buffer_);
  int best = -1;
  double best_acc = 0.0;
  for (size_t c = 0; c < concepts_.size(); ++c) {
    size_t correct = 0;
    for (size_t i = 0; i < view.size(); ++i) {
      const Record& r = view.record(i);
      if (concepts_[c].model->Predict(r) == r.label) ++correct;
    }
    double a = static_cast<double>(correct) /
               static_cast<double>(view.size());
    if (a >= config_.reuse_threshold && a > best_acc) {
      best_acc = a;
      best = static_cast<int>(c);
    }
  }
  if (acc != nullptr) *acc = best_acc;
  return best;
}

void RePro::ConcludeLearning() {
  double acc = 0.0;
  bool relearned = false;
  int match = FindReappearing(&acc);
  if (match < 0) {
    // Learn a brand-new concept, then make sure it is not conceptually
    // equivalent to a historical one (agreement on the learning buffer).
    Concept fresh;
    fresh.model = base_factory_(schema_);
    Status st = fresh.model->Train(DatasetView(&buffer_));
    if (!st.ok()) {
      HOM_LOG(kWarning) << "RePro concept training failed: " << st.ToString();
      // Stay with the current concept rather than install a broken model.
      match = current_ >= 0 ? current_ : 0;
    } else {
      DatasetView view(&buffer_);
      for (size_t c = 0; c < concepts_.size() && match < 0; ++c) {
        size_t agree = 0;
        for (size_t i = 0; i < view.size(); ++i) {
          if (concepts_[c].model->Predict(view.record(i)) ==
              fresh.model->Predict(view.record(i))) {
            ++agree;
          }
        }
        if (static_cast<double>(agree) / static_cast<double>(view.size()) >=
            config_.equivalence_threshold) {
          match = static_cast<int>(c);
        }
      }
      if (match < 0) {
        concepts_.push_back(std::move(fresh));
        for (auto& row : transitions_) row.resize(concepts_.size(), 0);
        transitions_.emplace_back(concepts_.size(), 0);
        match = static_cast<int>(concepts_.size() - 1);
        relearned = true;
        acc = static_cast<double>(buffer_.size());
      }
    }
  }
  RecordTransition(pre_trigger_, match);
  JournalAdoption(match, relearned, acc);
  current_ = match;
  buffer_ = Dataset(schema_);
  std::fill(buffer_class_counts_.begin(), buffer_class_counts_.end(), 0);
  mode_ = Mode::kStable;
  window_.clear();
  window_errors_ = 0;
}

void RePro::RecordTransition(int from, int to) {
  if (from < 0 || to < 0 || from == to) return;
  ++transitions_[static_cast<size_t>(from)][static_cast<size_t>(to)];
}

void RePro::JournalAdoption(int adopted, bool relearned, double value) const {
  obs::EmitIfActive(obs::EventType::kDriftConfirmed, "repro",
                    static_cast<int64_t>(ticks_), pre_trigger_, adopted,
                    value);
  obs::EmitIfActive(relearned ? obs::EventType::kModelRelearn
                              : obs::EventType::kModelReuse,
                    "repro", static_cast<int64_t>(ticks_), pre_trigger_,
                    adopted, value);
  if (adopted != current_) {
    obs::EmitIfActive(obs::EventType::kConceptSwitch, "repro",
                      static_cast<int64_t>(ticks_), current_, adopted, value);
  }
}

int RePro::ProactiveSuccessor(int from, double* confidence) const {
  if (from < 0) return -1;
  const std::vector<size_t>& row = transitions_[static_cast<size_t>(from)];
  size_t total = 0;
  size_t best_count = 0;
  int best = -1;
  for (size_t to = 0; to < row.size(); ++to) {
    total += row[to];
    if (row[to] > best_count) {
      best_count = row[to];
      best = static_cast<int>(to);
    }
  }
  if (total == 0 || best < 0) return -1;
  double conf = static_cast<double>(best_count) / static_cast<double>(total);
  if (confidence != nullptr) *confidence = conf;
  return conf >= config_.proactive_threshold ? best : -1;
}

}  // namespace hom
