#ifndef HOM_BASELINES_DWM_H_
#define HOM_BASELINES_DWM_H_

#include <memory>
#include <string>
#include <vector>

#include "classifiers/incremental.h"
#include "eval/stream_classifier.h"

namespace hom {

/// Parameters of Dynamic Weighted Majority; defaults follow Kolter & Maloof.
struct DwmConfig {
  /// Multiplicative penalty applied to an expert's weight when it errs.
  double beta = 0.5;
  /// Experts whose (normalized) weight falls below this are removed.
  double removal_threshold = 0.01;
  /// Weight updates / expert addition-removal happen every `period`
  /// records (p in the paper); 1 = every record.
  size_t period = 50;
  /// Hard cap on the expert count (the original algorithm is unbounded).
  size_t max_experts = 25;
};

/// \brief Dynamic Weighted Majority (Kolter & Maloof, ICDM 2003 — the
/// paper's reference [15]): an online ensemble of incremental experts whose
/// weights are multiplicatively punished for mistakes; a new expert is
/// spawned whenever the weighted ensemble itself errs at an update point.
///
/// DWM is the classic "chasing trends" online ensemble: it adapts to any
/// drift but never remembers that a concept has been seen before — the
/// behaviour the high-order model is designed to improve on.
class Dwm : public StreamClassifier {
 public:
  Dwm(SchemaPtr schema, IncrementalClassifierFactory expert_factory,
      DwmConfig config = {});

  Label Predict(const Record& x) override;
  std::vector<double> PredictProba(const Record& x) override;
  void PredictProbaInto(const Record& x, std::vector<double>* proba) override;
  void ObserveLabeled(const Record& y) override;
  std::string name() const override { return "DWM"; }
  size_t num_classes() const override { return schema_->num_classes(); }

  size_t num_experts() const { return experts_.size(); }

 private:
  struct Expert {
    std::unique_ptr<IncrementalClassifier> model;
    double weight = 1.0;
  };

  void WeightedVote(const Record& x, std::vector<double>* votes) const;
  void SpawnExpert();

  SchemaPtr schema_;
  IncrementalClassifierFactory expert_factory_;
  DwmConfig config_;
  std::vector<Expert> experts_;
  size_t ticks_ = 0;
  /// Reused vote accumulator of Predict() (allocation-free hot path).
  std::vector<double> votes_scratch_;
};

}  // namespace hom

#endif  // HOM_BASELINES_DWM_H_
