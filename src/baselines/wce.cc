#include "baselines/wce.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "obs/event_journal.h"

namespace hom {

namespace {

/// Mean squared error of probabilistic predictions on `data`:
/// mean of (1 - f^{true class}(x))² (WCE's benefit measure).
double MeanSquaredError(const Classifier& model, const DatasetView& data) {
  if (data.empty()) return 0.0;
  double total = 0.0;
  std::vector<double> proba;
  for (size_t i = 0; i < data.size(); ++i) {
    const Record& r = data.record(i);
    model.PredictProbaInto(r, &proba);
    double miss = 1.0 - proba[static_cast<size_t>(r.label)];
    total += miss * miss;
  }
  return total / static_cast<double>(data.size());
}

}  // namespace

Wce::Wce(SchemaPtr schema, ClassifierFactory base_factory, WceConfig config)
    : schema_(std::move(schema)),
      base_factory_(std::move(base_factory)),
      config_(config),
      rng_(config.seed),
      buffer_(schema_),
      buffer_class_counts_(schema_->num_classes(), 0) {
  HOM_CHECK(base_factory_ != nullptr);
  HOM_CHECK_GE(config_.chunk_size, 2u);
  HOM_CHECK_GE(config_.ensemble_size, 1u);
}

void Wce::FinishChunk() {
  DatasetView chunk(&buffer_);

  // MSE_r: the expected squared error of random guessing under the chunk's
  // class distribution, Σ_c p(c)(1 - p(c))².
  std::vector<size_t> counts = buffer_.ClassCounts();
  double total = static_cast<double>(buffer_.size());
  double mse_r = 0.0;
  for (size_t c : counts) {
    double p = static_cast<double>(c) / total;
    mse_r += p * (1.0 - p) * (1.0 - p);
  }

  // Reweigh the existing members against the newest chunk.
  for (Member& m : members_) {
    m.weight = mse_r - MeanSquaredError(*m.model, chunk);
  }

  // The newest classifier cannot honestly score itself on its own training
  // chunk; estimate its MSE by cross-validation first, then train the
  // deployed model on the whole chunk.
  double cv_mse = 0.0;
  size_t folds = std::min(config_.cv_folds, buffer_.size());
  if (folds >= 2) {
    std::vector<uint32_t> shuffled = chunk.indices();
    rng_.Shuffle(&shuffled);
    double sum = 0.0;
    size_t evaluated = 0;
    for (size_t f = 0; f < folds; ++f) {
      std::vector<uint32_t> train_idx;
      std::vector<uint32_t> test_idx;
      for (size_t i = 0; i < shuffled.size(); ++i) {
        (i % folds == f ? test_idx : train_idx).push_back(shuffled[i]);
      }
      DatasetView train(&buffer_, std::move(train_idx));
      DatasetView test(&buffer_, std::move(test_idx));
      std::unique_ptr<Classifier> fold_model = base_factory_(schema_);
      if (!fold_model->Train(train).ok()) continue;
      sum += MeanSquaredError(*fold_model, test) *
             static_cast<double>(test.size());
      evaluated += test.size();
    }
    cv_mse = evaluated > 0 ? sum / static_cast<double>(evaluated) : mse_r;
  }

  Member fresh;
  fresh.model = base_factory_(schema_);
  Status st = fresh.model->Train(chunk);
  if (st.ok()) {
    // The member is frozen from here on; serve it from the compiled SoA
    // kernel when the base classifier supports one.
    fresh.model->EnsureCompiled();
    fresh.weight = mse_r - cv_mse;
    // Every finished chunk trains a member from scratch — WCE's answer to
    // drift is always a relearn, never reuse.
    obs::EmitIfActive(obs::EventType::kModelRelearn, "wce",
                      static_cast<int64_t>(ticks_), -1,
                      static_cast<int64_t>(chunks_), fresh.weight);
    members_.push_back(std::move(fresh));
  } else {
    HOM_LOG(kWarning) << "WCE chunk training failed: " << st.ToString();
  }
  ++chunks_;

  std::sort(members_.begin(), members_.end(),
            [](const Member& a, const Member& b) {
              return a.weight > b.weight;
            });
  if (members_.size() > config_.ensemble_size) {
    members_.resize(config_.ensemble_size);
  }

  buffer_ = Dataset(schema_);
  std::fill(buffer_class_counts_.begin(), buffer_class_counts_.end(), 0);
}

void Wce::ObserveLabeled(const Record& y) {
  HOM_DCHECK(y.is_labeled());
  ++ticks_;
  ++buffer_class_counts_[static_cast<size_t>(y.label)];
  buffer_.AppendUnchecked(y);
  if (buffer_.size() >= config_.chunk_size) FinishChunk();
}

void Wce::Score(const Record& x, std::vector<double>* score_out) {
  std::vector<double>& score = *score_out;
  score.assign(schema_->num_classes(), 0.0);
  bool any = false;
  double consumed = 0.0;
  double positive_total = 0.0;
  for (const Member& m : members_) {
    if (m.weight > 0.0) positive_total += m.weight;
  }
  for (const Member& m : members_) {  // sorted by weight, descending
    if (m.weight <= 0.0) break;
    m.model->PredictProbaInto(x, &proba_scratch_);
    ++base_evaluations_;
    for (size_t l = 0; l < score.size(); ++l) {
      score[l] += m.weight * proba_scratch_[l];
    }
    any = true;
    consumed += m.weight;
    if (config_.instance_pruning) {
      // Remaining members can add at most (positive_total - consumed) to
      // any single class; stop once the leader's margin exceeds that.
      double remaining = positive_total - consumed;
      double best = -1.0;
      double second = -1.0;
      for (double s : score) {
        if (s > best) {
          second = best;
          best = s;
        } else if (s > second) {
          second = s;
        }
      }
      if (best - second > remaining) break;
    }
  }
  if (!any) {
    // No usable member yet (cold start): vote with the running class
    // distribution of the chunk under construction.
    size_t seen = 0;
    for (size_t c : buffer_class_counts_) seen += c;
    for (size_t l = 0; l < score.size(); ++l) {
      score[l] = seen > 0 ? static_cast<double>(buffer_class_counts_[l]) /
                                static_cast<double>(seen)
                          : 1.0 / static_cast<double>(score.size());
    }
  }
}

Label Wce::Predict(const Record& x) {
  Score(x, &score_scratch_);
  return static_cast<Label>(
      std::max_element(score_scratch_.begin(), score_scratch_.end()) -
      score_scratch_.begin());
}

std::vector<double> Wce::PredictProba(const Record& x) {
  std::vector<double> proba;
  PredictProbaInto(x, &proba);
  return proba;
}

void Wce::PredictProbaInto(const Record& x, std::vector<double>* proba) {
  Score(x, proba);
  double total = 0.0;
  for (double s : *proba) total += s;
  if (total > 0.0) {
    for (double& s : *proba) s /= total;
  }
}

}  // namespace hom
