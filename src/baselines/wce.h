#ifndef HOM_BASELINES_WCE_H_
#define HOM_BASELINES_WCE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "classifiers/classifier.h"
#include "common/result.h"
#include "common/rng.h"
#include "eval/stream_classifier.h"

namespace hom {

/// Parameters of WCE; the paper's experiments use chunk size 100 and 20
/// chunks (Section IV-B).
struct WceConfig {
  size_t chunk_size = 100;
  size_t ensemble_size = 20;
  /// Folds of the cross-validation used to estimate the newest
  /// classifier's MSE on its own chunk (the original paper's correction
  /// for the optimism of self-evaluation).
  size_t cv_folds = 5;
  /// Instance-based pruning: evaluate members in decreasing weight and
  /// stop once the vote cannot flip. (This is what makes WCE's test time
  /// drop at high change rates in Figure 3.)
  bool instance_pruning = true;
  uint64_t seed = 17;
};

/// \brief Weighted Classifier Ensemble (Wang, Fan, Yu, Han — KDD'03), the
/// ensemble-family baseline of Section IV-B.
///
/// The labeled stream is cut into fixed-size chunks; each chunk trains one
/// base classifier. Members are weighted by benefit over random guessing,
/// w_i = MSE_r - MSE_i, with MSE_i measured on the most recent chunk and
/// MSE_r = Σ_c p(c)(1 - p(c))² from that chunk's class distribution.
/// Members with non-positive weight abstain; at most `ensemble_size`
/// members are kept.
class Wce : public StreamClassifier {
 public:
  Wce(SchemaPtr schema, ClassifierFactory base_factory, WceConfig config = {});

  Label Predict(const Record& x) override;
  std::vector<double> PredictProba(const Record& x) override;
  void PredictProbaInto(const Record& x, std::vector<double>* proba) override;
  void ObserveLabeled(const Record& y) override;
  std::string name() const override { return "WCE"; }
  size_t num_classes() const override { return schema_->num_classes(); }

  /// Current number of ensemble members (diagnostic).
  size_t ensemble_count() const { return members_.size(); }
  /// Base-model evaluations spent in Predict (pruning diagnostic).
  size_t base_evaluations() const { return base_evaluations_; }

 private:
  struct Member {
    std::unique_ptr<Classifier> model;
    double weight = 0.0;
  };

  /// Completes the pending chunk: trains a new member, reweighs everyone
  /// on this newest chunk, and evicts down to ensemble_size.
  void FinishChunk();
  /// Weighted ensemble score per class, written into `*score`.
  void Score(const Record& x, std::vector<double>* score);

  SchemaPtr schema_;
  ClassifierFactory base_factory_;
  WceConfig config_;
  Rng rng_;
  Dataset buffer_;  ///< records of the chunk under construction
  std::vector<Member> members_;
  std::vector<size_t> buffer_class_counts_;
  size_t base_evaluations_ = 0;
  size_t ticks_ = 0;   ///< labeled records consumed; journal `record` field
  size_t chunks_ = 0;  ///< chunks completed; journal member id
  /// Reused scratch: one member's distribution and the ensemble score
  /// accumulator of Predict() (allocation-free hot path).
  std::vector<double> proba_scratch_;
  std::vector<double> score_scratch_;
};

}  // namespace hom

#endif  // HOM_BASELINES_WCE_H_
