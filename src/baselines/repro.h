#ifndef HOM_BASELINES_REPRO_H_
#define HOM_BASELINES_REPRO_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "classifiers/classifier.h"
#include "eval/stream_classifier.h"

namespace hom {

/// RePro's user parameters; defaults are the values the paper tuned for its
/// experiments (Section IV-B: "the trigger window size in RePro is set to
/// 20, the stable learning data size is set to 200, the trigger error
/// threshold is set to 0.2, and other three threshold parameters are set to
/// 0.8"). The abundance of stream-dependent parameters is exactly the
/// weakness the paper highlights.
struct ReProConfig {
  /// Sliding window of recent labeled records used for trigger detection.
  size_t trigger_window = 20;
  /// Error rate over the trigger window that fires a concept-change
  /// trigger.
  double trigger_threshold = 0.2;
  /// Number of labeled records collected to learn a stable concept.
  size_t stable_size = 200;
  /// Accuracy a historical classifier must reach on the learning buffer to
  /// be recognized as the reappearing concept.
  double reuse_threshold = 0.8;
  /// Agreement a newly learned classifier must reach with a historical one
  /// for the two to be declared conceptually equivalent.
  double equivalence_threshold = 0.8;
  /// Confidence the transition history must reach for a proactive jump to
  /// the predicted next concept at trigger time.
  double proactive_threshold = 0.8;
  /// While learning, reappearance is re-checked every this many records
  /// (RePro "enumerates every historical concept" during changes — the
  /// source of its test-time growth in Figure 3).
  size_t recheck_interval = 20;
};

/// \brief RePro (Yang, Wu, Zhu — KDD'05): reactive-proactive stream
/// classification with historical concept reuse; the strongest prior
/// baseline in the paper (Section IV-B).
///
/// RePro keeps one classifier per distinct historical concept and a
/// transition count matrix between them. A trigger window detects concept
/// change from the current classifier's recent error; on a trigger it
/// proactively jumps to the historically most likely successor (when the
/// history is confident) and reactively collects data to recognize a
/// reappearing concept or learn a brand-new one.
class RePro : public StreamClassifier {
 public:
  RePro(SchemaPtr schema, ClassifierFactory base_factory,
        ReProConfig config = {});

  Label Predict(const Record& x) override;
  void ObserveLabeled(const Record& y) override;
  std::string name() const override { return "RePro"; }
  size_t num_classes() const override { return schema_->num_classes(); }
  /// The historical concept whose classifier currently predicts (-1 while
  /// bootstrapping).
  int64_t ActiveConcept() const override { return current_; }

  /// Number of distinct concepts in the history (diagnostic; RePro's
  /// weakness is that this can grow with noise).
  size_t num_concepts() const { return concepts_.size(); }
  /// Total trigger firings so far (diagnostic).
  size_t num_triggers() const { return num_triggers_; }
  /// Whether the classifier is currently in the learning state.
  bool is_learning() const { return mode_ == Mode::kLearning; }

 private:
  enum class Mode { kBootstrap, kStable, kLearning };

  struct Concept {
    std::unique_ptr<Classifier> model;
  };

  void HandleTrigger();
  /// Scans history for a concept whose classifier explains the learning
  /// buffer; returns its index or -1, with its buffer accuracy in `acc`
  /// when non-null.
  int FindReappearing(double* acc = nullptr) const;
  /// Finishes learning: adopt a reappearing concept or install a new one,
  /// then record the transition.
  void ConcludeLearning();
  void RecordTransition(int from, int to);
  /// Most confident successor of `from` per the transition history, or -1;
  /// the winning confidence lands in `confidence` when non-null.
  int ProactiveSuccessor(int from, double* confidence = nullptr) const;
  /// Journals the end of a learning episode: DriftConfirmed plus
  /// ModelReuse/ModelRelearn plus (on an actual model change) a
  /// ConceptSwitch.
  void JournalAdoption(int adopted, bool relearned, double value) const;

  SchemaPtr schema_;
  ClassifierFactory base_factory_;
  ReProConfig config_;

  Mode mode_ = Mode::kBootstrap;
  std::vector<Concept> concepts_;
  int current_ = -1;             ///< active concept id, -1 before bootstrap
  int pre_trigger_ = -1;         ///< concept active when the trigger fired
  Dataset buffer_;               ///< learning-mode labeled records
  std::vector<size_t> buffer_class_counts_;
  std::deque<uint8_t> window_;   ///< recent 0/1 errors of current model
  size_t window_errors_ = 0;
  std::vector<std::vector<size_t>> transitions_;  ///< counts [from][to]
  size_t num_triggers_ = 0;
  size_t since_recheck_ = 0;
  size_t ticks_ = 0;  ///< labeled records consumed; journal `record` field
};

}  // namespace hom

#endif  // HOM_BASELINES_REPRO_H_
