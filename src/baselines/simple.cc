#include "baselines/simple.h"

#include "common/check.h"
#include "common/logging.h"
#include "data/dataset_view.h"
#include "obs/event_journal.h"

namespace hom {

StaticBaseline::StaticBaseline(SchemaPtr schema, ClassifierFactory factory,
                               size_t bootstrap_size)
    : schema_(std::move(schema)),
      factory_(std::move(factory)),
      bootstrap_size_(bootstrap_size),
      buffer_(schema_) {
  HOM_CHECK(factory_ != nullptr);
  HOM_CHECK_GE(bootstrap_size, 1u);
}

Label StaticBaseline::Predict(const Record& x) {
  if (model_ != nullptr) return model_->Predict(x);
  return DatasetView(&buffer_).MajorityClass();
}

std::vector<double> StaticBaseline::PredictProba(const Record& x) {
  if (model_ != nullptr) return model_->PredictProba(x);
  return StreamClassifier::PredictProba(x);
}

void StaticBaseline::ObserveLabeled(const Record& y) {
  if (model_ != nullptr) return;  // frozen forever after bootstrap
  buffer_.AppendUnchecked(y);
  if (buffer_.size() >= bootstrap_size_) {
    model_ = factory_(schema_);
    Status st = model_->Train(DatasetView(&buffer_));
    if (!st.ok()) {
      HOM_LOG(kWarning) << "static baseline training failed: "
                        << st.ToString();
      model_.reset();
    } else {
      // The one and only training this baseline ever does.
      obs::EmitIfActive(obs::EventType::kModelRelearn, "static",
                        static_cast<int64_t>(buffer_.size()), -1, 0,
                        static_cast<double>(buffer_.size()));
    }
    buffer_ = Dataset(schema_);
  }
}

SlidingWindowBaseline::SlidingWindowBaseline(SchemaPtr schema,
                                             ClassifierFactory factory,
                                             size_t window_size,
                                             size_t retrain_interval)
    : schema_(std::move(schema)),
      factory_(std::move(factory)),
      window_size_(window_size),
      retrain_interval_(retrain_interval) {
  HOM_CHECK(factory_ != nullptr);
  HOM_CHECK_GE(window_size, 2u);
  HOM_CHECK_GE(retrain_interval, 1u);
}

Label SlidingWindowBaseline::Predict(const Record& x) {
  if (model_ != nullptr) return model_->Predict(x);
  // Majority of the (partial) window before the first retrain.
  std::vector<size_t> counts(schema_->num_classes(), 0);
  for (const Record& r : window_) ++counts[static_cast<size_t>(r.label)];
  size_t best = 0;
  for (size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  return static_cast<Label>(best);
}

std::vector<double> SlidingWindowBaseline::PredictProba(const Record& x) {
  if (model_ != nullptr) return model_->PredictProba(x);
  return StreamClassifier::PredictProba(x);
}

void SlidingWindowBaseline::Retrain() {
  Dataset snapshot(schema_);
  snapshot.Reserve(window_.size());
  for (const Record& r : window_) snapshot.AppendUnchecked(r);
  std::unique_ptr<Classifier> fresh = factory_(schema_);
  Status st = fresh->Train(DatasetView(&snapshot));
  if (st.ok()) {
    model_ = std::move(fresh);
    ++retrains_;
    obs::EmitIfActive(obs::EventType::kModelRelearn, "sliding_window",
                      static_cast<int64_t>(seen_), -1,
                      static_cast<int64_t>(retrains_),
                      static_cast<double>(window_.size()));
  } else {
    HOM_LOG(kWarning) << "window retrain failed: " << st.ToString();
  }
}

void SlidingWindowBaseline::ObserveLabeled(const Record& y) {
  HOM_DCHECK(y.is_labeled());
  ++seen_;
  window_.push_back(y);
  if (window_.size() > window_size_) window_.pop_front();
  if (++since_retrain_ >= retrain_interval_ &&
      window_.size() >= window_size_ / 2) {
    since_retrain_ = 0;
    Retrain();
  }
}

}  // namespace hom
