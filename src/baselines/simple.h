#ifndef HOM_BASELINES_SIMPLE_H_
#define HOM_BASELINES_SIMPLE_H_

#include <deque>
#include <memory>
#include <string>

#include "classifiers/classifier.h"
#include "eval/stream_classifier.h"

namespace hom {

/// \brief The "train once, never adapt" floor: fits one batch model on the
/// first `bootstrap_size` labeled records and uses it forever.
///
/// On a stationary stream this is optimal; on an evolving stream it decays
/// — the degenerate end of the design space the paper argues against.
class StaticBaseline : public StreamClassifier {
 public:
  StaticBaseline(SchemaPtr schema, ClassifierFactory factory,
                 size_t bootstrap_size = 1000);

  Label Predict(const Record& x) override;
  std::vector<double> PredictProba(const Record& x) override;
  void ObserveLabeled(const Record& y) override;
  std::string name() const override { return "Static"; }
  size_t num_classes() const override { return schema_->num_classes(); }

  bool trained() const { return model_ != nullptr; }

 private:
  SchemaPtr schema_;
  ClassifierFactory factory_;
  size_t bootstrap_size_;
  Dataset buffer_;
  std::unique_ptr<Classifier> model_;
};

/// \brief The archetypal trend chaser: keep the last `window_size` labeled
/// records and retrain a fresh model every `retrain_interval` records.
///
/// This is the "endless snapshots" strategy of the paper's introduction:
/// it adapts, but each snapshot is trained on little data, it forgets
/// recurring concepts, and it pays a retraining bill forever.
class SlidingWindowBaseline : public StreamClassifier {
 public:
  SlidingWindowBaseline(SchemaPtr schema, ClassifierFactory factory,
                        size_t window_size = 500,
                        size_t retrain_interval = 100);

  Label Predict(const Record& x) override;
  std::vector<double> PredictProba(const Record& x) override;
  void ObserveLabeled(const Record& y) override;
  std::string name() const override { return "SlidingWindow"; }
  size_t num_classes() const override { return schema_->num_classes(); }

  size_t retrain_count() const { return retrains_; }

 private:
  void Retrain();

  SchemaPtr schema_;
  ClassifierFactory factory_;
  size_t window_size_;
  size_t retrain_interval_;
  std::deque<Record> window_;
  std::unique_ptr<Classifier> model_;
  size_t since_retrain_ = 0;
  size_t retrains_ = 0;
  size_t seen_ = 0;  ///< labeled records consumed; journal `record` field
};

}  // namespace hom

#endif  // HOM_BASELINES_SIMPLE_H_
