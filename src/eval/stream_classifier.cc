#include "eval/stream_classifier.h"

namespace hom {

std::vector<double> StreamClassifier::PredictProba(const Record& x) {
  std::vector<double> proba(num_classes(), 0.0);
  Label l = Predict(x);
  if (l >= 0 && static_cast<size_t>(l) < proba.size()) {
    proba[static_cast<size_t>(l)] = 1.0;
  }
  return proba;
}

void StreamClassifier::PredictProbaInto(const Record& x,
                                        std::vector<double>* proba) {
  *proba = PredictProba(x);
}

}  // namespace hom
