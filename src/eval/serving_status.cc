#include "eval/serving_status.h"

#include <string>

#include "obs/build_info.h"
#include "obs/metrics.h"

namespace hom {

namespace {

/// Cached per-concept gauge handle: one WithLabels() (mutex) per new
/// concept id, relaxed atomic afterwards.
obs::Gauge* ConceptGauge(const char* family_name, int64_t concept_id) {
  return obs::MetricsRegistry::Global()
      .GetGaugeFamily(family_name)
      ->WithLabels({{"concept", std::to_string(concept_id)}});
}

}  // namespace

ServingStatusBoard::ServingStatusBoard() : start_(Clock::now()) {}

void ServingStatusBoard::SetStaticInfo(std::string model_path,
                                       std::string input_path,
                                       size_t num_concepts) {
  std::lock_guard<std::mutex> lock(mu_);
  model_path_ = std::move(model_path);
  input_path_ = std::move(input_path);
  num_concepts_ = num_concepts;
}

void ServingStatusBoard::SetJournal(const obs::EventJournal* journal) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_ = journal;
}

void ServingStatusBoard::SetRequestTimer(const obs::RequestTimer* timer) {
  std::lock_guard<std::mutex> lock(mu_);
  request_timer_ = timer;
}

void ServingStatusBoard::SetState(std::string state) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = std::move(state);
}

void ServingStatusBoard::UpdateProgress(const Progress& progress) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    progress_ = progress;
  }
  HOM_GAUGE_SET("hom.serving.records", progress.records);
  HOM_GAUGE_SET("hom.serving.errors", progress.errors);
  HOM_GAUGE_SET("hom.serving.error_rate",
                progress.records == 0
                    ? 0.0
                    : static_cast<double>(progress.errors) /
                          static_cast<double>(progress.records));
  HOM_GAUGE_SET("hom.serving.active_concept", progress.active_concept);
  for (size_t c = 0; c < progress.posterior.size(); ++c) {
    ConceptGauge("hom.serving.posterior", static_cast<int64_t>(c))
        ->Set(progress.posterior[c]);
  }
  for (size_t c = 0; c < progress.prior.size(); ++c) {
    ConceptGauge("hom.serving.prior", static_cast<int64_t>(c))
        ->Set(progress.prior[c]);
  }
}

void ServingStatusBoard::UpdateConceptStats(const OnlineConceptStats& stats) {
  obs::JsonValue json = stats.ToJson();
  {
    std::lock_guard<std::mutex> lock(mu_);
    concept_stats_json_ = std::move(json);
    has_concept_stats_ = true;
  }
  for (const auto& [concept_id, entry] : stats.concepts()) {
    ConceptGauge("hom.concept.records", concept_id)
        ->Set(static_cast<double>(entry.records));
    ConceptGauge("hom.concept.activations", concept_id)
        ->Set(static_cast<double>(entry.activations));
    ConceptGauge("hom.concept.error_rate", concept_id)
        ->Set(entry.error_rate());
    ConceptGauge("hom.concept.windowed_error_rate", concept_id)
        ->Set(entry.windowed_error_rate());
  }
}

void ServingStatusBoard::RecordCheckpoint(uint64_t record) {
  std::lock_guard<std::mutex> lock(mu_);
  has_checkpoint_ = true;
  checkpoint_record_ = record;
  checkpoint_at_ = Clock::now();
}

double ServingStatusBoard::LastCheckpointAgeSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_checkpoint_) return -1.0;
  return std::chrono::duration<double>(Clock::now() - checkpoint_at_).count();
}

obs::JsonValue ServingStatusBoard::HealthJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("status", obs::JsonValue("ok"));
  out.Set("state", obs::JsonValue(state_));
  out.Set("uptime_seconds",
          obs::JsonValue(
              std::chrono::duration<double>(Clock::now() - start_).count()));
  out.Set("records", obs::JsonValue(progress_.records));
  if (has_checkpoint_) {
    out.Set("last_checkpoint_record", obs::JsonValue(checkpoint_record_));
    out.Set("last_checkpoint_age_seconds",
            obs::JsonValue(std::chrono::duration<double>(Clock::now() -
                                                         checkpoint_at_)
                               .count()));
  } else {
    out.Set("last_checkpoint_age_seconds", obs::JsonValue());
  }
  return out;
}

obs::JsonValue ServingStatusBoard::StatusJson(size_t last_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("state", obs::JsonValue(state_));
  out.Set("model", obs::JsonValue(model_path_));
  out.Set("input", obs::JsonValue(input_path_));
  out.Set("num_concepts",
          obs::JsonValue(static_cast<uint64_t>(num_concepts_)));
  out.Set("uptime_seconds",
          obs::JsonValue(
              std::chrono::duration<double>(Clock::now() - start_).count()));

  obs::JsonValue progress = obs::JsonValue::Object();
  progress.Set("records", obs::JsonValue(progress_.records));
  progress.Set("errors", obs::JsonValue(progress_.errors));
  progress.Set("error_rate",
               obs::JsonValue(progress_.records == 0
                                  ? 0.0
                                  : static_cast<double>(progress_.errors) /
                                        static_cast<double>(
                                            progress_.records)));
  progress.Set("active_concept", obs::JsonValue(progress_.active_concept));
  obs::JsonValue prior = obs::JsonValue::Array();
  for (double p : progress_.prior) prior.Append(obs::JsonValue(p));
  progress.Set("prior", std::move(prior));
  obs::JsonValue posterior = obs::JsonValue::Array();
  for (double p : progress_.posterior) posterior.Append(obs::JsonValue(p));
  progress.Set("posterior", std::move(posterior));
  out.Set("progress", std::move(progress));

  if (has_checkpoint_) {
    obs::JsonValue checkpoint = obs::JsonValue::Object();
    checkpoint.Set("record", obs::JsonValue(checkpoint_record_));
    checkpoint.Set(
        "age_seconds",
        obs::JsonValue(
            std::chrono::duration<double>(Clock::now() - checkpoint_at_)
                .count()));
    out.Set("checkpoint", std::move(checkpoint));
  }

  if (has_concept_stats_) {
    out.Set("concept_stats", concept_stats_json_);
  }

  out.Set("build", obs::BuildInfoJson());

  if (request_timer_ != nullptr) {
    obs::JsonValue slow = obs::JsonValue::Object();
    slow.Set("requests", obs::JsonValue(request_timer_->requests()));
    slow.Set("slowest", request_timer_->SlowestJson());
    out.Set("slow_requests", std::move(slow));
  }

  if (journal_ != nullptr) {
    std::vector<obs::Event> events = journal_->Snapshot();
    size_t begin =
        events.size() > last_events ? events.size() - last_events : 0;
    obs::JsonValue recent = obs::JsonValue::Array();
    for (size_t i = begin; i < events.size(); ++i) {
      // ToJsonl is the journal's canonical event serialization; reparse it
      // so /statusz nests the same objects the JSONL sink writes.
      auto parsed =
          obs::JsonValue::Parse(obs::EventJournal::ToJsonl(events[i]));
      if (parsed.ok()) recent.Append(std::move(parsed).ValueOrDie());
    }
    out.Set("recent_events", std::move(recent));
  }
  return out;
}

}  // namespace hom
