#include "eval/serving_status.h"

#include <string>

#include "obs/build_info.h"
#include "obs/metrics.h"

namespace hom {

obs::Gauge* ServingStatusBoard::ConceptGauges::For(int64_t concept_id) {
  if (concept_id < 0 || concept_id >= 4096) {
    // The classifier reports -1 while no concept is active yet; anything
    // outside the dense-cache range takes the family's locked lookup,
    // which is still correct, just not handle-cached.
    return obs::MetricsRegistry::Global()
        .GetGaugeFamily(family)
        ->WithLabels({{"concept", std::to_string(concept_id)}});
  }
  size_t idx = static_cast<size_t>(concept_id);
  if (idx >= handles.size()) handles.resize(idx + 1, nullptr);
  if (handles[idx] == nullptr) {
    handles[idx] = obs::MetricsRegistry::Global()
                       .GetGaugeFamily(family)
                       ->WithLabels({{"concept", std::to_string(concept_id)}});
  }
  return handles[idx];
}

ServingStatusBoard::ServingStatusBoard() : start_(Clock::now()) {}

void ServingStatusBoard::SetStaticInfo(std::string model_path,
                                       std::string input_path,
                                       size_t num_concepts) {
  std::lock_guard<std::mutex> lock(mu_);
  model_path_ = std::move(model_path);
  input_path_ = std::move(input_path);
  num_concepts_ = num_concepts;
}

void ServingStatusBoard::SetJournal(const obs::EventJournal* journal) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_ = journal;
}

void ServingStatusBoard::SetRequestTimer(const obs::RequestTimer* timer) {
  std::lock_guard<std::mutex> lock(mu_);
  request_timer_ = timer;
}

void ServingStatusBoard::SetState(std::string state) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = std::move(state);
}

void ServingStatusBoard::SetErrorSlo(double slo) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    has_error_slo_ = true;
    error_slo_ = slo;
  }
  HOM_GAUGE_SET("hom.serving.error_slo", slo);
}

void ServingStatusBoard::SetMonitors(const obs::TimeSeriesStore* timeseries,
                                     const obs::AlertEngine* alerts) {
  std::lock_guard<std::mutex> lock(mu_);
  timeseries_ = timeseries;
  alerts_ = alerts;
}

double ServingStatusBoard::WindowedErrorRateLocked() const {
  if (recent_progress_.empty()) return 0.0;
  const auto& [rec_now, err_now] = recent_progress_.back();
  // The front entry is the subtraction base (one push older than the
  // window); with a single push the window degenerates to the cumulative
  // rate, which is the right cold-start answer.
  const auto& [rec_base, err_base] =
      recent_progress_.size() == 1 ? std::pair<uint64_t, uint64_t>{0, 0}
                                   : recent_progress_.front();
  const uint64_t records = rec_now - rec_base;
  const uint64_t errors = err_now - err_base;
  return records == 0 ? 0.0
                      : static_cast<double>(errors) /
                            static_cast<double>(records);
}

double ServingStatusBoard::WindowedErrorRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return WindowedErrorRateLocked();
}

void ServingStatusBoard::UpdateProgress(const Progress& progress) {
  double windowed_error_rate;
  double checkpoint_age;
  {
    std::lock_guard<std::mutex> lock(mu_);
    progress_ = progress;
    // Drop stale history (a fresh run pushing from record 0 again) so the
    // windowed rate never sees a negative delta.
    if (!recent_progress_.empty() &&
        recent_progress_.back().first > progress.records) {
      recent_progress_.clear();
    }
    recent_progress_.emplace_back(progress.records, progress.errors);
    while (recent_progress_.size() > kErrorWindowPushes + 1) {
      recent_progress_.pop_front();
    }
    windowed_error_rate = WindowedErrorRateLocked();
    checkpoint_age =
        has_checkpoint_
            ? std::chrono::duration<double>(Clock::now() - checkpoint_at_)
                  .count()
            : -1.0;
  }
  HOM_GAUGE_SET("hom.serving.windowed_error_rate", windowed_error_rate);
  HOM_GAUGE_SET("hom.serving.checkpoint_age_seconds", checkpoint_age);
  HOM_GAUGE_SET("hom.serving.posterior_entropy", progress.posterior_entropy);
  HOM_GAUGE_SET("hom.serving.posterior_entropy_ratio",
                progress.posterior_entropy_ratio);
  HOM_GAUGE_SET("hom.serving.top_concept_margin",
                progress.top_concept_margin);
  HOM_GAUGE_SET("hom.serving.drift_suspected",
                progress.drift_suspected ? 1.0 : 0.0);
  HOM_GAUGE_SET("hom.serving.drift_dwell", progress.drift_dwell);
  HOM_GAUGE_SET("hom.serving.records", progress.records);
  HOM_GAUGE_SET("hom.serving.errors", progress.errors);
  HOM_GAUGE_SET("hom.serving.error_rate",
                progress.records == 0
                    ? 0.0
                    : static_cast<double>(progress.errors) /
                          static_cast<double>(progress.records));
  HOM_GAUGE_SET("hom.serving.active_concept", progress.active_concept);
  for (size_t c = 0; c < progress.posterior.size(); ++c) {
    posterior_gauges_.For(static_cast<int64_t>(c))->Set(progress.posterior[c]);
  }
  for (size_t c = 0; c < progress.prior.size(); ++c) {
    prior_gauges_.For(static_cast<int64_t>(c))->Set(progress.prior[c]);
  }
}

void ServingStatusBoard::UpdateConceptStats(const OnlineConceptStats& stats) {
  obs::JsonValue json = stats.ToJson();
  {
    std::lock_guard<std::mutex> lock(mu_);
    concept_stats_json_ = std::move(json);
    has_concept_stats_ = true;
  }
  for (const auto& [concept_id, entry] : stats.concepts()) {
    concept_records_gauges_.For(concept_id)
        ->Set(static_cast<double>(entry.records));
    concept_activations_gauges_.For(concept_id)
        ->Set(static_cast<double>(entry.activations));
    concept_error_rate_gauges_.For(concept_id)->Set(entry.error_rate());
    concept_windowed_error_gauges_.For(concept_id)
        ->Set(entry.windowed_error_rate());
    if (entry.brier_count > 0) {
      concept_brier_gauges_.For(concept_id)->Set(entry.brier_score());
    }
  }
}

void ServingStatusBoard::RecordCheckpoint(uint64_t record) {
  std::lock_guard<std::mutex> lock(mu_);
  has_checkpoint_ = true;
  checkpoint_record_ = record;
  checkpoint_at_ = Clock::now();
}

double ServingStatusBoard::LastCheckpointAgeSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_checkpoint_) return -1.0;
  return std::chrono::duration<double>(Clock::now() - checkpoint_at_).count();
}

obs::JsonValue ServingStatusBoard::HealthJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("status", obs::JsonValue("ok"));
  out.Set("state", obs::JsonValue(state_));
  out.Set("uptime_seconds",
          obs::JsonValue(
              std::chrono::duration<double>(Clock::now() - start_).count()));
  out.Set("records", obs::JsonValue(progress_.records));
  if (has_checkpoint_) {
    out.Set("last_checkpoint_record", obs::JsonValue(checkpoint_record_));
    out.Set("last_checkpoint_age_seconds",
            obs::JsonValue(std::chrono::duration<double>(Clock::now() -
                                                         checkpoint_at_)
                               .count()));
  } else {
    out.Set("last_checkpoint_age_seconds", obs::JsonValue());
  }
  return out;
}

obs::JsonValue ServingStatusBoard::StatusJson(size_t last_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("state", obs::JsonValue(state_));
  out.Set("model", obs::JsonValue(model_path_));
  out.Set("input", obs::JsonValue(input_path_));
  out.Set("num_concepts",
          obs::JsonValue(static_cast<uint64_t>(num_concepts_)));
  out.Set("uptime_seconds",
          obs::JsonValue(
              std::chrono::duration<double>(Clock::now() - start_).count()));

  obs::JsonValue progress = obs::JsonValue::Object();
  progress.Set("records", obs::JsonValue(progress_.records));
  progress.Set("errors", obs::JsonValue(progress_.errors));
  progress.Set("error_rate",
               obs::JsonValue(progress_.records == 0
                                  ? 0.0
                                  : static_cast<double>(progress_.errors) /
                                        static_cast<double>(
                                            progress_.records)));
  progress.Set("active_concept", obs::JsonValue(progress_.active_concept));
  obs::JsonValue prior = obs::JsonValue::Array();
  for (double p : progress_.prior) prior.Append(obs::JsonValue(p));
  progress.Set("prior", std::move(prior));
  obs::JsonValue posterior = obs::JsonValue::Array();
  for (double p : progress_.posterior) posterior.Append(obs::JsonValue(p));
  progress.Set("posterior", std::move(posterior));
  progress.Set("windowed_error_rate",
               obs::JsonValue(WindowedErrorRateLocked()));
  progress.Set("posterior_entropy",
               obs::JsonValue(progress_.posterior_entropy));
  progress.Set("posterior_entropy_ratio",
               obs::JsonValue(progress_.posterior_entropy_ratio));
  progress.Set("top_concept_margin",
               obs::JsonValue(progress_.top_concept_margin));
  progress.Set("drift_suspected", obs::JsonValue(progress_.drift_suspected));
  progress.Set("drift_dwell", obs::JsonValue(progress_.drift_dwell));
  out.Set("progress", std::move(progress));

  if (has_error_slo_) {
    out.Set("error_slo", obs::JsonValue(error_slo_));
  }

  if (has_checkpoint_) {
    obs::JsonValue checkpoint = obs::JsonValue::Object();
    checkpoint.Set("record", obs::JsonValue(checkpoint_record_));
    checkpoint.Set(
        "age_seconds",
        obs::JsonValue(
            std::chrono::duration<double>(Clock::now() - checkpoint_at_)
                .count()));
    out.Set("checkpoint", std::move(checkpoint));
  }

  if (has_concept_stats_) {
    out.Set("concept_stats", concept_stats_json_);
  }

  out.Set("build", obs::BuildInfoJson());

  if (alerts_ != nullptr) {
    out.Set("alerts", alerts_->SummaryJson());
  }
  if (timeseries_ != nullptr) {
    out.Set("timeseries", timeseries_->StatsJson());
  }

  if (request_timer_ != nullptr) {
    obs::JsonValue slow = obs::JsonValue::Object();
    slow.Set("requests", obs::JsonValue(request_timer_->requests()));
    slow.Set("slowest", request_timer_->SlowestJson());
    out.Set("slow_requests", std::move(slow));
  }

  if (journal_ != nullptr) {
    std::vector<obs::Event> events = journal_->Snapshot();
    size_t begin =
        events.size() > last_events ? events.size() - last_events : 0;
    obs::JsonValue recent = obs::JsonValue::Array();
    for (size_t i = begin; i < events.size(); ++i) {
      // ToJsonl is the journal's canonical event serialization; reparse it
      // so /statusz nests the same objects the JSONL sink writes.
      auto parsed =
          obs::JsonValue::Parse(obs::EventJournal::ToJsonl(events[i]));
      if (parsed.ok()) recent.Append(std::move(parsed).ValueOrDie());
    }
    out.Set("recent_events", std::move(recent));
  }
  return out;
}

}  // namespace hom
