#ifndef HOM_EVAL_STREAM_CLASSIFIER_H_
#define HOM_EVAL_STREAM_CLASSIFIER_H_

#include <string>
#include <vector>

#include "data/record.h"

namespace hom {

/// \brief The dual-stream online protocol of Section III-A: a classifier
/// predicts an unlabeled stream X while consuming a parallel labeled stream
/// Y, with the prediction of x_t using labels {y_1, ..., y_{t-1}}.
///
/// The high-order model, RePro and WCE all implement this interface; the
/// prequential harness drives them identically, which is what makes the
/// paper's Tables II/III an apples-to-apples comparison.
class StreamClassifier {
 public:
  virtual ~StreamClassifier() = default;

  /// Classifies one unlabeled record. Non-const because online methods may
  /// lazily reorganize internal state during prediction.
  virtual Label Predict(const Record& x) = 0;

  /// Per-class probability estimate; defaults to a one-hot of Predict().
  virtual std::vector<double> PredictProba(const Record& x);

  /// Allocation-free variant of PredictProba: writes the estimate into
  /// `*proba` (resized to num_classes()). Hot loops (prequential
  /// calibration sampling, ensemble scoring) call this with a reused
  /// scratch vector; the default simply forwards to PredictProba.
  virtual void PredictProbaInto(const Record& x, std::vector<double>* proba);

  /// Feeds one labeled record from the online training stream Y.
  virtual void ObserveLabeled(const Record& y) = 0;

  /// Display name used in benchmark tables ("High-order", "RePro", "WCE").
  virtual std::string name() const = 0;

  /// Number of classes of the underlying schema.
  virtual size_t num_classes() const = 0;

  /// Identifier of the concept/model currently driving predictions, or -1
  /// when the method has no such notion (chunk ensembles, static models).
  /// The prequential harness uses this to attribute per-concept online
  /// statistics (OnlineConceptStats).
  virtual int64_t ActiveConcept() const { return -1; }
};

}  // namespace hom

#endif  // HOM_EVAL_STREAM_CLASSIFIER_H_
