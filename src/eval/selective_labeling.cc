#include "eval/selective_labeling.h"

#include "common/check.h"

namespace hom {

RandomLabelingPolicy::RandomLabelingPolicy(double fraction, uint64_t seed)
    : fraction_(fraction), rng_(seed) {
  HOM_CHECK_GE(fraction, 0.0);
  HOM_CHECK_LE(fraction, 1.0);
}

bool RandomLabelingPolicy::ShouldRequestLabel(StreamClassifier*,
                                              const Record&) {
  return rng_.NextBernoulli(fraction_);
}

SelectiveResult RunSelectivePrequential(StreamClassifier* classifier,
                                        const Dataset& test,
                                        LabelingPolicy* policy) {
  HOM_CHECK(classifier != nullptr);
  HOM_CHECK(policy != nullptr);
  SelectiveResult result;
  for (const Record& r : test.records()) {
    HOM_DCHECK(r.is_labeled());
    Record unlabeled = r;
    unlabeled.label = kUnlabeled;
    bool want_label = policy->ShouldRequestLabel(classifier, unlabeled);
    Label predicted = classifier->Predict(unlabeled);
    ++result.num_records;
    if (predicted != r.label) ++result.num_errors;
    if (want_label) {
      ++result.labels_requested;
      policy->OnLabelRevealed(classifier, r, predicted);
      classifier->ObserveLabeled(r);
    }
  }
  return result;
}

}  // namespace hom
