#include "eval/selective_labeling.h"

#include "common/check.h"
#include "obs/event_journal.h"

namespace hom {

namespace {
/// Block size of the WindowError events journaled by the selective harness
/// (matches PrequentialOptions::journal_error_window's default).
constexpr size_t kJournalErrorWindow = 500;
}  // namespace

RandomLabelingPolicy::RandomLabelingPolicy(double fraction, uint64_t seed)
    : fraction_(fraction), rng_(seed) {
  HOM_CHECK_GE(fraction, 0.0);
  HOM_CHECK_LE(fraction, 1.0);
}

bool RandomLabelingPolicy::ShouldRequestLabel(StreamClassifier*,
                                              const Record&) {
  return rng_.NextBernoulli(fraction_);
}

SelectiveResult RunSelectivePrequential(StreamClassifier* classifier,
                                        const Dataset& test,
                                        LabelingPolicy* policy) {
  HOM_CHECK(classifier != nullptr);
  HOM_CHECK(policy != nullptr);
  SelectiveResult result;
  obs::EventJournal* journal = obs::EventJournal::Active();
  size_t window_errors = 0;
  size_t window_fill = 0;
  for (const Record& r : test.records()) {
    HOM_DCHECK(r.is_labeled());
    Record unlabeled = r;
    unlabeled.label = kUnlabeled;
    bool want_label = policy->ShouldRequestLabel(classifier, unlabeled);
    Label predicted = classifier->Predict(unlabeled);
    ++result.num_records;
    bool wrong = predicted != r.label;
    if (wrong) ++result.num_errors;
    if (journal != nullptr) {
      if (wrong) ++window_errors;
      if (++window_fill == kJournalErrorWindow) {
        journal->Emit(obs::EventType::kWindowError, "selective",
                      static_cast<int64_t>(result.num_records),
                      classifier->ActiveConcept(), -1,
                      static_cast<double>(window_errors) /
                          static_cast<double>(window_fill));
        window_errors = 0;
        window_fill = 0;
      }
    }
    if (want_label) {
      ++result.labels_requested;
      policy->OnLabelRevealed(classifier, r, predicted);
      classifier->ObserveLabeled(r);
    }
  }
  if (journal != nullptr && window_fill > 0) {
    journal->Emit(obs::EventType::kWindowError, "selective",
                  static_cast<int64_t>(result.num_records),
                  classifier->ActiveConcept(), -1,
                  static_cast<double>(window_errors) /
                      static_cast<double>(window_fill));
  }
  return result;
}

}  // namespace hom
