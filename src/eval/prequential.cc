#include "eval/prequential.h"

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hom {

PrequentialResult RunPrequential(StreamClassifier* classifier,
                                 const Dataset& test,
                                 PrequentialOptions options) {
  HOM_CHECK(classifier != nullptr);
  HOM_CHECK_GT(options.labeled_fraction, 0.0);
  HOM_CHECK_LE(options.labeled_fraction, 1.0);

  PrequentialResult result;
  if (options.record_trace) result.errors.reserve(test.size());
  if (options.track_concept_stats) {
    result.concept_stats = std::make_shared<OnlineConceptStats>(
        classifier->num_classes(), options.journal_error_window);
  }
  Rng label_rng(options.label_seed);
  // Block-error accounting for the journal's WindowError events; only paid
  // for when a journal is installed.
  obs::EventJournal* journal = obs::EventJournal::Active();
  size_t window_errors = 0;
  size_t window_fill = 0;

  Stopwatch timer;
  obs::ScopedSpan span("prequential_eval");
  for (const Record& r : test.records()) {
    HOM_DCHECK(r.is_labeled());
    // Predict with the label hidden: x_t.
    Record unlabeled = r;
    unlabeled.label = kUnlabeled;
    Label predicted = classifier->Predict(unlabeled);
    bool wrong = predicted != r.label;
    ++result.num_records;
    if (wrong) ++result.num_errors;
    if (options.record_trace) result.errors.push_back(wrong ? 1 : 0);
    if (result.concept_stats != nullptr) {
      result.concept_stats->Observe(classifier->ActiveConcept(), r.label,
                                    predicted);
    }
    if (journal != nullptr && options.journal_error_window > 0) {
      if (wrong) ++window_errors;
      if (++window_fill == options.journal_error_window) {
        journal->Emit(obs::EventType::kWindowError, "prequential",
                      static_cast<int64_t>(result.num_records),
                      classifier->ActiveConcept(), -1,
                      static_cast<double>(window_errors) /
                          static_cast<double>(window_fill));
        window_errors = 0;
        window_fill = 0;
      }
    }
    // Reveal y_t (possibly subsampled to model labeling overhead).
    if (options.labeled_fraction >= 1.0 ||
        label_rng.NextBernoulli(options.labeled_fraction)) {
      classifier->ObserveLabeled(r);
    }
  }
  if (journal != nullptr && window_fill > 0) {
    // Flush the ragged tail block so short streams still journal an error.
    journal->Emit(obs::EventType::kWindowError, "prequential",
                  static_cast<int64_t>(result.num_records),
                  classifier->ActiveConcept(), -1,
                  static_cast<double>(window_errors) /
                      static_cast<double>(window_fill));
  }
  result.seconds = timer.ElapsedSeconds();
  HOM_COUNTER_ADD("hom.eval.records", result.num_records);
  if (result.seconds > 0.0) {
    HOM_GAUGE_SET("hom.eval.records_per_sec",
                  static_cast<double>(result.num_records) / result.seconds);
  }
  return result;
}

}  // namespace hom
