#include "eval/prequential.h"

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hom {

PrequentialResult RunPrequential(StreamClassifier* classifier,
                                 const Dataset& test,
                                 PrequentialOptions options) {
  HOM_CHECK(classifier != nullptr);
  HOM_CHECK_GT(options.labeled_fraction, 0.0);
  HOM_CHECK_LE(options.labeled_fraction, 1.0);

  PrequentialResult result;
  if (options.record_trace) result.errors.reserve(test.size());
  Rng label_rng(options.label_seed);

  Stopwatch timer;
  obs::ScopedSpan span("prequential_eval");
  for (const Record& r : test.records()) {
    HOM_DCHECK(r.is_labeled());
    // Predict with the label hidden: x_t.
    Record unlabeled = r;
    unlabeled.label = kUnlabeled;
    Label predicted = classifier->Predict(unlabeled);
    bool wrong = predicted != r.label;
    ++result.num_records;
    if (wrong) ++result.num_errors;
    if (options.record_trace) result.errors.push_back(wrong ? 1 : 0);
    // Reveal y_t (possibly subsampled to model labeling overhead).
    if (options.labeled_fraction >= 1.0 ||
        label_rng.NextBernoulli(options.labeled_fraction)) {
      classifier->ObserveLabeled(r);
    }
  }
  result.seconds = timer.ElapsedSeconds();
  HOM_COUNTER_ADD("hom.eval.records", result.num_records);
  if (result.seconds > 0.0) {
    HOM_GAUGE_SET("hom.eval.records_per_sec",
                  static_cast<double>(result.num_records) / result.seconds);
  }
  return result;
}

}  // namespace hom
