#include "eval/prequential.h"

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hom {

PrequentialResult RunPrequential(StreamClassifier* classifier,
                                 const Dataset& test,
                                 PrequentialOptions options) {
  HOM_CHECK(classifier != nullptr);
  HOM_CHECK_GT(options.labeled_fraction, 0.0);
  HOM_CHECK_LE(options.labeled_fraction, 1.0);

  PrequentialResult result;
  if (options.record_trace) result.errors.reserve(test.size());
  if (options.resume_concept_stats != nullptr) {
    result.concept_stats = options.resume_concept_stats;
  } else if (options.track_concept_stats) {
    result.concept_stats = std::make_shared<OnlineConceptStats>(
        classifier->num_classes(), options.journal_error_window);
  }
  Rng label_rng(options.label_seed);
  // Block-error accounting for the journal's WindowError events; only paid
  // for when a journal is installed.
  obs::EventJournal* journal = obs::EventJournal::Active();
  // Resume support: record/error counts are absolute stream positions and
  // the in-flight WindowError block carries over, so a checkpointed run
  // emits the same journal blocks as an uninterrupted one.
  result.num_records = options.start_record;
  result.num_errors = options.carry_errors;
  size_t window_errors = options.carry_window_errors;
  size_t window_fill = options.carry_window_fill;
  uint64_t skip = options.start_record;
  bool stopped_early = false;
  // Scratch for the sampled calibration distribution, reused across the
  // run so sampling stays allocation-free (PredictProbaInto).
  std::vector<double> calibration_proba;

  Stopwatch timer;
  obs::ScopedSpan span("prequential_eval");
  for (const Record& r : test.records()) {
    HOM_DCHECK(r.is_labeled());
    if (skip > 0) {
      // Already scored before the checkpoint; burn the label draw the
      // uninterrupted run would have spent on it to keep the RNG aligned.
      --skip;
      if (options.labeled_fraction < 1.0) {
        label_rng.NextBernoulli(options.labeled_fraction);
      }
      continue;
    }
    if (options.stop_after > 0 && result.num_records >= options.stop_after) {
      stopped_early = true;
      break;
    }
    if (options.stop_flag != nullptr &&
        options.stop_flag->load(std::memory_order_relaxed)) {
      stopped_early = true;
      break;
    }
    // One record = one timed request (a no-op without a request_timer).
    obs::ScopedRequestTimer request_timing(
        options.request_timer, static_cast<int64_t>(result.num_records + 1));
    // Predict with the label hidden: x_t.
    Record unlabeled;
    {
      obs::ScopedRequestStage stage(obs::RequestStage::kParse);
      unlabeled = r;
      unlabeled.label = kUnlabeled;
    }
    Label predicted;
    {
      obs::ScopedRequestStage stage(obs::RequestStage::kPredict);
      predicted = classifier->Predict(unlabeled);
    }
    bool wrong = predicted != r.label;
    ++result.num_records;
    if (wrong) ++result.num_errors;
    if (options.record_trace) result.errors.push_back(wrong ? 1 : 0);
    obs::ScopedRequestStage observe_stage(obs::RequestStage::kObserve);
    if (result.concept_stats != nullptr) {
      result.concept_stats->Observe(classifier->ActiveConcept(), r.label,
                                    predicted);
      if (options.calibration_sample_period > 0 &&
          result.num_records % options.calibration_sample_period == 0) {
        // The label is still hidden here, so the sampled distribution is
        // the one the model would have served for this record.
        classifier->PredictProbaInto(unlabeled, &calibration_proba);
        result.concept_stats->ObserveCalibration(classifier->ActiveConcept(),
                                                 r.label, calibration_proba);
      }
    }
    if (journal != nullptr && options.journal_error_window > 0) {
      if (wrong) ++window_errors;
      if (++window_fill == options.journal_error_window) {
        journal->Emit(obs::EventType::kWindowError, "prequential",
                      static_cast<int64_t>(result.num_records),
                      classifier->ActiveConcept(), -1,
                      static_cast<double>(window_errors) /
                          static_cast<double>(window_fill));
        window_errors = 0;
        window_fill = 0;
      }
    }
    // Reveal y_t (possibly subsampled to model labeling overhead).
    if (options.labeled_fraction >= 1.0 ||
        label_rng.NextBernoulli(options.labeled_fraction)) {
      classifier->ObserveLabeled(r);
    }
    if (options.checkpoint_every > 0 && options.on_checkpoint &&
        result.num_records % options.checkpoint_every == 0) {
      obs::ScopedRequestStage stage(obs::RequestStage::kCheckpoint);
      PrequentialProgress progress;
      progress.record = result.num_records;
      progress.num_errors = result.num_errors;
      progress.window_errors = window_errors;
      progress.window_fill = window_fill;
      options.on_checkpoint(progress);
    }
    if (options.progress_every > 0 && options.on_progress &&
        result.num_records % options.progress_every == 0) {
      PrequentialProgress progress;
      progress.record = result.num_records;
      progress.num_errors = result.num_errors;
      progress.window_errors = window_errors;
      progress.window_fill = window_fill;
      options.on_progress(progress);
    }
  }
  if (options.on_progress) {
    // Final push so the board reflects the end of the run even when the
    // record count is not a multiple of progress_every.
    PrequentialProgress progress;
    progress.record = result.num_records;
    progress.num_errors = result.num_errors;
    progress.window_errors = window_errors;
    progress.window_fill = window_fill;
    options.on_progress(progress);
  }
  result.window_errors_carry = window_errors;
  result.window_fill_carry = window_fill;
  if (!stopped_early && journal != nullptr && window_fill > 0) {
    // Flush the ragged tail block so short streams still journal an error.
    journal->Emit(obs::EventType::kWindowError, "prequential",
                  static_cast<int64_t>(result.num_records),
                  classifier->ActiveConcept(), -1,
                  static_cast<double>(window_errors) /
                      static_cast<double>(window_fill));
  }
  result.seconds = timer.ElapsedSeconds();
  HOM_COUNTER_ADD("hom.eval.records", result.num_records);
  if (result.seconds > 0.0) {
    HOM_GAUGE_SET("hom.eval.records_per_sec",
                  static_cast<double>(result.num_records) / result.seconds);
  }
  return result;
}

}  // namespace hom
