#ifndef HOM_EVAL_SELECTIVE_LABELING_H_
#define HOM_EVAL_SELECTIVE_LABELING_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "data/dataset.h"
#include "eval/stream_classifier.h"

namespace hom {

/// \brief Online decision rule for *which* records to pay the labeling cost
/// for (Section III-A: "in practice, Y is usually created by labeling a
/// subset of X online... a small subset of transactions are investigated
/// and labeled").
///
/// The policy is consulted once per record, before prediction feedback; if
/// it returns true, the ground-truth label is revealed to the classifier
/// after prediction.
class LabelingPolicy {
 public:
  virtual ~LabelingPolicy() = default;

  /// Decide for the record about to be processed. `classifier` may be
  /// inspected but must not be mutated.
  virtual bool ShouldRequestLabel(StreamClassifier* classifier,
                                  const Record& x) = 0;

  /// Feedback hook: called after a requested label is revealed, with the
  /// classifier state *before* it consumed the label. Lets policies react
  /// to surprises (e.g. burst-sample after a contradicting label).
  virtual void OnLabelRevealed(StreamClassifier* classifier, const Record& y,
                               Label predicted) {
    (void)classifier;
    (void)y;
    (void)predicted;
  }

  virtual std::string name() const = 0;
};

/// Labels a fixed random fraction of the stream — the baseline every
/// smarter policy must beat at equal budget.
class RandomLabelingPolicy : public LabelingPolicy {
 public:
  RandomLabelingPolicy(double fraction, uint64_t seed);

  bool ShouldRequestLabel(StreamClassifier* classifier,
                          const Record& x) override;
  std::string name() const override { return "random"; }

 private:
  double fraction_;
  Rng rng_;
};

/// Outcome of a selective-labeling prequential run.
struct SelectiveResult {
  size_t num_records = 0;
  size_t num_errors = 0;
  size_t labels_requested = 0;

  double error_rate() const {
    return num_records == 0 ? 0.0
                            : static_cast<double>(num_errors) /
                                  static_cast<double>(num_records);
  }
  double label_fraction() const {
    return num_records == 0 ? 0.0
                            : static_cast<double>(labels_requested) /
                                  static_cast<double>(num_records);
  }
};

/// Prequential protocol with a labeling budget: predict every record with
/// the label hidden, then reveal the label only when `policy` asked for it.
SelectiveResult RunSelectivePrequential(StreamClassifier* classifier,
                                        const Dataset& test,
                                        LabelingPolicy* policy);

}  // namespace hom

#endif  // HOM_EVAL_SELECTIVE_LABELING_H_
