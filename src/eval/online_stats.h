#ifndef HOM_EVAL_ONLINE_STATS_H_
#define HOM_EVAL_ONLINE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "data/record.h"
#include "obs/json.h"

namespace hom {

/// \brief Per-concept online accounting for the prequential protocol.
///
/// Attributes every scored prediction to the concept the classifier
/// reported active at that moment (StreamClassifier::ActiveConcept) and
/// keeps, per concept: activation count (transitions into the concept),
/// dwell time (records attributed to it, total and per current stretch),
/// cumulative and recent-window error, and a confusion matrix. The
/// snapshot lands in telemetry JSON next to the metrics registry so a
/// single evaluate run shows not just *that* the model switched, but how
/// each concept behaved while it held the stream.
///
/// Concepts are keyed by the classifier's id (-1 = "no active concept");
/// entries appear on first attribution, so methods with a dynamic model
/// pool (DWM, RePro histories) need no upfront sizing.
class OnlineConceptStats {
 public:
  struct ConceptEntry {
    uint64_t activations = 0;  ///< times the concept became active
    uint64_t records = 0;      ///< predictions attributed to it
    uint64_t errors = 0;       ///< of which wrong
    /// Ring of the last `window` 0/1 error flags for this concept.
    std::vector<uint8_t> recent;
    size_t recent_head = 0;
    uint64_t recent_errors = 0;
    /// Row-major `num_classes x num_classes` counts, [truth][predicted].
    std::vector<uint64_t> confusion;
    /// Calibration accounting: sum of multi-class Brier scores
    /// Σ_k (p_k − 1[k = truth])² over the sampled probability predictions
    /// attributed to this concept (ObserveCalibration).
    double brier_sum = 0.0;
    uint64_t brier_count = 0;

    double error_rate() const {
      return records == 0
                 ? 0.0
                 : static_cast<double>(errors) / static_cast<double>(records);
    }
    /// Error rate over the last min(records, window) attributed records.
    double windowed_error_rate() const {
      return recent.empty() ? 0.0
                            : static_cast<double>(recent_errors) /
                                  static_cast<double>(recent.size());
    }
    /// Mean Brier score of the sampled probability predictions: 0 =
    /// perfectly calibrated and sharp, 2 = confidently wrong every time.
    double brier_score() const {
      return brier_count == 0
                 ? 0.0
                 : brier_sum / static_cast<double>(brier_count);
    }
  };

  /// `window` bounds the per-concept recent-error ring (0 disables it).
  explicit OnlineConceptStats(size_t num_classes, size_t window = 500);

  /// Attributes one scored prediction to `concept_id`.
  void Observe(int64_t concept_id, Label truth, Label predicted);

  /// Attributes one sampled probability prediction to `concept_id`:
  /// accumulates the multi-class Brier score of `proba` against `truth`.
  /// `proba` is truncated/zero-padded to num_classes entries; an
  /// out-of-range truth contributes the all-zeros one-hot. Does not touch
  /// the activation/dwell accounting — the prequential harness calls
  /// Observe for every record and this for the sampled subset
  /// (PrequentialOptions::calibration_sample_period).
  void ObserveCalibration(int64_t concept_id, Label truth,
                          const std::vector<double>& proba);

  size_t num_classes() const { return num_classes_; }
  size_t window() const { return window_; }
  uint64_t total_records() const { return total_records_; }
  uint64_t total_switches() const { return total_switches_; }
  /// The concept the last Observe() was attributed to (-1 before any).
  int64_t current_concept() const { return current_concept_; }
  const std::map<int64_t, ConceptEntry>& concepts() const {
    return concepts_;
  }

  /// Serializes the full accounting (counters, rings, confusion matrices)
  /// so a serving checkpoint can resume attribution mid-stream.
  Status SaveTo(BinaryWriter* writer) const;

  /// Reads a snapshot written by SaveTo. Every length field is bounded and
  /// cross-checked (ring ≤ window, confusion = num_classes², flags 0/1),
  /// so a corrupted checkpoint yields an error Status, never a bad alloc.
  static Result<OnlineConceptStats> LoadFrom(BinaryReader* reader);

  /// {"window": ..., "records": ..., "switches": ...,
  ///  "concepts": {"<id>": {"activations", "records", "errors",
  ///                        "error_rate", "windowed_error_rate",
  ///                        "mean_dwell", "confusion": [[...], ...]}}}.
  obs::JsonValue ToJson() const;

 private:
  size_t num_classes_;
  size_t window_;
  uint64_t total_records_ = 0;
  uint64_t total_switches_ = 0;
  int64_t current_concept_ = -1;
  bool any_ = false;
  std::map<int64_t, ConceptEntry> concepts_;
};

}  // namespace hom

#endif  // HOM_EVAL_ONLINE_STATS_H_
