#ifndef HOM_EVAL_TRACE_H_
#define HOM_EVAL_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hom {

/// \brief Averages per-record series in windows aligned to concept change
/// points — the machinery behind Figures 5 and 6 ("error rates during
/// concept change", "probabilities of stable concepts during concept
/// change", averaged over many runs).
///
/// Slot `before` of the output corresponds to the change point itself;
/// slots [0, before) are pre-change records and slots (before, before+after)
/// post-change records.
class AlignedTraceAccumulator {
 public:
  /// \param before records to keep before each change point
  /// \param after records to keep from the change point on
  AlignedTraceAccumulator(size_t before, size_t after);

  /// Adds one run: `series` is a per-record value (0/1 error flag,
  /// probability, ...) and `change_points` the indices where a new concept
  /// begins. Windows that would cross the series boundary, and change
  /// points closer than `after` to the next change, are skipped so the
  /// average reflects clean transitions.
  void AddSeries(const std::vector<double>& series,
                 const std::vector<size_t>& change_points);

  /// Convenience overload for 0/1 error traces.
  void AddSeries(const std::vector<uint8_t>& series,
                 const std::vector<size_t>& change_points);

  /// Per-slot mean; slots that never received a sample are 0.
  std::vector<double> Mean() const;

  /// Number of aligned windows accumulated.
  size_t num_windows() const { return windows_; }

  size_t window_size() const { return before_ + after_; }
  size_t before() const { return before_; }

 private:
  size_t before_;
  size_t after_;
  size_t windows_ = 0;
  std::vector<double> sums_;
  std::vector<size_t> counts_;
};

}  // namespace hom

#endif  // HOM_EVAL_TRACE_H_
