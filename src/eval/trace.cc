#include "eval/trace.h"

#include "common/check.h"

namespace hom {

AlignedTraceAccumulator::AlignedTraceAccumulator(size_t before, size_t after)
    : before_(before),
      after_(after),
      sums_(before + after, 0.0),
      counts_(before + after, 0) {
  HOM_CHECK_GT(after, 0u);
}

void AlignedTraceAccumulator::AddSeries(
    const std::vector<double>& series,
    const std::vector<size_t>& change_points) {
  for (size_t k = 0; k < change_points.size(); ++k) {
    size_t cp = change_points[k];
    if (cp < before_) continue;
    if (cp + after_ > series.size()) continue;
    // Require the next change to be far enough away that the window shows
    // one clean transition.
    if (k + 1 < change_points.size() && change_points[k + 1] < cp + after_) {
      continue;
    }
    ++windows_;
    for (size_t i = 0; i < before_ + after_; ++i) {
      sums_[i] += series[cp - before_ + i];
      ++counts_[i];
    }
  }
}

void AlignedTraceAccumulator::AddSeries(
    const std::vector<uint8_t>& series,
    const std::vector<size_t>& change_points) {
  std::vector<double> as_double(series.begin(), series.end());
  AddSeries(as_double, change_points);
}

std::vector<double> AlignedTraceAccumulator::Mean() const {
  std::vector<double> mean(sums_.size(), 0.0);
  for (size_t i = 0; i < sums_.size(); ++i) {
    if (counts_[i] > 0) mean[i] = sums_[i] / static_cast<double>(counts_[i]);
  }
  return mean;
}

}  // namespace hom
