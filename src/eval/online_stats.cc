#include "eval/online_stats.h"

#include <string>

#include "common/check.h"

namespace hom {

OnlineConceptStats::OnlineConceptStats(size_t num_classes, size_t window)
    : num_classes_(num_classes), window_(window) {
  HOM_CHECK_GT(num_classes, 0u);
}

void OnlineConceptStats::Observe(int64_t concept_id, Label truth,
                                 Label predicted) {
  ConceptEntry& entry = concepts_[concept_id];
  if (entry.confusion.empty()) {
    entry.confusion.assign(num_classes_ * num_classes_, 0);
  }
  if (!any_ || concept_id != current_concept_) {
    ++entry.activations;
    if (any_) ++total_switches_;
    any_ = true;
    current_concept_ = concept_id;
  }
  ++entry.records;
  ++total_records_;
  bool wrong = predicted != truth;
  if (wrong) ++entry.errors;
  if (window_ > 0) {
    uint8_t flag = wrong ? 1 : 0;
    if (entry.recent.size() < window_) {
      entry.recent.push_back(flag);
      entry.recent_errors += flag;
    } else {
      entry.recent_errors -= entry.recent[entry.recent_head];
      entry.recent[entry.recent_head] = flag;
      entry.recent_errors += flag;
      entry.recent_head = (entry.recent_head + 1) % window_;
    }
  }
  if (truth >= 0 && static_cast<size_t>(truth) < num_classes_ &&
      predicted >= 0 && static_cast<size_t>(predicted) < num_classes_) {
    ++entry.confusion[static_cast<size_t>(truth) * num_classes_ +
                      static_cast<size_t>(predicted)];
  }
}

obs::JsonValue OnlineConceptStats::ToJson() const {
  using obs::JsonValue;
  JsonValue concepts_json = JsonValue::Object();
  for (const auto& [id, entry] : concepts_) {
    JsonValue cj = JsonValue::Object();
    cj.Set("activations", JsonValue(entry.activations));
    cj.Set("records", JsonValue(entry.records));
    cj.Set("errors", JsonValue(entry.errors));
    cj.Set("error_rate", JsonValue(entry.error_rate()));
    cj.Set("windowed_error_rate", JsonValue(entry.windowed_error_rate()));
    cj.Set("mean_dwell",
           JsonValue(entry.activations == 0
                         ? 0.0
                         : static_cast<double>(entry.records) /
                               static_cast<double>(entry.activations)));
    JsonValue confusion = JsonValue::Array();
    for (size_t t = 0; t < num_classes_; ++t) {
      JsonValue row = JsonValue::Array();
      for (size_t p = 0; p < num_classes_; ++p) {
        row.Append(JsonValue(entry.confusion[t * num_classes_ + p]));
      }
      confusion.Append(std::move(row));
    }
    cj.Set("confusion", std::move(confusion));
    concepts_json.Set(std::to_string(id), std::move(cj));
  }
  JsonValue out = JsonValue::Object();
  out.Set("window", JsonValue(static_cast<uint64_t>(window_)));
  out.Set("records", JsonValue(total_records_));
  out.Set("switches", JsonValue(total_switches_));
  out.Set("concepts", std::move(concepts_json));
  return out;
}

}  // namespace hom
