#include "eval/online_stats.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/check.h"

namespace hom {

OnlineConceptStats::OnlineConceptStats(size_t num_classes, size_t window)
    : num_classes_(num_classes), window_(window) {
  HOM_CHECK_GT(num_classes, 0u);
}

void OnlineConceptStats::Observe(int64_t concept_id, Label truth,
                                 Label predicted) {
  ConceptEntry& entry = concepts_[concept_id];
  if (entry.confusion.empty()) {
    entry.confusion.assign(num_classes_ * num_classes_, 0);
  }
  if (!any_ || concept_id != current_concept_) {
    ++entry.activations;
    if (any_) ++total_switches_;
    any_ = true;
    current_concept_ = concept_id;
  }
  ++entry.records;
  ++total_records_;
  bool wrong = predicted != truth;
  if (wrong) ++entry.errors;
  if (window_ > 0) {
    uint8_t flag = wrong ? 1 : 0;
    if (entry.recent.size() < window_) {
      entry.recent.push_back(flag);
      entry.recent_errors += flag;
    } else {
      entry.recent_errors -= entry.recent[entry.recent_head];
      entry.recent[entry.recent_head] = flag;
      entry.recent_errors += flag;
      entry.recent_head = (entry.recent_head + 1) % window_;
    }
  }
  if (truth >= 0 && static_cast<size_t>(truth) < num_classes_ &&
      predicted >= 0 && static_cast<size_t>(predicted) < num_classes_) {
    ++entry.confusion[static_cast<size_t>(truth) * num_classes_ +
                      static_cast<size_t>(predicted)];
  }
}

void OnlineConceptStats::ObserveCalibration(int64_t concept_id, Label truth,
                                            const std::vector<double>& proba) {
  ConceptEntry& entry = concepts_[concept_id];
  if (entry.confusion.empty()) {
    entry.confusion.assign(num_classes_ * num_classes_, 0);
  }
  double brier = 0.0;
  for (size_t k = 0; k < num_classes_; ++k) {
    const double p = k < proba.size() ? proba[k] : 0.0;
    const double y =
        truth >= 0 && static_cast<size_t>(truth) == k ? 1.0 : 0.0;
    brier += (p - y) * (p - y);
  }
  entry.brier_sum += brier;
  ++entry.brier_count;
}

Status OnlineConceptStats::SaveTo(BinaryWriter* writer) const {
  HOM_RETURN_NOT_OK(writer->WriteU32(static_cast<uint32_t>(num_classes_)));
  HOM_RETURN_NOT_OK(writer->WriteU64(window_));
  HOM_RETURN_NOT_OK(writer->WriteU64(total_records_));
  HOM_RETURN_NOT_OK(writer->WriteU64(total_switches_));
  HOM_RETURN_NOT_OK(writer->WriteI64(current_concept_));
  HOM_RETURN_NOT_OK(writer->WriteU8(any_ ? 1 : 0));
  HOM_RETURN_NOT_OK(writer->WriteU32(static_cast<uint32_t>(concepts_.size())));
  for (const auto& [id, entry] : concepts_) {
    HOM_RETURN_NOT_OK(writer->WriteI64(id));
    HOM_RETURN_NOT_OK(writer->WriteU64(entry.activations));
    HOM_RETURN_NOT_OK(writer->WriteU64(entry.records));
    HOM_RETURN_NOT_OK(writer->WriteU64(entry.errors));
    HOM_RETURN_NOT_OK(writer->WriteU64(entry.recent_errors));
    HOM_RETURN_NOT_OK(writer->WriteU64(entry.recent_head));
    HOM_RETURN_NOT_OK(
        writer->WriteU32(static_cast<uint32_t>(entry.recent.size())));
    HOM_RETURN_NOT_OK(writer->WriteRaw(entry.recent.data(),
                                       entry.recent.size()));
    HOM_RETURN_NOT_OK(
        writer->WriteU32(static_cast<uint32_t>(entry.confusion.size())));
    HOM_RETURN_NOT_OK(writer->WriteRaw(
        entry.confusion.data(), entry.confusion.size() * sizeof(uint64_t)));
    HOM_RETURN_NOT_OK(writer->WriteDouble(entry.brier_sum));
    HOM_RETURN_NOT_OK(writer->WriteU64(entry.brier_count));
  }
  return Status::OK();
}

Result<OnlineConceptStats> OnlineConceptStats::LoadFrom(BinaryReader* reader) {
  constexpr uint32_t kMaxClasses = 1u << 12;
  constexpr uint64_t kMaxWindow = 1u << 20;
  constexpr uint32_t kMaxConcepts = 1u << 20;
  HOM_ASSIGN_OR_RETURN(uint32_t num_classes, reader->ReadU32());
  if (num_classes == 0 || num_classes > kMaxClasses) {
    return Status::InvalidArgument("concept-stats class count out of range");
  }
  HOM_ASSIGN_OR_RETURN(uint64_t window, reader->ReadU64());
  if (window > kMaxWindow) {
    return Status::InvalidArgument("concept-stats window over cap");
  }
  OnlineConceptStats stats(num_classes, static_cast<size_t>(window));
  HOM_ASSIGN_OR_RETURN(stats.total_records_, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(stats.total_switches_, reader->ReadU64());
  HOM_ASSIGN_OR_RETURN(stats.current_concept_, reader->ReadI64());
  HOM_ASSIGN_OR_RETURN(uint8_t any, reader->ReadU8());
  if (any > 1) {
    return Status::InvalidArgument("concept-stats flag must be 0 or 1");
  }
  stats.any_ = any != 0;
  HOM_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
  if (count > kMaxConcepts) {
    return Status::InvalidArgument("concept-stats concept count over cap");
  }
  for (uint32_t i = 0; i < count; ++i) {
    HOM_ASSIGN_OR_RETURN(int64_t id, reader->ReadI64());
    if (stats.concepts_.count(id) > 0) {
      return Status::InvalidArgument("concept-stats duplicate concept id");
    }
    ConceptEntry entry;
    HOM_ASSIGN_OR_RETURN(entry.activations, reader->ReadU64());
    HOM_ASSIGN_OR_RETURN(entry.records, reader->ReadU64());
    HOM_ASSIGN_OR_RETURN(entry.errors, reader->ReadU64());
    HOM_ASSIGN_OR_RETURN(entry.recent_errors, reader->ReadU64());
    HOM_ASSIGN_OR_RETURN(uint64_t recent_head, reader->ReadU64());
    HOM_ASSIGN_OR_RETURN(uint32_t recent_size, reader->ReadU32());
    if (recent_size > window) {
      return Status::InvalidArgument(
          "concept-stats error ring larger than its window");
    }
    if (recent_head >= std::max<uint64_t>(recent_size, 1)) {
      return Status::InvalidArgument("concept-stats ring head out of range");
    }
    entry.recent_head = static_cast<size_t>(recent_head);
    HOM_ASSIGN_OR_RETURN(std::string recent_bytes,
                         reader->ReadBlob(recent_size));
    entry.recent.resize(recent_size);
    for (uint32_t b = 0; b < recent_size; ++b) {
      uint8_t flag = static_cast<uint8_t>(recent_bytes[b]);
      if (flag > 1) {
        return Status::InvalidArgument(
            "concept-stats error flag must be 0 or 1");
      }
      entry.recent[b] = flag;
    }
    HOM_ASSIGN_OR_RETURN(uint32_t confusion_size, reader->ReadU32());
    if (confusion_size !=
        static_cast<uint64_t>(num_classes) * num_classes) {
      return Status::InvalidArgument(
          "concept-stats confusion matrix arity mismatch");
    }
    HOM_ASSIGN_OR_RETURN(
        std::string confusion_bytes,
        reader->ReadBlob(static_cast<size_t>(confusion_size) *
                         sizeof(uint64_t)));
    entry.confusion.resize(confusion_size);
    std::memcpy(entry.confusion.data(), confusion_bytes.data(),
                confusion_bytes.size());
    HOM_ASSIGN_OR_RETURN(entry.brier_sum, reader->ReadDouble());
    HOM_ASSIGN_OR_RETURN(entry.brier_count, reader->ReadU64());
    if (!std::isfinite(entry.brier_sum) || entry.brier_sum < 0.0) {
      return Status::InvalidArgument(
          "concept-stats Brier sum must be finite and non-negative");
    }
    // Each sampled prediction contributes at most 1 per class (per-class
    // probabilities live in [0, 1]).
    if (entry.brier_sum > static_cast<double>(num_classes) *
                              static_cast<double>(entry.brier_count)) {
      return Status::InvalidArgument(
          "concept-stats Brier sum exceeds its sample bound");
    }
    stats.concepts_.emplace(id, std::move(entry));
  }
  return stats;
}

obs::JsonValue OnlineConceptStats::ToJson() const {
  using obs::JsonValue;
  JsonValue concepts_json = JsonValue::Object();
  for (const auto& [id, entry] : concepts_) {
    JsonValue cj = JsonValue::Object();
    cj.Set("activations", JsonValue(entry.activations));
    cj.Set("records", JsonValue(entry.records));
    cj.Set("errors", JsonValue(entry.errors));
    cj.Set("error_rate", JsonValue(entry.error_rate()));
    cj.Set("windowed_error_rate", JsonValue(entry.windowed_error_rate()));
    cj.Set("brier_score", JsonValue(entry.brier_score()));
    cj.Set("brier_samples", JsonValue(entry.brier_count));
    cj.Set("mean_dwell",
           JsonValue(entry.activations == 0
                         ? 0.0
                         : static_cast<double>(entry.records) /
                               static_cast<double>(entry.activations)));
    JsonValue confusion = JsonValue::Array();
    for (size_t t = 0; t < num_classes_; ++t) {
      JsonValue row = JsonValue::Array();
      for (size_t p = 0; p < num_classes_; ++p) {
        row.Append(JsonValue(entry.confusion[t * num_classes_ + p]));
      }
      confusion.Append(std::move(row));
    }
    cj.Set("confusion", std::move(confusion));
    concepts_json.Set(std::to_string(id), std::move(cj));
  }
  JsonValue out = JsonValue::Object();
  out.Set("window", JsonValue(static_cast<uint64_t>(window_)));
  out.Set("records", JsonValue(total_records_));
  out.Set("switches", JsonValue(total_switches_));
  out.Set("concepts", std::move(concepts_json));
  return out;
}

}  // namespace hom
