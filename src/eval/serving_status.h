#ifndef HOM_EVAL_SERVING_STATUS_H_
#define HOM_EVAL_SERVING_STATUS_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "eval/online_stats.h"
#include "obs/alerts.h"
#include "obs/event_journal.h"
#include "obs/json.h"
#include "obs/request_timer.h"
#include "obs/timeseries.h"

namespace hom {

/// \brief Shared status of a live serving run, read by the introspection
/// endpoints (/healthz, /statusz) while the prequential loop writes it.
///
/// The eval loop (or a classifier's ExportServingStatus) pushes progress in
/// at a coarse cadence — every progress_every records, not per record — and
/// HTTP handler threads read it out; one mutex around plain copies is all
/// the synchronization that needs. Updates also publish the headline
/// numbers as labeled gauges (`hom.serving.*`, `hom.concept.*{concept=i}`),
/// so /metrics and /statusz describe the same run from the same data.
class ServingStatusBoard {
 public:
  /// A progress push: stream position plus the drift filter's view and
  /// the model-health signals derived from it (DESIGN.md §12).
  struct Progress {
    uint64_t records = 0;        ///< records scored so far
    uint64_t errors = 0;         ///< of which wrong
    int64_t active_concept = -1; ///< argmax prediction weight, -1 = none
    std::vector<double> prior;     ///< P_t−(c), per concept
    std::vector<double> posterior; ///< P_t(c), per concept
    double posterior_entropy = 0.0;       ///< H(P_t) in nats
    double posterior_entropy_ratio = 0.0; ///< H(P_t) / ln(N), in [0, 1]
    double top_concept_margin = 0.0;      ///< posterior top1 − top2
    bool drift_suspected = false;  ///< hysteresis: suspected, unconfirmed
    uint64_t drift_dwell = 0;      ///< records in the current suspicion
  };

  ServingStatusBoard();

  /// Identity of the run, set once before serving starts.
  void SetStaticInfo(std::string model_path, std::string input_path,
                     size_t num_concepts);
  /// Journal whose most recent events /statusz lists. The journal must
  /// outlive the board (both are owned by the serving command).
  void SetJournal(const obs::EventJournal* journal);
  /// Request timer whose slowest-K set /statusz surfaces as
  /// "slow_requests" (stage breakdowns included). Must outlive the board.
  void SetRequestTimer(const obs::RequestTimer* timer);
  /// Lifecycle marker: "loading" -> "serving" -> "draining".
  void SetState(std::string state);
  /// Windowed-error SLO the alert pack compares against; published as the
  /// `hom.serving.error_slo` gauge and echoed on /statusz.
  void SetErrorSlo(double slo);
  /// Monitoring subsystems whose stats /statusz embeds (an `alerts`
  /// summary block and the time-series ring stats). Both must outlive the
  /// board; either may be nullptr.
  void SetMonitors(const obs::TimeSeriesStore* timeseries,
                   const obs::AlertEngine* alerts);

  /// Pushes the current stream position + filter state; also exports the
  /// `hom.serving.*` gauges (posterior per concept as
  /// `hom.serving.posterior{concept=...}`), including the derived
  /// model-health gauges: windowed error rate over the last
  /// `kErrorWindowPushes` pushes, posterior entropy/margin, drift
  /// suspicion, and checkpoint age.
  void UpdateProgress(const Progress& progress);

  /// Error rate between the oldest and newest of the recent progress
  /// pushes (the `hom.serving.windowed_error_rate` value); cumulative
  /// error rate until a window has accumulated.
  double WindowedErrorRate() const;
  /// Mirrors per-concept online accounting into the board and the
  /// `hom.concept.*{concept=...}` gauges.
  void UpdateConceptStats(const OnlineConceptStats& stats);
  /// Marks a completed checkpoint write at stream position `record`.
  void RecordCheckpoint(uint64_t record);

  /// Seconds since RecordCheckpoint was last called; negative (-1) if
  /// never — /healthz reports it so an operator can alert on stalls.
  double LastCheckpointAgeSeconds() const;

  /// {"status": "ok", "state": ..., "uptime_seconds": ...,
  ///  "records": ..., "last_checkpoint_age_seconds": ... | null}
  obs::JsonValue HealthJson() const;

  /// Full introspection payload: run identity, progress, drift-filter
  /// prior/posterior, per-concept stats, and the journal's most recent
  /// `last_events` events.
  obs::JsonValue StatusJson(size_t last_events = 32) const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Progress pushes spanned by the windowed error rate: with the serving
  /// default of one push per 500 records this is a ~2500-record window,
  /// matching the recent-error ring of OnlineConceptStats.
  static constexpr size_t kErrorWindowPushes = 5;

  /// WindowedErrorRate with mu_ already held.
  double WindowedErrorRateLocked() const;

  /// Lazily-resolved `{concept=i}` gauge handles for one family, indexed
  /// by concept id. WithLabels() takes the family mutex and builds a
  /// canonical label string on every call — far too slow for every
  /// progress push — while a resolved handle is a lock-free atomic and
  /// stays valid for the process lifetime. Only the single progress
  /// writer (the eval loop) touches the vector.
  struct ConceptGauges {
    const char* family;
    std::vector<obs::Gauge*> handles;
    obs::Gauge* For(int64_t concept_id);
  };

  mutable std::mutex mu_;
  Clock::time_point start_;
  std::string model_path_;
  std::string input_path_;
  size_t num_concepts_ = 0;
  std::string state_ = "loading";
  Progress progress_;
  obs::JsonValue concept_stats_json_;
  bool has_concept_stats_ = false;
  bool has_checkpoint_ = false;
  uint64_t checkpoint_record_ = 0;
  Clock::time_point checkpoint_at_;
  const obs::EventJournal* journal_ = nullptr;
  const obs::RequestTimer* request_timer_ = nullptr;
  const obs::TimeSeriesStore* timeseries_ = nullptr;
  const obs::AlertEngine* alerts_ = nullptr;
  bool has_error_slo_ = false;
  double error_slo_ = 0.0;
  /// Ring of the most recent (records, errors) pushes backing the
  /// windowed error rate; one entry older than the window is kept as the
  /// subtraction base.
  std::deque<std::pair<uint64_t, uint64_t>> recent_progress_;
  ConceptGauges posterior_gauges_{"hom.serving.posterior", {}};
  ConceptGauges prior_gauges_{"hom.serving.prior", {}};
  ConceptGauges concept_records_gauges_{"hom.concept.records", {}};
  ConceptGauges concept_activations_gauges_{"hom.concept.activations", {}};
  ConceptGauges concept_error_rate_gauges_{"hom.concept.error_rate", {}};
  ConceptGauges concept_windowed_error_gauges_{
      "hom.concept.windowed_error_rate", {}};
  ConceptGauges concept_brier_gauges_{"hom.concept.brier_score", {}};
};

}  // namespace hom

#endif  // HOM_EVAL_SERVING_STATUS_H_
