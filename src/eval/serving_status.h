#ifndef HOM_EVAL_SERVING_STATUS_H_
#define HOM_EVAL_SERVING_STATUS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "eval/online_stats.h"
#include "obs/event_journal.h"
#include "obs/json.h"
#include "obs/request_timer.h"

namespace hom {

/// \brief Shared status of a live serving run, read by the introspection
/// endpoints (/healthz, /statusz) while the prequential loop writes it.
///
/// The eval loop (or a classifier's ExportServingStatus) pushes progress in
/// at a coarse cadence — every progress_every records, not per record — and
/// HTTP handler threads read it out; one mutex around plain copies is all
/// the synchronization that needs. Updates also publish the headline
/// numbers as labeled gauges (`hom.serving.*`, `hom.concept.*{concept=i}`),
/// so /metrics and /statusz describe the same run from the same data.
class ServingStatusBoard {
 public:
  /// A progress push: stream position plus the drift filter's view.
  struct Progress {
    uint64_t records = 0;        ///< records scored so far
    uint64_t errors = 0;         ///< of which wrong
    int64_t active_concept = -1; ///< argmax prediction weight, -1 = none
    std::vector<double> prior;     ///< P_t−(c), per concept
    std::vector<double> posterior; ///< P_t(c), per concept
  };

  ServingStatusBoard();

  /// Identity of the run, set once before serving starts.
  void SetStaticInfo(std::string model_path, std::string input_path,
                     size_t num_concepts);
  /// Journal whose most recent events /statusz lists. The journal must
  /// outlive the board (both are owned by the serving command).
  void SetJournal(const obs::EventJournal* journal);
  /// Request timer whose slowest-K set /statusz surfaces as
  /// "slow_requests" (stage breakdowns included). Must outlive the board.
  void SetRequestTimer(const obs::RequestTimer* timer);
  /// Lifecycle marker: "loading" -> "serving" -> "draining".
  void SetState(std::string state);

  /// Pushes the current stream position + filter state; also exports the
  /// `hom.serving.*` gauges (posterior per concept as
  /// `hom.serving.posterior{concept=...}`).
  void UpdateProgress(const Progress& progress);
  /// Mirrors per-concept online accounting into the board and the
  /// `hom.concept.*{concept=...}` gauges.
  void UpdateConceptStats(const OnlineConceptStats& stats);
  /// Marks a completed checkpoint write at stream position `record`.
  void RecordCheckpoint(uint64_t record);

  /// Seconds since RecordCheckpoint was last called; negative (-1) if
  /// never — /healthz reports it so an operator can alert on stalls.
  double LastCheckpointAgeSeconds() const;

  /// {"status": "ok", "state": ..., "uptime_seconds": ...,
  ///  "records": ..., "last_checkpoint_age_seconds": ... | null}
  obs::JsonValue HealthJson() const;

  /// Full introspection payload: run identity, progress, drift-filter
  /// prior/posterior, per-concept stats, and the journal's most recent
  /// `last_events` events.
  obs::JsonValue StatusJson(size_t last_events = 32) const;

 private:
  using Clock = std::chrono::steady_clock;

  mutable std::mutex mu_;
  Clock::time_point start_;
  std::string model_path_;
  std::string input_path_;
  size_t num_concepts_ = 0;
  std::string state_ = "loading";
  Progress progress_;
  obs::JsonValue concept_stats_json_;
  bool has_concept_stats_ = false;
  bool has_checkpoint_ = false;
  uint64_t checkpoint_record_ = 0;
  Clock::time_point checkpoint_at_;
  const obs::EventJournal* journal_ = nullptr;
  const obs::RequestTimer* request_timer_ = nullptr;
};

}  // namespace hom

#endif  // HOM_EVAL_SERVING_STATUS_H_
