#ifndef HOM_PAR_THREAD_POOL_H_
#define HOM_PAR_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hom::par {

/// Number of hardware threads, never less than 1.
size_t HardwareConcurrency();

/// Resolves a configured thread count to an effective one: a positive
/// `configured` wins; 0 falls back to the HOM_THREADS environment variable
/// when it holds a positive integer, then to HardwareConcurrency().
size_t ResolveThreadCount(size_t configured);

/// \brief Fixed-size pool of worker threads draining one FIFO task queue.
///
/// Deliberately minimal — no work stealing, no priorities: the offline
/// build's parallel loops are embarrassingly parallel batches of
/// comparable-cost items, so a shared queue with ParallelFor's dynamic
/// index chunking already balances load. A pool of size n spawns n-1
/// workers; the caller of ParallelFor is the n-th lane, so size 1 runs
/// everything inline with no threads, no queue traffic, and no atomics on
/// the items (the "parallelism off" configuration benchmarks within noise
/// of the pre-pool serial code).
class ThreadPool {
 public:
  /// `num_threads` is the effective lane count (already resolved via
  /// ResolveThreadCount); `num_threads - 1` workers are spawned.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lanes available to ParallelFor: workers + the calling thread.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Tasks drained by worker threads so far (telemetry).
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Enqueues a task for a worker thread. Tasks must not throw.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::atomic<uint64_t> tasks_executed_{0};
};

/// Runs `fn(i)` for every i in [0, n) across the pool's lanes and the
/// calling thread, dispatching indices in contiguous chunks of `grain`
/// from a shared cursor. Blocks until every index has run or the loop is
/// cancelled by a failure: the first non-OK Status (ties broken toward the
/// smallest index) stops further dispatch and is returned once in-flight
/// items drain.
///
/// `fn` runs concurrently with itself and must only touch disjoint state
/// per index (or synchronize). If the calling thread has an active
/// obs::PhaseTracer, each worker lane records its own span tree, and the
/// trees are merged back into the caller's open span as "worker:<slot>"
/// children after the join — metrics macros are safe from any lane as-is.
Status ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                   const std::function<Status(size_t)>& fn);

/// ParallelFor returning values: out[i] = fn(i), order-stable regardless
/// of scheduling. T must be default-constructible and movable.
template <typename T>
Result<std::vector<T>> ParallelMap(
    ThreadPool* pool, size_t n,
    const std::function<Result<T>(size_t)>& fn) {
  std::vector<T> out(n);
  Status status = ParallelFor(pool, n, /*grain=*/1, [&](size_t i) -> Status {
    HOM_ASSIGN_OR_RETURN(out[i], fn(i));
    return Status::OK();
  });
  if (!status.ok()) return status;
  return out;
}

}  // namespace hom::par

#endif  // HOM_PAR_THREAD_POOL_H_
