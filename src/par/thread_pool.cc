#include "par/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hom::par {

size_t HardwareConcurrency() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

size_t ResolveThreadCount(size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("HOM_THREADS")) {
    long value = std::atol(env);
    if (value > 0) return static_cast<size_t>(value);
  }
  return HardwareConcurrency();
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    task();
  }
}

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Shared state of one ParallelFor call: the index cursor, cancellation
/// flag, first error (smallest failing index wins, so the reported Status
/// does not depend on lane scheduling), and the helper-completion latch.
struct LoopState {
  LoopState(size_t n, size_t grain, const std::function<Status(size_t)>& fn)
      : n(n), grain(grain), fn(fn) {}

  const size_t n;
  const size_t grain;
  const std::function<Status(size_t)>& fn;

  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t helpers_running = 0;
  Status first_error;                 // guarded by mu
  size_t first_error_index = SIZE_MAX;

  void RecordError(size_t index, Status status) {
    std::lock_guard<std::mutex> lock(mu);
    if (index < first_error_index) {
      first_error_index = index;
      first_error = std::move(status);
    }
    cancelled.store(true, std::memory_order_relaxed);
  }

  /// One lane's share of the loop: grab chunks until the cursor runs out
  /// or a failure cancels the loop.
  void RunChunks() {
    while (!cancelled.load(std::memory_order_relaxed)) {
      size_t start = next.fetch_add(grain, std::memory_order_relaxed);
      if (start >= n) return;
      size_t end = std::min(n, start + grain);
      for (size_t i = start; i < end; ++i) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        Status status = fn(i);
        if (!status.ok()) {
          RecordError(i, std::move(status));
          return;
        }
      }
    }
  }

  void FinishHelper() {
    std::lock_guard<std::mutex> lock(mu);
    --helpers_running;
    done_cv.notify_all();
  }
};

}  // namespace

Status ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                   const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (grain == 0) grain = 1;
  size_t chunks = (n + grain - 1) / grain;
  size_t helpers =
      pool != nullptr ? std::min(chunks - 1, pool->num_threads() - 1) : 0;

  if (helpers == 0) {
    // Serial fast path: no shared cursor, no latch — the 1-thread build is
    // the old serial loop plus one std::function call per item.
    for (size_t i = 0; i < n; ++i) {
      Status status = fn(i);
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

  HOM_COUNTER_INC("hom.par.parallel_loops");
  HOM_COUNTER_ADD("hom.par.items", n);

  LoopState state(n, grain, fn);
  state.helpers_running = helpers;

  // When the caller is tracing, each helper lane records spans into its own
  // tracer; the trees come back as "worker:<slot>" children of the caller's
  // open span once everyone has joined (PhaseTracer itself is
  // single-threaded, so lanes never share one).
  obs::PhaseTracer* parent_tracer = obs::ScopedTracer::Active();
  std::vector<std::unique_ptr<obs::PhaseTracer>> lane_tracers(helpers);
  for (size_t slot = 0; slot < helpers; ++slot) {
    if (parent_tracer != nullptr) {
      lane_tracers[slot] = std::make_unique<obs::PhaseTracer>(
          obs::kWorkerPhasePrefix + std::to_string(slot));
    }
    obs::PhaseTracer* lane_tracer = lane_tracers[slot].get();
    pool->Submit([&state, lane_tracer] {
      auto started = std::chrono::steady_clock::now();
      double started_cpu = obs::ThreadCpuSeconds();
      {
        obs::ScopedTracer activate(lane_tracer);
        state.RunChunks();
      }
      if (lane_tracer != nullptr) {
        // The lane root's totals are its busy time in this region, not
        // time-since-construction (the lane may have started late).
        lane_tracer->mutable_root().seconds = SecondsSince(started);
        lane_tracer->mutable_root().cpu_seconds =
            obs::ThreadCpuSeconds() - started_cpu;
      }
      state.FinishHelper();
    });
  }

  // The calling thread is a lane too, under its own (already active)
  // tracer: its spans land directly in the enclosing phase.
  state.RunChunks();
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done_cv.wait(lock, [&state] { return state.helpers_running == 0; });
    // Helpers are joined; reads below are ordered after their writes.
  }
  if (parent_tracer != nullptr) {
    for (const auto& lane_tracer : lane_tracers) {
      if (lane_tracer != nullptr && lane_tracer->root().seconds > 0.0) {
        parent_tracer->MergeAtOpenSpan(lane_tracer->root());
      }
    }
  }
  std::lock_guard<std::mutex> lock(state.mu);
  return state.first_error_index == SIZE_MAX ? Status::OK()
                                             : state.first_error;
}

}  // namespace hom::par
