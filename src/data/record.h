#ifndef HOM_DATA_RECORD_H_
#define HOM_DATA_RECORD_H_

#include <vector>

namespace hom {

/// Class label encoded as an index into Schema::classes(). -1 means
/// "unlabeled" (the X stream of Section III-A).
using Label = int;

inline constexpr Label kUnlabeled = -1;

/// \brief One stream tuple: feature values plus an optional class label.
///
/// All attribute values are stored as doubles; a categorical attribute
/// stores its 0-based category index. This keeps the hot training/prediction
/// loops branch-free on storage and mirrors how most ML runtimes encode
/// mixed tabular data.
struct Record {
  std::vector<double> values;
  Label label = kUnlabeled;

  Record() = default;
  Record(std::vector<double> v, Label l) : values(std::move(v)), label(l) {}

  bool is_labeled() const { return label != kUnlabeled; }

  /// Categorical accessor: the encoded category index of attribute `attr`.
  int category(size_t attr) const { return static_cast<int>(values[attr]); }
};

}  // namespace hom

#endif  // HOM_DATA_RECORD_H_
