#ifndef HOM_DATA_IO_H_
#define HOM_DATA_IO_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace hom {

/// \brief Writes a dataset as CSV: a header row of attribute names plus
/// "class", then one row per record. Categorical values and labels are
/// written as their names; unlabeled records write "?".
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// \brief Reads a CSV produced by WriteCsv back into a Dataset under the
/// given schema. Column order must match the schema.
Result<Dataset> ReadCsv(SchemaPtr schema, const std::string& path);

}  // namespace hom

#endif  // HOM_DATA_IO_H_
