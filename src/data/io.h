#ifndef HOM_DATA_IO_H_
#define HOM_DATA_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/sanitize.h"

namespace hom {

/// \brief Writes a dataset as CSV: a header row of attribute names plus
/// "class", then one row per record. Categorical values and labels are
/// written as their names; unlabeled records write "?".
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// How ReadCsv treats malformed rows.
struct CsvReadOptions {
  /// kError (default): the first malformed row fails the whole read with a
  /// file:line InvalidArgument. kSkip: drop malformed rows, count them.
  /// kImputeMajority: repair repairable rows (missing/"?"/non-numeric
  /// values, unknown categories, bad labels) from statistics over the
  /// clean rows read so far; rows with the wrong field count are still
  /// skipped (arity cannot be imputed).
  InputPolicy policy = InputPolicy::kError;
  /// Cap on the per-row messages retained in CsvReadReport::sample_errors.
  size_t max_sample_errors = 10;
};

/// What a tolerant read did to the file.
struct CsvReadReport {
  uint64_t rows_read = 0;      ///< data rows parsed (header excluded)
  uint64_t rows_kept = 0;      ///< rows appended to the dataset
  uint64_t rows_skipped = 0;   ///< malformed rows dropped
  uint64_t rows_imputed = 0;   ///< rows kept after repair
  uint64_t values_imputed = 0; ///< individual field repairs
  /// file:line description of the first few malformed rows.
  std::vector<std::string> sample_errors;
};

/// \brief Reads a CSV produced by WriteCsv back into a Dataset under the
/// given schema. Column order must match the schema; rows ending in CRLF
/// and a trailing newline are accepted. Strict: any malformed row
/// (ragged field count, empty or non-numeric value, unknown category or
/// class) fails with a file:line InvalidArgument.
Result<Dataset> ReadCsv(SchemaPtr schema, const std::string& path);

/// Policy-driven variant. `report`, when non-null, receives the
/// kept/skipped/imputed accounting regardless of outcome.
Result<Dataset> ReadCsv(SchemaPtr schema, const std::string& path,
                        const CsvReadOptions& options,
                        CsvReadReport* report = nullptr);

}  // namespace hom

#endif  // HOM_DATA_IO_H_
