#ifndef HOM_DATA_DATASET_H_
#define HOM_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/record.h"
#include "data/schema.h"

namespace hom {

/// \brief An in-memory, time-ordered collection of records sharing a schema.
///
/// The historical stream D of Section II is materialized as a Dataset; all
/// clustering structures reference its rows through DatasetView without
/// copying.
class Dataset {
 public:
  explicit Dataset(SchemaPtr schema) : schema_(std::move(schema)) {}

  /// Appends a record. Fails if the value count does not match the schema,
  /// a categorical value is outside its vocabulary, or the label is outside
  /// the class vocabulary (kUnlabeled is allowed).
  Status Append(Record record);

  /// Appends without validation; used by generators that produce
  /// schema-conformant records by construction.
  void AppendUnchecked(Record record) {
    records_.push_back(std::move(record));
  }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const Record& record(size_t i) const {
    HOM_DCHECK(i < records_.size());
    return records_[i];
  }
  const SchemaPtr& schema() const { return schema_; }
  const std::vector<Record>& records() const { return records_; }

  /// Count of each class label among labeled records.
  std::vector<size_t> ClassCounts() const;

  void Reserve(size_t n) { records_.reserve(n); }

 private:
  SchemaPtr schema_;
  std::vector<Record> records_;
};

}  // namespace hom

#endif  // HOM_DATA_DATASET_H_
