#ifndef HOM_DATA_DATASET_VIEW_H_
#define HOM_DATA_DATASET_VIEW_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace hom {

/// \brief Zero-copy subset of a Dataset: a list of row indices.
///
/// Concept clustering repeatedly forms unions of clusters (Algorithm 1,
/// lines 14-16); views make those unions O(|u|+|v|) index appends instead of
/// record copies. Indices preserve stream order unless explicitly shuffled.
class DatasetView {
 public:
  DatasetView() : dataset_(nullptr) {}

  /// View over the whole dataset, in stream order.
  explicit DatasetView(const Dataset* dataset);

  /// View over rows [begin, end) of the dataset.
  DatasetView(const Dataset* dataset, size_t begin, size_t end);

  /// View over an explicit index list.
  DatasetView(const Dataset* dataset, std::vector<uint32_t> indices)
      : dataset_(dataset), indices_(std::move(indices)) {}

  size_t size() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }

  const Record& record(size_t i) const {
    HOM_DCHECK(i < indices_.size());
    return dataset_->record(indices_[i]);
  }

  /// Global row index of the i-th record in this view.
  uint32_t row_index(size_t i) const {
    HOM_DCHECK(i < indices_.size());
    return indices_[i];
  }

  const Dataset* dataset() const { return dataset_; }
  const SchemaPtr& schema() const { return dataset_->schema(); }
  const std::vector<uint32_t>& indices() const { return indices_; }

  /// Concatenation of two views over the same dataset (cluster merge).
  static DatasetView Union(const DatasetView& a, const DatasetView& b);

  /// Randomly splits the view into (train, test) halves for the holdout
  /// validation of Section II-B. With n records, train gets ceil(n/2) and
  /// test gets floor(n/2); both non-empty when n >= 2.
  std::pair<DatasetView, DatasetView> SplitHoldout(Rng* rng) const;

  /// Count of each class label among labeled records in the view.
  std::vector<size_t> ClassCounts() const;

  /// Label of the most frequent class (ties broken toward the smaller
  /// label); 0 if the view has no labeled records.
  Label MajorityClass() const;

 private:
  const Dataset* dataset_;
  std::vector<uint32_t> indices_;
};

}  // namespace hom

#endif  // HOM_DATA_DATASET_VIEW_H_
