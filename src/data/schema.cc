#include "data/schema.h"

#include <sstream>
#include <unordered_set>

#include "common/check.h"

namespace hom {

Result<std::shared_ptr<const Schema>> Schema::Make(
    std::vector<Attribute> attributes, std::vector<std::string> classes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  if (classes.size() < 2) {
    return Status::InvalidArgument("schema needs at least two classes");
  }
  std::unordered_set<std::string> names;
  for (const Attribute& attr : attributes) {
    if (attr.is_categorical() && attr.cardinality() < 2) {
      return Status::InvalidArgument("categorical attribute '" + attr.name +
                                     "' needs at least two categories");
    }
    if (!names.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name '" +
                                     attr.name + "'");
    }
  }
  std::unordered_set<std::string> class_names(classes.begin(), classes.end());
  if (class_names.size() != classes.size()) {
    return Status::InvalidArgument("duplicate class name");
  }
  return std::shared_ptr<const Schema>(
      new Schema(std::move(attributes), std::move(classes)));
}

const Attribute& Schema::attribute(size_t i) const {
  HOM_CHECK_LT(i, attributes_.size());
  return attributes_[i];
}

const std::string& Schema::class_name(int label) const {
  HOM_CHECK_GE(label, 0);
  HOM_CHECK_LT(static_cast<size_t>(label), classes_.size());
  return classes_[static_cast<size_t>(label)];
}

Result<int> Schema::ClassIndex(const std::string& name) const {
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i] == name) return static_cast<int>(i);
  }
  return Status::NotFound("class '" + name + "' not in schema");
}

Result<size_t> Schema::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("attribute '" + name + "' not in schema");
}

std::string Schema::ToString() const {
  size_t numeric = 0;
  for (const Attribute& a : attributes_) {
    if (a.is_numeric()) ++numeric;
  }
  std::ostringstream out;
  out << attributes_.size() << " attrs (" << numeric << " numeric, "
      << (attributes_.size() - numeric) << " categorical), "
      << classes_.size() << " classes";
  return out.str();
}

}  // namespace hom
