#include "data/dataset.h"

namespace hom {

Status Dataset::Append(Record record) {
  if (record.values.size() != schema_->num_attributes()) {
    return Status::InvalidArgument("record has " +
                                   std::to_string(record.values.size()) +
                                   " values, schema expects " +
                                   std::to_string(schema_->num_attributes()));
  }
  for (size_t i = 0; i < record.values.size(); ++i) {
    const Attribute& attr = schema_->attribute(i);
    if (attr.is_categorical()) {
      int v = record.category(i);
      if (v < 0 || static_cast<size_t>(v) >= attr.cardinality()) {
        return Status::OutOfRange("categorical value " + std::to_string(v) +
                                  " out of range for attribute '" +
                                  attr.name + "'");
      }
    }
  }
  if (record.label != kUnlabeled &&
      (record.label < 0 ||
       static_cast<size_t>(record.label) >= schema_->num_classes())) {
    return Status::OutOfRange("label " + std::to_string(record.label) +
                              " out of range");
  }
  records_.push_back(std::move(record));
  return Status::OK();
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(schema_->num_classes(), 0);
  for (const Record& r : records_) {
    if (r.is_labeled()) ++counts[static_cast<size_t>(r.label)];
  }
  return counts;
}

}  // namespace hom
