#ifndef HOM_DATA_SCHEMA_H_
#define HOM_DATA_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/attribute.h"

namespace hom {

/// \brief Immutable description of a labeled tabular stream: feature columns
/// plus the class-label vocabulary.
///
/// Schemas are shared (via shared_ptr) between the datasets, views, and
/// classifiers that operate on the same stream.
class Schema {
 public:
  /// Validates and builds a schema. Fails if there are no attributes, fewer
  /// than two classes, a categorical attribute with fewer than two
  /// categories, or duplicate attribute names.
  static Result<std::shared_ptr<const Schema>> Make(
      std::vector<Attribute> attributes, std::vector<std::string> classes);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const;

  size_t num_classes() const { return classes_.size(); }
  const std::string& class_name(int label) const;

  /// Index of the class with the given name, or NotFound.
  Result<int> ClassIndex(const std::string& name) const;

  /// Index of the attribute with the given name, or NotFound.
  Result<size_t> AttributeIndex(const std::string& name) const;

  const std::vector<Attribute>& attributes() const { return attributes_; }
  const std::vector<std::string>& classes() const { return classes_; }

  /// Human-readable one-line summary ("3 attrs (0 numeric, 3 categorical), 2 classes").
  std::string ToString() const;

 private:
  Schema(std::vector<Attribute> attributes, std::vector<std::string> classes)
      : attributes_(std::move(attributes)), classes_(std::move(classes)) {}

  std::vector<Attribute> attributes_;
  std::vector<std::string> classes_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace hom

#endif  // HOM_DATA_SCHEMA_H_
