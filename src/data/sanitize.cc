#include "data/sanitize.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hom {

std::string_view InputPolicyName(InputPolicy policy) {
  switch (policy) {
    case InputPolicy::kError:
      return "error";
    case InputPolicy::kSkip:
      return "skip";
    case InputPolicy::kImputeMajority:
      return "impute-majority";
  }
  HOM_CHECK(false) << "unreachable";
  return "";
}

Result<InputPolicy> InputPolicyFromName(std::string_view name) {
  if (name == "error") return InputPolicy::kError;
  if (name == "skip") return InputPolicy::kSkip;
  if (name == "impute-majority") return InputPolicy::kImputeMajority;
  return Status::InvalidArgument(
      "unknown input policy '" + std::string(name) +
      "' (expected error, skip, or impute-majority)");
}

namespace {

/// A categorical value is usable when it is finite and encodes an index
/// inside the vocabulary. Checked on the double BEFORE any int cast: the
/// cast of a NaN/out-of-range double is undefined behaviour.
bool CategoricalOk(double v, size_t cardinality) {
  return std::isfinite(v) && v >= 0.0 &&
         v < static_cast<double>(cardinality) &&
         v == std::floor(v);
}

/// Index of the most frequent entry; ties and all-zero counts resolve to
/// the lowest index so imputation is deterministic from the start.
size_t MajorityIndex(const std::vector<uint64_t>& counts) {
  return static_cast<size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

InputSanitizer::InputSanitizer(SchemaPtr schema)
    : schema_(std::move(schema)) {
  HOM_CHECK(schema_ != nullptr);
  size_t n = schema_->num_attributes();
  means_.assign(n, 0.0);
  counts_.assign(n, 0);
  category_counts_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Attribute& attr = schema_->attribute(i);
    if (attr.is_categorical()) {
      category_counts_[i].assign(attr.cardinality(), 0);
    }
  }
  label_counts_.assign(schema_->num_classes(), 0);
}

bool InputSanitizer::IsClean(const Record& r) const {
  if (r.values.size() != schema_->num_attributes()) return false;
  for (size_t i = 0; i < r.values.size(); ++i) {
    const Attribute& attr = schema_->attribute(i);
    double v = r.values[i];
    if (attr.is_categorical()) {
      if (!CategoricalOk(v, attr.cardinality())) return false;
    } else if (!std::isfinite(v)) {
      return false;
    }
  }
  if (r.label != kUnlabeled &&
      (r.label < 0 ||
       static_cast<size_t>(r.label) >= schema_->num_classes())) {
    return false;
  }
  return true;
}

void InputSanitizer::Learn(const Record& r) {
  HOM_DCHECK(IsClean(r));
  for (size_t i = 0; i < r.values.size(); ++i) {
    const Attribute& attr = schema_->attribute(i);
    if (attr.is_categorical()) {
      ++category_counts_[i][static_cast<size_t>(r.values[i])];
    } else {
      // Running mean, numerically stable for long streams.
      ++counts_[i];
      means_[i] += (r.values[i] - means_[i]) / static_cast<double>(counts_[i]);
    }
  }
  if (r.is_labeled()) ++label_counts_[static_cast<size_t>(r.label)];
}

namespace {

Status WriteU64Vector(BinaryWriter* writer, const std::vector<uint64_t>& v) {
  HOM_RETURN_NOT_OK(writer->WriteU32(static_cast<uint32_t>(v.size())));
  for (uint64_t x : v) HOM_RETURN_NOT_OK(writer->WriteU64(x));
  return Status::OK();
}

Result<std::vector<uint64_t>> ReadU64Vector(BinaryReader* reader,
                                            size_t expected) {
  HOM_ASSIGN_OR_RETURN(uint32_t size, reader->ReadU32());
  if (size != expected) {
    return Status::InvalidArgument(
        "sanitizer count vector sized " + std::to_string(size) +
        ", schema expects " + std::to_string(expected));
  }
  std::vector<uint64_t> v(size);
  for (uint64_t& x : v) {
    HOM_ASSIGN_OR_RETURN(x, reader->ReadU64());
  }
  return v;
}

}  // namespace

Status InputSanitizer::SaveTo(BinaryWriter* writer) const {
  HOM_RETURN_NOT_OK(writer->WriteDoubleVector(means_));
  HOM_RETURN_NOT_OK(WriteU64Vector(writer, counts_));
  for (const std::vector<uint64_t>& counts : category_counts_) {
    HOM_RETURN_NOT_OK(WriteU64Vector(writer, counts));
  }
  return WriteU64Vector(writer, label_counts_);
}

Status InputSanitizer::RestoreFrom(BinaryReader* reader) {
  size_t n = schema_->num_attributes();
  HOM_ASSIGN_OR_RETURN(std::vector<double> means, reader->ReadDoubleVector());
  if (means.size() != n) {
    return Status::InvalidArgument("sanitizer means arity mismatch");
  }
  for (double m : means) {
    if (!std::isfinite(m)) {
      return Status::InvalidArgument("sanitizer mean is not finite");
    }
  }
  HOM_ASSIGN_OR_RETURN(std::vector<uint64_t> counts,
                       ReadU64Vector(reader, n));
  std::vector<std::vector<uint64_t>> category_counts(n);
  for (size_t i = 0; i < n; ++i) {
    HOM_ASSIGN_OR_RETURN(
        category_counts[i],
        ReadU64Vector(reader, schema_->attribute(i).cardinality()));
  }
  HOM_ASSIGN_OR_RETURN(std::vector<uint64_t> label_counts,
                       ReadU64Vector(reader, schema_->num_classes()));
  means_ = std::move(means);
  counts_ = std::move(counts);
  category_counts_ = std::move(category_counts);
  label_counts_ = std::move(label_counts);
  return Status::OK();
}

InputSanitizer::Report InputSanitizer::Repair(Record* r) const {
  HOM_CHECK(r != nullptr);
  Report report;
  if (r->values.size() != schema_->num_attributes()) {
    report.arity_ok = false;
    return report;
  }
  for (size_t i = 0; i < r->values.size(); ++i) {
    const Attribute& attr = schema_->attribute(i);
    double v = r->values[i];
    if (attr.is_categorical()) {
      if (!CategoricalOk(v, attr.cardinality())) {
        r->values[i] = static_cast<double>(MajorityIndex(category_counts_[i]));
        ++report.repaired_fields;
      }
    } else if (!std::isfinite(v)) {
      r->values[i] = means_[i];
      ++report.repaired_fields;
    }
  }
  if (r->label != kUnlabeled &&
      (r->label < 0 ||
       static_cast<size_t>(r->label) >= schema_->num_classes())) {
    r->label = static_cast<Label>(MajorityIndex(label_counts_));
    report.label_repaired = true;
  }
  return report;
}

}  // namespace hom
