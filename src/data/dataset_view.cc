#include "data/dataset_view.h"

#include <numeric>

namespace hom {

DatasetView::DatasetView(const Dataset* dataset)
    : DatasetView(dataset, 0, dataset->size()) {}

DatasetView::DatasetView(const Dataset* dataset, size_t begin, size_t end)
    : dataset_(dataset) {
  HOM_CHECK_LE(begin, end);
  HOM_CHECK_LE(end, dataset->size());
  indices_.resize(end - begin);
  std::iota(indices_.begin(), indices_.end(), static_cast<uint32_t>(begin));
}

DatasetView DatasetView::Union(const DatasetView& a, const DatasetView& b) {
  HOM_CHECK(a.dataset_ == b.dataset_)
      << "cannot union views over different datasets";
  std::vector<uint32_t> merged;
  merged.reserve(a.indices_.size() + b.indices_.size());
  merged.insert(merged.end(), a.indices_.begin(), a.indices_.end());
  merged.insert(merged.end(), b.indices_.begin(), b.indices_.end());
  return DatasetView(a.dataset_, std::move(merged));
}

std::pair<DatasetView, DatasetView> DatasetView::SplitHoldout(
    Rng* rng) const {
  std::vector<uint32_t> shuffled = indices_;
  rng->Shuffle(&shuffled);
  size_t train_size = (shuffled.size() + 1) / 2;
  std::vector<uint32_t> train(shuffled.begin(),
                              shuffled.begin() + train_size);
  std::vector<uint32_t> test(shuffled.begin() + train_size, shuffled.end());
  return {DatasetView(dataset_, std::move(train)),
          DatasetView(dataset_, std::move(test))};
}

std::vector<size_t> DatasetView::ClassCounts() const {
  std::vector<size_t> counts(schema()->num_classes(), 0);
  for (uint32_t idx : indices_) {
    const Record& r = dataset_->record(idx);
    if (r.is_labeled()) ++counts[static_cast<size_t>(r.label)];
  }
  return counts;
}

Label DatasetView::MajorityClass() const {
  std::vector<size_t> counts = ClassCounts();
  size_t best = 0;
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return static_cast<Label>(best);
}

}  // namespace hom
