#include "data/io.h"

#include <fstream>
#include <sstream>

namespace hom {

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const Schema& schema = *dataset.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    out << schema.attribute(i).name << ",";
  }
  out << "class\n";
  for (const Record& r : dataset.records()) {
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      const Attribute& attr = schema.attribute(i);
      if (attr.is_categorical()) {
        out << attr.categories[static_cast<size_t>(r.category(i))];
      } else {
        out << r.values[i];
      }
      out << ",";
    }
    if (r.is_labeled()) {
      out << schema.class_name(r.label);
    } else {
      out << "?";
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Dataset> ReadCsv(SchemaPtr schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  Dataset dataset(schema);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + path + "' is empty (missing header)");
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitLine(line);
    if (fields.size() != schema->num_attributes() + 1) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": expected " +
          std::to_string(schema->num_attributes() + 1) + " fields, got " +
          std::to_string(fields.size()));
    }
    Record record;
    record.values.reserve(schema->num_attributes());
    for (size_t i = 0; i < schema->num_attributes(); ++i) {
      const Attribute& attr = schema->attribute(i);
      if (attr.is_categorical()) {
        int code = -1;
        for (size_t c = 0; c < attr.categories.size(); ++c) {
          if (attr.categories[c] == fields[i]) {
            code = static_cast<int>(c);
            break;
          }
        }
        if (code < 0) {
          return Status::InvalidArgument(
              path + ":" + std::to_string(line_no) + ": unknown category '" +
              fields[i] + "' for attribute '" + attr.name + "'");
        }
        record.values.push_back(code);
      } else {
        try {
          record.values.push_back(std::stod(fields[i]));
        } catch (...) {
          return Status::InvalidArgument(
              path + ":" + std::to_string(line_no) +
              ": non-numeric value '" + fields[i] + "'");
        }
      }
    }
    const std::string& label_field = fields.back();
    if (label_field == "?") {
      record.label = kUnlabeled;
    } else {
      HOM_ASSIGN_OR_RETURN(record.label, schema->ClassIndex(label_field));
    }
    HOM_RETURN_NOT_OK(dataset.Append(std::move(record)));
  }
  return dataset;
}

}  // namespace hom
