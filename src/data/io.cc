#include "data/io.h"

#include <cmath>
#include <fstream>
#include <sstream>

namespace hom {

namespace {

/// Splits on ',' keeping empty fields — including a trailing one, so a
/// stray trailing comma surfaces as a ragged row instead of silently
/// vanishing.
std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

/// "path:line: " prefix every malformed-row message carries.
std::string RowContext(const std::string& path, size_t line_no) {
  return path + ":" + std::to_string(line_no) + ": ";
}

}  // namespace

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const Schema& schema = *dataset.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    out << schema.attribute(i).name << ",";
  }
  out << "class\n";
  for (const Record& r : dataset.records()) {
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      const Attribute& attr = schema.attribute(i);
      if (attr.is_categorical()) {
        out << attr.categories[static_cast<size_t>(r.category(i))];
      } else {
        out << r.values[i];
      }
      out << ",";
    }
    if (r.is_labeled()) {
      out << schema.class_name(r.label);
    } else {
      out << "?";
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Dataset> ReadCsv(SchemaPtr schema, const std::string& path) {
  return ReadCsv(std::move(schema), path, CsvReadOptions{}, nullptr);
}

Result<Dataset> ReadCsv(SchemaPtr schema, const std::string& path,
                        const CsvReadOptions& options, CsvReadReport* report) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  Dataset dataset(schema);
  InputSanitizer sanitizer(schema);
  CsvReadReport local_report;
  CsvReadReport* rep = report != nullptr ? report : &local_report;
  *rep = CsvReadReport{};

  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + path + "' is empty (missing header)");
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF
    if (line.empty()) continue;  // blank/trailing-newline lines
    ++rep->rows_read;

    std::vector<std::string> fields = SplitLine(line);
    // `row_error` carries the first defect; `repairable` says whether
    // imputation can keep the row (a wrong field count cannot be fixed).
    std::string row_error;
    bool repairable = true;
    Record record;
    if (fields.size() != schema->num_attributes() + 1) {
      row_error = RowContext(path, line_no) + "expected " +
                  std::to_string(schema->num_attributes() + 1) +
                  " fields, got " + std::to_string(fields.size());
      repairable = false;
    } else {
      record.values.reserve(schema->num_attributes());
      for (size_t i = 0; i < schema->num_attributes(); ++i) {
        const Attribute& attr = schema->attribute(i);
        const std::string& field = fields[i];
        // NaN marks a field the sanitizer must fill; Repair() replaces it
        // before anything casts it (the cast of a NaN is UB).
        double value = std::nan("");
        if (field.empty() || field == "?") {
          if (row_error.empty()) {
            row_error = RowContext(path, line_no) +
                        "missing value for attribute '" + attr.name + "'";
          }
        } else if (attr.is_categorical()) {
          int code = -1;
          for (size_t c = 0; c < attr.categories.size(); ++c) {
            if (attr.categories[c] == field) {
              code = static_cast<int>(c);
              break;
            }
          }
          if (code >= 0) {
            value = code;
          } else if (row_error.empty()) {
            row_error = RowContext(path, line_no) + "unknown category '" +
                        field + "' for attribute '" + attr.name + "'";
          }
        } else {
          size_t parsed = 0;
          bool ok = false;
          double v = 0.0;
          try {
            v = std::stod(field, &parsed);
            ok = parsed == field.size();
          } catch (...) {
            ok = false;
          }
          if (!ok) {
            if (row_error.empty()) {
              row_error = RowContext(path, line_no) + "non-numeric value '" +
                          field + "'";
            }
          } else if (!std::isfinite(v)) {
            if (row_error.empty()) {
              row_error = RowContext(path, line_no) + "non-finite value '" +
                          field + "'";
            }
          } else {
            value = v;
          }
        }
        record.values.push_back(value);
      }
      const std::string& label_field = fields.back();
      if (label_field == "?") {
        record.label = kUnlabeled;
      } else {
        auto label = schema->ClassIndex(label_field);
        if (label.ok()) {
          record.label = *label;
        } else {
          // -2: labeled-but-invalid, distinct from kUnlabeled so Repair()
          // knows to impute the majority class.
          record.label = -2;
          if (row_error.empty()) {
            row_error = RowContext(path, line_no) + "unknown class label '" +
                        label_field + "'";
          }
        }
      }
    }

    if (row_error.empty()) {
      sanitizer.Learn(record);
      HOM_RETURN_NOT_OK(dataset.Append(std::move(record)));
      ++rep->rows_kept;
      continue;
    }
    if (options.policy == InputPolicy::kError) {
      return Status::InvalidArgument(row_error);
    }
    if (rep->sample_errors.size() < options.max_sample_errors) {
      rep->sample_errors.push_back(row_error);
    }
    if (!repairable || options.policy == InputPolicy::kSkip) {
      ++rep->rows_skipped;
      continue;
    }
    InputSanitizer::Report repair = sanitizer.Repair(&record);
    ++rep->rows_imputed;
    rep->values_imputed +=
        repair.repaired_fields + (repair.label_repaired ? 1 : 0);
    HOM_RETURN_NOT_OK(dataset.Append(std::move(record)));
    ++rep->rows_kept;
  }
  return dataset;
}

}  // namespace hom
