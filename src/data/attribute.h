#ifndef HOM_DATA_ATTRIBUTE_H_
#define HOM_DATA_ATTRIBUTE_H_

#include <string>
#include <vector>

namespace hom {

/// Kind of a feature column. The paper's benchmark streams mix both:
/// Stagger is all-categorical, Hyperplane all-numeric, the intrusion stream
/// has 34 continuous and 7 discrete attributes (Table I).
enum class AttributeType {
  kNumeric,
  kCategorical,
};

/// \brief One feature column: a name, a type, and (for categorical columns)
/// the value vocabulary.
///
/// Attribute is a passive descriptor; values themselves live in Record as
/// doubles (categorical values are stored as 0-based category indices).
struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kNumeric;
  /// Category names; empty for numeric attributes. The index of a name in
  /// this vector is the encoded value stored in Record.
  std::vector<std::string> categories;

  /// Creates a continuous attribute.
  static Attribute Numeric(std::string name) {
    return Attribute{std::move(name), AttributeType::kNumeric, {}};
  }

  /// Creates a discrete attribute with the given vocabulary.
  static Attribute Categorical(std::string name,
                               std::vector<std::string> categories) {
    return Attribute{std::move(name), AttributeType::kCategorical,
                     std::move(categories)};
  }

  bool is_numeric() const { return type == AttributeType::kNumeric; }
  bool is_categorical() const { return type == AttributeType::kCategorical; }

  /// Number of distinct values of a categorical attribute; 0 for numeric.
  size_t cardinality() const { return categories.size(); }
};

}  // namespace hom

#endif  // HOM_DATA_ATTRIBUTE_H_
