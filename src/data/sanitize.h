#ifndef HOM_DATA_SANITIZE_H_
#define HOM_DATA_SANITIZE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "data/record.h"
#include "data/schema.h"

namespace hom {

/// What to do with a malformed input record (missing value, non-finite
/// number, out-of-vocabulary category, out-of-range label).
enum class InputPolicy : uint8_t {
  kError = 0,        ///< surface an error Status (strict ingest)
  kSkip,             ///< drop the record, count it, keep serving
  kImputeMajority,   ///< repair the record from running statistics
};

/// Stable wire/CLI name: "error", "skip", "impute-majority".
std::string_view InputPolicyName(InputPolicy policy);

/// Inverse of InputPolicyName; error Status on unknown names.
Result<InputPolicy> InputPolicyFromName(std::string_view name);

/// \brief Malformed-input repair for the online phase: validates records
/// against a schema and, when the policy allows, repairs bad fields from
/// statistics learned over the clean records seen so far.
///
/// A missing value is represented as NaN in Record::values (records store
/// doubles for both attribute kinds). Repair happens BEFORE a value is
/// interpreted — in particular before any categorical cast, since
/// `static_cast<int>(NaN)` is undefined behaviour. Numeric fields impute
/// the running mean; categorical fields and labels impute the majority
/// value (ties break toward the lower index; before any clean record has
/// been seen the fallbacks are 0.0 / category 0 / class 0).
class InputSanitizer {
 public:
  /// Outcome of one Repair() pass.
  struct Report {
    /// False when the record has the wrong number of values — that cannot
    /// be repaired, only rejected; the record is left untouched.
    bool arity_ok = true;
    /// Attribute values replaced (missing, non-finite, out of vocabulary).
    size_t repaired_fields = 0;
    /// True when an out-of-range label was replaced by the majority class.
    bool label_repaired = false;

    bool was_clean() const {
      return arity_ok && repaired_fields == 0 && !label_repaired;
    }
  };

  explicit InputSanitizer(SchemaPtr schema);

  /// True when `r` conforms to the schema: right arity, finite numerics,
  /// in-vocabulary categoricals, label in range (kUnlabeled is fine).
  bool IsClean(const Record& r) const;

  /// Folds one clean record into the imputation statistics (running mean
  /// per numeric attribute, category/label frequencies). Call only with
  /// records IsClean() accepts.
  void Learn(const Record& r);

  /// Repairs `r` in place and reports what changed. Arity mismatches are
  /// not repairable: the report's arity_ok is false and `r` is untouched.
  Report Repair(Record* r) const;

  /// Serializes the imputation statistics so a serving checkpoint can
  /// resume them (highorder/checkpoint.h).
  Status SaveTo(BinaryWriter* writer) const;

  /// Restores statistics written by SaveTo. Vector sizes must match this
  /// sanitizer's schema and means must be finite; a corrupt payload is
  /// rejected with an error Status, leaving the statistics untouched.
  Status RestoreFrom(BinaryReader* reader);

  const SchemaPtr& schema() const { return schema_; }

 private:
  SchemaPtr schema_;
  /// Running mean per attribute (used for numeric imputation).
  std::vector<double> means_;
  std::vector<uint64_t> counts_;
  /// Per categorical attribute: observed frequency of each category.
  std::vector<std::vector<uint64_t>> category_counts_;
  /// Observed frequency of each class label.
  std::vector<uint64_t> label_counts_;
};

}  // namespace hom

#endif  // HOM_DATA_SANITIZE_H_
