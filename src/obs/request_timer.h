#ifndef HOM_OBS_REQUEST_TIMER_H_
#define HOM_OBS_REQUEST_TIMER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace hom::obs {

/// The stages one served record passes through (DESIGN.md §11). Stage
/// durations feed the labeled `hom.serve.stage_seconds{stage=...}`
/// histogram family; the same family also carries the HTTP server's
/// http_parse/http_handle/http_write segments, so one scrape shows where
/// both record time and scrape time go.
enum class RequestStage : uint8_t {
  kParse = 0,   ///< decoding / splitting the raw record
  kSanitize,    ///< input hardening (reject / impute)
  kPredict,     ///< model prediction
  kObserve,     ///< drift tracking + online learning
  kCheckpoint,  ///< serving-state persistence
};

inline constexpr size_t kNumRequestStages = 5;

/// Stable wire name of a stage ("parse", "sanitize", ...).
std::string_view RequestStageName(RequestStage stage);

/// Bucket bounds for stage durations: 1 µs .. ~4 s in powers of 4,
/// expressed in seconds (DefaultLatencyBoundsUs scaled).
std::vector<double> StageSecondsBounds();

/// Records one duration into `hom.serve.stage_seconds{stage=<stage>}`.
/// For ad-hoc stages (the HTTP segments); the per-record path goes through
/// RequestTimer's cached handles instead.
void RecordStageSeconds(std::string_view stage, double seconds);

/// \brief Per-request latency attribution: accumulates stage timings for
/// each served record, feeds the stage histogram family, and keeps the
/// slowest-K requests (with their stage breakdowns) for /statusz.
///
/// A request is timed with the ScopedRequestTimer RAII (activates this
/// timer on the current thread); stages inside it are marked with
/// ScopedRequestStage, which nests — entering a stage pauses the enclosing
/// one, so every microsecond lands in exactly one stage. Code outside any
/// ScopedRequestStage is not attributed (it shows up in the request total
/// but no stage), keeping the breakdown honest.
///
/// Thread-safe: stage accumulation is thread-local, only the finished
/// request crosses into the mutex-guarded slow-K set.
class RequestTimer {
 public:
  struct Options {
    /// How many slowest requests to retain for /statusz and the journal.
    size_t slowest_k = 8;
  };

  /// One retained slow request: stream position, total wall time, and how
  /// that total splits across the stages. When the recording thread had a
  /// trace context installed, the trace/span ids ride along so a slow
  /// entry on /statusz can be joined against span files and journals from
  /// other processes (serving-loop records usually carry none).
  struct SlowRequest {
    int64_t record = -1;
    double total_us = 0.0;
    std::array<double, kNumRequestStages> stage_us{};
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    uint64_t span_id = 0;
  };

  RequestTimer();  ///< All-default Options.
  explicit RequestTimer(Options options);

  RequestTimer(const RequestTimer&) = delete;
  RequestTimer& operator=(const RequestTimer&) = delete;

  /// Ingests one finished request: records each nonzero stage into the
  /// histogram family and, if it ranks among the slowest K seen, retains
  /// it and journals kSlowRequest (`source` = the dominant stage).
  void RecordRequest(int64_t record, double total_seconds,
                     const std::array<double, kNumRequestStages>& stage_seconds);

  /// Requests ingested since construction.
  uint64_t requests() const;

  /// The retained slowest requests, slowest first.
  std::vector<SlowRequest> Slowest() const;

  /// Array of {"record", "total_us", "stages": {name: us, ...}} objects,
  /// slowest first — the "slow_requests" section of /statusz.
  JsonValue SlowestJson() const;

 private:
  const Options options_;
  std::array<Histogram*, kNumRequestStages> stage_histograms_{};
  mutable std::mutex mu_;
  uint64_t requests_ = 0;
  std::vector<SlowRequest> slowest_;  ///< sorted, slowest first
};

/// \brief RAII: makes `timer` time the current thread's in-flight request
/// for the enclosing scope; on destruction finalizes the request into the
/// timer. Does not nest (a second activation on the same thread is a
/// no-op) — one record is one request.
class ScopedRequestTimer {
 public:
  ScopedRequestTimer(RequestTimer* timer, int64_t record);
  ~ScopedRequestTimer();

  ScopedRequestTimer(const ScopedRequestTimer&) = delete;
  ScopedRequestTimer& operator=(const ScopedRequestTimer&) = delete;

 private:
  bool active_ = false;
};

/// \brief RAII: attributes the enclosed scope to `stage` of the current
/// thread's in-flight request. Nesting pauses the enclosing stage. A
/// cheap no-op (one thread-local read) when no request is being timed, so
/// library code (e.g. the sanitizer) can mark its stage unconditionally.
class ScopedRequestStage {
 public:
  explicit ScopedRequestStage(RequestStage stage);
  ~ScopedRequestStage();

  ScopedRequestStage(const ScopedRequestStage&) = delete;
  ScopedRequestStage& operator=(const ScopedRequestStage&) = delete;

 private:
  bool active_ = false;
  int previous_stage_ = -1;
  std::chrono::steady_clock::time_point previous_start_;
};

}  // namespace hom::obs

#endif  // HOM_OBS_REQUEST_TIMER_H_
