#ifndef HOM_OBS_BUILD_INFO_H_
#define HOM_OBS_BUILD_INFO_H_

#include <string>

#include "obs/json.h"

namespace hom::obs {

/// The release version of this tree. Bumped by hand with the roadmap.
const char* HomVersion();

/// The CMake build type the binary was compiled as ("Release", "Debug",
/// ...; "unknown" when the build did not say).
const char* HomBuildType();

/// Publishes the `hom_build_info` identity gauge: value 1 with labels
/// {version, build, model_schema}. The Prometheus convention for
/// constant metadata — dashboards join it against the real series instead
/// of every series carrying the labels. `model_schema` is the serving
/// model's schema fingerprint ("%08x", or "none" before a model loads);
/// calling again with a different fingerprint moves the gauge to the new
/// label set and zeroes the old one, so a scrape always shows exactly one
/// build_info with value 1.
void PublishBuildInfo(const std::string& model_schema_fingerprint);

/// {"version", "build", "model_schema"} — the "build" section of
/// /statusz and telemetry files. Reflects the latest PublishBuildInfo
/// fingerprint ("none" when never published).
JsonValue BuildInfoJson();

}  // namespace hom::obs

#endif  // HOM_OBS_BUILD_INFO_H_
