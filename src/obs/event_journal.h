#ifndef HOM_OBS_EVENT_JOURNAL_H_
#define HOM_OBS_EVENT_JOURNAL_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace hom::obs {

/// The online-phase event taxonomy (DESIGN.md §7). Counters tell you *how
/// often* something happened; these events tell you *when*, *from where to
/// where*, and *with what evidence* — the transition dynamics the paper's
/// whole online phase is about.
enum class EventType : uint8_t {
  kConceptSwitch = 0,  ///< the predicting model changed its active concept
  kDriftSuspected,     ///< early warning: current concept losing support
  kDriftConfirmed,     ///< the evidence settled on a different concept
  kModelReuse,         ///< a historical model was re-activated (no training)
  kModelRelearn,       ///< a model was (re)trained online (chasing trends)
  kHmmPrediction,      ///< the transition chain proactively predicted a state
  kWindowError,        ///< periodic windowed-error report from a harness
  kInputRejected,      ///< a malformed record was dropped by policy
  kInputImputed,       ///< a malformed record was repaired and kept
  kCheckpointSave,     ///< serving state was persisted (`record` = position)
  kCheckpointLoad,     ///< serving state was restored (`record` = position)
  kFaultInjected,      ///< the chaos harness injected a fault (tests only)
  kServerStart,        ///< introspection HTTP server up (`to` = port)
  kServerStop,         ///< introspection HTTP server shut down
  kSlowRequest,        ///< a request entered the slowest-K set (`record` =
                       ///< stream position, `value` = total µs, `source` =
                       ///< the dominant stage of its breakdown)
  kProfileStart,       ///< CPU sampling profiler armed (`value` = hz)
  kProfileStop,        ///< profiler disarmed (`value` = samples captured)
  kAlertFiring,        ///< an alert rule entered the firing state
                       ///< (`source` = rule name, `record` = stream
                       ///< position of the tick, `value` = rule value)
  kAlertResolved,      ///< a firing alert rule resolved (same payload)
  kReplicaPromoted,    ///< a standby took over as primary (`record` =
                       ///< resume position, `value` = new epoch)
  kModelSwapped,       ///< serving swapped to a new model under traffic
                       ///< (`from`/`to` = old/new concept count,
                       ///< `record` = stream position)
};

inline constexpr size_t kNumEventTypes = 21;

/// Stable wire name of an event type ("concept_switch", ...).
std::string_view EventTypeName(EventType type);

/// Inverse of EventTypeName; error on unknown names.
Result<EventType> EventTypeFromName(std::string_view name);

/// One journal entry. `seq` and `t_us` are assigned by the journal at emit
/// time; everything else is the emitter's claim. Unknown/inapplicable ids
/// are -1. `value` is event-specific: the active probability or windowed
/// error rate backing the event (see the taxonomy table in DESIGN.md §7).
struct Event {
  EventType type = EventType::kConceptSwitch;
  std::string source;  ///< short emitter tag: "highorder", "repro", ...
  uint64_t seq = 0;    ///< global emit order within the journal
  double t_us = 0.0;   ///< microseconds since journal construction
  int64_t record = -1; ///< emitter-local stream position (labeled records)
  int64_t from = -1;   ///< concept id before the event
  int64_t to = -1;     ///< concept id after the event
  double value = 0.0;  ///< evidence payload (probability, error rate, ...)
  /// Distributed-trace identity stamped from the emitting thread's
  /// installed TraceContext (all zero when none was active): journals from
  /// different processes join on trace_id.
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
};

/// Journal JSONL schema: version 2 prepends one header line
/// (`{"journal_schema": 2, "epoch_unix_us": ...}`) anchoring the relative
/// `t_us` timestamps to the wall clock, and events may carry optional
/// `trace_id`/`span_id` hex fields. Version-1 files (no header) still
/// parse — every event field stays backward compatible.
inline constexpr int kJournalSchemaVersion = 2;

/// \brief Bounded, timestamped, thread-safe journal of typed online-phase
/// events, with an optional streaming JSONL sink.
///
/// The ring buffer keeps the most recent `capacity` events; older entries
/// are overwritten and counted in dropped(). Emit() is a short critical
/// section (sequence assignment + one slot write; plus one buffered line
/// write when a sink is attached). Events fire at concept-transition
/// granularity — orders of magnitude rarer than records — so journal cost
/// is invisible next to the 5% instrumentation budget; instrumented code
/// that may run with no journal installed pays a single thread-local load
/// (see Active()/EmitIfActive).
///
/// Like PhaseTracer, a journal is activated on the current thread with the
/// ScopedJournal RAII; library code emits through EmitIfActive() and does
/// nothing when no journal is installed.
class EventJournal {
 public:
  static constexpr size_t kDefaultCapacity = 65536;

  explicit EventJournal(size_t capacity = kDefaultCapacity);
  ~EventJournal();

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Appends one event; fills seq/t_us. Thread-safe.
  void Emit(EventType type, std::string_view source, int64_t record = -1,
            int64_t from = -1, int64_t to = -1, double value = 0.0);

  /// The retained events, oldest first (at most capacity(), in seq order).
  std::vector<Event> Snapshot() const;

  /// Total events emitted since construction.
  uint64_t emitted() const;
  /// Events evicted from the ring by overflow (still on the JSONL sink if
  /// one was attached before they fired).
  uint64_t dropped() const;
  /// Emit counts per event type, indexed by EventType.
  std::array<uint64_t, kNumEventTypes> per_type_counts() const;
  /// Ring evictions per event type (which kinds of history overflow cost
  /// us), indexed by EventType. Each eviction also bumps the global
  /// `hom.journal.dropped{type=...}` counter family, so a scrape can alert
  /// on journal loss without reaching this object.
  std::array<uint64_t, kNumEventTypes> dropped_per_type() const;
  size_t capacity() const { return capacity_; }

  /// Streams every subsequent Emit() as one JSON line to `path`
  /// (truncating). Lines are flushed per event so `homctl tail --follow`
  /// sees them live.
  Status AttachJsonlSink(const std::string& path);
  /// Flushes and detaches the sink (also done by the destructor).
  void CloseSink();

  /// Dumps the current Snapshot() as JSONL to `path` (truncating).
  Status WriteJsonl(const std::string& path) const;

  /// {"emitted": N, "dropped": N, "capacity": N, "by_type": {...},
  /// "dropped_by_type": {...}} — the summary embedded in telemetry files
  /// (dropped_by_type appears only when something was evicted).
  JsonValue SummaryJson() const;

  /// The calling thread's active journal, or nullptr (see ScopedJournal).
  static EventJournal* Active();

  /// One-line JSON serialization of an event / its inverse. A round trip
  /// preserves every field.
  static std::string ToJsonl(const Event& event);
  static Result<Event> FromJsonl(std::string_view line);

  /// True for a schema header line (the first line of a version >= 2
  /// file). Line-oriented consumers skip these instead of counting them as
  /// parse failures.
  static bool IsHeaderLine(std::string_view line);

  /// Wall-clock time of journal construction, in unix microseconds: the
  /// anchor that places this journal's `t_us`-relative events on a merged
  /// cross-process timeline.
  int64_t epoch_unix_us() const { return epoch_unix_us_; }

 private:
  std::string HeaderLine() const;

  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  const int64_t epoch_unix_us_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;      ///< slot = seq % capacity_
  uint64_t next_seq_ = 0;
  std::array<uint64_t, kNumEventTypes> per_type_{};
  std::array<uint64_t, kNumEventTypes> dropped_per_type_{};
  std::ofstream sink_;
};

/// \brief RAII: makes `journal` the calling thread's active journal for the
/// enclosing scope (restores the previous one on destruction), mirroring
/// ScopedTracer.
class ScopedJournal {
 public:
  explicit ScopedJournal(EventJournal* journal);
  ~ScopedJournal();

  ScopedJournal(const ScopedJournal&) = delete;
  ScopedJournal& operator=(const ScopedJournal&) = delete;

 private:
  EventJournal* previous_;
};

/// Emission helper for instrumented code: one thread-local load when no
/// journal is active, a full Emit() otherwise.
inline void EmitIfActive(EventType type, std::string_view source,
                         int64_t record = -1, int64_t from = -1,
                         int64_t to = -1, double value = 0.0) {
  if (EventJournal* journal = EventJournal::Active()) {
    journal->Emit(type, source, record, from, to, value);
  }
}

}  // namespace hom::obs

#endif  // HOM_OBS_EVENT_JOURNAL_H_
