#include "obs/trace_context.h"

#include <random>

#include "obs/metrics.h"

namespace hom::obs {

namespace {

thread_local const TraceContext* g_current_context = nullptr;

/// SplitMix64 finalizer: a bijective mix, so distinct (seed, counter)
/// pairs give distinct ids and a fixed seed gives a fixed sequence.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct IdGenerator {
  std::mutex mu;
  uint64_t seed = 0;
  uint64_t counter = 0;
  bool seeded = false;

  uint64_t Next() {
    std::lock_guard<std::mutex> lock(mu);
    if (!seeded) {
      // No explicit seed: draw one from the platform so concurrent
      // processes do not mint colliding ids by default.
      std::random_device rd;
      seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
      seeded = true;
    }
    uint64_t id = 0;
    do {
      id = Mix64(seed ^ Mix64(++counter));
    } while (id == 0);  // 0 is the W3C "no id" sentinel
    return id;
  }

  void Seed(uint64_t s) {
    std::lock_guard<std::mutex> lock(mu);
    seed = s;
    counter = 0;
    seeded = true;
  }
};

IdGenerator& Generator() {
  static IdGenerator* generator = new IdGenerator();
  return *generator;
}

constexpr char kHexDigits[] = "0123456789abcdef";

void AppendHex64(uint64_t v, std::string* out) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(kHexDigits[(v >> shift) & 0xf]);
  }
}

bool ParseHex64(std::string_view text, uint64_t* out) {
  uint64_t v = 0;
  for (char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;  // uppercase is malformed per W3C
    }
  }
  *out = v;
  return true;
}

int ThreadLane() {
  static std::atomic<int> next_lane{0};
  thread_local int lane = next_lane.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

}  // namespace

std::string TraceIdHex(const TraceContext& ctx) {
  std::string out;
  out.reserve(32);
  AppendHex64(ctx.trace_hi, &out);
  AppendHex64(ctx.trace_lo, &out);
  return out;
}

std::string SpanIdHex(uint64_t span_id) {
  std::string out;
  out.reserve(16);
  AppendHex64(span_id, &out);
  return out;
}

bool ParseTraceIdHex(std::string_view hex, uint64_t* hi, uint64_t* lo) {
  return hex.size() == 32 && ParseHex64(hex.substr(0, 16), hi) &&
         ParseHex64(hex.substr(16), lo);
}

bool ParseSpanIdHex(std::string_view hex, uint64_t* id) {
  return hex.size() == 16 && ParseHex64(hex, id);
}

std::string FormatTraceparent(const TraceContext& ctx) {
  if (!ctx.valid()) return std::string();
  std::string out = "00-";
  out.reserve(55);
  AppendHex64(ctx.trace_hi, &out);
  AppendHex64(ctx.trace_lo, &out);
  out += '-';
  AppendHex64(ctx.span_id, &out);
  out += "-01";
  return out;
}

Result<TraceContext> ParseTraceparent(std::string_view text) {
  // version(2)-trace(32)-span(16)-flags(2): 55 chars minimum.
  if (text.size() < 55 || text[2] != '-' || text[35] != '-' ||
      text[52] != '-') {
    return Status::InvalidArgument("malformed traceparent '" +
                                   std::string(text) + "'");
  }
  uint64_t version = 0;
  TraceContext ctx;
  uint64_t flags = 0;
  if (!ParseHex64(text.substr(0, 2), &version) ||
      !ParseHex64(text.substr(3, 16), &ctx.trace_hi) ||
      !ParseHex64(text.substr(19, 16), &ctx.trace_lo) ||
      !ParseHex64(text.substr(36, 16), &ctx.span_id) ||
      !ParseHex64(text.substr(53, 2), &flags)) {
    return Status::InvalidArgument("non-hex traceparent field in '" +
                                   std::string(text) + "'");
  }
  if (version == 0xff) {
    return Status::InvalidArgument("traceparent version ff is reserved");
  }
  // Version 00 is exactly 55 chars; unknown future versions may append
  // fields after another dash and must still be accepted.
  if (version == 0 && text.size() != 55) {
    return Status::InvalidArgument("trailing bytes after version-00 "
                                   "traceparent");
  }
  if (version != 0 && text.size() > 55 && text[55] != '-') {
    return Status::InvalidArgument("malformed traceparent suffix");
  }
  if ((ctx.trace_hi | ctx.trace_lo) == 0) {
    return Status::InvalidArgument("all-zero trace id");
  }
  if (ctx.span_id == 0) {
    return Status::InvalidArgument("all-zero parent span id");
  }
  return ctx;
}

void SeedTraceIds(uint64_t seed) { Generator().Seed(seed); }

TraceContext NewTrace() {
  IdGenerator& gen = Generator();
  TraceContext ctx;
  ctx.trace_hi = gen.Next();
  ctx.trace_lo = gen.Next();
  ctx.span_id = gen.Next();
  return ctx;
}

uint64_t NewSpanId() { return Generator().Next(); }

const TraceContext* CurrentTraceContext() { return g_current_context; }

std::string CurrentTraceparentOrEmpty() {
  const TraceContext* ctx = g_current_context;
  return ctx == nullptr ? std::string() : FormatTraceparent(*ctx);
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : ctx_(ctx), previous_(g_current_context) {
  g_current_context = &ctx_;
}

ScopedTraceContext::~ScopedTraceContext() { g_current_context = previous_; }

std::string_view SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClient:
      return "client";
    case SpanKind::kServer:
      return "server";
    case SpanKind::kInternal:
      break;
  }
  return "internal";
}

Result<SpanKind> SpanKindFromName(std::string_view name) {
  if (name == "client") return SpanKind::kClient;
  if (name == "server") return SpanKind::kServer;
  if (name == "internal") return SpanKind::kInternal;
  return Status::InvalidArgument("unknown span kind '" + std::string(name) +
                                 "'");
}

namespace {

JsonValue SpanToJson(const SpanRecord& span) {
  JsonValue line = JsonValue::Object();
  line.Set("trace_id", JsonValue(TraceIdHex(
                           {span.trace_hi, span.trace_lo, span.span_id})));
  line.Set("span_id", JsonValue(SpanIdHex(span.span_id)));
  if (span.parent_span_id != 0) {
    line.Set("parent_span_id", JsonValue(SpanIdHex(span.parent_span_id)));
  }
  line.Set("name", JsonValue(span.name));
  line.Set("kind", JsonValue(std::string(SpanKindName(span.kind))));
  line.Set("start_unix_us", JsonValue(span.start_unix_us));
  line.Set("dur_us", JsonValue(span.dur_us));
  if (!span.status.empty()) line.Set("status", JsonValue(span.status));
  line.Set("lane", JsonValue(static_cast<int64_t>(span.lane)));
  return line;
}

}  // namespace

std::string SpanToJsonl(const SpanRecord& span) {
  return SpanToJson(span).Dump();
}

Result<SpanRecord> SpanFromJsonl(std::string_view line) {
  HOM_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("span line must be a JSON object");
  }
  auto hex_field = [&doc](const char* key, bool required,
                          std::string* out) -> Status {
    const JsonValue* v = doc.Find(key);
    if (v == nullptr || !v->is_string()) {
      if (required) {
        return Status::InvalidArgument(std::string("span line missing '") +
                                       key + "'");
      }
      out->clear();
      return Status::OK();
    }
    *out = v->as_string();
    return Status::OK();
  };
  std::string trace_hex, span_hex, parent_hex;
  HOM_RETURN_NOT_OK(hex_field("trace_id", true, &trace_hex));
  HOM_RETURN_NOT_OK(hex_field("span_id", true, &span_hex));
  HOM_RETURN_NOT_OK(hex_field("parent_span_id", false, &parent_hex));
  SpanRecord span;
  uint64_t parent = 0;
  if (trace_hex.size() != 32 || !ParseHex64(trace_hex.substr(0, 16),
                                            &span.trace_hi) ||
      !ParseHex64(trace_hex.substr(16), &span.trace_lo)) {
    return Status::InvalidArgument("bad span trace_id '" + trace_hex + "'");
  }
  if (span_hex.size() != 16 || !ParseHex64(span_hex, &span.span_id)) {
    return Status::InvalidArgument("bad span span_id '" + span_hex + "'");
  }
  if (!parent_hex.empty()) {
    if (parent_hex.size() != 16 || !ParseHex64(parent_hex, &parent)) {
      return Status::InvalidArgument("bad span parent_span_id '" +
                                     parent_hex + "'");
    }
  }
  span.parent_span_id = parent;
  if (const JsonValue* v = doc.Find("name"); v != nullptr && v->is_string()) {
    span.name = v->as_string();
  }
  if (const JsonValue* v = doc.Find("kind"); v != nullptr && v->is_string()) {
    HOM_ASSIGN_OR_RETURN(span.kind, SpanKindFromName(v->as_string()));
  }
  if (const JsonValue* v = doc.Find("status");
      v != nullptr && v->is_string()) {
    span.status = v->as_string();
  }
  auto number = [&doc](const char* key, double fallback) {
    const JsonValue* v = doc.Find(key);
    return v != nullptr && v->is_number() ? v->as_double() : fallback;
  };
  span.start_unix_us = static_cast<int64_t>(number("start_unix_us", 0.0));
  span.dur_us = number("dur_us", 0.0);
  span.lane = static_cast<int>(number("lane", 0.0));
  return span;
}

TraceBuffer& TraceBuffer::Instance() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::set_process_name(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_name_ = std::move(name);
}

std::string TraceBuffer::process_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return process_name_;
}

Status TraceBuffer::AttachJsonlSink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_.open(path, std::ios::trunc);
  if (!sink_) return Status::Internal("cannot open span sink " + path);
  JsonValue header = JsonValue::Object();
  header.Set("span_schema", JsonValue(kSpanSchemaVersion));
  header.Set("process", JsonValue(process_name_));
  sink_ << header.Dump() << "\n";
  sink_.flush();
  return Status::OK();
}

void TraceBuffer::CloseSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_.is_open()) sink_.close();
}

void TraceBuffer::Record(const SpanRecord& span) {
  if (!enabled()) return;
  HOM_COUNTER_INC("hom.trace.spans");
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (sink_.is_open()) {
    sink_ << SpanToJsonl(span) << "\n";
    sink_.flush();  // a SIGKILLed process must leave a complete file
  }
  if (ring_.size() < kDefaultCapacity) {
    ring_.push_back(span);
  } else {
    HOM_COUNTER_INC("hom.trace.dropped");
    ring_[next_slot_ % kDefaultCapacity] = span;
  }
  ++next_slot_;
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  uint64_t first = next_slot_ - ring_.size();
  for (uint64_t slot = first; slot < next_slot_; ++slot) {
    out.push_back(ring_[slot % kDefaultCapacity]);
  }
  return out;
}

uint64_t TraceBuffer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

JsonValue TraceBuffer::RecentJson(size_t limit) const {
  std::vector<SpanRecord> spans = Snapshot();
  size_t begin = spans.size() > limit ? spans.size() - limit : 0;
  JsonValue array = JsonValue::Array();
  for (size_t i = begin; i < spans.size(); ++i) {
    array.Append(SpanToJson(spans[i]));
  }
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue out = JsonValue::Object();
  out.Set("process", JsonValue(process_name_));
  out.Set("recorded", JsonValue(recorded_));
  out.Set("dropped", JsonValue(recorded_ - ring_.size()));
  out.Set("spans", std::move(array));
  return out;
}

void TraceBuffer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  recorded_ = 0;
}

DistSpan::DistSpan(const char* name, SpanKind kind) {
  Start(name, kind, CurrentTraceContext());
}

DistSpan::DistSpan(const char* name, SpanKind kind,
                   const TraceContext& parent) {
  Start(name, kind, parent.valid() ? &parent : nullptr);
}

void DistSpan::Start(const char* name, SpanKind kind,
                     const TraceContext* parent) {
  if (!TraceBuffer::Instance().enabled()) return;
  active_ = true;
  if (parent != nullptr && parent->valid()) {
    ctx_.trace_hi = parent->trace_hi;
    ctx_.trace_lo = parent->trace_lo;
    ctx_.span_id = NewSpanId();
    rec_.parent_span_id = parent->span_id;
  } else {
    ctx_ = NewTrace();
    rec_.parent_span_id = 0;
  }
  rec_.trace_hi = ctx_.trace_hi;
  rec_.trace_lo = ctx_.trace_lo;
  rec_.span_id = ctx_.span_id;
  rec_.name = name;
  rec_.kind = kind;
  rec_.lane = ThreadLane();
  rec_.start_unix_us = UnixMicrosNow();
  started_ = std::chrono::steady_clock::now();
  scope_.emplace(ctx_);
}

DistSpan::~DistSpan() {
  if (!active_) return;
  rec_.dur_us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - started_)
                    .count();
  scope_.reset();  // uninstall before recording: Record is not reentrant
  TraceBuffer::Instance().Record(rec_);
}

void DistSpan::set_status(std::string status) {
  rec_.status = std::move(status);
}

int64_t UnixMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace hom::obs
