#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hom::obs {

namespace {

// Parser depth cap: the telemetry schema is ~4 levels deep; anything past
// this is a malformed or adversarial document, not ours.
constexpr int kMaxDepth = 64;

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    *out += "null";
    return;
  }
  char buf[32];
  // Integer-valued numbers print without an exponent ("400000", never
  // "4e+05") so counters stay integers for schema validators; everything
  // else gets the shortest round-trip representation.
  if (d == std::nearbyint(d) && std::fabs(d) < 9007199254740992.0) {
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf),
                                   static_cast<long long>(d));
    if (ec == std::errc()) {
      out->append(buf, ptr);
      return;
    }
  }
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec == std::errc()) {
    out->append(buf, ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    HOM_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        HOM_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Fail("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Fail("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Fail("malformed number '" + token + "'");
    }
    return JsonValue(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("invalid \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by our emitter, so reject them instead of guessing).
            if (code >= 0xD800 && code <= 0xDFFF) {
              return Fail("surrogate \\u escapes unsupported");
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("invalid escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      HOM_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      arr.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      HOM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      HOM_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Append(JsonValue v) {
  if (is_null()) type_ = Type::kArray;
  array_.push_back(std::move(v));
}

void JsonValue::Set(std::string key, JsonValue v) {
  if (is_null()) type_ = Type::kObject;
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        AppendEscaped(out, object_[i].first);
        *out += indent > 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace hom::obs
