#ifndef HOM_OBS_TRACE_H_
#define HOM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace hom::obs {

/// \brief One node of a wall-clock phase tree: a named phase, the seconds
/// spent inside it (including children), how many times it ran, and its
/// sub-phases in first-entered order. Plain value type — copy it into
/// reports freely.
struct PhaseNode {
  std::string name;
  double seconds = 0.0;
  /// Thread CPU time spent inside the phase, summed over every thread that
  /// executed it. For a serial phase this tracks `seconds`; for a phase
  /// whose work fanned out to a thread pool it exceeds `seconds` by the
  /// achieved parallelism (the wall/CPU ratio is the speedup actually
  /// realized). 0 when the platform offers no per-thread CPU clock.
  double cpu_seconds = 0.0;
  /// Sampled CPU time attributed to this phase *itself*, excluding
  /// children: filled by obs::AttributeSamplesToPhases from a sampling
  /// profile (HOM_BENCH_PROFILE, --profile-out). Unlike cpu_seconds —
  /// which a span measures inclusively — this is statistical self time
  /// (samples whose innermost open span was this phase × sampling
  /// period). 0 when no profile was attributed.
  double self_cpu_seconds = 0.0;
  uint64_t count = 0;
  std::vector<PhaseNode> children;

  /// Child lookup by name; nullptr when absent.
  const PhaseNode* FindChild(std::string_view child_name) const;

  /// Child lookup by name, appending an empty child when absent. The
  /// returned pointer is invalidated by the next FindOrAddChild call on
  /// the same node.
  PhaseNode* FindOrAddChild(std::string_view child_name);

  /// Accumulates another tree into this one: matching names (recursively)
  /// sum their seconds/counts; unmatched children are appended. Used to
  /// aggregate phase timings across repeated builds in a bench run.
  void MergeFrom(const PhaseNode& other);

  /// Human-readable indented tree, one phase per line with seconds, share
  /// of the root, and entry count.
  std::string ToTreeString() const;

  /// {"name": ..., "seconds": ..., "cpu_seconds": ...,
  /// "self_cpu_seconds": ..., "count": ..., "children": [...]}.
  JsonValue ToJson() const;
  static Result<PhaseNode> FromJson(const JsonValue& json);
};

/// \brief Records nested wall-clock phases into a PhaseNode tree.
///
/// A tracer is single-threaded and owned by the operation being traced
/// (the model builder creates one per Build call). Deep library code does
/// not take a tracer parameter; instead the owner activates the tracer on
/// the current thread (ScopedTracer) and the library opens ScopedSpans,
/// which attach to whatever tracer is active — or do nothing when none
/// is, so instrumented code runs un-traced at zero configuration.
class PhaseTracer {
 public:
  explicit PhaseTracer(std::string root_name);

  /// The tree built so far. The root's `seconds` is the total time between
  /// tracer construction and the last span end (kept live as spans close).
  const PhaseNode& root() const { return root_; }
  PhaseNode& mutable_root() { return root_; }

  /// Opens a nested phase; pair with EndSpan. Prefer ScopedSpan.
  void BeginSpan(std::string_view name);
  void EndSpan(double seconds, double cpu_seconds = 0.0);

  /// Merges `subtree` as a child of the currently open span (the root when
  /// no span is open). This is how a parallel region hands the per-worker
  /// span trees recorded on pool threads back to the owner's tracer: call
  /// it from the owning thread after the workers have been joined.
  void MergeAtOpenSpan(const PhaseNode& subtree);

 private:
  PhaseNode root_;
  /// Index path from the root to the open span (child indices, not
  /// pointers: sibling insertion reallocates `children`).
  std::vector<size_t> open_path_;
  std::chrono::steady_clock::time_point started_;
};

/// \brief RAII: makes `tracer` the calling thread's active tracer for the
/// enclosing scope (restores the previous one on destruction).
class ScopedTracer {
 public:
  explicit ScopedTracer(PhaseTracer* tracer);
  ~ScopedTracer();

  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

  /// The calling thread's active tracer, or nullptr.
  static PhaseTracer* Active();

 private:
  PhaseTracer* previous_;
};

/// \brief RAII span on the thread's active tracer. `name` must outlive the
/// span (string literals in practice). No-op when no tracer is active.
///
/// Besides the tracer bookkeeping, an active span pushes its name onto a
/// fixed-depth thread-local phase stack readable from a signal handler
/// (CapturePhaseStack below) — that is how the sampling profiler
/// attributes CPU samples to the phase tree.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  PhaseTracer* tracer_;
  bool pushed_ = false;
  std::chrono::steady_clock::time_point started_;
  double started_cpu_ = 0.0;
};

/// Capacity of the per-thread phase-name stack the profiler samples.
/// Spans nested deeper than this still time correctly; they just stop
/// refining the sample attribution path.
inline constexpr size_t kPhaseStackCapacity = 16;

/// Copies the calling thread's open ScopedSpan names (outermost first)
/// into `out` (at most `max` entries) and returns how many were written.
/// Async-signal-safe: reads only the thread-local fixed-size stack, no
/// locks or allocation — the pointers are the `const char*` literals the
/// spans were opened with. Only spans opened while a tracer was active
/// are recorded.
size_t CapturePhaseStack(const char** out, size_t max);

/// CPU time consumed by the calling thread, in seconds; 0 when the
/// platform has no per-thread CPU clock. Used by spans and the thread-pool
/// workers to report wall vs. CPU per phase.
double ThreadCpuSeconds();

/// Prefix that marks a phase subtree as one pool worker's span tree
/// ("worker:<slot>"). The Chrome trace exporter lays such subtrees out on
/// their own tracks instead of serializing them after their siblings.
inline constexpr const char* kWorkerPhasePrefix = "worker:";

}  // namespace hom::obs

#endif  // HOM_OBS_TRACE_H_
