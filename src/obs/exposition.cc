#include "obs/exposition.h"

#include <charconv>
#include <cmath>

#include "obs/metric_help.h"

namespace hom::obs {

namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// `{k1="v1",k2="v2"}` or "" for an empty set; `extra` (the histogram `le`
/// label) is appended last.
std::string LabelBlock(const LabelSet& labels, const Label* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out += ',';
    first = false;
    out += label.first;
    out += "=\"";
    out += EscapeLabelValue(label.second);
    out += '"';
  }
  if (extra != nullptr) {
    if (!first) out += ',';
    out += extra->first;
    out += "=\"";
    out += EscapeLabelValue(extra->second);
    out += '"';
  }
  out += '}';
  return out;
}

void AppendSample(std::string* out, const std::string& name,
                  const LabelSet& labels, double value,
                  const Label* extra = nullptr) {
  *out += name;
  *out += LabelBlock(labels, extra);
  *out += ' ';
  *out += FormatPrometheusValue(value);
  *out += '\n';
}

void AppendHistogram(std::string* out, const std::string& prom_name,
                     const LabelSet& labels,
                     const MetricsSnapshot::HistogramData& h) {
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.counts.size(); ++i) {
    cumulative += h.counts[i];
    Label le{"le", i < h.bounds.size() ? FormatPrometheusValue(h.bounds[i])
                                       : std::string("+Inf")};
    AppendSample(out, prom_name + "_bucket", labels,
                 static_cast<double>(cumulative), &le);
  }
  AppendSample(out, prom_name + "_sum", labels, h.sum);
  AppendSample(out, prom_name + "_count", labels,
               static_cast<double>(h.count));
}

/// `# HELP` line for registry metric `name` when help text is registered;
/// `suffix` is "_total" for counters so the HELP name matches the family
/// name the TYPE line and samples use.
void AppendHelp(std::string* out, const std::string& name,
                const char* suffix) {
  std::string help = FindMetricHelp(name);
  if (help.empty()) return;
  *out += "# HELP " + PrometheusMetricName(name) + suffix + " " +
          EscapeHelpText(help) + "\n";
}

/// The `_total` suffix the exposition format wants on counter families,
/// or "" when the registry name already carries it — appending would
/// otherwise render `..._total_total`.
const char* CounterSuffix(std::string_view name) {
  constexpr std::string_view kTotal = "_total";
  bool has = name.size() >= kTotal.size() &&
             name.substr(name.size() - kTotal.size()) == kTotal;
  return has ? "" : "_total";
}

}  // namespace

std::string PrometheusMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) {
    out += IsNameChar(c) ? c : '_';
  }
  return out;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FormatPrometheusValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  return std::string(buf, ptr);
}

std::string EncodePrometheusText(const MetricsSnapshot& snapshot) {
  static const LabelSet kNoLabels;
  std::string out;

  // One family = one registry name; counters, gauges, and histograms live
  // in disjoint name sections of the snapshot, and within each section the
  // unlabeled map and the labeled map (ordered by SeriesKey: name first)
  // are walked as one merged, name-sorted sequence.

  {
    auto plain = snapshot.counters.begin();
    auto labeled = snapshot.labeled_counters.begin();
    std::string current;
    auto header = [&](const std::string& name) {
      if (name == current) return;
      current = name;
      AppendHelp(&out, name, CounterSuffix(name));
      out += "# TYPE " + PrometheusMetricName(name) + CounterSuffix(name) +
             " counter\n";
    };
    while (plain != snapshot.counters.end() ||
           labeled != snapshot.labeled_counters.end()) {
      // Unlabeled first within a family (operator< would order them later
      // only if a labeled series of an earlier name existed).
      if (labeled == snapshot.labeled_counters.end() ||
          (plain != snapshot.counters.end() &&
           plain->first <= labeled->first.name)) {
        header(plain->first);
        AppendSample(&out, PrometheusMetricName(plain->first) +
                               CounterSuffix(plain->first),
                     kNoLabels, static_cast<double>(plain->second));
        ++plain;
      } else {
        header(labeled->first.name);
        AppendSample(&out, PrometheusMetricName(labeled->first.name) +
                               CounterSuffix(labeled->first.name),
                     labeled->first.labels,
                     static_cast<double>(labeled->second));
        ++labeled;
      }
    }
  }

  {
    auto plain = snapshot.gauges.begin();
    auto labeled = snapshot.labeled_gauges.begin();
    std::string current;
    auto header = [&](const std::string& name) {
      if (name == current) return;
      current = name;
      AppendHelp(&out, name, "");
      out += "# TYPE " + PrometheusMetricName(name) + " gauge\n";
    };
    while (plain != snapshot.gauges.end() ||
           labeled != snapshot.labeled_gauges.end()) {
      if (labeled == snapshot.labeled_gauges.end() ||
          (plain != snapshot.gauges.end() &&
           plain->first <= labeled->first.name)) {
        header(plain->first);
        AppendSample(&out, PrometheusMetricName(plain->first), kNoLabels,
                     plain->second);
        ++plain;
      } else {
        header(labeled->first.name);
        AppendSample(&out, PrometheusMetricName(labeled->first.name),
                     labeled->first.labels, labeled->second);
        ++labeled;
      }
    }
  }

  {
    auto plain = snapshot.histograms.begin();
    auto labeled = snapshot.labeled_histograms.begin();
    std::string current;
    auto header = [&](const std::string& name) {
      if (name == current) return;
      current = name;
      AppendHelp(&out, name, "");
      out += "# TYPE " + PrometheusMetricName(name) + " histogram\n";
    };
    while (plain != snapshot.histograms.end() ||
           labeled != snapshot.labeled_histograms.end()) {
      if (labeled == snapshot.labeled_histograms.end() ||
          (plain != snapshot.histograms.end() &&
           plain->first <= labeled->first.name)) {
        header(plain->first);
        AppendHistogram(&out, PrometheusMetricName(plain->first), kNoLabels,
                        plain->second);
        ++plain;
      } else {
        header(labeled->first.name);
        AppendHistogram(&out, PrometheusMetricName(labeled->first.name),
                        labeled->first.labels, labeled->second);
        ++labeled;
      }
    }
  }

  return out;
}

}  // namespace hom::obs
