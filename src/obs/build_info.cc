#include "obs/build_info.h"

#include <mutex>

#include "obs/metrics.h"

namespace hom::obs {

namespace {

std::mutex g_build_info_mu;
std::string g_model_schema = "none";  // guarded by g_build_info_mu
Gauge* g_published = nullptr;         // the currently-set label child

}  // namespace

const char* HomVersion() { return "0.6.0"; }

const char* HomBuildType() {
#if defined(HOM_BUILD_TYPE_NAME)
  return HOM_BUILD_TYPE_NAME;
#else
  return "unknown";
#endif
}

void PublishBuildInfo(const std::string& model_schema_fingerprint) {
  std::lock_guard<std::mutex> lock(g_build_info_mu);
  Gauge* gauge =
      MetricsRegistry::Global()
          .GetGaugeFamily("hom_build_info")
          ->WithLabels({{"version", HomVersion()},
                        {"build", HomBuildType()},
                        {"model_schema", model_schema_fingerprint}});
  if (g_published != nullptr && g_published != gauge) {
    g_published->Set(0.0);  // retire the previous identity
  }
  gauge->Set(1.0);
  g_published = gauge;
  g_model_schema = model_schema_fingerprint;
}

JsonValue BuildInfoJson() {
  JsonValue out = JsonValue::Object();
  out.Set("version", JsonValue(std::string(HomVersion())));
  out.Set("build", JsonValue(std::string(HomBuildType())));
  std::lock_guard<std::mutex> lock(g_build_info_mu);
  out.Set("model_schema", JsonValue(g_model_schema));
  return out;
}

}  // namespace hom::obs
