#ifndef HOM_OBS_PROF_H_
#define HOM_OBS_PROF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace hom::obs {

/// How to sample. The defaults mirror production continuous profilers:
/// 99 Hz (prime, so periodic work does not alias into the sampler) on the
/// process CPU clock — an idle server costs nothing, a busy one pays one
/// signal + backtrace per ~10 ms of burned CPU.
struct ProfileOptions {
  /// Sampling frequency against CLOCK_PROCESS_CPUTIME_ID, in samples per
  /// CPU-second. Clamped to [1, 1000].
  double hz = 99.0;
  /// Ring capacity. When a window overflows it, the oldest samples are
  /// overwritten and counted in ProfileData::dropped.
  size_t max_samples = 1 << 16;
};

/// One captured sample, symbolized: `stack` indexes ProfileData::frames,
/// outermost frame first. `phases` is the span path (outermost first) that
/// was open on the sampled thread, empty when no tracer was active.
struct ProfileSample {
  double t_us = 0.0;  ///< microseconds since the profiling window opened
  std::vector<uint32_t> stack;
  std::vector<std::string> phases;
};

/// The symbolized outcome of one or more profiling windows.
struct ProfileData {
  double hz = 0.0;
  double duration_seconds = 0.0;  ///< wall time the window(s) spanned
  uint64_t dropped = 0;           ///< samples lost to ring overwrite
  uint64_t truncated = 0;         ///< samples whose stack hit the frame cap
  std::vector<std::string> frames;  ///< symbol table (demangled or 0x hex)
  std::vector<ProfileSample> samples;

  bool empty() const { return samples.empty(); }
  /// CPU seconds one sample stands for (1/hz), the unit of attribution.
  double sample_period_seconds() const { return hz > 0.0 ? 1.0 / hz : 0.0; }

  /// Aggregates samples into flamegraph collapsed form:
  /// "outer;inner;leaf" -> sample count.
  std::map<std::string, uint64_t> FoldedCounts() const;
  /// FoldedCounts() as text, one "stack count" line per unique stack,
  /// sorted by stack — feed straight into flamegraph.pl / speedscope.
  std::string ToFolded() const;
  /// {"hz", "duration_seconds", "samples", "dropped", "truncated",
  ///  "distinct_stacks"} — the "profile" section of telemetry files.
  JsonValue SummaryJson() const;
  /// Accumulates another window (frame tables are re-interned).
  void MergeFrom(const ProfileData& other);
};

/// Adds each sample's period to `self_cpu_seconds` of the tree node named
/// by its open-span path (children created on demand). Samples with no
/// open span land on an "(unattributed)" child of the root — build-phase
/// samples refine the PR 1 phase tree, everything else stays honest about
/// not knowing. `tree` is the path root (e.g. the accumulated "build"
/// node).
void AttributeSamplesToPhases(const ProfileData& data, PhaseNode* tree);

/// \brief Process-wide POSIX sampling profiler: timer_create() +
/// SIGPROF, signal-safe backtrace() capture into a preallocated lock-free
/// sample ring, symbolization deferred to Collect().
///
/// Signal-safety: the handler only reads the thread-local phase stack
/// (CapturePhaseStack), calls backtrace()/clock_gettime() (both
/// async-signal-safe once backtrace's unwinder is pre-warmed, which
/// Start() does), and claims a ring slot with one atomic fetch_add — no
/// locks, no allocation, no formatting. Everything expensive (dladdr,
/// demangling, aggregation) happens on the collecting thread after the
/// timer is disarmed.
///
/// There is one profiler per process (SIGPROF has one handler); a second
/// Start() while running fails with FailedPrecondition — /profilez
/// surfaces that as HTTP 409. On platforms without POSIX timers Start()
/// returns Unimplemented and the rest of the system runs unprofiled.
class SamplingProfiler {
 public:
  static SamplingProfiler& Global();

  /// Arms the timer. Journals kProfileStart when a journal is active.
  Status Start(const ProfileOptions& options = {});
  /// Disarms the timer; buffered samples survive until Collect().
  /// Idempotent.
  void Stop();
  /// Stop() + drain + symbolize + reset. Journals kProfileStop.
  ProfileData Collect();
  bool running() const;

 private:
  SamplingProfiler() = default;
};

/// The `GET /profilez?seconds=N&hz=F` endpoint: runs one sampling window
/// (seconds clamped to [0.05, 30], hz to [1, 1000]) and answers the
/// folded profile as text/plain. 409 when a window is already running
/// (e.g. a whole-run --profile-out profile), 501 where unsupported.
/// Registered by homctl's introspection server; blocking, so it occupies
/// the single HTTP worker for the window — concurrent scrapes queue or
/// shed per the server's normal overload policy.
HttpResponse HandleProfilezRequest(const HttpRequest& request);

}  // namespace hom::obs

#endif  // HOM_OBS_PROF_H_
