#include "obs/event_journal.h"

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace hom::obs {

namespace {

thread_local EventJournal* g_active_journal = nullptr;

constexpr std::string_view kTypeNames[kNumEventTypes] = {
    "concept_switch", "drift_suspected",  "drift_confirmed", "model_reuse",
    "model_relearn",  "hmm_prediction",   "window_error",    "input_rejected",
    "input_imputed",  "checkpoint_save",  "checkpoint_load", "fault_injected",
    "server_start",   "server_stop",      "slow_request",    "profile_start",
    "profile_stop",   "alert_firing",     "alert_resolved",
    "replica_promoted", "model_swapped",
};

/// Cached per-type handles into the global `hom.journal.dropped` counter
/// family: evictions happen on the (hot) Emit path once the ring wraps, so
/// the WithLabels lookup is paid once per type, not per drop.
Counter* DroppedCounter(EventType type) {
  static std::array<std::atomic<Counter*>, kNumEventTypes> handles{};
  size_t i = static_cast<size_t>(type);
  Counter* handle = handles[i].load(std::memory_order_acquire);
  if (handle == nullptr) {
    // Benign race between journals: WithLabels returns the same stable
    // pointer for the same label set, so last-writer-wins is fine.
    handle = MetricsRegistry::Global()
                 .GetCounterFamily("hom.journal.dropped")
                 ->WithLabels({{"type", std::string(kTypeNames[i])}});
    handles[i].store(handle, std::memory_order_release);
  }
  return handle;
}

}  // namespace

std::string_view EventTypeName(EventType type) {
  size_t i = static_cast<size_t>(type);
  HOM_DCHECK(i < kNumEventTypes);
  return kTypeNames[i];
}

Result<EventType> EventTypeFromName(std::string_view name) {
  for (size_t i = 0; i < kNumEventTypes; ++i) {
    if (kTypeNames[i] == name) return static_cast<EventType>(i);
  }
  return Status::InvalidArgument("unknown event type '" + std::string(name) +
                                 "'");
}

EventJournal::EventJournal(size_t capacity)
    : capacity_(capacity),
      epoch_(std::chrono::steady_clock::now()),
      epoch_unix_us_(UnixMicrosNow()) {
  HOM_CHECK_GE(capacity, 1u) << "journal needs at least one slot";
  ring_.reserve(capacity_);
}

EventJournal::~EventJournal() { CloseSink(); }

void EventJournal::Emit(EventType type, std::string_view source,
                        int64_t record, int64_t from, int64_t to,
                        double value) {
  Event event;
  event.type = type;
  event.source = std::string(source);
  event.record = record;
  event.from = from;
  event.to = to;
  event.value = value;
  event.t_us = std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - epoch_)
                   .count();
  if (const TraceContext* ctx = CurrentTraceContext()) {
    event.trace_hi = ctx->trace_hi;
    event.trace_lo = ctx->trace_lo;
    event.span_id = ctx->span_id;
  }

  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  ++per_type_[static_cast<size_t>(type)];
  if (sink_.is_open()) {
    sink_ << ToJsonl(event) << "\n";
    sink_.flush();  // tail --follow must see the line immediately
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    Event& slot = ring_[event.seq % capacity_];
    ++dropped_per_type_[static_cast<size_t>(slot.type)];
    DroppedCounter(slot.type)->Add();
    slot = std::move(event);
  }
}

std::vector<Event> EventJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  // Oldest retained seq is next_seq_ - ring_.size(); slots are seq-keyed.
  uint64_t first = next_seq_ - ring_.size();
  for (uint64_t seq = first; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

uint64_t EventJournal::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - ring_.size();
}

std::array<uint64_t, kNumEventTypes> EventJournal::per_type_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_type_;
}

std::array<uint64_t, kNumEventTypes> EventJournal::dropped_per_type() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_per_type_;
}

Status EventJournal::AttachJsonlSink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_.open(path, std::ios::trunc);
  if (!sink_) {
    return Status::Internal("cannot open journal sink " + path);
  }
  sink_ << HeaderLine() << "\n";
  sink_.flush();
  return Status::OK();
}

void EventJournal::CloseSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_.is_open()) sink_.close();
}

Status EventJournal::WriteJsonl(const std::string& path) const {
  std::vector<Event> events = Snapshot();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path);
  out << HeaderLine() << "\n";
  for (const Event& e : events) out << ToJsonl(e) << "\n";
  if (!out) return Status::Internal("failed writing " + path);
  return Status::OK();
}

JsonValue EventJournal::SummaryJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue by_type = JsonValue::Object();
  for (size_t i = 0; i < kNumEventTypes; ++i) {
    if (per_type_[i] > 0) {
      by_type.Set(std::string(kTypeNames[i]), JsonValue(per_type_[i]));
    }
  }
  JsonValue out = JsonValue::Object();
  out.Set("emitted", JsonValue(next_seq_));
  out.Set("dropped", JsonValue(next_seq_ - ring_.size()));
  out.Set("capacity", JsonValue(static_cast<uint64_t>(capacity_)));
  out.Set("by_type", std::move(by_type));
  JsonValue dropped_by_type = JsonValue::Object();
  bool any_dropped = false;
  for (size_t i = 0; i < kNumEventTypes; ++i) {
    if (dropped_per_type_[i] > 0) {
      dropped_by_type.Set(std::string(kTypeNames[i]),
                          JsonValue(dropped_per_type_[i]));
      any_dropped = true;
    }
  }
  if (any_dropped) out.Set("dropped_by_type", std::move(dropped_by_type));
  return out;
}

EventJournal* EventJournal::Active() { return g_active_journal; }

std::string EventJournal::HeaderLine() const {
  JsonValue header = JsonValue::Object();
  header.Set("journal_schema", JsonValue(kJournalSchemaVersion));
  header.Set("epoch_unix_us", JsonValue(epoch_unix_us_));
  return header.Dump();
}

bool EventJournal::IsHeaderLine(std::string_view line) {
  Result<JsonValue> doc = JsonValue::Parse(line);
  return doc.ok() && doc->is_object() &&
         doc->Find("journal_schema") != nullptr;
}

std::string EventJournal::ToJsonl(const Event& event) {
  JsonValue line = JsonValue::Object();
  line.Set("seq", JsonValue(event.seq));
  line.Set("t_us", JsonValue(event.t_us));
  line.Set("type", JsonValue(std::string(EventTypeName(event.type))));
  line.Set("source", JsonValue(event.source));
  line.Set("record", JsonValue(static_cast<int64_t>(event.record)));
  line.Set("from", JsonValue(static_cast<int64_t>(event.from)));
  line.Set("to", JsonValue(static_cast<int64_t>(event.to)));
  line.Set("value", JsonValue(event.value));
  if ((event.trace_hi | event.trace_lo) != 0 && event.span_id != 0) {
    line.Set("trace_id",
             JsonValue(TraceIdHex(
                 {event.trace_hi, event.trace_lo, event.span_id})));
    line.Set("span_id", JsonValue(SpanIdHex(event.span_id)));
  }
  return line.Dump();
}

Result<Event> EventJournal::FromJsonl(std::string_view line) {
  HOM_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("journal line must be a JSON object");
  }
  const JsonValue* type = doc.Find("type");
  if (type == nullptr || !type->is_string()) {
    return Status::InvalidArgument("journal line is missing 'type'");
  }
  Event event;
  HOM_ASSIGN_OR_RETURN(event.type, EventTypeFromName(type->as_string()));
  if (const JsonValue* v = doc.Find("source"); v != nullptr && v->is_string()) {
    event.source = v->as_string();
  }
  auto number = [&doc](const char* key, double fallback) {
    const JsonValue* v = doc.Find(key);
    return v != nullptr && v->is_number() ? v->as_double() : fallback;
  };
  event.seq = static_cast<uint64_t>(number("seq", 0.0));
  event.t_us = number("t_us", 0.0);
  event.record = static_cast<int64_t>(number("record", -1.0));
  event.from = static_cast<int64_t>(number("from", -1.0));
  event.to = static_cast<int64_t>(number("to", -1.0));
  event.value = number("value", 0.0);
  if (const JsonValue* v = doc.Find("trace_id");
      v != nullptr && v->is_string()) {
    if (!ParseTraceIdHex(v->as_string(), &event.trace_hi, &event.trace_lo)) {
      return Status::InvalidArgument("bad journal trace_id '" +
                                     v->as_string() + "'");
    }
  }
  if (const JsonValue* v = doc.Find("span_id");
      v != nullptr && v->is_string()) {
    if (!ParseSpanIdHex(v->as_string(), &event.span_id)) {
      return Status::InvalidArgument("bad journal span_id '" +
                                     v->as_string() + "'");
    }
  }
  return event;
}

ScopedJournal::ScopedJournal(EventJournal* journal)
    : previous_(g_active_journal) {
  g_active_journal = journal;
}

ScopedJournal::~ScopedJournal() { g_active_journal = previous_; }

}  // namespace hom::obs
