#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace hom::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// "0.5" -> "p50", "0.99" -> "p99", "0.999" -> "p99.9".
std::string QuantileSuffix(double q) {
  double percent = q * 100.0;
  char buf[32];
  if (percent == std::floor(percent)) {
    std::snprintf(buf, sizeof(buf), "p%d", static_cast<int>(percent));
  } else {
    std::snprintf(buf, sizeof(buf), "p%g", percent);
  }
  return buf;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options)
    : options_(std::move(options)) {
  if (options_.retention_ticks == 0) options_.retention_ticks = 1;
  if (options_.max_series == 0) options_.max_series = 1;
  records_.assign(options_.retention_ticks, -1);
}

void TimeSeriesStore::Store(std::string_view name, SeriesKind kind,
                            double value, size_t slot) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    if (series_.size() >= options_.max_series) {
      ++dropped_series_;
      return;
    }
    Series s;
    s.kind = kind;
    s.first_tick = ticks_;
    s.ring.assign(options_.retention_ticks, kNaN);
    it = series_.emplace(std::string(name), std::move(s)).first;
  }
  it->second.ring[slot] = value;
}

size_t TimeSeriesStore::BeginTickLocked(int64_t record) {
  const size_t slot = ticks_ % options_.retention_ticks;
  records_[slot] = record;
  // A series missing from this sample keeps NaN at its slot: absence is
  // data (the absence alert rule keys off it).
  for (auto& [name, series] : series_) series.ring[slot] = kNaN;
  return slot;
}

void TimeSeriesStore::Tick(const MetricsSnapshot& snapshot, int64_t record) {
  size_t dropped_before;
  size_t live_series;
  uint64_t total_ticks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped_before = dropped_series_;
    // A snapshot tick can create series the registry bindings have never
    // seen; force the next TickFromRegistry to rebind.
    bindings_valid_ = false;
    const size_t slot = BeginTickLocked(record);

    for (const auto& [name, value] : snapshot.counters) {
      Store(name, SeriesKind::kCounter, static_cast<double>(value), slot);
    }
    for (const auto& [key, value] : snapshot.labeled_counters) {
      Store(key.ToString(), SeriesKind::kCounter, static_cast<double>(value),
            slot);
    }
    for (const auto& [name, value] : snapshot.gauges) {
      Store(name, SeriesKind::kGauge, value, slot);
    }
    for (const auto& [key, value] : snapshot.labeled_gauges) {
      Store(key.ToString(), SeriesKind::kGauge, value, slot);
    }
    auto store_histogram = [&](const std::string& text_key,
                               const MetricsSnapshot::HistogramData& h) {
      for (double q : options_.quantiles) {
        Store(text_key + ":" + QuantileSuffix(q), SeriesKind::kGauge,
              h.Quantile(q), slot);
      }
      Store(text_key + ":count", SeriesKind::kCounter,
            static_cast<double>(h.count), slot);
      Store(text_key + ":sum", SeriesKind::kCounter, h.sum, slot);
    };
    for (const auto& [name, h] : snapshot.histograms) {
      store_histogram(name, h);
    }
    for (const auto& [key, h] : snapshot.labeled_histograms) {
      store_histogram(key.ToString(), h);
    }
    ++ticks_;
    total_ticks = ticks_;
    live_series = series_.size();
    dropped_before = dropped_series_ - dropped_before;
  }
  HOM_GAUGE_SET("hom.timeseries.series", live_series);
  HOM_GAUGE_SET("hom.timeseries.ticks", total_ticks);
  if (dropped_before > 0) {
    HOM_COUNTER_ADD("hom.timeseries.dropped_series", dropped_before);
  }
}

void TimeSeriesStore::RebindLocked(const MetricsRegistry& registry) {
  /// Resolves every registry series to its ring once. Runs under both the
  /// store and registry locks (store first — nothing in the registry ever
  /// calls back into a store, so the order cannot invert).
  struct BindVisitor : MetricsVisitor {
    TimeSeriesStore* store = nullptr;
    std::string scratch;  ///< derived-series names; capacity is reused

    /// Store() without the value write: finds or creates the ring,
    /// nullptr when the cap rejects it.
    Series* Resolve(std::string_view name, SeriesKind kind) {
      auto it = store->series_.find(name);
      if (it == store->series_.end()) {
        if (store->series_.size() >= store->options_.max_series) {
          ++store->bound_dropped_;
          return nullptr;
        }
        Series s;
        s.kind = kind;
        s.first_tick = store->ticks_;
        s.ring.assign(store->options_.retention_ticks, kNaN);
        it = store->series_.emplace(std::string(name), std::move(s)).first;
      }
      it->second.bound = true;
      return &it->second;
    }

    void OnCounter(std::string_view name, const Counter* counter) override {
      RegistryBinding b;
      b.counter = counter;
      b.series = Resolve(name, SeriesKind::kCounter);
      store->bindings_.push_back(std::move(b));
    }
    void OnGauge(std::string_view name, const Gauge* gauge) override {
      RegistryBinding b;
      b.gauge = gauge;
      b.series = Resolve(name, SeriesKind::kGauge);
      store->bindings_.push_back(std::move(b));
    }
    void OnHistogram(std::string_view name,
                     const Histogram* histogram) override {
      RegistryBinding b;
      b.histogram = histogram;
      auto derived = [this, name](std::string_view suffix) -> std::string_view {
        scratch.assign(name);
        scratch += ':';
        scratch += suffix;
        return scratch;
      };
      for (double q : store->options_.quantiles) {
        b.derived.push_back(
            Resolve(derived(QuantileSuffix(q)), SeriesKind::kGauge));
      }
      b.derived.push_back(Resolve(derived("count"), SeriesKind::kCounter));
      b.derived.push_back(Resolve(derived("sum"), SeriesKind::kCounter));
      store->bindings_.push_back(std::move(b));
    }
  };

  bindings_.clear();
  bound_dropped_ = 0;
  for (auto& [name, series] : series_) series.bound = false;
  BindVisitor visitor;
  visitor.store = this;
  registry.Visit(&visitor);
  unsampled_.clear();
  for (auto& [name, series] : series_) {
    if (!series.bound) unsampled_.push_back(&series);
  }
}

void TimeSeriesStore::TickFromRegistry(const MetricsRegistry& registry,
                                       int64_t record) {
  size_t dropped_this_tick;
  size_t live_series;
  uint64_t total_ticks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Epoch is read before the rebind walk: a series created mid-walk may
    // or may not make this tick, but the moved epoch forces a rebind next
    // tick either way.
    const uint64_t epoch = registry.series_epoch();
    if (!bindings_valid_ || bound_epoch_ != epoch) {
      RebindLocked(registry);
      bound_epoch_ = epoch;
      bindings_valid_ = true;
    }
    const size_t slot = ticks_ % options_.retention_ticks;
    records_[slot] = record;
    // Series the bindings don't feed (snapshot-path leftovers) read as
    // absent: absence is data (the absence alert rule keys off it).
    for (Series* series : unsampled_) series->ring[slot] = kNaN;
    for (const RegistryBinding& b : bindings_) {
      if (b.counter != nullptr) {
        if (b.series != nullptr) {
          b.series->ring[slot] = static_cast<double>(b.counter->value());
        }
      } else if (b.gauge != nullptr) {
        if (b.series != nullptr) b.series->ring[slot] = b.gauge->value();
      } else {
        b.histogram->SnapshotDataInto(&histogram_scratch_);
        const MetricsSnapshot::HistogramData& h = histogram_scratch_;
        size_t i = 0;
        for (double q : options_.quantiles) {
          if (b.derived[i] != nullptr) b.derived[i]->ring[slot] = h.Quantile(q);
          ++i;
        }
        if (b.derived[i] != nullptr) {
          b.derived[i]->ring[slot] = static_cast<double>(h.count);
        }
        ++i;
        if (b.derived[i] != nullptr) b.derived[i]->ring[slot] = h.sum;
      }
    }
    dropped_series_ += bound_dropped_;
    dropped_this_tick = bound_dropped_;
    ++ticks_;
    total_ticks = ticks_;
    live_series = series_.size();
  }
  HOM_GAUGE_SET("hom.timeseries.series", live_series);
  HOM_GAUGE_SET("hom.timeseries.ticks", total_ticks);
  if (dropped_this_tick > 0) {
    HOM_COUNTER_ADD("hom.timeseries.dropped_series", dropped_this_tick);
  }
}

uint64_t TimeSeriesStore::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

bool TimeSeriesStore::ReadWindow(std::string_view series, size_t window,
                                 std::vector<Point>* out) const {
  auto it = series_.find(series);
  if (it == series_.end()) return false;
  size_t n = std::min<size_t>(window, options_.retention_ticks);
  n = std::min<uint64_t>(n, ticks_);
  out->clear();
  out->reserve(n);
  for (uint64_t tick = ticks_ - n; tick < ticks_; ++tick) {
    const size_t slot = tick % options_.retention_ticks;
    Point p;
    p.tick = tick;
    p.record = records_[slot];
    p.value = tick >= it->second.first_tick ? it->second.ring[slot] : kNaN;
    out->push_back(p);
  }
  return true;
}

Result<double> TimeSeriesStore::Latest(std::string_view series) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end() || ticks_ == 0) {
    return Status::NotFound("unknown series: " + std::string(series));
  }
  return it->second.ring[(ticks_ - 1) % options_.retention_ticks];
}

Result<TimeSeriesStore::SeriesKind> TimeSeriesStore::Kind(
    std::string_view series) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) {
    return Status::NotFound("unknown series: " + std::string(series));
  }
  return it->second.kind;
}

Result<std::vector<TimeSeriesStore::Point>> TimeSeriesStore::Query(
    std::string_view series, size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Point> out;
  if (!ReadWindow(series, window, &out)) {
    return Status::NotFound("unknown series: " + std::string(series));
  }
  return out;
}

Result<std::vector<TimeSeriesStore::Point>> TimeSeriesStore::QueryRate(
    std::string_view series, size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Point> raw;
  // One extra leading point so the first requested tick has a neighbor.
  if (!ReadWindow(series, window + 1, &raw)) {
    return Status::NotFound("unknown series: " + std::string(series));
  }
  std::vector<Point> out;
  if (raw.empty()) return out;
  size_t begin = raw.size() > window ? raw.size() - window : 1;
  if (raw.size() == 1) return out;
  out.reserve(raw.size() - begin);
  for (size_t i = begin; i < raw.size(); ++i) {
    Point p = raw[i];
    const double prev = raw[i - 1].value;
    const double cur = raw[i].value;
    if (!std::isfinite(prev) || !std::isfinite(cur)) {
      p.value = kNaN;
    } else if (cur < prev) {
      // Counter reset: the process restarted (or Reset() ran) between
      // ticks; the post-reset level is the best lower bound on the
      // increment, exactly as Prometheus rate() treats it.
      p.value = cur;
    } else {
      p.value = cur - prev;
    }
    out.push_back(p);
  }
  return out;
}

Result<double> TimeSeriesStore::WindowMean(std::string_view series,
                                           size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Point> raw;
  if (!ReadWindow(series, window, &raw)) {
    return Status::NotFound("unknown series: " + std::string(series));
  }
  double sum = 0.0;
  size_t n = 0;
  for (const Point& p : raw) {
    if (std::isfinite(p.value)) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? kNaN : sum / static_cast<double>(n);
}

size_t TimeSeriesStore::FiniteCount(std::string_view series,
                                    size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Point> raw;
  if (!ReadWindow(series, window, &raw)) return 0;
  size_t n = 0;
  for (const Point& p : raw) {
    if (std::isfinite(p.value)) ++n;
  }
  return n;
}

std::vector<std::string> TimeSeriesStore::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, series] : series_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

TimeSeriesStore::Stats TimeSeriesStore::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.ticks = ticks_;
  stats.series = series_.size();
  stats.dropped_series = dropped_series_;
  stats.retention_ticks = options_.retention_ticks;
  stats.max_series = options_.max_series;
  stats.memory_bound_bytes =
      (series_.size() + 1) * options_.retention_ticks * sizeof(double);
  return stats;
}

JsonValue TimeSeriesStore::StatsJson() const {
  Stats stats = GetStats();
  JsonValue out = JsonValue::Object();
  out.Set("ticks", JsonValue(stats.ticks));
  out.Set("series", JsonValue(static_cast<uint64_t>(stats.series)));
  out.Set("dropped_series", JsonValue(stats.dropped_series));
  out.Set("retention_ticks",
          JsonValue(static_cast<uint64_t>(stats.retention_ticks)));
  out.Set("max_series", JsonValue(static_cast<uint64_t>(stats.max_series)));
  out.Set("memory_bound_bytes",
          JsonValue(static_cast<uint64_t>(stats.memory_bound_bytes)));
  return out;
}

JsonValue TimeSeriesStore::IndexJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("stats", StatsJson());
  JsonValue list = JsonValue::Array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, series] : series_) {
      JsonValue entry = JsonValue::Object();
      entry.Set("series", JsonValue(name));
      entry.Set("kind", JsonValue(series.kind == SeriesKind::kCounter
                                      ? "counter"
                                      : "gauge"));
      list.Append(std::move(entry));
    }
  }
  out.Set("series", std::move(list));
  return out;
}

Result<JsonValue> TimeSeriesStore::QueryJson(std::string_view series,
                                             size_t window,
                                             std::string_view mode) const {
  std::vector<Point> points;
  if (mode == "raw") {
    HOM_ASSIGN_OR_RETURN(points, Query(series, window));
  } else if (mode == "rate") {
    HOM_ASSIGN_OR_RETURN(points, QueryRate(series, window));
  } else {
    return Status::InvalidArgument("unknown mode: " + std::string(mode) +
                                   " (want raw or rate)");
  }
  SeriesKind kind;
  HOM_ASSIGN_OR_RETURN(kind, Kind(series));
  JsonValue out = JsonValue::Object();
  out.Set("series", JsonValue(std::string(series)));
  out.Set("kind",
          JsonValue(kind == SeriesKind::kCounter ? "counter" : "gauge"));
  out.Set("mode", JsonValue(std::string(mode)));
  out.Set("window", JsonValue(static_cast<uint64_t>(window)));
  JsonValue list = JsonValue::Array();
  for (const Point& p : points) {
    JsonValue entry = JsonValue::Object();
    entry.Set("tick", JsonValue(p.tick));
    entry.Set("record", JsonValue(p.record));
    entry.Set("value", std::isfinite(p.value) ? JsonValue(p.value)
                                              : JsonValue());
    list.Append(std::move(entry));
  }
  out.Set("points", std::move(list));
  return out;
}

}  // namespace hom::obs
