#ifndef HOM_OBS_JSON_H_
#define HOM_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace hom::obs {

/// \brief A minimal JSON document model for the observability layer: the
/// metrics snapshots, phase trees, and bench results that the harness and
/// `homctl` exchange as machine-readable telemetry.
///
/// Design constraints: no external dependencies, insertion-ordered objects
/// (so emitted files diff cleanly run over run), and round-trip fidelity
/// for doubles (shortest representation that parses back to the same
/// value). This is deliberately not a general-purpose JSON library — just
/// enough for `Dump(Parse(x)) == Dump(x)` on the telemetry schema.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Null by default.
  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}    // NOLINT
  JsonValue(int n) : JsonValue(static_cast<double>(n)) {}      // NOLINT
  JsonValue(int64_t n) : JsonValue(static_cast<double>(n)) {}  // NOLINT
  JsonValue(uint64_t n) : JsonValue(static_cast<double>(n)) {} // NOLINT
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : JsonValue(std::string(s)) {}      // NOLINT

  static JsonValue Array() { return JsonValue(Type::kArray); }
  static JsonValue Object() { return JsonValue(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; the caller is responsible for checking the type
  /// first (wrong-type access returns a zero value, not UB).
  bool as_bool() const { return is_bool() ? bool_ : false; }
  double as_double() const { return is_number() ? number_ : 0.0; }
  const std::string& as_string() const { return string_; }

  /// Array/object element count (0 for scalars).
  size_t size() const;

  /// Array element access; id must be < size().
  const JsonValue& at(size_t i) const { return array_[i]; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Object members in insertion order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Appends to an array (converts a null value into an array first).
  void Append(JsonValue v);

  /// Sets an object member, replacing an existing key (converts a null
  /// value into an object first). Insertion order is preserved.
  void Set(std::string key, JsonValue v);

  /// Serializes. indent = 0 emits a single line; indent > 0 pretty-prints
  /// with that many spaces per level.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  explicit JsonValue(Type type) : type_(type) {}
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace hom::obs

#endif  // HOM_OBS_JSON_H_
