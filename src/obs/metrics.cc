#include "obs/metrics.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"

namespace hom::obs {

namespace {

/// CAS loop add for pre-C++20-style atomic<double> accumulation.
void AtomicAdd(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur && !target->compare_exchange_weak(cur, v,
                                                   std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur && !target->compare_exchange_weak(cur, v,
                                                   std::memory_order_relaxed)) {
  }
}

bool IsValidLabelName(std::string_view name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

void AppendEscapedLabelValue(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

/// Canonical text of an already-canonicalized (sorted) label set:
/// `k1="v1",k2="v2"`.
std::string CanonicalLabelText(const LabelSet& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    AppendEscapedLabelValue(&out, labels[i].second);
    out += '"';
  }
  return out;
}

/// Shared child-creation logic of the three families.
template <typename Handle, typename MakeFn>
Handle* WithLabelsImpl(
    std::mutex* mu,
    std::map<std::string,
             std::pair<const LabelSet*, std::unique_ptr<Handle>>>* children,
    const LabelSet& labels, const MakeFn& make) {
  const LabelSet* interned = MetricsRegistry::Global().InternLabels(labels);
  std::string key = CanonicalLabelText(*interned);
  std::lock_guard<std::mutex> lock(*mu);
  auto it = children->find(key);
  if (it == children->end()) {
    it = children->emplace(std::move(key), std::make_pair(interned, make()))
             .first;
  }
  return it->second.second.get();
}

}  // namespace

std::string SeriesKey::ToString() const {
  if (labels.empty()) return name;
  return name + "{" + CanonicalLabelText(labels) + "}";
}

Result<SeriesKey> SeriesKey::Parse(std::string_view text) {
  SeriesKey key;
  size_t brace = text.find('{');
  if (brace == std::string_view::npos) {
    key.name = std::string(text);
    return key;
  }
  if (text.empty() || text.back() != '}') {
    return Status::InvalidArgument("series key '" + std::string(text) +
                                   "': '{' without closing '}'");
  }
  key.name = std::string(text.substr(0, brace));
  std::string_view body = text.substr(brace + 1, text.size() - brace - 2);
  size_t i = 0;
  while (i < body.size()) {
    size_t eq = body.find('=', i);
    if (eq == std::string_view::npos || eq + 1 >= body.size() ||
        body[eq + 1] != '"') {
      return Status::InvalidArgument("series key '" + std::string(text) +
                                     "': expected key=\"value\"");
    }
    std::string label_name(body.substr(i, eq - i));
    std::string value;
    size_t j = eq + 2;
    bool closed = false;
    while (j < body.size()) {
      char c = body[j];
      if (c == '\\') {
        if (j + 1 >= body.size()) break;
        char next = body[j + 1];
        if (next == '\\') value += '\\';
        else if (next == '"') value += '"';
        else if (next == 'n') value += '\n';
        else {
          return Status::InvalidArgument("series key '" + std::string(text) +
                                         "': bad escape");
        }
        j += 2;
        continue;
      }
      if (c == '"') {
        closed = true;
        ++j;
        break;
      }
      value += c;
      ++j;
    }
    if (!closed) {
      return Status::InvalidArgument("series key '" + std::string(text) +
                                     "': unterminated label value");
    }
    key.labels.emplace_back(std::move(label_name), std::move(value));
    if (j < body.size()) {
      if (body[j] != ',') {
        return Status::InvalidArgument("series key '" + std::string(text) +
                                       "': expected ',' between labels");
      }
      ++j;
    }
    i = j;
  }
  return key;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  HOM_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HOM_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
}

void Histogram::Record(double value) {
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

std::vector<double> Histogram::DefaultLatencyBoundsUs() {
  std::vector<double> bounds;
  double b = 0.25;
  for (int i = 0; i < 13; ++i) {
    bounds.push_back(b);
    b *= 4.0;
  }
  return bounds;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::min() const {
  double v = min_.load(std::memory_order_relaxed);
  return count() == 0 ? 0.0 : v;
}

double Histogram::max() const {
  double v = max_.load(std::memory_order_relaxed);
  return count() == 0 ? 0.0 : v;
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

MetricsSnapshot::HistogramData Histogram::SnapshotData() const {
  MetricsSnapshot::HistogramData data;
  SnapshotDataInto(&data);
  return data;
}

void Histogram::SnapshotDataInto(MetricsSnapshot::HistogramData* out) const {
  out->bounds.assign(bounds_.begin(), bounds_.end());
  out->counts.resize(buckets_.size());
  uint64_t total = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out->counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += out->counts[i];
  }
  // count is defined as the sum of the bucket reads, never the separate
  // count_ atomic: under concurrent writers the two can disagree by the
  // in-flight Record() calls, and the exposition format requires the +Inf
  // cumulative bucket to equal _count exactly.
  out->count = total;
  out->sum = sum_.load(std::memory_order_relaxed);
  out->min = total == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  out->max = total == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double MetricsSnapshot::HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket >= target && in_bucket > 0.0) {
      double lower = i == 0 ? std::min(min, bounds.front()) : bounds[i - 1];
      double upper = i < bounds.size() ? bounds[i] : max;
      double fraction = (target - cumulative) / in_bucket;
      double estimate = lower + fraction * (upper - lower);
      return std::clamp(estimate, min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) {
      value = value >= it->second ? value - it->second : 0;
    }
  }
  for (auto& [key, value] : delta.labeled_counters) {
    auto it = earlier.labeled_counters.find(key);
    if (it != earlier.labeled_counters.end()) {
      value = value >= it->second ? value - it->second : 0;
    }
  }
  return delta;
}

std::map<std::string, uint64_t> MetricsSnapshot::CountersFlattened() const {
  std::map<std::string, uint64_t> out = counters;
  for (const auto& [key, value] : labeled_counters) {
    out[key.ToString()] = value;
  }
  return out;
}

namespace {

JsonValue HistogramDataToJson(const MetricsSnapshot::HistogramData& h) {
  JsonValue hj = JsonValue::Object();
  hj.Set("count", JsonValue(h.count));
  hj.Set("sum", JsonValue(h.sum));
  hj.Set("min", JsonValue(h.min));
  hj.Set("max", JsonValue(h.max));
  hj.Set("p50", JsonValue(h.Quantile(0.50)));
  hj.Set("p95", JsonValue(h.Quantile(0.95)));
  hj.Set("p99", JsonValue(h.Quantile(0.99)));
  JsonValue bounds_json = JsonValue::Array();
  for (double b : h.bounds) bounds_json.Append(JsonValue(b));
  hj.Set("bounds", std::move(bounds_json));
  JsonValue counts_json = JsonValue::Array();
  for (uint64_t c : h.counts) counts_json.Append(JsonValue(c));
  hj.Set("bucket_counts", std::move(counts_json));
  return hj;
}

Result<MetricsSnapshot::HistogramData> HistogramDataFromJson(
    const JsonValue& json, const std::string& where) {
  MetricsSnapshot::HistogramData h;
  if (!json.is_object()) {
    return Status::InvalidArgument(where + ": expected an object");
  }
  const JsonValue* bounds = json.Find("bounds");
  const JsonValue* counts = json.Find("bucket_counts");
  if (bounds == nullptr || !bounds->is_array() || counts == nullptr ||
      !counts->is_array() || counts->size() != bounds->size() + 1) {
    return Status::InvalidArgument(
        where + ": needs 'bounds' and 'bucket_counts' (len bounds + 1)");
  }
  for (size_t i = 0; i < bounds->size(); ++i) {
    h.bounds.push_back(bounds->at(i).as_double());
  }
  for (size_t i = 0; i < counts->size(); ++i) {
    h.counts.push_back(static_cast<uint64_t>(counts->at(i).as_double()));
  }
  auto number = [&json](const char* key) {
    const JsonValue* v = json.Find(key);
    return v != nullptr ? v->as_double() : 0.0;
  };
  h.count = static_cast<uint64_t>(number("count"));
  h.sum = number("sum");
  h.min = number("min");
  h.max = number("max");
  return h;
}

}  // namespace

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue counters_json = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    counters_json.Set(name, JsonValue(value));
  }
  for (const auto& [key, value] : labeled_counters) {
    counters_json.Set(key.ToString(), JsonValue(value));
  }
  JsonValue gauges_json = JsonValue::Object();
  for (const auto& [name, value] : gauges) {
    gauges_json.Set(name, JsonValue(value));
  }
  for (const auto& [key, value] : labeled_gauges) {
    gauges_json.Set(key.ToString(), JsonValue(value));
  }
  JsonValue histograms_json = JsonValue::Object();
  for (const auto& [name, h] : histograms) {
    histograms_json.Set(name, HistogramDataToJson(h));
  }
  for (const auto& [key, h] : labeled_histograms) {
    histograms_json.Set(key.ToString(), HistogramDataToJson(h));
  }
  JsonValue out = JsonValue::Object();
  out.Set("counters", std::move(counters_json));
  out.Set("gauges", std::move(gauges_json));
  out.Set("histograms", std::move(histograms_json));
  return out;
}

Result<MetricsSnapshot> MetricsSnapshotFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("metrics: expected an object");
  }
  MetricsSnapshot snap;
  if (const JsonValue* counters = json.Find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->members()) {
      HOM_ASSIGN_OR_RETURN(SeriesKey key, SeriesKey::Parse(name));
      uint64_t v = static_cast<uint64_t>(value.as_double());
      if (key.labels.empty()) {
        snap.counters[key.name] = v;
      } else {
        snap.labeled_counters[std::move(key)] = v;
      }
    }
  }
  if (const JsonValue* gauges = json.Find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->members()) {
      HOM_ASSIGN_OR_RETURN(SeriesKey key, SeriesKey::Parse(name));
      if (key.labels.empty()) {
        snap.gauges[key.name] = value.as_double();
      } else {
        snap.labeled_gauges[std::move(key)] = value.as_double();
      }
    }
  }
  if (const JsonValue* histograms = json.Find("histograms");
      histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, value] : histograms->members()) {
      HOM_ASSIGN_OR_RETURN(SeriesKey key, SeriesKey::Parse(name));
      HOM_ASSIGN_OR_RETURN(
          MetricsSnapshot::HistogramData h,
          HistogramDataFromJson(value, "metrics.histograms[" + name + "]"));
      if (key.labels.empty()) {
        snap.histograms[key.name] = std::move(h);
      } else {
        snap.labeled_histograms[std::move(key)] = std::move(h);
      }
    }
  }
  return snap;
}

Counter* CounterFamily::WithLabels(const LabelSet& labels) {
  return WithLabelsImpl(&mu_, &children_, labels, [] {
    MetricsRegistry::Global().BumpSeriesEpoch();
    return std::make_unique<Counter>();
  });
}

Gauge* GaugeFamily::WithLabels(const LabelSet& labels) {
  return WithLabelsImpl(&mu_, &children_, labels, [] {
    MetricsRegistry::Global().BumpSeriesEpoch();
    return std::make_unique<Gauge>();
  });
}

Histogram* HistogramFamily::WithLabels(const LabelSet& labels) {
  for (const Label& label : labels) {
    HOM_CHECK(label.first != "le")
        << "histogram label 'le' is reserved for the exposition format";
  }
  return WithLabelsImpl(&mu_, &children_, labels, [this] {
    MetricsRegistry::Global().BumpSeriesEpoch();
    return std::make_unique<Histogram>(bounds_);
  });
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumented code may run during static
  // destruction; the registry must outlive every handle user.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
    BumpSeriesEpoch();
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    BumpSeriesEpoch();
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
    BumpSeriesEpoch();
  }
  return it->second.get();
}

CounterFamily* MetricsRegistry::GetCounterFamily(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_families_.find(name);
  if (it == counter_families_.end()) {
    it = counter_families_
             .emplace(std::string(name), std::unique_ptr<CounterFamily>(
                                             new CounterFamily(
                                                 std::string(name))))
             .first;
  }
  return it->second.get();
}

GaugeFamily* MetricsRegistry::GetGaugeFamily(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_families_.find(name);
  if (it == gauge_families_.end()) {
    it = gauge_families_
             .emplace(std::string(name),
                      std::unique_ptr<GaugeFamily>(
                          new GaugeFamily(std::string(name))))
             .first;
  }
  return it->second.get();
}

HistogramFamily* MetricsRegistry::GetHistogramFamily(
    std::string_view name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_families_.find(name);
  if (it == histogram_families_.end()) {
    it = histogram_families_
             .emplace(std::string(name),
                      std::unique_ptr<HistogramFamily>(new HistogramFamily(
                          std::string(name), std::move(bounds))))
             .first;
  }
  return it->second.get();
}

const LabelSet* MetricsRegistry::InternLabels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  for (size_t i = 0; i < labels.size(); ++i) {
    HOM_CHECK(IsValidLabelName(labels[i].first))
        << "bad label name '" << labels[i].first << "'";
    if (i > 0) {
      HOM_CHECK(labels[i - 1].first != labels[i].first)
          << "duplicate label '" << labels[i].first << "'";
    }
  }
  std::string key = CanonicalLabelText(labels);
  std::lock_guard<std::mutex> lock(intern_mu_);
  auto it = label_sets_.find(key);
  if (it == label_sets_.end()) {
    it = label_sets_
             .emplace(std::move(key),
                      std::make_unique<const LabelSet>(std::move(labels)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->SnapshotData();
  }
  for (const auto& [name, family] : counter_families_) {
    std::lock_guard<std::mutex> family_lock(family->mu_);
    for (const auto& [text, child] : family->children_) {
      snap.labeled_counters[SeriesKey{name, *child.first}] =
          child.second->value();
    }
  }
  for (const auto& [name, family] : gauge_families_) {
    std::lock_guard<std::mutex> family_lock(family->mu_);
    for (const auto& [text, child] : family->children_) {
      snap.labeled_gauges[SeriesKey{name, *child.first}] =
          child.second->value();
    }
  }
  for (const auto& [name, family] : histogram_families_) {
    std::lock_guard<std::mutex> family_lock(family->mu_);
    for (const auto& [text, child] : family->children_) {
      snap.labeled_histograms[SeriesKey{name, *child.first}] =
          child.second->SnapshotData();
    }
  }
  return snap;
}

MetricsVisitor::~MetricsVisitor() = default;

void MetricsRegistry::Visit(MetricsVisitor* visitor) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    visitor->OnCounter(name, counter.get());
  }
  for (const auto& [name, gauge] : gauges_) {
    visitor->OnGauge(name, gauge.get());
  }
  for (const auto& [name, histogram] : histograms_) {
    visitor->OnHistogram(name, histogram.get());
  }
  // Labeled children: the family key already holds the canonical label
  // text, so the exposition name `family{text}` is a pure concatenation
  // into one buffer whose capacity survives across children.
  std::string scratch;
  auto labeled_name = [&scratch](const std::string& family,
                                 const std::string& text) -> std::string_view {
    // An empty label set degenerates to the bare family name, matching
    // SeriesKey::ToString().
    if (text.empty()) return family;
    scratch.assign(family);
    scratch += '{';
    scratch += text;
    scratch += '}';
    return scratch;
  };
  for (const auto& [name, family] : counter_families_) {
    std::lock_guard<std::mutex> family_lock(family->mu_);
    for (const auto& [text, child] : family->children_) {
      visitor->OnCounter(labeled_name(name, text), child.second.get());
    }
  }
  for (const auto& [name, family] : gauge_families_) {
    std::lock_guard<std::mutex> family_lock(family->mu_);
    for (const auto& [text, child] : family->children_) {
      visitor->OnGauge(labeled_name(name, text), child.second.get());
    }
  }
  for (const auto& [name, family] : histogram_families_) {
    std::lock_guard<std::mutex> family_lock(family->mu_);
    for (const auto& [text, child] : family->children_) {
      visitor->OnHistogram(labeled_name(name, text), child.second.get());
    }
  }
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, family] : counter_families_) {
    std::lock_guard<std::mutex> family_lock(family->mu_);
    for (auto& [text, child] : family->children_) child.second->Reset();
  }
  for (auto& [name, family] : gauge_families_) {
    std::lock_guard<std::mutex> family_lock(family->mu_);
    for (auto& [text, child] : family->children_) child.second->Reset();
  }
  for (auto& [name, family] : histogram_families_) {
    std::lock_guard<std::mutex> family_lock(family->mu_);
    for (auto& [text, child] : family->children_) child.second->Reset();
  }
}

}  // namespace hom::obs
