#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace hom::obs {

namespace {

/// CAS loop add for pre-C++20-style atomic<double> accumulation.
void AtomicAdd(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur && !target->compare_exchange_weak(cur, v,
                                                   std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur && !target->compare_exchange_weak(cur, v,
                                                   std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  HOM_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HOM_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
}

void Histogram::Record(double value) {
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

std::vector<double> Histogram::DefaultLatencyBoundsUs() {
  std::vector<double> bounds;
  double b = 0.25;
  for (int i = 0; i < 13; ++i) {
    bounds.push_back(b);
    b *= 4.0;
  }
  return bounds;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::min() const {
  double v = min_.load(std::memory_order_relaxed);
  return count() == 0 ? 0.0 : v;
}

double Histogram::max() const {
  double v = max_.load(std::memory_order_relaxed);
  return count() == 0 ? 0.0 : v;
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double MetricsSnapshot::HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket >= target && in_bucket > 0.0) {
      double lower = i == 0 ? std::min(min, bounds.front()) : bounds[i - 1];
      double upper = i < bounds.size() ? bounds[i] : max;
      double fraction = (target - cumulative) / in_bucket;
      double estimate = lower + fraction * (upper - lower);
      return std::clamp(estimate, min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) {
      value = value >= it->second ? value - it->second : 0;
    }
  }
  return delta;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue counters_json = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    counters_json.Set(name, JsonValue(value));
  }
  JsonValue gauges_json = JsonValue::Object();
  for (const auto& [name, value] : gauges) {
    gauges_json.Set(name, JsonValue(value));
  }
  JsonValue histograms_json = JsonValue::Object();
  for (const auto& [name, h] : histograms) {
    JsonValue hj = JsonValue::Object();
    hj.Set("count", JsonValue(h.count));
    hj.Set("sum", JsonValue(h.sum));
    hj.Set("min", JsonValue(h.min));
    hj.Set("max", JsonValue(h.max));
    hj.Set("p50", JsonValue(h.Quantile(0.50)));
    hj.Set("p95", JsonValue(h.Quantile(0.95)));
    hj.Set("p99", JsonValue(h.Quantile(0.99)));
    JsonValue bounds_json = JsonValue::Array();
    for (double b : h.bounds) bounds_json.Append(JsonValue(b));
    hj.Set("bounds", std::move(bounds_json));
    JsonValue counts_json = JsonValue::Array();
    for (uint64_t c : h.counts) counts_json.Append(JsonValue(c));
    hj.Set("bucket_counts", std::move(counts_json));
    histograms_json.Set(name, std::move(hj));
  }
  JsonValue out = JsonValue::Object();
  out.Set("counters", std::move(counters_json));
  out.Set("gauges", std::move(gauges_json));
  out.Set("histograms", std::move(histograms_json));
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumented code may run during static
  // destruction; the registry must outlive every handle user.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.counts = histogram->bucket_counts();
    data.count = histogram->count();
    data.sum = histogram->sum();
    data.min = histogram->min();
    data.max = histogram->max();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace hom::obs
