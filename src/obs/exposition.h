#ifndef HOM_OBS_EXPOSITION_H_
#define HOM_OBS_EXPOSITION_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace hom::obs {

/// Prometheus metric name for a registry name: dots become underscores
/// (`hom.cluster.merges` -> `hom_cluster_merges`); any other character
/// outside [a-zA-Z0-9_:] also becomes '_', and a leading digit gets a '_'
/// prefix.
std::string PrometheusMetricName(std::string_view name);

/// Label value with backslash, double-quote and newline escaped per the
/// text exposition format.
std::string EscapeLabelValue(std::string_view value);

/// Sample value literal: shortest round-trip decimal for finite values,
/// `NaN` / `+Inf` / `-Inf` otherwise.
std::string FormatPrometheusValue(double value);

/// Renders a snapshot in Prometheus text exposition format 0.0.4.
///
/// Per family (unlabeled metric and same-named labeled series merge into
/// one family): a `# TYPE` line, then every sample. Counters get the
/// `_total` suffix; histograms emit cumulative `_bucket{le="..."}` lines
/// ending with `le="+Inf"` (always equal to `_count` — guaranteed by the
/// single-pass snapshot), then `_sum` and `_count`. Families are sorted by
/// name, unlabeled series before labeled ones, labeled ones in canonical
/// label order, so output is deterministic for a given snapshot.
std::string EncodePrometheusText(const MetricsSnapshot& snapshot);

}  // namespace hom::obs

#endif  // HOM_OBS_EXPOSITION_H_
