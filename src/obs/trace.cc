#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <ctime>

#include "common/check.h"

namespace hom::obs {

namespace {

thread_local PhaseTracer* g_active_tracer = nullptr;

/// Per-thread stack of open span names, sampled from the SIGPROF handler.
/// `depth` is atomic so the compiler cannot reorder the name store past
/// the depth bump (the handler interrupting this thread must never read a
/// slot before its name was written); cross-thread visibility is not
/// needed — the handler runs on the thread it samples.
struct PhaseStack {
  const char* names[kPhaseStackCapacity];
  std::atomic<uint32_t> depth{0};
};

thread_local PhaseStack g_phase_stack;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void AppendTreeLines(const PhaseNode& node, const std::string& indent,
                     double root_seconds, std::string* out) {
  char line[256];
  double share = root_seconds > 0.0 ? 100.0 * node.seconds / root_seconds
                                    : 0.0;
  std::snprintf(line, sizeof(line),
                "%s%-28s %10.4fs %6.1f%%  cpu %9.4fs  x%llu\n",
                indent.c_str(), node.name.c_str(), node.seconds, share,
                node.cpu_seconds,
                static_cast<unsigned long long>(node.count));
  *out += line;
  for (const PhaseNode& child : node.children) {
    AppendTreeLines(child, indent + "  ", root_seconds, out);
  }
}

}  // namespace

const PhaseNode* PhaseNode::FindChild(std::string_view child_name) const {
  for (const PhaseNode& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

PhaseNode* PhaseNode::FindOrAddChild(std::string_view child_name) {
  for (PhaseNode& c : children) {
    if (c.name == child_name) return &c;
  }
  children.emplace_back();
  children.back().name = std::string(child_name);
  return &children.back();
}

void PhaseNode::MergeFrom(const PhaseNode& other) {
  seconds += other.seconds;
  cpu_seconds += other.cpu_seconds;
  self_cpu_seconds += other.self_cpu_seconds;
  count += other.count;
  for (const PhaseNode& theirs : other.children) {
    FindOrAddChild(theirs.name)->MergeFrom(theirs);
  }
}

std::string PhaseNode::ToTreeString() const {
  std::string out;
  AppendTreeLines(*this, "", seconds, &out);
  return out;
}

JsonValue PhaseNode::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("name", JsonValue(name));
  out.Set("seconds", JsonValue(seconds));
  out.Set("cpu_seconds", JsonValue(cpu_seconds));
  out.Set("self_cpu_seconds", JsonValue(self_cpu_seconds));
  out.Set("count", JsonValue(count));
  JsonValue kids = JsonValue::Array();
  for (const PhaseNode& c : children) kids.Append(c.ToJson());
  out.Set("children", std::move(kids));
  return out;
}

Result<PhaseNode> PhaseNode::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("phase node must be a JSON object");
  }
  const JsonValue* name = json.Find("name");
  const JsonValue* seconds = json.Find("seconds");
  if (name == nullptr || !name->is_string() || seconds == nullptr ||
      !seconds->is_number()) {
    return Status::InvalidArgument(
        "phase node needs a string 'name' and numeric 'seconds'");
  }
  PhaseNode node;
  node.name = name->as_string();
  node.seconds = seconds->as_double();
  if (const JsonValue* cpu = json.Find("cpu_seconds");
      cpu != nullptr && cpu->is_number()) {
    node.cpu_seconds = cpu->as_double();
  }
  if (const JsonValue* self_cpu = json.Find("self_cpu_seconds");
      self_cpu != nullptr && self_cpu->is_number()) {
    node.self_cpu_seconds = self_cpu->as_double();
  }
  if (const JsonValue* count = json.Find("count");
      count != nullptr && count->is_number()) {
    node.count = static_cast<uint64_t>(count->as_double());
  }
  if (const JsonValue* kids = json.Find("children"); kids != nullptr) {
    if (!kids->is_array()) {
      return Status::InvalidArgument("'children' must be an array");
    }
    for (size_t i = 0; i < kids->size(); ++i) {
      HOM_ASSIGN_OR_RETURN(PhaseNode child, FromJson(kids->at(i)));
      node.children.push_back(std::move(child));
    }
  }
  return node;
}

PhaseTracer::PhaseTracer(std::string root_name)
    : started_(std::chrono::steady_clock::now()) {
  root_.name = std::move(root_name);
  root_.count = 1;
}

void PhaseTracer::BeginSpan(std::string_view name) {
  PhaseNode* open = &root_;
  for (size_t idx : open_path_) open = &open->children[idx];
  PhaseNode* child = open->FindOrAddChild(name);
  open_path_.push_back(
      static_cast<size_t>(child - open->children.data()));
}

void PhaseTracer::EndSpan(double seconds, double cpu_seconds) {
  HOM_CHECK(!open_path_.empty()) << "EndSpan without matching BeginSpan";
  PhaseNode* open = &root_;
  for (size_t idx : open_path_) open = &open->children[idx];
  open->seconds += seconds;
  open->cpu_seconds += cpu_seconds;
  open->count += 1;
  open_path_.pop_back();
  // Keep the root total live so partially-traced trees still report a
  // meaningful share denominator.
  root_.seconds = SecondsSince(started_);
}

void PhaseTracer::MergeAtOpenSpan(const PhaseNode& subtree) {
  PhaseNode* open = &root_;
  for (size_t idx : open_path_) open = &open->children[idx];
  open->FindOrAddChild(subtree.name)->MergeFrom(subtree);
  // Worker CPU time rolls up into the open span so the wall/CPU ratio of
  // the enclosing phase reflects pooled work too.
  open->cpu_seconds += subtree.cpu_seconds;
}

ScopedTracer::ScopedTracer(PhaseTracer* tracer) : previous_(g_active_tracer) {
  g_active_tracer = tracer;
}

ScopedTracer::~ScopedTracer() { g_active_tracer = previous_; }

PhaseTracer* ScopedTracer::Active() { return g_active_tracer; }

ScopedSpan::ScopedSpan(const char* name)
    : tracer_(g_active_tracer),
      started_(std::chrono::steady_clock::now()),
      started_cpu_(tracer_ != nullptr ? ThreadCpuSeconds() : 0.0) {
  if (tracer_ != nullptr) {
    tracer_->BeginSpan(name);
    uint32_t depth = g_phase_stack.depth.load(std::memory_order_relaxed);
    if (depth < kPhaseStackCapacity) {
      // Name first, then depth: a SIGPROF arriving between the two sees
      // the shorter (still-consistent) stack, never a stale name.
      g_phase_stack.names[depth] = name;
      g_phase_stack.depth.store(depth + 1, std::memory_order_release);
      pushed_ = true;
    }
  }
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ != nullptr) {
    if (pushed_) {
      uint32_t depth = g_phase_stack.depth.load(std::memory_order_relaxed);
      g_phase_stack.depth.store(depth - 1, std::memory_order_release);
    }
    tracer_->EndSpan(SecondsSince(started_),
                     ThreadCpuSeconds() - started_cpu_);
  }
}

size_t CapturePhaseStack(const char** out, size_t max) {
  uint32_t depth = g_phase_stack.depth.load(std::memory_order_acquire);
  if (depth > kPhaseStackCapacity) depth = kPhaseStackCapacity;
  size_t n = depth < max ? depth : max;
  for (size_t i = 0; i < n; ++i) out[i] = g_phase_stack.names[i];
  return n;
}

double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }
#endif
  return 0.0;
}

}  // namespace hom::obs
