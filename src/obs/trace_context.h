#ifndef HOM_OBS_TRACE_CONTEXT_H_
#define HOM_OBS_TRACE_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace hom::obs {

/// \brief Cross-process trace identity: a 128-bit trace id shared by every
/// span of one causal chain (a checkpoint round, a swap, a sampled
/// heartbeat) plus the 64-bit id of the span currently executing.
///
/// The wire form is the W3C `traceparent` header
/// (`00-<32 hex trace>-<16 hex span>-<2 hex flags>`), which is what
/// `common/http_client` injects and `obs/http_server` extracts — so the
/// standby's apply spans parent onto the primary's POST spans and two
/// processes' journals join on `trace_id`.
struct TraceContext {
  uint64_t trace_hi = 0;  ///< high 64 bits of the 128-bit trace id
  uint64_t trace_lo = 0;  ///< low 64 bits of the 128-bit trace id
  uint64_t span_id = 0;   ///< the active span within the trace

  /// W3C: an all-zero trace id or span id is not a context.
  bool valid() const { return (trace_hi | trace_lo) != 0 && span_id != 0; }
};

/// 32-hex-digit trace id / 16-hex-digit span id, the forms used in span
/// files, journal lines, and merged Perfetto args.
std::string TraceIdHex(const TraceContext& ctx);
std::string SpanIdHex(uint64_t span_id);

/// Inverses of the hex forms (lowercase, exact width). False on anything
/// else.
bool ParseTraceIdHex(std::string_view hex, uint64_t* hi, uint64_t* lo);
bool ParseSpanIdHex(std::string_view hex, uint64_t* id);

/// `00-<trace>-<span>-01` for a valid context; "" for an invalid one.
std::string FormatTraceparent(const TraceContext& ctx);

/// Parses a `traceparent` value. Errors on malformed text (wrong field
/// widths, non-hex digits, missing separators), on all-zero trace or span
/// ids, and on the reserved version ff. Unknown future versions are
/// tolerated as long as the leading four fields parse (per W3C, a vendor
/// must not reject a longer header it does not understand).
Result<TraceContext> ParseTraceparent(std::string_view text);

/// Reseeds the process-wide id generator. Ids are a pure function of
/// (seed, draw index), so two chaos runs with the same seed mint the same
/// trace/span ids in the same order — reproducible timelines. Give each
/// process of a replicated pair a *different* seed or their ids collide.
void SeedTraceIds(uint64_t seed);

/// A fresh root context (new trace id + root span id). Never all-zero.
TraceContext NewTrace();
/// A fresh span id. Never zero.
uint64_t NewSpanId();

/// The calling thread's installed context, or nullptr.
const TraceContext* CurrentTraceContext();

/// FormatTraceparent(current context), or "" when none is installed —
/// shaped for HttpClientOptions::traceparent_provider.
std::string CurrentTraceparentOrEmpty();

/// \brief RAII: installs `ctx` as the calling thread's context for the
/// enclosing scope (restores the previous one on destruction), mirroring
/// ScopedJournal/ScopedTracer.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext ctx_;
  const TraceContext* previous_;
};

enum class SpanKind : uint8_t { kInternal = 0, kClient, kServer };

std::string_view SpanKindName(SpanKind kind);
Result<SpanKind> SpanKindFromName(std::string_view name);

/// One finished span, as buffered in-process and streamed to span files.
/// `start_unix_us` is CLOCK_REALTIME microseconds — wall clock, because
/// spans from different processes must land on one merged timeline.
/// `dur_us` is measured on the steady clock. `lane` is a small per-thread
/// index (first span on a thread claims the next lane) so the exporter can
/// lay concurrent spans out on separate tracks.
struct SpanRecord {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 for a root span
  std::string name;
  SpanKind kind = SpanKind::kInternal;
  int64_t start_unix_us = 0;
  double dur_us = 0.0;
  std::string status;  ///< "" = ok; otherwise a short failure note
  int lane = 0;
};

/// One-line JSON serialization of a span / its inverse; a round trip
/// preserves every field. Span files are JSONL with one header line
/// (`{"span_schema": 1, "process": ..., "seed": ...}`) followed by spans.
std::string SpanToJsonl(const SpanRecord& span);
Result<SpanRecord> SpanFromJsonl(std::string_view line);

inline constexpr int kSpanSchemaVersion = 1;

/// \brief Process-global bounded buffer of finished spans with an optional
/// streaming JSONL sink (flushed per span — a SIGKILLed primary's file is
/// complete up to the kill, which the failover chaos tests rely on).
///
/// Unlike the journal there is one buffer per process, not per operation:
/// spans from the shipper thread, the HTTP worker, and the serve loop all
/// land here, and /tracez serves its tail. set_enabled(false) turns every
/// DistSpan into a no-op (one relaxed atomic load) — that is the "tracing
/// off" arm of the bench overhead gate.
class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static TraceBuffer& Instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Names this process in span-file headers and /tracez ("primary:8080").
  void set_process_name(std::string name);
  std::string process_name() const;

  /// Streams every subsequent Record() as one JSON line to `path`
  /// (truncating), after a header line naming the process and schema.
  Status AttachJsonlSink(const std::string& path);
  /// Flushes and detaches the sink.
  void CloseSink();

  void Record(const SpanRecord& span);

  /// The retained spans, oldest first.
  std::vector<SpanRecord> Snapshot() const;
  /// Spans recorded since process start (ring evictions included).
  uint64_t recorded() const;
  uint64_t dropped() const;

  /// {"process": ..., "recorded": N, "dropped": N, "spans": [...]} — the
  /// newest `limit` spans, for GET /tracez.
  JsonValue RecentJson(size_t limit = 256) const;

  /// Drops all buffered spans and counters (bench/test isolation).
  void Reset();

 private:
  TraceBuffer() = default;

  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::string process_name_ = "hom";
  std::vector<SpanRecord> ring_;
  uint64_t next_slot_ = 0;
  uint64_t recorded_ = 0;
  std::ofstream sink_;
};

/// \brief RAII distributed span: derives a child context (from the thread's
/// installed context, from an explicit parent, or — for the no-parent
/// constructor — mints a fresh root trace), installs it thread-locally for
/// the scope, and records the finished SpanRecord into the TraceBuffer on
/// destruction. No-op (and no context install) while the buffer is
/// disabled.
class DistSpan {
 public:
  /// Child of the thread's current context; a new root trace when none.
  DistSpan(const char* name, SpanKind kind);
  /// Child of `parent` when it is valid (the promotion span adopts the
  /// last applied checkpoint's context this way); a new root otherwise.
  DistSpan(const char* name, SpanKind kind, const TraceContext& parent);
  ~DistSpan();

  DistSpan(const DistSpan&) = delete;
  DistSpan& operator=(const DistSpan&) = delete;

  /// Marks the span failed; shows up as `status` in exports.
  void set_status(std::string status);

  /// The context this span installed (invalid when tracing is disabled).
  const TraceContext& context() const { return ctx_; }
  bool active() const { return active_; }

 private:
  void Start(const char* name, SpanKind kind, const TraceContext* parent);

  TraceContext ctx_;
  SpanRecord rec_;
  bool active_ = false;
  std::chrono::steady_clock::time_point started_;
  std::optional<ScopedTraceContext> scope_;
};

/// CLOCK_REALTIME now, in microseconds — the shared timeline spans and
/// journal headers are anchored to.
int64_t UnixMicrosNow();

}  // namespace hom::obs

#endif  // HOM_OBS_TRACE_CONTEXT_H_
