#include "obs/prof.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/event_journal.h"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>

#include <csignal>
#include <ctime>
#endif

namespace hom::obs {

namespace {

/// Frames kept per raw sample. 48 levels cover the deepest hom:: paths
/// (recursive C4.5 walks included) without making the ring enormous.
constexpr size_t kMaxRawFrames = 48;
constexpr uint64_t kSlotEmpty = ~uint64_t{0};

constexpr double kMinHz = 1.0;
constexpr double kMaxHz = 1000.0;
constexpr size_t kMinRingCapacity = 64;

#if defined(__linux__)

/// One preallocated ring slot. `ready_seq` is the commit protocol: the
/// handler claims a sequence number, writes the payload, then
/// release-stores the sequence — the collector only trusts slots whose
/// stored sequence matches the one it expects for that slot.
struct RawSlot {
  std::atomic<uint64_t> ready_seq{kSlotEmpty};
  double t_us = 0.0;
  uint32_t depth = 0;
  uint32_t phase_depth = 0;
  void* frames[kMaxRawFrames];
  const char* phases[kPhaseStackCapacity];
};

struct ProfilerState {
  std::unique_ptr<RawSlot[]> ring;
  size_t capacity = 0;
  std::atomic<uint64_t> next_seq{0};
  std::atomic<uint64_t> truncated{0};
  timespec epoch{};
  timespec ended{};
  double hz = 0.0;
  timer_t timer{};
  bool timer_live = false;
};

/// Control-plane state. `g_active_state` is the only thing the signal
/// handler reads; everything else is guarded by `g_control_mu`.
std::mutex g_control_mu;
std::atomic<ProfilerState*> g_active_state{nullptr};
std::unique_ptr<ProfilerState> g_owned_state;
bool g_handler_installed = false;

/// SIGPROF handler: claim a slot, stamp it, unwind, publish. Everything
/// called here is async-signal-safe (backtrace after the Start() warm-up).
void ProfSignalHandler(int, siginfo_t*, void*) {
  int saved_errno = errno;
  ProfilerState* state = g_active_state.load(std::memory_order_acquire);
  if (state != nullptr) {
    uint64_t seq = state->next_seq.fetch_add(1, std::memory_order_relaxed);
    RawSlot& slot = state->ring[seq % state->capacity];
    slot.ready_seq.store(kSlotEmpty, std::memory_order_relaxed);
    timespec now;
    clock_gettime(CLOCK_MONOTONIC, &now);
    slot.t_us =
        static_cast<double>(now.tv_sec - state->epoch.tv_sec) * 1e6 +
        static_cast<double>(now.tv_nsec - state->epoch.tv_nsec) * 1e-3;
    int depth = backtrace(slot.frames, kMaxRawFrames);
    slot.depth = depth > 0 ? static_cast<uint32_t>(depth) : 0;
    if (depth >= static_cast<int>(kMaxRawFrames)) {
      state->truncated.fetch_add(1, std::memory_order_relaxed);
    }
    slot.phase_depth = static_cast<uint32_t>(
        CapturePhaseStack(slot.phases, kPhaseStackCapacity));
    slot.ready_seq.store(seq, std::memory_order_release);
  }
  errno = saved_errno;
}

/// Folded frames are ';'-joined, so the separator (and line breaks) must
/// never appear inside a symbol; demangled template args can contain
/// anything.
void SanitizeFrameName(std::string* name) {
  for (char& c : *name) {
    if (c == ';') c = ',';
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
}

std::string SymbolizeAddress(void* addr) {
  Dl_info info;
  if (dladdr(addr, &info) != 0 && info.dli_sname != nullptr &&
      info.dli_sname[0] != '\0') {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    std::string name = (demangle_status == 0 && demangled != nullptr)
                           ? demangled
                           : info.dli_sname;
    std::free(demangled);
    SanitizeFrameName(&name);
    return name;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<size_t>(addr));
  return buf;
}

/// Interns addresses into the ProfileData frame table, caching per unique
/// address (dladdr + demangling are the expensive part of Collect()).
class FrameInterner {
 public:
  explicit FrameInterner(std::vector<std::string>* table) : table_(table) {}

  uint32_t Intern(void* addr) {
    auto it = cache_.find(addr);
    if (it != cache_.end()) return it->second;
    table_->push_back(SymbolizeAddress(addr));
    uint32_t id = static_cast<uint32_t>(table_->size() - 1);
    cache_.emplace(addr, id);
    return id;
  }

  const std::string& name(uint32_t id) const { return (*table_)[id]; }

 private:
  std::vector<std::string>* table_;
  std::unordered_map<void*, uint32_t> cache_;
};

double TimespecDiffSeconds(const timespec& a, const timespec& b) {
  return static_cast<double>(b.tv_sec - a.tv_sec) +
         1e-9 * static_cast<double>(b.tv_nsec - a.tv_nsec);
}

/// Disarms the timer and unpublishes the state (callers hold
/// g_control_mu). The buffered samples stay in g_owned_state for
/// Collect().
void StopLocked() {
  ProfilerState* state = g_active_state.load(std::memory_order_acquire);
  if (state == nullptr) return;
  if (state->timer_live) {
    timer_delete(state->timer);
    state->timer_live = false;
  }
  clock_gettime(CLOCK_MONOTONIC, &state->ended);
  g_active_state.store(nullptr, std::memory_order_release);
  uint64_t total = state->next_seq.load(std::memory_order_relaxed);
  EmitIfActive(EventType::kProfileStop, "prof", -1, -1, -1,
               static_cast<double>(total < state->capacity
                                       ? total
                                       : static_cast<uint64_t>(
                                             state->capacity)));
}

#endif  // defined(__linux__)

double ClampHz(double hz) {
  if (!(hz >= kMinHz)) return kMinHz;  // NaN lands here too
  return hz > kMaxHz ? kMaxHz : hz;
}

}  // namespace

std::map<std::string, uint64_t> ProfileData::FoldedCounts() const {
  std::map<std::string, uint64_t> counts;
  std::string key;
  for (const ProfileSample& sample : samples) {
    key.clear();
    for (size_t i = 0; i < sample.stack.size(); ++i) {
      if (i > 0) key += ';';
      key += frames[sample.stack[i]];
    }
    if (key.empty()) key = "(unknown)";
    ++counts[key];
  }
  return counts;
}

std::string ProfileData::ToFolded() const {
  std::string out;
  for (const auto& [stack, count] : FoldedCounts()) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

JsonValue ProfileData::SummaryJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("hz", JsonValue(hz));
  out.Set("duration_seconds", JsonValue(duration_seconds));
  out.Set("samples", JsonValue(static_cast<uint64_t>(samples.size())));
  out.Set("dropped", JsonValue(dropped));
  out.Set("truncated", JsonValue(truncated));
  out.Set("distinct_stacks",
          JsonValue(static_cast<uint64_t>(FoldedCounts().size())));
  return out;
}

void ProfileData::MergeFrom(const ProfileData& other) {
  uint32_t offset = static_cast<uint32_t>(frames.size());
  frames.insert(frames.end(), other.frames.begin(), other.frames.end());
  for (ProfileSample sample : other.samples) {
    for (uint32_t& id : sample.stack) id += offset;
    samples.push_back(std::move(sample));
  }
  duration_seconds += other.duration_seconds;
  dropped += other.dropped;
  truncated += other.truncated;
  if (hz == 0.0) hz = other.hz;
}

void AttributeSamplesToPhases(const ProfileData& data, PhaseNode* tree) {
  if (tree == nullptr) return;
  double period = data.sample_period_seconds();
  if (period <= 0.0) return;
  for (const ProfileSample& sample : data.samples) {
    PhaseNode* node = tree;
    if (sample.phases.empty()) {
      node = tree->FindOrAddChild("(unattributed)");
    } else {
      for (const std::string& name : sample.phases) {
        node = node->FindOrAddChild(name);
      }
    }
    node->self_cpu_seconds += period;
  }
}

SamplingProfiler& SamplingProfiler::Global() {
  static SamplingProfiler* profiler = new SamplingProfiler();
  return *profiler;
}

#if defined(__linux__)

Status SamplingProfiler::Start(const ProfileOptions& options) {
  std::lock_guard<std::mutex> lock(g_control_mu);
  if (g_active_state.load(std::memory_order_acquire) != nullptr) {
    return Status::FailedPrecondition(
        "profiler already running (one sampling window at a time)");
  }
  auto state = std::make_unique<ProfilerState>();
  state->hz = ClampHz(options.hz);
  state->capacity = options.max_samples < kMinRingCapacity
                        ? kMinRingCapacity
                        : options.max_samples;
  state->ring = std::make_unique<RawSlot[]>(state->capacity);
  clock_gettime(CLOCK_MONOTONIC, &state->epoch);

  // backtrace() lazily loads libgcc's unwinder on first use — do that here,
  // outside signal context, so the handler never allocates.
  void* warmup[4];
  backtrace(warmup, 4);

  if (!g_handler_installed) {
    struct sigaction action {};
    action.sa_sigaction = ProfSignalHandler;
    action.sa_flags = SA_RESTART | SA_SIGINFO;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGPROF, &action, nullptr) != 0) {
      return Status::Internal(std::string("sigaction(SIGPROF): ") +
                              std::strerror(errno));
    }
    // Left installed for the process lifetime: it no-ops with no active
    // state, and uninstalling could let a queued SIGPROF hit the default
    // action (terminate).
    g_handler_installed = true;
  }

  sigevent sev{};
  sev.sigev_notify = SIGEV_SIGNAL;
  sev.sigev_signo = SIGPROF;
  // CPU-time driven: an idle process takes no samples. Fall back to wall
  // sampling where the process CPU clock cannot drive a timer.
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev, &state->timer) != 0 &&
      timer_create(CLOCK_MONOTONIC, &sev, &state->timer) != 0) {
    return Status::Internal(std::string("timer_create: ") +
                            std::strerror(errno));
  }
  state->timer_live = true;

  long period_ns = std::lround(1e9 / state->hz);
  itimerspec spec{};
  spec.it_interval.tv_sec = period_ns / 1000000000L;
  spec.it_interval.tv_nsec = period_ns % 1000000000L;
  spec.it_value = spec.it_interval;

  g_active_state.store(state.get(), std::memory_order_release);
  if (timer_settime(state->timer, 0, &spec, nullptr) != 0) {
    g_active_state.store(nullptr, std::memory_order_release);
    timer_delete(state->timer);
    return Status::Internal(std::string("timer_settime: ") +
                            std::strerror(errno));
  }
  double hz = state->hz;
  g_owned_state = std::move(state);
  EmitIfActive(EventType::kProfileStart, "prof", -1, -1, -1, hz);
  return Status::OK();
}

void SamplingProfiler::Stop() {
  std::lock_guard<std::mutex> lock(g_control_mu);
  StopLocked();
}

ProfileData SamplingProfiler::Collect() {
  std::unique_ptr<ProfilerState> state;
  {
    std::lock_guard<std::mutex> lock(g_control_mu);
    StopLocked();
    state = std::move(g_owned_state);
  }
  ProfileData data;
  if (state == nullptr) return data;
  // A handler on another thread may have claimed a slot just before the
  // disarm; give it a moment, then skip any slot that never committed.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  data.hz = state->hz;
  data.duration_seconds = TimespecDiffSeconds(state->epoch, state->ended);
  data.truncated = state->truncated.load(std::memory_order_relaxed);
  uint64_t total = state->next_seq.load(std::memory_order_relaxed);
  uint64_t kept = total < state->capacity ? total : state->capacity;
  data.dropped = total - kept;
  data.samples.reserve(kept);

  FrameInterner interner(&data.frames);
  std::vector<uint32_t> innermost_first;
  for (uint64_t seq = total - kept; seq < total; ++seq) {
    RawSlot& slot = state->ring[seq % state->capacity];
    if (slot.ready_seq.load(std::memory_order_acquire) != seq) {
      ++data.dropped;  // claimed but never committed, or overwritten late
      continue;
    }
    innermost_first.clear();
    for (uint32_t i = 0; i < slot.depth; ++i) {
      innermost_first.push_back(interner.Intern(slot.frames[i]));
    }
    // Trim the capture prologue — the handler itself and the kernel's
    // signal trampoline sit innermost on every sample.
    size_t start = 0;
    for (size_t i = 0; i < innermost_first.size(); ++i) {
      const std::string& name = interner.name(innermost_first[i]);
      if (name.find("ProfSignalHandler") != std::string::npos) {
        if (i + 2 > start) start = i + 2;
      } else if (name.find("restore_rt") != std::string::npos) {
        if (i + 1 > start) start = i + 1;
      }
    }
    if (start > innermost_first.size()) start = innermost_first.size();

    ProfileSample sample;
    sample.t_us = slot.t_us;
    sample.stack.reserve(innermost_first.size() - start);
    for (size_t i = innermost_first.size(); i > start; --i) {
      sample.stack.push_back(innermost_first[i - 1]);  // root-first
    }
    sample.phases.reserve(slot.phase_depth);
    for (uint32_t i = 0; i < slot.phase_depth; ++i) {
      sample.phases.emplace_back(slot.phases[i]);
    }
    data.samples.push_back(std::move(sample));
  }
  return data;
}

bool SamplingProfiler::running() const {
  return g_active_state.load(std::memory_order_acquire) != nullptr;
}

#else  // !defined(__linux__)

Status SamplingProfiler::Start(const ProfileOptions&) {
  return Status::NotImplemented(
      "sampling profiler needs POSIX timer_create/SIGPROF (Linux)");
}

void SamplingProfiler::Stop() {}

ProfileData SamplingProfiler::Collect() { return ProfileData(); }

bool SamplingProfiler::running() const { return false; }

#endif  // defined(__linux__)

HttpResponse HandleProfilezRequest(const HttpRequest& request) {
  double seconds = std::atof(request.QueryOr("seconds", "1"));
  if (!(seconds >= 0.05)) seconds = 0.05;  // NaN/garbage lands here
  if (seconds > 30.0) seconds = 30.0;
  ProfileOptions options;
  options.hz = ClampHz(std::atof(request.QueryOr("hz", "99")));

  HttpResponse response;
  Status status = SamplingProfiler::Global().Start(options);
  if (!status.ok()) {
    response.status =
        status.code() == StatusCode::kFailedPrecondition ? 409 : 501;
    response.body = status.ToString() + "\n";
    return response;
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  ProfileData data = SamplingProfiler::Global().Collect();
  response.content_type = "text/plain; charset=utf-8";
  response.body = data.ToFolded();
  return response;
}

}  // namespace hom::obs
