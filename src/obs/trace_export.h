#ifndef HOM_OBS_TRACE_EXPORT_H_
#define HOM_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/event_journal.h"
#include "obs/json.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace hom::obs {

/// \brief Merges a PhaseNode tree, an event-journal snapshot, and an
/// optional CPU profile into one Chrome trace-event document (the JSON
/// Object Format understood by chrome://tracing and Perfetto's legacy
/// importer).
///
/// Offline phases become complete ("X") slices on track "offline phases".
/// PhaseNode stores aggregate durations, not start timestamps, so slice
/// starts are synthesized: each child starts where its previous sibling
/// ended, inside its parent — nesting and relative magnitude are exact,
/// absolute offsets within a phase are not. Journal events become instant
/// ("i") marks on track "online events" at their real (journal-epoch)
/// microsecond timestamps, with source/record/from/to/value under "args".
/// Profile samples land on track "cpu samples": one counter ("C") series
/// "cpu_samples" bucketing sample density over time, plus an instant mark
/// per sample whose args carry the leaf frame and phase path.
///
/// Pass nullptr / an empty vector to export any subset of the inputs.
JsonValue ChromeTraceDocument(const PhaseNode* phases,
                              const std::vector<Event>& events,
                              const ProfileData* profile = nullptr);

/// ChromeTraceDocument() written to `path` (truncating). `phases`,
/// `journal`, and `profile` may each be nullptr.
Status WriteChromeTrace(const std::string& path, const PhaseNode* phases,
                        const EventJournal* journal,
                        const ProfileData* profile = nullptr);

/// One process's contribution to a merged cross-process timeline: a
/// display name ("primary:8080"), the wall-clock anchor of its journal
/// (the v2 header's `epoch_unix_us`; 0 when the process shipped no
/// journal), its recorded spans, and its journal events.
struct ProcessTrace {
  std::string name;
  int64_t epoch_unix_us = 0;
  std::vector<SpanRecord> spans;
  std::vector<Event> events;
};

/// Top-level `"merged_trace_schema"` stamped into MergedTraceDocument()
/// output so validators can reject documents they were not written for.
inline constexpr int kMergedTraceSchemaVersion = 1;

/// \brief Fuses span and journal streams from several processes into one
/// Chrome trace-event document — the merged failover timeline behind
/// `homctl trace merge`.
///
/// Each process becomes its own pid (named via process_name metadata).
/// Spans render as complete ("X") slices on per-lane tracks at their real
/// wall-clock starts, with trace/span/parent ids, kind, and status under
/// "args"; journal events render as instant ("i") marks on an "events"
/// track, anchored to the wall clock by the journal's epoch. Wherever a
/// span in one process is the parent of a span in another (the shipper's
/// POST begetting the standby's apply), a flow arrow (ph "s" on the
/// parent, ph "f" on the child) draws the cross-process edge. All
/// timestamps are normalized so the earliest moment across every input is
/// ts 0.
JsonValue MergedTraceDocument(const std::vector<ProcessTrace>& processes);

}  // namespace hom::obs

#endif  // HOM_OBS_TRACE_EXPORT_H_
