#ifndef HOM_OBS_TRACE_EXPORT_H_
#define HOM_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/event_journal.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace hom::obs {

/// \brief Merges a PhaseNode tree and an event-journal snapshot into one
/// Chrome trace-event document (the JSON Object Format understood by
/// chrome://tracing and Perfetto's legacy importer).
///
/// Offline phases become complete ("X") slices on track "offline phases".
/// PhaseNode stores aggregate durations, not start timestamps, so slice
/// starts are synthesized: each child starts where its previous sibling
/// ended, inside its parent — nesting and relative magnitude are exact,
/// absolute offsets within a phase are not. Journal events become instant
/// ("i") marks on track "online events" at their real (journal-epoch)
/// microsecond timestamps, with source/record/from/to/value under "args".
///
/// Pass nullptr / an empty vector to export only one of the two inputs.
JsonValue ChromeTraceDocument(const PhaseNode* phases,
                              const std::vector<Event>& events);

/// ChromeTraceDocument() written to `path` (truncating). `phases` and
/// `journal` may each be nullptr.
Status WriteChromeTrace(const std::string& path, const PhaseNode* phases,
                        const EventJournal* journal);

}  // namespace hom::obs

#endif  // HOM_OBS_TRACE_EXPORT_H_
