#ifndef HOM_OBS_TRACE_EXPORT_H_
#define HOM_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/event_journal.h"
#include "obs/json.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace hom::obs {

/// \brief Merges a PhaseNode tree, an event-journal snapshot, and an
/// optional CPU profile into one Chrome trace-event document (the JSON
/// Object Format understood by chrome://tracing and Perfetto's legacy
/// importer).
///
/// Offline phases become complete ("X") slices on track "offline phases".
/// PhaseNode stores aggregate durations, not start timestamps, so slice
/// starts are synthesized: each child starts where its previous sibling
/// ended, inside its parent — nesting and relative magnitude are exact,
/// absolute offsets within a phase are not. Journal events become instant
/// ("i") marks on track "online events" at their real (journal-epoch)
/// microsecond timestamps, with source/record/from/to/value under "args".
/// Profile samples land on track "cpu samples": one counter ("C") series
/// "cpu_samples" bucketing sample density over time, plus an instant mark
/// per sample whose args carry the leaf frame and phase path.
///
/// Pass nullptr / an empty vector to export any subset of the inputs.
JsonValue ChromeTraceDocument(const PhaseNode* phases,
                              const std::vector<Event>& events,
                              const ProfileData* profile = nullptr);

/// ChromeTraceDocument() written to `path` (truncating). `phases`,
/// `journal`, and `profile` may each be nullptr.
Status WriteChromeTrace(const std::string& path, const PhaseNode* phases,
                        const EventJournal* journal,
                        const ProfileData* profile = nullptr);

}  // namespace hom::obs

#endif  // HOM_OBS_TRACE_EXPORT_H_
