#ifndef HOM_OBS_TIMESERIES_H_
#define HOM_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace hom::obs {

/// Configuration of a TimeSeriesStore. Memory is fixed at construction:
/// roughly `max_series * retention_ticks * sizeof(double)` plus the record
/// ring — no allocation grows with stream length.
struct TimeSeriesOptions {
  /// How many ticks each series retains (the ring length). Older samples
  /// are overwritten in place.
  size_t retention_ticks = 360;
  /// Hard cap on distinct series; snapshots introducing more are counted
  /// in Stats::dropped_series and otherwise ignored (bounded memory beats
  /// completeness for an in-process monitor).
  size_t max_series = 2048;
  /// Quantiles materialized per histogram family as derived gauge series
  /// `<name>:p<q*100>` (e.g. `hom.serve.stage_seconds{stage="predict"}:p99`)
  /// so quantile-over-time queries need no bucket storage.
  std::vector<double> quantiles = {0.5, 0.95, 0.99};
};

/// \brief In-process, fixed-memory ring of periodic MetricsRegistry
/// snapshots — the short-horizon time-series database behind /timeseriesz
/// and the alert engine.
///
/// Tick() flattens one MetricsSnapshot into per-series rings: plain and
/// labeled counters/gauges keep their registry identity (labeled series are
/// keyed by SeriesKey::ToString(), the same canonical text used in
/// telemetry JSON), histograms are decomposed into derived series — one
/// gauge per configured quantile plus `:count`/`:sum` counters. Each tick
/// also records the stream position (`record`) it was sampled at, so every
/// query answer can be tied to an exact offset in the replayed stream —
/// that is what makes alert firing deterministic across runs.
///
/// Cadence is driven by the caller (the prequential on_progress callback
/// ticks every N *records*, not every N seconds), which keeps the stored
/// history a pure function of the stream.
///
/// Thread safety: one mutex around Tick and the query methods; HTTP handler
/// threads query while the eval thread ticks.
class TimeSeriesStore {
 public:
  enum class SeriesKind : uint8_t { kGauge = 0, kCounter = 1 };

  /// One sample of one series. `tick` is the global tick index (monotone,
  /// never reset), `record` the stream position passed to Tick (-1 when
  /// the caller had none), `value` the sampled (or rate-delta) value — NaN
  /// marks "series absent at this tick".
  struct Point {
    uint64_t tick = 0;
    int64_t record = -1;
    double value = 0.0;
  };

  struct Stats {
    uint64_t ticks = 0;            ///< Tick() calls since construction
    size_t series = 0;             ///< live series count
    uint64_t dropped_series = 0;   ///< series rejected by the max_series cap
    size_t retention_ticks = 0;
    size_t max_series = 0;
    /// Upper bound on ring memory: series * retention * sizeof(double)
    /// plus the shared record ring.
    size_t memory_bound_bytes = 0;
  };

  explicit TimeSeriesStore(TimeSeriesOptions options = {});

  /// Appends one tick sampled from `snapshot` at stream position `record`.
  void Tick(const MetricsSnapshot& snapshot, int64_t record = -1);

  /// Appends one tick sampled straight off the registry — same stored
  /// result as `Tick(registry.Snapshot(), record)` but without
  /// materializing the snapshot's six maps. Series resolution (name
  /// building, ring lookup) happens once per registry epoch, not per
  /// tick: while the registry's series set is unchanged, a tick is one
  /// atomic load + one ring write per series, which is what makes a
  /// per-few-hundred-records monitoring cadence affordable (the hot path
  /// of `homctl serve` and the monitored evaluate loop).
  void TickFromRegistry(const MetricsRegistry& registry, int64_t record = -1);

  uint64_t ticks() const;

  /// Latest sampled value of `series`; NotFound for unknown series. The
  /// value can be NaN if the series vanished from the snapshot.
  Result<double> Latest(std::string_view series) const;

  /// The kind the series was first seen as.
  Result<SeriesKind> Kind(std::string_view series) const;

  /// Raw samples over the last `window` ticks (clamped to retention and to
  /// the ticks actually taken), oldest first. NotFound for unknown series.
  Result<std::vector<Point>> Query(std::string_view series,
                                   size_t window) const;

  /// Counter-reset-aware per-tick deltas over the last `window` ticks,
  /// oldest first: delta[i] = v[i] - v[i-1], except a decrease (process
  /// restart / Reset) yields v[i] — the standard Prometheus rate()
  /// convention of treating a reset as a restart from zero. Points whose
  /// neighbor is NaN are NaN. Valid for gauges too (plain differences).
  Result<std::vector<Point>> QueryRate(std::string_view series,
                                       size_t window) const;

  /// Mean of the finite raw samples over the last `window` ticks; NaN when
  /// none are finite. NotFound for unknown series.
  Result<double> WindowMean(std::string_view series, size_t window) const;

  /// Finite raw samples among the last `window` ticks; 0 for unknown
  /// series (absence of the whole series is still absence).
  size_t FiniteCount(std::string_view series, size_t window) const;

  /// All live series names, sorted.
  std::vector<std::string> SeriesNames() const;

  Stats GetStats() const;

  /// {"ticks", "series", "dropped_series", "retention_ticks", "max_series",
  ///  "memory_bound_bytes"} — the ring-stats block /statusz embeds.
  JsonValue StatsJson() const;

  /// /timeseriesz index payload: the stats block plus the sorted series
  /// list with per-series kind.
  JsonValue IndexJson() const;

  /// /timeseriesz query payload for one series:
  /// {"series", "kind", "mode", "window", "points": [{"tick", "record",
  ///  "value"}...]} with NaN rendered as null. `mode` is "raw" or "rate";
  /// anything else (and unknown series) is an error.
  Result<JsonValue> QueryJson(std::string_view series, size_t window,
                              std::string_view mode) const;

 private:
  struct Series {
    SeriesKind kind = SeriesKind::kGauge;
    uint64_t first_tick = 0;       ///< tick index of the first sample
    std::vector<double> ring;      ///< retention_ticks slots, NaN = absent
    bool bound = false;            ///< scratch flag used during rebinding
  };

  /// One registry series resolved to its ring(s): exactly one of the
  /// handle pointers is set. Handles and Series map nodes are both stable
  /// for the process lifetime, so a binding stays valid until the
  /// registry's series set grows (series_epoch moves) or a snapshot-based
  /// Tick interleaves. `series` is nullptr when the max_series cap
  /// rejected the series — it still counts toward dropped_series every
  /// tick, matching the snapshot path.
  struct RegistryBinding {
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    Series* series = nullptr;
    /// Histogram-only derived rings, parallel to options_.quantiles plus
    /// the trailing :count and :sum series (entries may be nullptr when
    /// capped).
    std::vector<Series*> derived;
  };

  /// Writes `value` into `name`'s ring at `slot`, creating the series if
  /// the cap allows (only then is the name copied). Caller holds mu_.
  void Store(std::string_view name, SeriesKind kind, double value,
             size_t slot);
  /// Shared prologue of the Tick variants: claims the next ring slot,
  /// records the stream position, and NaN-clears every live series at the
  /// slot. Caller holds mu_.
  size_t BeginTickLocked(int64_t record);
  /// Rebuilds bindings_/unsampled_ from the registry's current series
  /// set. Caller holds mu_.
  void RebindLocked(const MetricsRegistry& registry);
  /// Raw window read; caller holds mu_. Returns false for unknown series.
  bool ReadWindow(std::string_view series, size_t window,
                  std::vector<Point>* out) const;

  mutable std::mutex mu_;
  TimeSeriesOptions options_;
  uint64_t ticks_ = 0;
  uint64_t dropped_series_ = 0;
  std::vector<int64_t> records_;  ///< per-tick stream positions (ring)
  std::map<std::string, Series, std::less<>> series_;
  /// TickFromRegistry's cached resolution of registry series to rings.
  /// Valid while bindings_valid_ and the registry epoch is unchanged;
  /// Tick(MetricsSnapshot) invalidates (it can create series the
  /// bindings don't know about).
  std::vector<RegistryBinding> bindings_;
  /// Store series not fed by the bindings (created by snapshot Ticks):
  /// NaN-cleared each bound tick, since absence is data.
  std::vector<Series*> unsampled_;
  /// Registry series rejected by the cap; added to dropped_series_ every
  /// bound tick to match the snapshot path's per-tick accounting.
  size_t bound_dropped_ = 0;
  uint64_t bound_epoch_ = 0;
  bool bindings_valid_ = false;
  /// Per-tick histogram read whose vector capacity is reused (guarded by
  /// mu_ like everything it is used with).
  MetricsSnapshot::HistogramData histogram_scratch_;
};

}  // namespace hom::obs

#endif  // HOM_OBS_TIMESERIES_H_
