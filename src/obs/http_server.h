#ifndef HOM_OBS_HTTP_SERVER_H_
#define HOM_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"

namespace hom::obs {

/// Response of one HTTP handler.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Parsed request line of one GET/HEAD/POST, for handlers that take
/// parameters (e.g. /profilez?seconds=2&hz=199). `path` excludes the query
/// string; `query` holds the percent-decoded key/value pairs ('+' decodes
/// to space, a key with no '=' maps to ""). For POST, `body` holds exactly
/// Content-Length bytes.
struct HttpRequest {
  std::string method = "GET";
  std::string path;
  std::string body;
  std::map<std::string, std::string> query;
  /// All request headers, keys lowercased (header names are
  /// case-insensitive on the wire), values whitespace-trimmed. A
  /// syntactically malformed header line fails the whole request with 400
  /// before any handler runs.
  std::map<std::string, std::string> headers;

  /// The value of query parameter `name`, or `fallback` when absent.
  const char* QueryOr(const std::string& name, const char* fallback) const {
    auto it = query.find(name);
    return it != query.end() ? it->second.c_str() : fallback;
  }

  /// The value of header `name` (lowercase), or `fallback` when absent.
  const char* HeaderOr(const std::string& name, const char* fallback) const {
    auto it = headers.find(name);
    return it != headers.end() ? it->second.c_str() : fallback;
  }
};

/// \brief Minimal dependency-free blocking HTTP/1.1 server for the
/// introspection endpoints (/metrics, /healthz, /statusz).
///
/// Threading model: Start() spawns an accept thread (poll()-based so Stop()
/// is honored within ~250 ms even with no traffic) and one worker thread.
/// Accepted sockets go through a bounded queue; when the queue is full the
/// accept thread answers 503 inline and closes, so a scrape storm cannot
/// pile up file descriptors or block the online path. Every response is
/// `Connection: close` — scrape clients reconnect per pull, and keeping the
/// server single-worker keeps handler execution serialized (handlers need
/// no extra locking beyond what the data they read requires).
///
/// Handlers run on the worker thread; they must not block indefinitely.
/// GET (and HEAD, answered with empty body) is served from Handle()
/// registrations, POST from HandlePost() registrations; other methods get
/// 405, unregistered paths 404, oversized or malformed requests 400. POST
/// bodies are bounded by max_body_bytes (413 beyond it) and must arrive
/// complete within the socket IO timeout — a partial body is answered 400,
/// never waited on indefinitely, so a stalled uploader cannot wedge the
/// single worker.
///
/// The server instruments itself through the global MetricsRegistry:
/// `hom.server.requests{path=...,code=...}`, `hom.server.dropped`, and the
/// `hom.server.request_latency_us` histogram — so scraping /metrics shows
/// the scraper's own cost, and journals kServerStart/kServerStop when a
/// journal is active.
class HttpServer {
 public:
  struct Options {
    /// Loopback by default: the introspection surface is unauthenticated,
    /// so exposing it beyond the host must be an explicit choice.
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port (read it back via port()).
    uint16_t port = 0;
    int backlog = 16;
    /// Accepted-but-unserved connections beyond this are answered 503.
    size_t queue_capacity = 16;
    /// Request heads larger than this are answered 400.
    size_t max_request_bytes = 8192;
    /// POST bodies larger than this are answered 413 without reading
    /// them. Large enough for a full serving checkpoint by default.
    size_t max_body_bytes = 64u << 20;
    /// Per-socket read/write timeout.
    int io_timeout_ms = 2000;
  };

  using Handler = std::function<HttpResponse()>;
  using RequestHandler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer();  ///< All-default Options.
  explicit HttpServer(Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match GET `path`. Must be called before
  /// Start().
  void Handle(std::string path, Handler handler);

  /// Like Handle(), for handlers that read query parameters.
  void Handle(std::string path, RequestHandler handler);

  /// Registers `handler` for exact-match POST `path`; the handler sees the
  /// complete request body. A path may have both a GET and a POST handler.
  /// Must be called before Start().
  void HandlePost(std::string path, RequestHandler handler);

  /// Binds, listens, and spawns the accept + worker threads. Fails if the
  /// port is taken or the address does not parse.
  Status Start();

  /// Stops accepting, drains the queue, joins both threads, closes the
  /// listen socket. Idempotent; also called by the destructor.
  void Stop();

  /// The bound port (resolves option port 0 to the kernel-assigned one).
  /// Valid after a successful Start().
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  Options options_;
  std::map<std::string, RequestHandler> handlers_;
  std::map<std::string, RequestHandler> post_handlers_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;

  std::thread accept_thread_;
  std::thread worker_thread_;
};

}  // namespace hom::obs

#endif  // HOM_OBS_HTTP_SERVER_H_
