#include "obs/alerts.h"

#include <cmath>
#include <set>
#include <utility>

#include "common/file_io.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"

namespace hom::obs {

namespace {

Result<AlertRuleKind> AlertRuleKindFromName(std::string_view name) {
  if (name == "threshold") return AlertRuleKind::kThreshold;
  if (name == "rate_of_change") return AlertRuleKind::kRateOfChange;
  if (name == "absence") return AlertRuleKind::kAbsence;
  if (name == "burn_rate") return AlertRuleKind::kBurnRate;
  return Status::InvalidArgument("unknown alert rule kind: " +
                                 std::string(name));
}

Result<AlertOp> AlertOpFromName(std::string_view name) {
  if (name == "gt") return AlertOp::kGreaterThan;
  if (name == "lt") return AlertOp::kLessThan;
  return Status::InvalidArgument("unknown alert op: " + std::string(name) +
                                 " (want gt or lt)");
}

Result<AlertRule> RuleFromJson(const JsonValue& json, size_t index) {
  if (!json.is_object()) {
    return Status::InvalidArgument("rule " + std::to_string(index) +
                                   ": not an object");
  }
  AlertRule rule;
  for (const auto& [key, value] : json.members()) {
    auto want_string = [&]() -> Result<std::string> {
      if (!value.is_string()) {
        return Status::InvalidArgument("rule " + std::to_string(index) +
                                       ": " + key + " must be a string");
      }
      return value.as_string();
    };
    auto want_number = [&]() -> Result<double> {
      if (!value.is_number()) {
        return Status::InvalidArgument("rule " + std::to_string(index) +
                                       ": " + key + " must be a number");
      }
      return value.as_double();
    };
    if (key == "name") {
      HOM_ASSIGN_OR_RETURN(rule.name, want_string());
    } else if (key == "series") {
      HOM_ASSIGN_OR_RETURN(rule.series, want_string());
    } else if (key == "kind") {
      std::string text;
      HOM_ASSIGN_OR_RETURN(text, want_string());
      HOM_ASSIGN_OR_RETURN(rule.kind, AlertRuleKindFromName(text));
    } else if (key == "op") {
      std::string text;
      HOM_ASSIGN_OR_RETURN(text, want_string());
      HOM_ASSIGN_OR_RETURN(rule.op, AlertOpFromName(text));
    } else if (key == "threshold") {
      HOM_ASSIGN_OR_RETURN(rule.threshold, want_number());
    } else if (key == "window_ticks") {
      double n;
      HOM_ASSIGN_OR_RETURN(n, want_number());
      rule.window_ticks = static_cast<size_t>(n);
    } else if (key == "for_ticks") {
      double n;
      HOM_ASSIGN_OR_RETURN(n, want_number());
      rule.for_ticks = static_cast<size_t>(n);
    } else if (key == "resolve_ticks") {
      double n;
      HOM_ASSIGN_OR_RETURN(n, want_number());
      rule.resolve_ticks = static_cast<size_t>(n);
    } else if (key == "slo") {
      HOM_ASSIGN_OR_RETURN(rule.slo, want_number());
    } else if (key == "severity") {
      HOM_ASSIGN_OR_RETURN(rule.severity, want_string());
    } else if (key == "description") {
      HOM_ASSIGN_OR_RETURN(rule.description, want_string());
    } else {
      return Status::InvalidArgument("rule " + std::to_string(index) +
                                     ": unknown key \"" + key + "\"");
    }
  }
  return rule;
}

Status ValidateRules(const std::vector<AlertRule>& rules) {
  std::set<std::string> names;
  for (size_t i = 0; i < rules.size(); ++i) {
    const AlertRule& rule = rules[i];
    auto fail = [&](const std::string& msg) {
      return Status::InvalidArgument(
          "rule " + std::to_string(i) +
          (rule.name.empty() ? "" : " (\"" + rule.name + "\")") + ": " + msg);
    };
    if (rule.name.empty()) return fail("name is required");
    if (!names.insert(rule.name).second) return fail("duplicate name");
    if (rule.series.empty()) return fail("series is required");
    if (rule.for_ticks == 0) return fail("for_ticks must be >= 1");
    if (rule.resolve_ticks == 0) return fail("resolve_ticks must be >= 1");
    if (rule.window_ticks == 0) return fail("window_ticks must be >= 1");
    if (!std::isfinite(rule.threshold)) {
      return fail("threshold must be finite");
    }
    if (rule.kind == AlertRuleKind::kBurnRate &&
        !(rule.slo > 0.0 && std::isfinite(rule.slo))) {
      return fail("burn_rate rules need slo > 0");
    }
    if (rule.severity != "page" && rule.severity != "warn" &&
        rule.severity != "info") {
      return fail("severity must be page, warn, or info");
    }
  }
  return Status::OK();
}

JsonValue RuleToJson(const AlertRule& rule) {
  JsonValue out = JsonValue::Object();
  out.Set("name", JsonValue(rule.name));
  out.Set("series", JsonValue(rule.series));
  out.Set("kind", JsonValue(std::string(AlertRuleKindName(rule.kind))));
  out.Set("op", JsonValue(std::string(AlertOpName(rule.op))));
  out.Set("threshold", JsonValue(rule.threshold));
  out.Set("window_ticks", JsonValue(static_cast<uint64_t>(rule.window_ticks)));
  out.Set("for_ticks", JsonValue(static_cast<uint64_t>(rule.for_ticks)));
  out.Set("resolve_ticks",
          JsonValue(static_cast<uint64_t>(rule.resolve_ticks)));
  if (rule.kind == AlertRuleKind::kBurnRate) {
    out.Set("slo", JsonValue(rule.slo));
  }
  out.Set("severity", JsonValue(rule.severity));
  if (!rule.description.empty()) {
    out.Set("description", JsonValue(rule.description));
  }
  return out;
}

}  // namespace

std::string_view AlertRuleKindName(AlertRuleKind kind) {
  switch (kind) {
    case AlertRuleKind::kThreshold: return "threshold";
    case AlertRuleKind::kRateOfChange: return "rate_of_change";
    case AlertRuleKind::kAbsence: return "absence";
    case AlertRuleKind::kBurnRate: return "burn_rate";
  }
  return "unknown";
}

std::string_view AlertOpName(AlertOp op) {
  return op == AlertOp::kGreaterThan ? "gt" : "lt";
}

std::string_view AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
  }
  return "unknown";
}

Result<std::vector<AlertRule>> AlertRulesFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("alert config must be a JSON object");
  }
  const JsonValue* rules_json = json.Find("rules");
  if (rules_json == nullptr || !rules_json->is_array()) {
    return Status::InvalidArgument(
        "alert config needs a \"rules\" array");
  }
  for (const auto& [key, value] : json.members()) {
    if (key != "rules") {
      return Status::InvalidArgument("alert config: unknown key \"" + key +
                                     "\"");
    }
  }
  std::vector<AlertRule> rules;
  rules.reserve(rules_json->size());
  for (size_t i = 0; i < rules_json->size(); ++i) {
    AlertRule rule;
    HOM_ASSIGN_OR_RETURN(rule, RuleFromJson(rules_json->at(i), i));
    rules.push_back(std::move(rule));
  }
  Status status = ValidateRules(rules);
  if (!status.ok()) return status;
  return rules;
}

Result<std::vector<AlertRule>> LoadAlertRulesFromFile(
    const std::string& path) {
  std::string text;
  HOM_ASSIGN_OR_RETURN(text, ReadFileToString(path));
  auto parsed = JsonValue::Parse(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().ToString());
  }
  auto rules = AlertRulesFromJson(*parsed);
  if (!rules.ok()) {
    return Status::InvalidArgument(path + ": " + rules.status().ToString());
  }
  return rules;
}

JsonValue AlertRulesToJson(const std::vector<AlertRule>& rules) {
  JsonValue list = JsonValue::Array();
  for (const AlertRule& rule : rules) list.Append(RuleToJson(rule));
  JsonValue out = JsonValue::Object();
  out.Set("rules", std::move(list));
  return out;
}

std::vector<AlertRule> DefaultAlertRules(double error_slo) {
  std::vector<AlertRule> rules;
  {
    AlertRule r;
    r.name = "windowed-error-above-slo";
    r.series = "hom.serving.windowed_error_rate";
    r.kind = AlertRuleKind::kThreshold;
    r.op = AlertOp::kGreaterThan;
    r.threshold = error_slo;
    r.for_ticks = 3;
    r.resolve_ticks = 2;
    r.severity = "page";
    r.description = "windowed error rate above the configured SLO";
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "error-budget-burn";
    r.series = "hom.serving.windowed_error_rate";
    r.kind = AlertRuleKind::kBurnRate;
    r.op = AlertOp::kGreaterThan;
    r.threshold = 2.0;
    r.window_ticks = 10;
    r.for_ticks = 2;
    r.resolve_ticks = 2;
    r.slo = error_slo;
    r.severity = "page";
    r.description =
        "error budget burning at >= 2x the rate the SLO allows";
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "posterior-entropy-high";
    r.series = "hom.serving.posterior_entropy_ratio";
    r.kind = AlertRuleKind::kThreshold;
    r.op = AlertOp::kGreaterThan;
    r.threshold = 0.85;
    r.for_ticks = 5;
    r.resolve_ticks = 3;
    r.severity = "warn";
    r.description =
        "sustained posterior uncertainty: no stored concept explains the "
        "stream (possible novel concept)";
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "drift-pressure-sustained";
    r.series = "hom.serving.drift_suspected";
    r.kind = AlertRuleKind::kThreshold;
    r.op = AlertOp::kGreaterThan;
    r.threshold = 0.5;
    r.for_ticks = 4;
    r.resolve_ticks = 2;
    r.severity = "warn";
    r.description =
        "drift suspected but unconfirmed for several ticks (hysteresis "
        "dwell)";
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "checkpoint-stale";
    r.series = "hom.serving.checkpoint_age_seconds";
    r.kind = AlertRuleKind::kThreshold;
    r.op = AlertOp::kGreaterThan;
    r.threshold = 900.0;
    r.for_ticks = 1;
    r.resolve_ticks = 1;
    r.severity = "warn";
    r.description =
        "last checkpoint older than 15 minutes (age is -1 until the first "
        "checkpoint, so runs without checkpointing never fire this)";
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "replication-lag-high";
    r.series = "hom.replication.lag_records";
    r.kind = AlertRuleKind::kThreshold;
    r.op = AlertOp::kGreaterThan;
    r.threshold = 5000.0;
    r.for_ticks = 3;
    r.resolve_ticks = 2;
    r.severity = "warn";
    r.description =
        "standby trails the primary by more than 5000 records; a failover "
        "now would replay that much stream (threshold, not absence: runs "
        "without a standby publish no replication series and never fire "
        "this)";
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "replication-heartbeat-lost";
    r.series = "hom.replication.heartbeat_age_seconds";
    r.kind = AlertRuleKind::kThreshold;
    r.op = AlertOp::kGreaterThan;
    r.threshold = 30.0;
    r.for_ticks = 2;
    r.resolve_ticks = 1;
    r.severity = "page";
    r.description =
        "standby has not heard from its primary for 30s; promotion is "
        "imminent (same threshold-only caveat as replication-lag-high)";
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "health-series-absent";
    r.series = "hom.serving.windowed_error_rate";
    r.kind = AlertRuleKind::kAbsence;
    r.window_ticks = 5;
    r.for_ticks = 1;
    r.resolve_ticks = 1;
    r.severity = "info";
    r.description =
        "model-health gauges stopped arriving in metric snapshots";
    rules.push_back(std::move(r));
  }
  return rules;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules) {
  rules_.reserve(rules.size());
  for (AlertRule& rule : rules) {
    RuleStatus status;
    status.rule = std::move(rule);
    status.last_value = std::nan("");
    rules_.push_back(std::move(status));
  }
#ifndef HOM_DISABLE_METRICS
  // Resolve the per-rule state gauges once: WithLabels takes the family
  // mutex and builds a canonical label string, which is too expensive for
  // every tick of every rule. The cached handle is a lock-free atomic.
  state_gauges_.reserve(rules_.size());
  for (const RuleStatus& rs : rules_) {
    state_gauges_.push_back(MetricsRegistry::Global()
                                .GetGaugeFamily("hom.alerts.state")
                                ->WithLabels({{"rule", rs.rule.name}}));
  }
#endif
}

Result<std::unique_ptr<AlertEngine>> AlertEngine::Make(
    std::vector<AlertRule> rules) {
  Status status = ValidateRules(rules);
  if (!status.ok()) return status;
  // Not make_unique: the constructor is private.
  return std::unique_ptr<AlertEngine>(new AlertEngine(std::move(rules)));
}

double AlertEngine::RuleValue(const AlertRule& rule,
                              const TimeSeriesStore& store) {
  switch (rule.kind) {
    case AlertRuleKind::kThreshold: {
      auto latest = store.Latest(rule.series);
      return latest.ok() ? *latest : std::nan("");
    }
    case AlertRuleKind::kRateOfChange: {
      auto deltas = store.QueryRate(rule.series, rule.window_ticks);
      if (!deltas.ok()) return std::nan("");
      double sum = 0.0;
      size_t n = 0;
      for (const TimeSeriesStore::Point& p : *deltas) {
        if (std::isfinite(p.value)) {
          sum += p.value;
          ++n;
        }
      }
      return n == 0 ? std::nan("") : sum / static_cast<double>(n);
    }
    case AlertRuleKind::kAbsence:
      return static_cast<double>(
          store.FiniteCount(rule.series, rule.window_ticks));
    case AlertRuleKind::kBurnRate: {
      auto mean = store.WindowMean(rule.series, rule.window_ticks);
      if (!mean.ok() || !std::isfinite(*mean)) return std::nan("");
      return *mean / rule.slo;
    }
  }
  return std::nan("");
}

void AlertEngine::EvaluateTick(const TimeSeriesStore& store, int64_t record) {
  size_t firing_now = 0;
  size_t evaluated = 0;
  struct Fired {
    std::string rule_name;
    size_t rule_index;
    bool fired;
    double value;
  };
  std::vector<Fired> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t tick = tick_++;
    for (size_t i = 0; i < rules_.size(); ++i) {
      RuleStatus& rs = rules_[i];
      const AlertRule& rule = rs.rule;
      const double value = RuleValue(rule, store);
      bool cond;
      if (rule.kind == AlertRuleKind::kAbsence) {
        cond = value == 0.0;
      } else if (!std::isfinite(value)) {
        // An unevaluable rule (unknown series, empty window) never fires —
        // absence detection is what the absence kind is for.
        cond = false;
      } else {
        cond = rule.op == AlertOp::kGreaterThan ? value > rule.threshold
                                                : value < rule.threshold;
      }
      rs.last_value = value;
      rs.evaluated = true;
      ++rs.consecutive_true;
      ++rs.consecutive_false;
      if (cond) {
        rs.consecutive_false = 0;
      } else {
        rs.consecutive_true = 0;
      }
      ++evaluations_;
      ++evaluated;

      if (rs.state != AlertState::kFiring) {
        rs.state = cond ? AlertState::kPending : AlertState::kInactive;
        if (cond && rs.consecutive_true >= rule.for_ticks) {
          rs.state = AlertState::kFiring;
          ++rs.fired_count;
          rs.fired_record = record;
          ++transitions_;
          recent_.push_back({rule.name, true, tick, record, value});
          events.push_back({rule.name, i, true, value});
        }
      } else if (!cond && rs.consecutive_false >= rule.resolve_ticks) {
        rs.state = AlertState::kInactive;
        rs.resolved_record = record;
        ++transitions_;
        recent_.push_back({rule.name, false, tick, record, value});
        events.push_back({rule.name, i, false, value});
      }
      if (rs.state == AlertState::kFiring) ++firing_now;
#ifndef HOM_DISABLE_METRICS
      state_gauges_[i]->Set(static_cast<double>(rs.state));
#endif
    }
    while (recent_.size() > kTransitionHistory) recent_.pop_front();
  }

  // Journal + metrics outside the lock: Emit takes the journal's own
  // mutex, and the gauges are registry-side.
  for (const Fired& e : events) {
    EmitIfActive(e.fired ? EventType::kAlertFiring : EventType::kAlertResolved,
                 e.rule_name, record, static_cast<int64_t>(e.rule_index), -1,
                 e.value);
  }
  HOM_COUNTER_ADD("hom.alerts.evaluations", evaluated);
  HOM_COUNTER_ADD("hom.alerts.transitions", events.size());
  HOM_GAUGE_SET("hom.alerts.firing", firing_now);
}

size_t AlertEngine::num_rules() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_.size();
}

size_t AlertEngine::firing() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const RuleStatus& rs : rules_) {
    if (rs.state == AlertState::kFiring) ++n;
  }
  return n;
}

size_t AlertEngine::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const RuleStatus& rs : rules_) {
    if (rs.state == AlertState::kPending) ++n;
  }
  return n;
}

uint64_t AlertEngine::evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

uint64_t AlertEngine::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

std::vector<AlertEngine::RuleStatus> AlertEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_;
}

JsonValue AlertEngine::StatusJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue out = JsonValue::Object();
  size_t firing = 0;
  size_t pending = 0;
  JsonValue list = JsonValue::Array();
  for (const RuleStatus& rs : rules_) {
    if (rs.state == AlertState::kFiring) ++firing;
    if (rs.state == AlertState::kPending) ++pending;
    JsonValue entry = RuleToJson(rs.rule);
    entry.Set("state", JsonValue(std::string(AlertStateName(rs.state))));
    entry.Set("value", rs.evaluated && std::isfinite(rs.last_value)
                           ? JsonValue(rs.last_value)
                           : JsonValue());
    entry.Set("consecutive_true", JsonValue(rs.consecutive_true));
    entry.Set("consecutive_false", JsonValue(rs.consecutive_false));
    entry.Set("fired_count", JsonValue(rs.fired_count));
    entry.Set("fired_record", JsonValue(rs.fired_record));
    entry.Set("resolved_record", JsonValue(rs.resolved_record));
    list.Append(std::move(entry));
  }
  out.Set("firing", JsonValue(static_cast<uint64_t>(firing)));
  out.Set("pending", JsonValue(static_cast<uint64_t>(pending)));
  out.Set("evaluations", JsonValue(evaluations_));
  out.Set("transitions", JsonValue(transitions_));
  out.Set("ticks", JsonValue(tick_));
  out.Set("rules", std::move(list));
  return out;
}

JsonValue AlertEngine::SummaryJson(size_t last_transitions) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue out = JsonValue::Object();
  size_t firing = 0;
  size_t pending = 0;
  JsonValue firing_names = JsonValue::Array();
  for (const RuleStatus& rs : rules_) {
    if (rs.state == AlertState::kFiring) {
      ++firing;
      firing_names.Append(JsonValue(rs.rule.name));
    }
    if (rs.state == AlertState::kPending) ++pending;
  }
  out.Set("rules", JsonValue(static_cast<uint64_t>(rules_.size())));
  out.Set("firing", JsonValue(static_cast<uint64_t>(firing)));
  out.Set("pending", JsonValue(static_cast<uint64_t>(pending)));
  out.Set("transitions", JsonValue(transitions_));
  out.Set("firing_rules", std::move(firing_names));
  JsonValue recent = JsonValue::Array();
  size_t begin =
      recent_.size() > last_transitions ? recent_.size() - last_transitions
                                        : 0;
  for (size_t i = begin; i < recent_.size(); ++i) {
    const Transition& t = recent_[i];
    JsonValue entry = JsonValue::Object();
    entry.Set("rule", JsonValue(t.rule));
    entry.Set("event", JsonValue(t.fired ? "fired" : "resolved"));
    entry.Set("tick", JsonValue(t.tick));
    entry.Set("record", JsonValue(t.record));
    entry.Set("value",
              std::isfinite(t.value) ? JsonValue(t.value) : JsonValue());
    recent.Append(std::move(entry));
  }
  out.Set("recent_transitions", std::move(recent));
  return out;
}

}  // namespace hom::obs
