#include "obs/metric_help.h"

#include <map>
#include <mutex>

namespace hom::obs {

namespace {

struct HelpEntry {
  const char* name;
  const char* help;
};

/// Built-in help for the hom.* metric families (dotted registry names).
/// Kept alphabetical so a scrape diff and this table read the same way.
constexpr HelpEntry kBuiltinHelp[] = {
    {"hom.alerts.evaluations",
     "Alert rule evaluations performed across all snapshot ticks."},
    {"hom.alerts.firing", "Alert rules currently in the firing state."},
    {"hom.alerts.state",
     "Per-rule alert state: 0 inactive, 1 pending, 2 firing."},
    {"hom.alerts.transitions",
     "Alert fire/resolve transitions since startup."},
    {"hom.build.count", "Offline model builds completed."},
    {"hom.build.final_classifiers_trained",
     "Concept classifiers trained for the final model."},
    {"hom.build.last_seconds", "Wall seconds of the most recent build."},
    {"hom.build.records", "Historical records consumed by builds."},
    {"hom.cluster.candidates",
     "Merge candidates considered during concept clustering."},
    {"hom.cluster.chunks", "Input chunks fed to concept clustering."},
    {"hom.cluster.classifiers_reused",
     "Classifier trainings avoided by reuse during clustering."},
    {"hom.cluster.classifiers_trained",
     "Classifiers trained during concept clustering."},
    {"hom.cluster.concepts", "Stable concepts in the final clustering."},
    {"hom.cluster.early_terminations",
     "Merge evaluations cut short by the quality bound."},
    {"hom.cluster.merges", "Cluster merges committed."},
    {"hom.cluster.simcache.hit_rate",
     "Similarity-cache hit rate over the last build."},
    {"hom.cluster.simcache.hits", "Similarity-cache hits."},
    {"hom.cluster.simcache.misses", "Similarity-cache misses."},
    {"hom.concept.activations",
     "Times the concept became the active predictor."},
    {"hom.concept.brier_score",
     "Mean multi-class Brier score of sampled probability predictions "
     "attributed to the concept (0 = perfectly calibrated and sharp)."},
    {"hom.concept.error_rate", "Cumulative error rate of the concept."},
    {"hom.concept.records", "Predictions attributed to the concept."},
    {"hom.concept.windowed_error_rate",
     "Error rate of the concept over its recent-record window."},
    {"hom.dendrogram.cut_keeps", "Dendrogram cut decisions keeping a merge."},
    {"hom.dendrogram.cut_splits",
     "Dendrogram cut decisions splitting a merge."},
    {"hom.eval.records", "Records scored by evaluation harnesses."},
    {"hom.eval.records_per_sec",
     "Throughput of the most recent evaluation run."},
    {"hom.hmm.baum_welch_steps", "Baum-Welch iterations run."},
    {"hom.hmm.forward_calls", "HMM forward-pass invocations."},
    {"hom.hmm.viterbi_calls", "HMM Viterbi invocations."},
    {"hom.journal.dropped",
     "Journal events evicted from the ring, by event type."},
    {"hom.merge_queue.pops", "Merge-queue pops."},
    {"hom.merge_queue.pushes", "Merge-queue pushes."},
    {"hom.merge_queue.stale_pops",
     "Merge-queue pops discarded as stale."},
    {"hom.online.base_evaluations",
     "Base-classifier evaluations during online prediction."},
    {"hom.online.concept_switches",
     "Active-concept switches during online serving."},
    {"hom.online.input_imputed",
     "Malformed records repaired by the input policy."},
    {"hom.online.input_rejected",
     "Malformed records dropped by the input policy."},
    {"hom.online.observations", "Labeled records observed online."},
    {"hom.online.predict_latency_us",
     "Per-record prediction latency in microseconds (sampled)."},
    {"hom.online.psi_evaluations",
     "Concept-similarity (psi) evaluations online."},
    {"hom.par.items", "Work items executed by the thread pool."},
    {"hom.par.parallel_loops", "ParallelFor loops dispatched."},
    {"hom.par.threads", "Thread-pool size of the last parallel build."},
    {"hom.predict.batch_records",
     "Records classified through the batched prediction entry point."},
    {"hom.predict.concepts_skipped_total",
     "Concept evaluations avoided by zero weights and Section III-C "
     "pruning."},
    {"hom.replication.acked_sequence",
     "Checkpoint sequence the standby last acknowledged to this primary."},
    {"hom.replication.applied",
     "Replication checkpoints applied by this standby."},
    {"hom.replication.applied_sequence",
     "Checkpoint sequence this standby last applied."},
    {"hom.replication.apply_failures",
     "Uploaded checkpoints rejected by this standby (corrupt, stale, or "
     "mismatched)."},
    {"hom.replication.heartbeat_age_seconds",
     "Seconds since the standby last heard from its primary."},
    {"hom.replication.lag_records",
     "Records the primary has scored beyond the standby's applied "
     "checkpoint."},
    {"hom.replication.promotions",
     "Standby-to-primary promotions performed by this process."},
    {"hom.replication.ship_attempts",
     "Checkpoint upload attempts sent on the wire (including retries)."},
    {"hom.replication.ship_failures",
     "Checkpoint ships abandoned after the retry budget."},
    {"hom.replication.ship_retries",
     "Checkpoint upload retries triggered by transport faults or "
     "rejections."},
    {"hom.replication.shipped_bytes",
     "Bytes of checkpoint payload acknowledged by the standby."},
    {"hom.replication.ships",
     "Checkpoints successfully shipped to the standby."},
    {"hom.replication.swap_pause_ms",
     "Milliseconds the serving loop paused for the most recent hot model "
     "swap."},
    {"hom.replication.swaps",
     "Hot model swaps completed under live traffic."},
    {"hom.serve.stage_seconds",
     "Per-request stage latency (parse/sanitize/predict/observe/"
     "checkpoint and HTTP stages) in seconds."},
    {"hom.server.dropped",
     "HTTP requests shed with 503 by the bounded queue."},
    {"hom.server.request_latency_us",
     "Introspection-server request latency in microseconds."},
    {"hom.server.requests",
     "Introspection-server requests, by path and status code."},
    {"hom.serving.active_concept",
     "Concept id the serving loop currently predicts with (-1 none)."},
    {"hom.serving.checkpoint_age_seconds",
     "Seconds since the last serving checkpoint (-1 before the first)."},
    {"hom.serving.drift_dwell",
     "Records spent in the current unconfirmed drift-suspicion stretch."},
    {"hom.serving.drift_suspected",
     "1 while the drift detector suspects (but has not confirmed) a "
     "concept change, else 0."},
    {"hom.serving.error_rate", "Cumulative serving error rate."},
    {"hom.serving.error_slo",
     "Configured windowed-error SLO the alert pack compares against."},
    {"hom.serving.errors", "Serving prediction errors so far."},
    {"hom.serving.posterior",
     "Drift-filter posterior probability per concept."},
    {"hom.serving.posterior_entropy",
     "Shannon entropy (nats) of the drift-filter posterior."},
    {"hom.serving.posterior_entropy_ratio",
     "Posterior entropy normalized by ln(num concepts): 1 = maximally "
     "uncertain, 0 = fully confident."},
    {"hom.serving.prior", "Drift-filter prior probability per concept."},
    {"hom.serving.records", "Records scored by the serving loop."},
    {"hom.serving.top_concept_margin",
     "Posterior gap between the top two concepts (confidence margin)."},
    {"hom.serving.windowed_error_rate",
     "Error rate over the recent progress window (the SLO signal)."},
    {"hom.timeseries.dropped_series",
     "Series rejected by the time-series store's max_series cap."},
    {"hom.timeseries.series", "Live series in the time-series store."},
    {"hom.timeseries.ticks", "Snapshot ticks taken by the time-series "
     "store."},
    {"hom.trace.dropped",
     "Spans evicted from the in-process trace ring by overflow."},
    {"hom.trace.spans", "Distributed-trace spans recorded."},
    {"hom_build_info",
     "Build/model identity; value is always 1, the labels carry the "
     "information."},
};

std::mutex g_mu;

std::map<std::string, std::string, std::less<>>* HelpTable() {
  static auto* table = [] {
    auto* t = new std::map<std::string, std::string, std::less<>>();
    for (const HelpEntry& entry : kBuiltinHelp) {
      t->emplace(entry.name, entry.help);
    }
    return t;
  }();
  return table;
}

}  // namespace

void RegisterMetricHelp(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(g_mu);
  (*HelpTable())[std::string(name)] = std::string(help);
}

std::string FindMetricHelp(std::string_view name) {
  std::lock_guard<std::mutex> lock(g_mu);
  const auto& table = *HelpTable();
  auto it = table.find(name);
  return it == table.end() ? std::string() : it->second;
}

std::vector<std::string> MetricHelpNames() {
  std::lock_guard<std::mutex> lock(g_mu);
  std::vector<std::string> names;
  const auto& table = *HelpTable();
  names.reserve(table.size());
  for (const auto& [name, help] : table) names.push_back(name);
  return names;
}

std::string EscapeHelpText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace hom::obs
