#ifndef HOM_OBS_ALERTS_H_
#define HOM_OBS_ALERTS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/json.h"
#include "obs/timeseries.h"

namespace hom::obs {

/// What a rule computes from its series each tick.
enum class AlertRuleKind : uint8_t {
  kThreshold = 0,    ///< latest raw sample vs threshold
  kRateOfChange,     ///< mean per-tick delta over `window_ticks` vs threshold
  kAbsence,          ///< no finite sample in `window_ticks` ⇒ condition true
  kBurnRate,         ///< window mean / `slo` vs threshold (error budget burn)
};

enum class AlertOp : uint8_t { kGreaterThan = 0, kLessThan };

/// Lifecycle of one rule: inactive → pending (condition true but not yet
/// `for_ticks` consecutive) → firing → (after `resolve_ticks` consecutive
/// false) inactive again. The pending stage is the `for:` hysteresis that
/// keeps a single noisy tick from paging.
enum class AlertState : uint8_t { kInactive = 0, kPending, kFiring };

std::string_view AlertRuleKindName(AlertRuleKind kind);
std::string_view AlertOpName(AlertOp op);
std::string_view AlertStateName(AlertState state);

/// One declarative alert rule over a TimeSeriesStore series.
struct AlertRule {
  std::string name;         ///< unique within a pack
  std::string series;       ///< TimeSeriesStore series key
  AlertRuleKind kind = AlertRuleKind::kThreshold;
  AlertOp op = AlertOp::kGreaterThan;
  double threshold = 0.0;
  size_t window_ticks = 1;  ///< lookback for rate/absence/burn-rate
  size_t for_ticks = 1;     ///< consecutive true ticks before firing
  size_t resolve_ticks = 1; ///< consecutive false ticks before resolving
  double slo = 0.0;         ///< burn-rate denominator (required > 0 there)
  std::string severity = "warn";  ///< "page" | "warn" | "info"
  std::string description;
};

/// Parses {"rules": [{...}]} (see DESIGN.md §12 for the field table).
/// Unknown keys are rejected so a typo'd config fails loudly instead of
/// silently never firing.
Result<std::vector<AlertRule>> AlertRulesFromJson(const JsonValue& json);

/// Reads and parses a JSON rules file.
Result<std::vector<AlertRule>> LoadAlertRulesFromFile(
    const std::string& path);

/// Inverse of AlertRulesFromJson (canonical form, round-trips).
JsonValue AlertRulesToJson(const std::vector<AlertRule>& rules);

/// The built-in model-health pack, parameterized by the windowed-error SLO:
/// error-above-SLO, error-budget burn-rate, sustained high posterior
/// entropy (possible novel concept), sustained drift suspicion, stale
/// checkpoint, and health-series absence.
std::vector<AlertRule> DefaultAlertRules(double error_slo);

/// \brief Declarative alert engine evaluated once per TimeSeriesStore tick.
///
/// EvaluateTick() runs every rule against the store's latest window,
/// advances the per-rule state machine, journals kAlertFiring /
/// kAlertResolved transitions (with the stream position of the tick, so a
/// deterministic replay fires at identical record offsets), and publishes
/// `hom.alerts.{firing,evaluations,transitions}` plus the per-rule
/// `hom.alerts.state{rule=...}` gauge (0 = inactive, 1 = pending,
/// 2 = firing).
///
/// Thread safety: one mutex; the eval thread evaluates while HTTP handlers
/// read StatusJson.
class AlertEngine {
 public:
  /// Current status of one rule, copied out for /alertz and /statusz.
  struct RuleStatus {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    double last_value = 0.0;       ///< rule value at the last evaluation
    bool evaluated = false;        ///< false before the first tick
    uint64_t consecutive_true = 0;
    uint64_t consecutive_false = 0;
    uint64_t fired_count = 0;      ///< lifetime fire transitions
    int64_t fired_record = -1;     ///< stream position of the last fire
    int64_t resolved_record = -1;  ///< stream position of the last resolve
  };

  /// One fire/resolve transition, newest kept in a bounded history for the
  /// /statusz summary block.
  struct Transition {
    std::string rule;
    bool fired = false;  ///< true = fired, false = resolved
    uint64_t tick = 0;
    int64_t record = -1;
    double value = 0.0;
  };

  /// Validates the pack (unique non-empty names, sane windows, burn-rate
  /// rules carry an SLO) and builds the engine. Heap-allocated because the
  /// engine owns a mutex and must stay put once handlers hold a pointer.
  static Result<std::unique_ptr<AlertEngine>> Make(
      std::vector<AlertRule> rules);

  /// Evaluates every rule against `store`'s latest tick, taken at stream
  /// position `record`.
  void EvaluateTick(const TimeSeriesStore& store, int64_t record);

  size_t num_rules() const;
  size_t firing() const;
  size_t pending() const;
  uint64_t evaluations() const;
  uint64_t transitions() const;

  std::vector<RuleStatus> Snapshot() const;

  /// /alertz payload: {"firing", "pending", "evaluations", "transitions",
  ///  "rules": [{...per-rule status...}]}.
  JsonValue StatusJson() const;

  /// Compact /statusz block: counts plus the most recent
  /// `last_transitions` fire/resolve transitions.
  JsonValue SummaryJson(size_t last_transitions = 8) const;

 private:
  explicit AlertEngine(std::vector<AlertRule> rules);

  /// The rule's condition input value for this tick (NaN when the series
  /// is unknown or the window holds no usable data).
  static double RuleValue(const AlertRule& rule, const TimeSeriesStore& store);

  static constexpr size_t kTransitionHistory = 64;

  mutable std::mutex mu_;
  std::vector<RuleStatus> rules_;
  /// Per-rule `hom.alerts.state{rule=...}` handles, resolved once in the
  /// constructor so the hot evaluation loop never touches the family mutex.
  /// Parallel to `rules_`; empty when metrics are compiled out.
  std::vector<Gauge*> state_gauges_;
  std::deque<Transition> recent_;
  uint64_t evaluations_ = 0;
  uint64_t transitions_ = 0;
  uint64_t tick_ = 0;
};

}  // namespace hom::obs

#endif  // HOM_OBS_ALERTS_H_
