#ifndef HOM_OBS_METRIC_HELP_H_
#define HOM_OBS_METRIC_HELP_H_

#include <string>
#include <string_view>
#include <vector>

namespace hom::obs {

/// \brief Per-metric help-string registry backing the Prometheus `# HELP`
/// exposition lines.
///
/// Keyed by the registry's dotted metric name (`hom.serving.records`, not
/// the underscored Prometheus rendering); the exposition encoder does the
/// name mapping and `_total` suffixing itself. Ships with a built-in table
/// covering the hom.* families; instrumentation that invents a new family
/// registers its text once at startup with RegisterMetricHelp (last
/// registration wins, so callers can override a built-in).
///
/// Thread-safe; lookups happen per scrape, registrations at init time.

/// Registers (or overrides) the help text for `name`.
void RegisterMetricHelp(std::string_view name, std::string_view help);

/// The registered help text for `name`, or "" when none exists.
std::string FindMetricHelp(std::string_view name);

/// All dotted names with registered help, sorted (tests sweep this to
/// cross-check the exposition).
std::vector<std::string> MetricHelpNames();

/// `# HELP` payload escaping per the text format 0.0.4: backslash and
/// newline only (quotes are not escaped in help text).
std::string EscapeHelpText(std::string_view text);

}  // namespace hom::obs

#endif  // HOM_OBS_METRIC_HELP_H_
