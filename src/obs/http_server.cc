#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/request_timer.h"
#include "obs/trace_context.h"

namespace hom::obs {

namespace {

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

constexpr int kStopPollMs = 250;

const char* StatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// Serializes and writes one full response; best-effort (the peer may have
/// gone away — scrapers time out and retry).
void WriteResponse(int fd, const HttpResponse& response, bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += response.body;
  size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

/// Reads until the end of the request head ("\r\n\r\n"); bytes past the
/// terminator (the start of a POST body) stay in *buf after *head_end.
/// Only the head counts against max_bytes.
bool ReadRequestHead(int fd, size_t max_bytes, std::string* buf,
                     size_t* head_end) {
  char chunk[1024];
  while (true) {
    size_t pos = buf->find("\r\n\r\n");
    if (pos != std::string::npos) {
      *head_end = pos + 4;
    } else if ((pos = buf->find("\n\n")) != std::string::npos) {
      *head_end = pos + 2;
    }
    if (pos != std::string::npos) return *head_end <= max_bytes;
    // No terminator yet: everything buffered so far is head.
    if (buf->size() > max_bytes) return false;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf->append(chunk, static_cast<size_t>(n));
  }
}

/// Appends to *body until it holds `want` bytes total. False when the
/// peer stalls past the socket timeout or closes early — the caller turns
/// that into 400 instead of blocking the worker forever.
bool ReadBody(int fd, size_t want, std::string* body) {
  char chunk[4096];
  while (body->size() < want) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // timeout (EAGAIN) or EOF mid-body
    body->append(chunk, static_cast<size_t>(n));
  }
  body->resize(want);
  return true;
}

/// Case-insensitive Content-Length lookup in the raw head block. Returns
/// -1 when absent or malformed (both are a 400 for POST).
int64_t ContentLengthOf(std::string_view head) {
  size_t pos = head.find('\n');  // skip the request line
  while (pos != std::string_view::npos && pos + 1 < head.size()) {
    size_t line_start = pos + 1;
    size_t line_end = head.find('\n', line_start);
    std::string_view line = head.substr(
        line_start, line_end == std::string_view::npos ? std::string_view::npos
                                                       : line_end - line_start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    constexpr std::string_view kName = "content-length";
    size_t colon = line.find(':');
    if (colon == kName.size()) {
      bool match = true;
      for (size_t i = 0; i < kName.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) != kName[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        std::string_view v = line.substr(colon + 1);
        while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
          v.remove_prefix(1);
        }
        while (!v.empty() && (v.back() == ' ' || v.back() == '\t')) {
          v.remove_suffix(1);
        }
        if (v.empty() || v.size() > 18) return -1;
        int64_t value = 0;
        for (char c : v) {
          if (c < '0' || c > '9') return -1;
          value = value * 10 + (c - '0');
        }
        return value;
      }
    }
    pos = line_end;
  }
  return -1;
}

/// Parses every header line after the request line into lowercased-key
/// pairs (last occurrence wins). Returns false on a syntactically
/// malformed line — no colon, empty name, or whitespace inside the name —
/// which the caller answers with 400.
bool ParseHeaderLines(std::string_view head,
                      std::map<std::string, std::string>* out) {
  size_t pos = head.find('\n');  // skip the request line
  while (pos != std::string_view::npos && pos + 1 < head.size()) {
    size_t line_start = pos + 1;
    size_t line_end = head.find('\n', line_start);
    std::string_view line = head.substr(
        line_start, line_end == std::string_view::npos ? std::string_view::npos
                                                       : line_end - line_start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = line_end;
    if (line.empty()) continue;  // the blank terminator line
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    std::string name;
    name.reserve(colon);
    for (size_t i = 0; i < colon; ++i) {
      unsigned char c = static_cast<unsigned char>(line[i]);
      if (std::isspace(c) || std::iscntrl(c)) return false;
      name.push_back(static_cast<char>(std::tolower(c)));
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    (*out)[std::move(name)] = std::string(value);
  }
  return true;
}

void SetIoTimeout(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Percent-decodes one query component in place ('+' becomes space,
/// malformed escapes pass through literally).
std::string UrlDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < in.size() && std::isxdigit(in[i + 1]) &&
               std::isxdigit(in[i + 2])) {
      auto nibble = [](char h) {
        return h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10;
      };
      out += static_cast<char>(nibble(in[i + 1]) * 16 + nibble(in[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

/// Splits "a=1&b=2" into decoded pairs; a key with no '=' maps to "".
std::map<std::string, std::string> ParseQuery(std::string_view query) {
  std::map<std::string, std::string> out;
  while (!query.empty()) {
    size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view()
                                          : query.substr(amp + 1);
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      out[UrlDecode(pair)] = "";
    } else {
      out[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
  return out;
}

void CountRequest(const std::string& path, int code) {
  // Labels vary per call, so this goes through the family directly (the
  // HOM_*_LABELED macros cache one handle per call site).
  static CounterFamily* family =
      MetricsRegistry::Global().GetCounterFamily("hom.server.requests");
  family->WithLabels({{"path", path}, {"code", std::to_string(code)}})->Add();
}

}  // namespace

HttpServer::HttpServer() : HttpServer(Options()) {}

HttpServer::HttpServer(Options options) : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] =
      [handler = std::move(handler)](const HttpRequest&) { return handler(); };
}

void HttpServer::Handle(std::string path, RequestHandler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

void HttpServer::HandlePost(std::string path, RequestHandler handler) {
  post_handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Internal("bind " + options_.bind_address + ":" +
                                     std::to_string(options_.port) + ": " +
                                     std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  worker_thread_ = std::thread([this] { WorkerLoop(); });
  EmitIfActive(EventType::kServerStart, "server", -1, -1, port_);
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (worker_thread_.joinable()) worker_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int fd : queue_) ::close(fd);
    queue_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  EmitIfActive(EventType::kServerStop, "server", -1, -1, port_);
}

void HttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kStopPollMs);
    if (ready <= 0) continue;  // timeout (stop check) or EINTR
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetIoTimeout(fd, options_.io_timeout_ms);
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() < options_.queue_capacity) {
        queue_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Overload: answer inline rather than stall the accept loop.
      HOM_COUNTER_INC("hom.server.dropped");
      HttpResponse overloaded;
      overloaded.status = 503;
      overloaded.body = "overloaded\n";
      WriteResponse(fd, overloaded, /*head_only=*/false);
      ::close(fd);
    }
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (!queue_.empty()) {
        fd = queue_.front();
        queue_.pop_front();
      } else if (stop_.load(std::memory_order_acquire)) {
        return;  // stop requested and queue drained
      }
    }
    if (fd >= 0) {
      ServeConnection(fd);
      ::close(fd);
    }
  }
}

void HttpServer::ServeConnection(int fd) {
  auto start = std::chrono::steady_clock::now();
  std::string buf;
  size_t head_end = 0;
  if (!ReadRequestHead(fd, options_.max_request_bytes, &buf, &head_end)) {
    HttpResponse bad;
    bad.status = 400;
    bad.body = "malformed request\n";
    WriteResponse(fd, bad, /*head_only=*/false);
    CountRequest("(malformed)", 400);
    return;
  }
  std::string_view head(buf.data(), head_end);
  // Request line: METHOD SP TARGET SP VERSION.
  size_t line_end = head.find('\n');
  std::string line(head.substr(0, line_end));
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? sp1 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    HttpResponse bad;
    bad.status = 400;
    bad.body = "malformed request line\n";
    WriteResponse(fd, bad, /*head_only=*/false);
    CountRequest("(malformed)", 400);
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  HttpRequest request;
  request.method = method;
  if (size_t query = target.find('?'); query != std::string::npos) {
    request.query = ParseQuery(std::string_view(target).substr(query + 1));
    target.resize(query);
  }
  request.path = target;
  if (!ParseHeaderLines(head, &request.headers)) {
    HttpResponse bad;
    bad.status = 400;
    bad.body = "malformed header line\n";
    WriteResponse(fd, bad, /*head_only=*/false);
    CountRequest("(malformed)", 400);
    return;
  }
  auto parsed = std::chrono::steady_clock::now();
  RecordStageSeconds("http_parse",
                     std::chrono::duration<double>(parsed - start).count());

  // A traced caller (the shipper, homctl swap) announces itself with a
  // `traceparent` header; the handler then runs inside a server-kind span
  // whose context is installed thread-locally, so journal emits and nested
  // spans on this thread join the caller's trace. An invalid traceparent
  // value is ignored (per W3C), not rejected — the request still runs.
  auto invoke = [&](const RequestHandler& handler) -> HttpResponse {
    auto traceparent = request.headers.find("traceparent");
    if (traceparent != request.headers.end()) {
      Result<TraceContext> ctx = ParseTraceparent(traceparent->second);
      if (ctx.ok()) {
        DistSpan span((method + " " + target).c_str(), SpanKind::kServer,
                      *ctx);
        HttpResponse traced = handler(request);
        if (traced.status >= 400) {
          span.set_status("http " + std::to_string(traced.status));
        }
        return traced;
      }
    }
    return handler(request);
  };

  HttpResponse response;
  bool head_only = method == "HEAD";
  if (method == "POST") {
    auto it = post_handlers_.find(target);
    if (it == post_handlers_.end()) {
      if (handlers_.count(target) > 0) {
        response.status = 405;
        response.body = "POST not supported on this path\n";
      } else {
        response.status = 404;
        response.body =
            "no such endpoint; try /metrics, /healthz, /statusz\n";
      }
    } else if (int64_t want = ContentLengthOf(head); want < 0) {
      response.status = 400;
      response.body = "missing or invalid Content-Length\n";
    } else if (static_cast<uint64_t>(want) > options_.max_body_bytes) {
      // Reject by the declared size without reading the body: an
      // oversized upload costs the worker nothing but this response.
      response.status = 413;
      response.body = "request body exceeds " +
                      std::to_string(options_.max_body_bytes) + " bytes\n";
    } else {
      request.body = buf.substr(head_end);
      if (request.body.size() > static_cast<uint64_t>(want)) {
        request.body.resize(static_cast<size_t>(want));
      }
      if (!ReadBody(fd, static_cast<size_t>(want), &request.body)) {
        response.status = 400;
        response.body = "truncated request body\n";
      } else {
        response = invoke(it->second);
      }
    }
  } else if (method != "GET" && method != "HEAD") {
    response.status = 405;
    response.body = "only GET, HEAD, and POST are supported\n";
  } else if (auto it = handlers_.find(target); it != handlers_.end()) {
    response = invoke(it->second);
  } else if (post_handlers_.count(target) > 0) {
    response.status = 405;
    response.body = "only POST is supported on this path\n";
  } else {
    response.status = 404;
    response.body = "no such endpoint; try /metrics, /healthz, /statusz\n";
  }
  auto handled = std::chrono::steady_clock::now();
  RecordStageSeconds("http_handle",
                     std::chrono::duration<double>(handled - parsed).count());
  WriteResponse(fd, response, head_only);
  auto written = std::chrono::steady_clock::now();
  RecordStageSeconds("http_write",
                     std::chrono::duration<double>(written - handled).count());

  double us =
      std::chrono::duration<double, std::micro>(written - start).count();
  HOM_HISTOGRAM_RECORD("hom.server.request_latency_us", us,
                       ::hom::obs::Histogram::DefaultLatencyBoundsUs());
  bool known =
      handlers_.count(target) > 0 || post_handlers_.count(target) > 0;
  CountRequest(known ? target : "(other)", response.status);
}

}  // namespace hom::obs
