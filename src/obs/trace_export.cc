#include "obs/trace_export.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <tuple>

namespace hom::obs {

namespace {

constexpr int kPid = 1;
constexpr int kPhaseTid = 1;      ///< "offline phases" track
constexpr int kJournalTid = 2;    ///< "online events" track
constexpr int kProfileTid = 3;    ///< "cpu samples" track
constexpr int kWorkerTidBase = 16;  ///< pool worker k renders on tid 16+k

/// Counter-series bucket width for the sample-density track.
constexpr double kProfileBucketUs = 10000.0;

JsonValue ThreadNameEvent(int pid, int tid, const char* name) {
  JsonValue args = JsonValue::Object();
  args.Set("name", JsonValue(name));
  JsonValue event = JsonValue::Object();
  event.Set("name", JsonValue("thread_name"));
  event.Set("ph", JsonValue("M"));
  event.Set("pid", JsonValue(pid));
  event.Set("tid", JsonValue(tid));
  event.Set("args", std::move(args));
  return event;
}

JsonValue ThreadNameEvent(int tid, const char* name) {
  return ThreadNameEvent(kPid, tid, name);
}

JsonValue ProcessNameEvent(int pid, const std::string& name) {
  JsonValue args = JsonValue::Object();
  args.Set("name", JsonValue(name));
  JsonValue event = JsonValue::Object();
  event.Set("name", JsonValue("process_name"));
  event.Set("ph", JsonValue("M"));
  event.Set("pid", JsonValue(pid));
  event.Set("tid", JsonValue(0));
  event.Set("args", std::move(args));
  return event;
}

/// Worker subtrees ("worker:<slot>") recorded by the thread pool; returns
/// the slot, or -1 when `node` is an ordinary phase.
int WorkerSlot(const PhaseNode& node) {
  size_t prefix_len = std::strlen(kWorkerPhasePrefix);
  if (node.name.compare(0, prefix_len, kWorkerPhasePrefix) != 0) return -1;
  return std::atoi(node.name.c_str() + prefix_len);
}

/// Emits `node` as an "X" slice starting at `start_us` on `tid` and
/// recurses into its children laid out back to back from the same start.
/// Worker subtrees instead open at the parent's start on their own track
/// (tid 16+slot), so pooled phases render as parallel lanes; `worker_tids`
/// collects the lanes used so they can be named once at the end.
void AppendPhaseSlices(const PhaseNode& node, double start_us, int tid,
                       JsonValue* events, std::map<int, int>* worker_tids) {
  JsonValue args = JsonValue::Object();
  args.Set("count", JsonValue(node.count));
  args.Set("cpu_seconds", JsonValue(node.cpu_seconds));
  JsonValue slice = JsonValue::Object();
  slice.Set("name", JsonValue(node.name));
  slice.Set("cat", JsonValue("phase"));
  slice.Set("ph", JsonValue("X"));
  slice.Set("ts", JsonValue(start_us));
  slice.Set("dur", JsonValue(node.seconds * 1e6));
  slice.Set("pid", JsonValue(kPid));
  slice.Set("tid", JsonValue(tid));
  slice.Set("args", std::move(args));
  events->Append(std::move(slice));
  double child_start = start_us;
  for (const PhaseNode& child : node.children) {
    int slot = WorkerSlot(child);
    if (slot >= 0) {
      int worker_tid = kWorkerTidBase + slot;
      (*worker_tids)[worker_tid] = slot;
      AppendPhaseSlices(child, start_us, worker_tid, events, worker_tids);
      continue;  // parallel lane: does not consume sequential budget
    }
    AppendPhaseSlices(child, child_start, tid, events, worker_tids);
    child_start += child.seconds * 1e6;
  }
}

JsonValue InstantEvent(const Event& event, int pid, int tid, double ts) {
  JsonValue args = JsonValue::Object();
  args.Set("seq", JsonValue(event.seq));
  args.Set("source", JsonValue(event.source));
  args.Set("record", JsonValue(static_cast<int64_t>(event.record)));
  args.Set("from", JsonValue(static_cast<int64_t>(event.from)));
  args.Set("to", JsonValue(static_cast<int64_t>(event.to)));
  args.Set("value", JsonValue(event.value));
  if ((event.trace_hi | event.trace_lo) != 0 && event.span_id != 0) {
    args.Set("trace_id",
             JsonValue(TraceIdHex(
                 {event.trace_hi, event.trace_lo, event.span_id})));
    args.Set("span_id", JsonValue(SpanIdHex(event.span_id)));
  }
  JsonValue instant = JsonValue::Object();
  instant.Set("name", JsonValue(std::string(EventTypeName(event.type))));
  instant.Set("cat", JsonValue("journal"));
  instant.Set("ph", JsonValue("i"));
  instant.Set("ts", JsonValue(ts));
  instant.Set("pid", JsonValue(pid));
  instant.Set("tid", JsonValue(tid));
  instant.Set("s", JsonValue("t"));  // thread-scoped instant mark
  instant.Set("args", std::move(args));
  return instant;
}

/// The profile track: a "cpu_samples" counter series (samples per 10 ms
/// bucket — the density envelope of where CPU went over time) plus one
/// instant per sample carrying its leaf frame and phase path.
void AppendProfileTrack(const ProfileData& profile, JsonValue* events) {
  events->Append(ThreadNameEvent(kProfileTid, "cpu samples"));
  std::map<double, uint64_t> buckets;
  for (const ProfileSample& sample : profile.samples) {
    buckets[std::floor(sample.t_us / kProfileBucketUs) * kProfileBucketUs]++;

    JsonValue args = JsonValue::Object();
    if (!sample.stack.empty()) {
      args.Set("leaf", JsonValue(profile.frames[sample.stack.back()]));
    }
    if (!sample.phases.empty()) {
      std::string path;
      for (const std::string& p : sample.phases) {
        if (!path.empty()) path += ';';
        path += p;
      }
      args.Set("phases", JsonValue(path));
    }
    JsonValue instant = JsonValue::Object();
    instant.Set("name", JsonValue("sample"));
    instant.Set("cat", JsonValue("profile"));
    instant.Set("ph", JsonValue("i"));
    instant.Set("ts", JsonValue(sample.t_us));
    instant.Set("pid", JsonValue(kPid));
    instant.Set("tid", JsonValue(kProfileTid));
    instant.Set("s", JsonValue("t"));
    instant.Set("args", std::move(args));
    events->Append(std::move(instant));
  }
  for (const auto& [ts, count] : buckets) {
    JsonValue args = JsonValue::Object();
    args.Set("samples", JsonValue(count));
    JsonValue counter = JsonValue::Object();
    counter.Set("name", JsonValue("cpu_samples"));
    counter.Set("cat", JsonValue("profile"));
    counter.Set("ph", JsonValue("C"));
    counter.Set("ts", JsonValue(ts));
    counter.Set("pid", JsonValue(kPid));
    counter.Set("tid", JsonValue(kProfileTid));
    counter.Set("args", std::move(args));
    events->Append(std::move(counter));
  }
}

}  // namespace

JsonValue ChromeTraceDocument(const PhaseNode* phases,
                              const std::vector<Event>& events,
                              const ProfileData* profile) {
  JsonValue trace_events = JsonValue::Array();
  if (phases != nullptr && phases->count > 0) {
    trace_events.Append(ThreadNameEvent(kPhaseTid, "offline phases"));
    std::map<int, int> worker_tids;
    AppendPhaseSlices(*phases, 0.0, kPhaseTid, &trace_events, &worker_tids);
    for (const auto& [tid, slot] : worker_tids) {
      std::string name = "pool worker " + std::to_string(slot);
      trace_events.Append(ThreadNameEvent(tid, name.c_str()));
    }
  }
  if (!events.empty()) {
    trace_events.Append(ThreadNameEvent(kJournalTid, "online events"));
    for (const Event& event : events) {
      trace_events.Append(InstantEvent(event, kPid, kJournalTid, event.t_us));
    }
  }
  if (profile != nullptr && !profile->empty()) {
    AppendProfileTrack(*profile, &trace_events);
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", JsonValue("ms"));
  return doc;
}

JsonValue MergedTraceDocument(const std::vector<ProcessTrace>& processes) {
  // Merged layout: process k renders as pid k+1; its spans occupy tids
  // 1+lane ("span lane N") and its journal events tid 99 ("journal
  // events"), so two processes' activity stacks as two labeled groups on
  // one timeline.
  constexpr int kMergedSpanTidBase = 1;
  constexpr int kMergedJournalTid = 99;

  // Every timestamp in the document is relative to the earliest anchored
  // moment across all inputs, so the merged view opens at ts 0 instead of
  // decades into the Perfetto timeline.
  int64_t base_us = 0;
  bool have_base = false;
  auto fold_base = [&](int64_t t) {
    if (!have_base || t < base_us) base_us = t;
    have_base = true;
  };
  for (const ProcessTrace& process : processes) {
    for (const SpanRecord& span : process.spans) fold_base(span.start_unix_us);
    if (process.epoch_unix_us != 0) {
      for (const Event& event : process.events) {
        fold_base(process.epoch_unix_us + static_cast<int64_t>(event.t_us));
      }
    }
  }

  JsonValue trace_events = JsonValue::Array();

  // Cross-process parentage index: (trace id, span id) -> owning process.
  // A child whose parent lives in a *different* process gets a flow arrow;
  // same-process nesting is already visible from the lanes.
  struct SpanSite {
    size_t process;
    const SpanRecord* span;
  };
  std::map<std::tuple<uint64_t, uint64_t, uint64_t>, SpanSite> by_id;
  for (size_t p = 0; p < processes.size(); ++p) {
    for (const SpanRecord& span : processes[p].spans) {
      by_id[{span.trace_hi, span.trace_lo, span.span_id}] = {p, &span};
    }
  }

  for (size_t p = 0; p < processes.size(); ++p) {
    const ProcessTrace& process = processes[p];
    int pid = static_cast<int>(p) + 1;
    std::string display = process.name.empty()
                              ? "process " + std::to_string(pid)
                              : process.name;
    trace_events.Append(ProcessNameEvent(pid, display));

    std::map<int, bool> lanes;
    for (const SpanRecord& span : process.spans) {
      int tid = kMergedSpanTidBase + span.lane;
      lanes[tid] = true;
      JsonValue args = JsonValue::Object();
      args.Set("trace_id",
               JsonValue(TraceIdHex(
                   {span.trace_hi, span.trace_lo, span.span_id})));
      args.Set("span_id", JsonValue(SpanIdHex(span.span_id)));
      if (span.parent_span_id != 0) {
        args.Set("parent_span_id", JsonValue(SpanIdHex(span.parent_span_id)));
      }
      args.Set("kind", JsonValue(std::string(SpanKindName(span.kind))));
      if (!span.status.empty()) {
        args.Set("status", JsonValue(span.status));
      }
      JsonValue slice = JsonValue::Object();
      slice.Set("name", JsonValue(span.name));
      slice.Set("cat", JsonValue("span"));
      slice.Set("ph", JsonValue("X"));
      slice.Set("ts",
                JsonValue(static_cast<double>(span.start_unix_us - base_us)));
      slice.Set("dur", JsonValue(span.dur_us));
      slice.Set("pid", JsonValue(pid));
      slice.Set("tid", JsonValue(tid));
      slice.Set("args", std::move(args));
      trace_events.Append(std::move(slice));

      auto parent_it =
          by_id.find({span.trace_hi, span.trace_lo, span.parent_span_id});
      if (span.parent_span_id != 0 && parent_it != by_id.end() &&
          parent_it->second.process != p) {
        const SpanRecord& parent = *parent_it->second.span;
        std::string flow_id = SpanIdHex(span.span_id);
        JsonValue start = JsonValue::Object();
        start.Set("name", JsonValue("rpc"));
        start.Set("cat", JsonValue("flow"));
        start.Set("ph", JsonValue("s"));
        start.Set("id", JsonValue(flow_id));
        start.Set("ts", JsonValue(static_cast<double>(parent.start_unix_us -
                                                      base_us)));
        start.Set("pid",
                  JsonValue(static_cast<int>(parent_it->second.process) + 1));
        start.Set("tid", JsonValue(kMergedSpanTidBase + parent.lane));
        trace_events.Append(std::move(start));
        JsonValue finish = JsonValue::Object();
        finish.Set("name", JsonValue("rpc"));
        finish.Set("cat", JsonValue("flow"));
        finish.Set("ph", JsonValue("f"));
        finish.Set("bp", JsonValue("e"));  // bind to the enclosing slice
        finish.Set("id", JsonValue(flow_id));
        finish.Set("ts",
                   JsonValue(static_cast<double>(span.start_unix_us -
                                                 base_us)));
        finish.Set("pid", JsonValue(pid));
        finish.Set("tid", JsonValue(tid));
        trace_events.Append(std::move(finish));
      }
    }
    for (const auto& [tid, used] : lanes) {
      (void)used;
      std::string name = "span lane " + std::to_string(tid -
                                                       kMergedSpanTidBase);
      trace_events.Append(ThreadNameEvent(pid, tid, name.c_str()));
    }

    if (!process.events.empty()) {
      trace_events.Append(
          ThreadNameEvent(pid, kMergedJournalTid, "journal events"));
      for (const Event& event : process.events) {
        // A v2 journal header anchors t_us to the wall clock; a journal
        // without one (legacy v1 file) can only be placed relative to the
        // merged timeline's origin.
        double ts = process.epoch_unix_us != 0
                        ? static_cast<double>(process.epoch_unix_us -
                                              base_us) +
                              event.t_us
                        : event.t_us;
        trace_events.Append(InstantEvent(event, pid, kMergedJournalTid, ts));
      }
    }
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("merged_trace_schema", JsonValue(kMergedTraceSchemaVersion));
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", JsonValue("ms"));
  return doc;
}

Status WriteChromeTrace(const std::string& path, const PhaseNode* phases,
                        const EventJournal* journal,
                        const ProfileData* profile) {
  std::vector<Event> events;
  if (journal != nullptr) events = journal->Snapshot();
  JsonValue doc = ChromeTraceDocument(phases, events, profile);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path);
  out << doc.Dump(2) << "\n";
  if (!out) return Status::Internal("failed writing " + path);
  return Status::OK();
}

}  // namespace hom::obs
