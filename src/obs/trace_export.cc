#include "obs/trace_export.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>

namespace hom::obs {

namespace {

constexpr int kPid = 1;
constexpr int kPhaseTid = 1;      ///< "offline phases" track
constexpr int kJournalTid = 2;    ///< "online events" track
constexpr int kProfileTid = 3;    ///< "cpu samples" track
constexpr int kWorkerTidBase = 16;  ///< pool worker k renders on tid 16+k

/// Counter-series bucket width for the sample-density track.
constexpr double kProfileBucketUs = 10000.0;

JsonValue ThreadNameEvent(int tid, const char* name) {
  JsonValue args = JsonValue::Object();
  args.Set("name", JsonValue(name));
  JsonValue event = JsonValue::Object();
  event.Set("name", JsonValue("thread_name"));
  event.Set("ph", JsonValue("M"));
  event.Set("pid", JsonValue(kPid));
  event.Set("tid", JsonValue(tid));
  event.Set("args", std::move(args));
  return event;
}

/// Worker subtrees ("worker:<slot>") recorded by the thread pool; returns
/// the slot, or -1 when `node` is an ordinary phase.
int WorkerSlot(const PhaseNode& node) {
  size_t prefix_len = std::strlen(kWorkerPhasePrefix);
  if (node.name.compare(0, prefix_len, kWorkerPhasePrefix) != 0) return -1;
  return std::atoi(node.name.c_str() + prefix_len);
}

/// Emits `node` as an "X" slice starting at `start_us` on `tid` and
/// recurses into its children laid out back to back from the same start.
/// Worker subtrees instead open at the parent's start on their own track
/// (tid 16+slot), so pooled phases render as parallel lanes; `worker_tids`
/// collects the lanes used so they can be named once at the end.
void AppendPhaseSlices(const PhaseNode& node, double start_us, int tid,
                       JsonValue* events, std::map<int, int>* worker_tids) {
  JsonValue args = JsonValue::Object();
  args.Set("count", JsonValue(node.count));
  args.Set("cpu_seconds", JsonValue(node.cpu_seconds));
  JsonValue slice = JsonValue::Object();
  slice.Set("name", JsonValue(node.name));
  slice.Set("cat", JsonValue("phase"));
  slice.Set("ph", JsonValue("X"));
  slice.Set("ts", JsonValue(start_us));
  slice.Set("dur", JsonValue(node.seconds * 1e6));
  slice.Set("pid", JsonValue(kPid));
  slice.Set("tid", JsonValue(tid));
  slice.Set("args", std::move(args));
  events->Append(std::move(slice));
  double child_start = start_us;
  for (const PhaseNode& child : node.children) {
    int slot = WorkerSlot(child);
    if (slot >= 0) {
      int worker_tid = kWorkerTidBase + slot;
      (*worker_tids)[worker_tid] = slot;
      AppendPhaseSlices(child, start_us, worker_tid, events, worker_tids);
      continue;  // parallel lane: does not consume sequential budget
    }
    AppendPhaseSlices(child, child_start, tid, events, worker_tids);
    child_start += child.seconds * 1e6;
  }
}

JsonValue InstantEvent(const Event& event) {
  JsonValue args = JsonValue::Object();
  args.Set("seq", JsonValue(event.seq));
  args.Set("source", JsonValue(event.source));
  args.Set("record", JsonValue(static_cast<int64_t>(event.record)));
  args.Set("from", JsonValue(static_cast<int64_t>(event.from)));
  args.Set("to", JsonValue(static_cast<int64_t>(event.to)));
  args.Set("value", JsonValue(event.value));
  JsonValue instant = JsonValue::Object();
  instant.Set("name", JsonValue(std::string(EventTypeName(event.type))));
  instant.Set("cat", JsonValue("journal"));
  instant.Set("ph", JsonValue("i"));
  instant.Set("ts", JsonValue(event.t_us));
  instant.Set("pid", JsonValue(kPid));
  instant.Set("tid", JsonValue(kJournalTid));
  instant.Set("s", JsonValue("t"));  // thread-scoped instant mark
  instant.Set("args", std::move(args));
  return instant;
}

/// The profile track: a "cpu_samples" counter series (samples per 10 ms
/// bucket — the density envelope of where CPU went over time) plus one
/// instant per sample carrying its leaf frame and phase path.
void AppendProfileTrack(const ProfileData& profile, JsonValue* events) {
  events->Append(ThreadNameEvent(kProfileTid, "cpu samples"));
  std::map<double, uint64_t> buckets;
  for (const ProfileSample& sample : profile.samples) {
    buckets[std::floor(sample.t_us / kProfileBucketUs) * kProfileBucketUs]++;

    JsonValue args = JsonValue::Object();
    if (!sample.stack.empty()) {
      args.Set("leaf", JsonValue(profile.frames[sample.stack.back()]));
    }
    if (!sample.phases.empty()) {
      std::string path;
      for (const std::string& p : sample.phases) {
        if (!path.empty()) path += ';';
        path += p;
      }
      args.Set("phases", JsonValue(path));
    }
    JsonValue instant = JsonValue::Object();
    instant.Set("name", JsonValue("sample"));
    instant.Set("cat", JsonValue("profile"));
    instant.Set("ph", JsonValue("i"));
    instant.Set("ts", JsonValue(sample.t_us));
    instant.Set("pid", JsonValue(kPid));
    instant.Set("tid", JsonValue(kProfileTid));
    instant.Set("s", JsonValue("t"));
    instant.Set("args", std::move(args));
    events->Append(std::move(instant));
  }
  for (const auto& [ts, count] : buckets) {
    JsonValue args = JsonValue::Object();
    args.Set("samples", JsonValue(count));
    JsonValue counter = JsonValue::Object();
    counter.Set("name", JsonValue("cpu_samples"));
    counter.Set("cat", JsonValue("profile"));
    counter.Set("ph", JsonValue("C"));
    counter.Set("ts", JsonValue(ts));
    counter.Set("pid", JsonValue(kPid));
    counter.Set("tid", JsonValue(kProfileTid));
    counter.Set("args", std::move(args));
    events->Append(std::move(counter));
  }
}

}  // namespace

JsonValue ChromeTraceDocument(const PhaseNode* phases,
                              const std::vector<Event>& events,
                              const ProfileData* profile) {
  JsonValue trace_events = JsonValue::Array();
  if (phases != nullptr && phases->count > 0) {
    trace_events.Append(ThreadNameEvent(kPhaseTid, "offline phases"));
    std::map<int, int> worker_tids;
    AppendPhaseSlices(*phases, 0.0, kPhaseTid, &trace_events, &worker_tids);
    for (const auto& [tid, slot] : worker_tids) {
      std::string name = "pool worker " + std::to_string(slot);
      trace_events.Append(ThreadNameEvent(tid, name.c_str()));
    }
  }
  if (!events.empty()) {
    trace_events.Append(ThreadNameEvent(kJournalTid, "online events"));
    for (const Event& event : events) {
      trace_events.Append(InstantEvent(event));
    }
  }
  if (profile != nullptr && !profile->empty()) {
    AppendProfileTrack(*profile, &trace_events);
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(trace_events));
  doc.Set("displayTimeUnit", JsonValue("ms"));
  return doc;
}

Status WriteChromeTrace(const std::string& path, const PhaseNode* phases,
                        const EventJournal* journal,
                        const ProfileData* profile) {
  std::vector<Event> events;
  if (journal != nullptr) events = journal->Snapshot();
  JsonValue doc = ChromeTraceDocument(phases, events, profile);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path);
  out << doc.Dump(2) << "\n";
  if (!out) return Status::Internal("failed writing " + path);
  return Status::OK();
}

}  // namespace hom::obs
