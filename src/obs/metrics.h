#ifndef HOM_OBS_METRICS_H_
#define HOM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace hom::obs {

/// \brief Monotonic event counter. Increments are single relaxed atomic
/// adds (~1 ns), safe from any thread; reads are approximate under
/// concurrent writers, exact once writers quiesce.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (throughput, hit rates,
/// queue depths). Set/read are relaxed atomics.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram: bucket bounds are set at registration and
/// never change, so Record() is a binary search plus one relaxed atomic add
/// (no locks, no allocation). Tracks count/sum/min/max alongside the
/// buckets; bucket i counts values <= bounds[i], the final implicit bucket
/// counts the overflow.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  /// Default bounds for microsecond-scale latencies: 0.25us .. 4s in
  /// powers of 4 (13 buckets + overflow).
  static std::vector<double> DefaultLatencyBoundsUs();

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of every registered metric. Two snapshots taken
/// around an operation can be diffed to attribute counter activity to it.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 entries.
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /// Quantile estimate from the bucket counts, q in [0, 1]: linear
    /// interpolation inside the bucket holding the q-th observation,
    /// clamped to [min, max] (the overflow bucket interpolates toward
    /// max). Exact only up to bucket resolution. 0 when empty.
    double Quantile(double q) const;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Counter deltas relative to `earlier` (gauges and histograms are
  /// copied as-is: they are not monotonic). Counters absent from
  /// `earlier` count from zero.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  JsonValue ToJson() const;
};

/// \brief Process-wide registry of named metrics.
///
/// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex once per
/// call site — instrumented code caches the returned handle in a
/// function-local static — after which all metric updates are lock-free
/// atomics on the handle. Handles stay valid for the process lifetime.
///
/// Naming scheme: dot-separated `hom.<area>.<metric>`, e.g.
/// `hom.cluster.classifiers_trained` (see DESIGN.md "Observability").
///
/// Compiling with -DHOM_DISABLE_METRICS turns the HOM_COUNTER_* /
/// HOM_GAUGE_* / HOM_HISTOGRAM_* macros below into no-ops, removing every
/// instrumentation site from the hot paths; the registry itself stays
/// linkable so snapshot consumers build unchanged (they see no metrics).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the counter registered under `name`, creating it on first
  /// use. Never returns nullptr.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram regardless of `bounds`.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (handles stay valid). Tests only —
  /// concurrent writers may resurrect partial values.
  void ResetForTesting();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace hom::obs

// Instrumentation macros: the only metrics API hot paths should use. Each
// call site resolves its handle once (function-local static) and then pays
// a single relaxed atomic per hit. All of it compiles away under
// HOM_DISABLE_METRICS.
#ifdef HOM_DISABLE_METRICS

#define HOM_COUNTER_INC(name) ((void)0)
#define HOM_COUNTER_ADD(name, n) ((void)sizeof(n))
#define HOM_GAUGE_SET(name, v) ((void)sizeof(v))
#define HOM_HISTOGRAM_RECORD(name, value, bounds) ((void)sizeof(value))

#else

#define HOM_COUNTER_INC(name) HOM_COUNTER_ADD(name, 1)

#define HOM_COUNTER_ADD(name, n)                                    \
  do {                                                              \
    static ::hom::obs::Counter* _hom_counter =                      \
        ::hom::obs::MetricsRegistry::Global().GetCounter(name);     \
    _hom_counter->Add(static_cast<uint64_t>(n));                    \
  } while (0)

#define HOM_GAUGE_SET(name, v)                                      \
  do {                                                              \
    static ::hom::obs::Gauge* _hom_gauge =                          \
        ::hom::obs::MetricsRegistry::Global().GetGauge(name);       \
    _hom_gauge->Set(static_cast<double>(v));                        \
  } while (0)

/// `bounds` is any expression yielding std::vector<double>; it is
/// evaluated once, at handle registration.
#define HOM_HISTOGRAM_RECORD(name, value, bounds)                   \
  do {                                                              \
    static ::hom::obs::Histogram* _hom_histogram =                  \
        ::hom::obs::MetricsRegistry::Global().GetHistogram(name,    \
                                                           bounds); \
    _hom_histogram->Record(static_cast<double>(value));             \
  } while (0)

#endif  // HOM_DISABLE_METRICS

#endif  // HOM_OBS_METRICS_H_
