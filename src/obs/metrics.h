#ifndef HOM_OBS_METRICS_H_
#define HOM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace hom::obs {

/// \brief Monotonic event counter. Increments are single relaxed atomic
/// adds (~1 ns), safe from any thread; reads are approximate under
/// concurrent writers, exact once writers quiesce.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (throughput, hit rates,
/// queue depths). Set/read are relaxed atomics.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// One metric label as {key, value}. Keys must match
/// [a-zA-Z_][a-zA-Z0-9_]*; values are arbitrary UTF-8 (escaped at
/// exposition time).
using Label = std::pair<std::string, std::string>;

/// A set of labels. Canonicalized (sorted by key, keys unique) when a
/// family interns it; callers may pass labels in any order.
using LabelSet = std::vector<Label>;

/// Identity of one time series: metric family name plus its (canonical)
/// label set. Unlabeled metrics are the `labels.empty()` special case.
struct SeriesKey {
  std::string name;
  LabelSet labels;

  /// `name` for unlabeled series, `name{k1="v1",k2="v2"}` otherwise, with
  /// backslash, double-quote and newline escaped in values. This is the
  /// stable text form used as JSON object key in telemetry files.
  std::string ToString() const;

  /// Inverse of ToString (accepts exactly the canonical form).
  static Result<SeriesKey> Parse(std::string_view text);

  bool operator<(const SeriesKey& other) const {
    return name != other.name ? name < other.name : labels < other.labels;
  }
  bool operator==(const SeriesKey& other) const {
    return name == other.name && labels == other.labels;
  }
};

/// Point-in-time copy of every registered metric. Two snapshots taken
/// around an operation can be diffed to attribute counter activity to it.
///
/// Consistency under concurrent writers: each histogram is snapshotted in
/// one pass — its bucket counts are read exactly once and `count` is
/// defined as their sum, so `count == Σ counts` (and therefore the +Inf
/// cumulative bucket equals `_count` in the Prometheus exposition) holds
/// in every snapshot, no matter how many writers are mid-Record(). `sum`
/// (and min/max) are read immediately after and may include a value whose
/// bucket increment was not yet visible, or vice versa — the skew is
/// bounded by the number of in-flight Record() calls at snapshot time and
/// disappears once writers quiesce. Counters and gauges are single atomics
/// and need no such pairing.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 entries.
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /// Quantile estimate from the bucket counts, q in [0, 1]: linear
    /// interpolation inside the bucket holding the q-th observation,
    /// clamped to [min, max] (the overflow bucket interpolates toward
    /// max). Exact only up to bucket resolution. 0 when empty.
    double Quantile(double q) const;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Labeled series from the metric families, keyed by (family, labels).
  std::map<SeriesKey, uint64_t> labeled_counters;
  std::map<SeriesKey, double> labeled_gauges;
  std::map<SeriesKey, HistogramData> labeled_histograms;

  /// Counter deltas relative to `earlier` (gauges and histograms are
  /// copied as-is: they are not monotonic). Counters absent from
  /// `earlier` count from zero. Labeled counters diff the same way.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// Unlabeled and labeled counters merged into one map, labeled series
  /// keyed by SeriesKey::ToString(). Build reports and other flat
  /// consumers use this instead of tracking both maps.
  std::map<std::string, uint64_t> CountersFlattened() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  /// Labeled series appear in the same three sections under their
  /// SeriesKey::ToString() key, so the JSON schema is unchanged.
  JsonValue ToJson() const;
};

/// Inverse of MetricsSnapshot::ToJson(): rebuilds a snapshot from the
/// "metrics" section of a telemetry file, including labeled series (object
/// keys containing '{' are parsed back through SeriesKey::Parse). Lets
/// `homctl stats --format prometheus` render saved telemetry through the
/// same text encoder as a live scrape.
Result<MetricsSnapshot> MetricsSnapshotFromJson(const JsonValue& json);

/// \brief Fixed-bucket histogram: bucket bounds are set at registration and
/// never change, so Record() is a binary search plus one relaxed atomic add
/// (no locks, no allocation). Tracks count/sum/min/max alongside the
/// buckets; bucket i counts values <= bounds[i], the final implicit bucket
/// counts the overflow.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  /// Default bounds for microsecond-scale latencies: 0.25us .. 4s in
  /// powers of 4 (13 buckets + overflow).
  static std::vector<double> DefaultLatencyBoundsUs();

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const;

  /// Single-pass snapshot with the consistency guarantee documented on
  /// MetricsSnapshot: buckets are read once and `count` is their sum.
  /// Prefer this over pairing bucket_counts() with count()/sum() reads —
  /// under concurrent writers those can pair a stale sum with a newer
  /// count (or buckets that do not add up to count).
  MetricsSnapshot::HistogramData SnapshotData() const;
  /// SnapshotData into a caller-owned object whose vector capacity is
  /// reused across calls — the allocation-free variant for per-tick
  /// samplers.
  void SnapshotDataInto(MetricsSnapshot::HistogramData* out) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// \brief A family of counters sharing one name, distinguished by labels —
/// `hom.cluster.merges{step="1"}` instead of the name-mangled
/// `hom.cluster.step1.merges`.
///
/// WithLabels() canonicalizes and interns the label set (registry-wide, so
/// identical sets share storage) and returns a per-series handle; the call
/// takes the family mutex, so hot paths cache the handle — fixed label
/// sets in a function-local static, per-concept handles in a vector
/// indexed by concept id — after which updates are the same lock-free
/// relaxed atomics as unlabeled metrics.
///
/// Cardinality guidance (DESIGN.md §10): label values must come from a
/// small closed set (concept ids, phase names, HTTP routes/status codes).
/// Never label by record id, timestamp, or user input — every distinct
/// label set is a live series that shows up in each scrape forever.
class CounterFamily {
 public:
  /// The counter for `labels` (order-insensitive), created on first use.
  Counter* WithLabels(const LabelSet& labels);
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit CounterFamily(std::string name) : name_(std::move(name)) {}

  std::string name_;
  mutable std::mutex mu_;
  /// Keyed by the canonical label text; the interned LabelSet pointer is
  /// what Snapshot() reads back.
  std::map<std::string, std::pair<const LabelSet*, std::unique_ptr<Counter>>>
      children_;
};

/// Gauge analogue of CounterFamily.
class GaugeFamily {
 public:
  Gauge* WithLabels(const LabelSet& labels);
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit GaugeFamily(std::string name) : name_(std::move(name)) {}

  std::string name_;
  mutable std::mutex mu_;
  std::map<std::string, std::pair<const LabelSet*, std::unique_ptr<Gauge>>>
      children_;
};

/// Histogram analogue of CounterFamily. Every child shares the family's
/// bucket bounds (fixed at registration). The label key "le" is reserved
/// for the exposition format's bucket label and rejected here.
class HistogramFamily {
 public:
  Histogram* WithLabels(const LabelSet& labels);
  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  HistogramFamily(std::string name, std::vector<double> bounds)
      : name_(std::move(name)), bounds_(std::move(bounds)) {}

  std::string name_;
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::map<std::string, std::pair<const LabelSet*, std::unique_ptr<Histogram>>>
      children_;
};

/// \brief Process-wide registry of named metrics.
///
/// Registration (GetCounter/GetGauge/GetHistogram and the *Family
/// variants) takes a mutex once per call site — instrumented code caches
/// the returned handle in a function-local static — after which all metric
/// updates are lock-free atomics on the handle. Handles stay valid for the
/// process lifetime.
///
/// Naming scheme: dot-separated `hom.<area>.<metric>`, e.g.
/// `hom.cluster.classifiers_trained` (see DESIGN.md "Observability").
/// Per-concept / per-phase / per-route dimensions are labels on a family,
/// not name suffixes. A family may share a name with a plain metric of the
/// same kind: the exposition endpoint renders them as one Prometheus
/// family (the unlabeled series plus the labeled ones), which is how an
/// aggregate counter and its per-label breakdown coexist.
///
/// Receiver for MetricsRegistry::Visit — the allocation-free alternative
/// to Snapshot() for high-frequency samplers (the TimeSeriesStore tick).
/// Callbacks get the live handle, not a copied value: handles stay valid
/// for the process lifetime, so a sampler may keep them and read values
/// on later ticks without revisiting (rebind when series_epoch() moves).
/// Labeled series arrive with the exposition name `family{label="v"}`
/// built in a scratch buffer: the string_view is only valid for the
/// duration of the callback, copy it if you need to keep it.
class MetricsVisitor {
 public:
  virtual ~MetricsVisitor();
  virtual void OnCounter(std::string_view name, const Counter* counter) = 0;
  virtual void OnGauge(std::string_view name, const Gauge* gauge) = 0;
  virtual void OnHistogram(std::string_view name,
                           const Histogram* histogram) = 0;
};

/// Compiling with -DHOM_DISABLE_METRICS turns the HOM_COUNTER_* /
/// HOM_GAUGE_* / HOM_HISTOGRAM_* macros below into no-ops, removing every
/// instrumentation site from the hot paths; the registry itself stays
/// linkable so snapshot consumers build unchanged (they see no metrics).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the counter registered under `name`, creating it on first
  /// use. Never returns nullptr.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram regardless of `bounds`.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  /// Labeled family accessors; same creation-on-first-use contract.
  CounterFamily* GetCounterFamily(std::string_view name);
  GaugeFamily* GetGaugeFamily(std::string_view name);
  HistogramFamily* GetHistogramFamily(std::string_view name,
                                      std::vector<double> bounds);

  /// Canonicalizes (sort by key) and interns a label set; identical sets
  /// return the same pointer for the process lifetime. Checks label-name
  /// syntax and key uniqueness. Families call this; it is public so tests
  /// can assert interning.
  const LabelSet* InternLabels(LabelSet labels);

  MetricsSnapshot Snapshot() const;

  /// Walks every live series — plain then labeled, counters, gauges and
  /// histograms — without materializing a MetricsSnapshot: no map nodes,
  /// and the only string built per call is one reused scratch buffer for
  /// labeled names. Callbacks run under the registry (and family) locks,
  /// so they must not touch the registry — resolving a handle or calling
  /// a HOM_* macro whose static handle is not yet cached would deadlock.
  void Visit(MetricsVisitor* visitor) const;

  /// Monotone count of series registrations (plain metrics and labeled
  /// family children). A sampler that cached handles from Visit() only
  /// needs to revisit when this moves; between bumps the registry's
  /// series set is frozen.
  uint64_t series_epoch() const {
    return series_epoch_.load(std::memory_order_acquire);
  }

  /// Zeroes every registered metric, including family children (handles
  /// stay valid). Tests only — concurrent writers may resurrect partial
  /// values.
  void ResetForTesting();

 private:
  MetricsRegistry() = default;

  friend class CounterFamily;
  friend class GaugeFamily;
  friend class HistogramFamily;

  /// Called on every series creation, including family children (which
  /// hold the family mutex, not mu_ — hence an atomic, not a guarded
  /// counter).
  void BumpSeriesEpoch() {
    series_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  std::atomic<uint64_t> series_epoch_{0};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<CounterFamily>, std::less<>>
      counter_families_;
  std::map<std::string, std::unique_ptr<GaugeFamily>, std::less<>>
      gauge_families_;
  std::map<std::string, std::unique_ptr<HistogramFamily>, std::less<>>
      histogram_families_;
  /// Label-set intern table, keyed by canonical text; shared across all
  /// families. Guarded by its own mutex so family child creation (which
  /// holds the family mutex) can intern without touching mu_.
  mutable std::mutex intern_mu_;
  std::map<std::string, std::unique_ptr<const LabelSet>, std::less<>>
      label_sets_;
};

}  // namespace hom::obs

// Instrumentation macros: the only metrics API hot paths should use. Each
// call site resolves its handle once (function-local static) and then pays
// a single relaxed atomic per hit. All of it compiles away under
// HOM_DISABLE_METRICS.
//
// The *_LABELED variants take the label set as trailing arguments (a
// braced initializer list), resolved once at handle registration — use
// them only where the labels are fixed at the call site:
//   HOM_COUNTER_INC_LABELED("hom.cluster.merges", {{"step", "1"}});
// Dynamic label values (per-concept ids) go through
// GetCounterFamily()->WithLabels() with a caller-cached handle instead.
#ifdef HOM_DISABLE_METRICS

#define HOM_COUNTER_INC(name) ((void)0)
#define HOM_COUNTER_ADD(name, n) ((void)sizeof(n))
#define HOM_GAUGE_SET(name, v) ((void)sizeof(v))
#define HOM_HISTOGRAM_RECORD(name, value, bounds) ((void)sizeof(value))
#define HOM_COUNTER_INC_LABELED(name, ...) ((void)0)
#define HOM_COUNTER_ADD_LABELED(name, n, ...) ((void)sizeof(n))
#define HOM_GAUGE_SET_LABELED(name, v, ...) ((void)sizeof(v))

#else

#define HOM_COUNTER_INC(name) HOM_COUNTER_ADD(name, 1)

#define HOM_COUNTER_ADD(name, n)                                    \
  do {                                                              \
    static ::hom::obs::Counter* _hom_counter =                      \
        ::hom::obs::MetricsRegistry::Global().GetCounter(name);     \
    _hom_counter->Add(static_cast<uint64_t>(n));                    \
  } while (0)

#define HOM_GAUGE_SET(name, v)                                      \
  do {                                                              \
    static ::hom::obs::Gauge* _hom_gauge =                          \
        ::hom::obs::MetricsRegistry::Global().GetGauge(name);       \
    _hom_gauge->Set(static_cast<double>(v));                        \
  } while (0)

/// `bounds` is any expression yielding std::vector<double>; it is
/// evaluated once, at handle registration.
#define HOM_HISTOGRAM_RECORD(name, value, bounds)                   \
  do {                                                              \
    static ::hom::obs::Histogram* _hom_histogram =                  \
        ::hom::obs::MetricsRegistry::Global().GetHistogram(name,    \
                                                           bounds); \
    _hom_histogram->Record(static_cast<double>(value));             \
  } while (0)

#define HOM_COUNTER_INC_LABELED(name, ...) \
  HOM_COUNTER_ADD_LABELED(name, 1, __VA_ARGS__)

#define HOM_COUNTER_ADD_LABELED(name, n, ...)                        \
  do {                                                               \
    static ::hom::obs::Counter* _hom_counter =                       \
        ::hom::obs::MetricsRegistry::Global()                        \
            .GetCounterFamily(name)                                  \
            ->WithLabels(__VA_ARGS__);                               \
    _hom_counter->Add(static_cast<uint64_t>(n));                     \
  } while (0)

#define HOM_GAUGE_SET_LABELED(name, v, ...)                          \
  do {                                                               \
    static ::hom::obs::Gauge* _hom_gauge =                           \
        ::hom::obs::MetricsRegistry::Global()                        \
            .GetGaugeFamily(name)                                    \
            ->WithLabels(__VA_ARGS__);                               \
    _hom_gauge->Set(static_cast<double>(v));                         \
  } while (0)

#endif  // HOM_DISABLE_METRICS

#endif  // HOM_OBS_METRICS_H_
