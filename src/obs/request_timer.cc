#include "obs/request_timer.h"

#include <algorithm>

#include "common/check.h"
#include "obs/event_journal.h"
#include "obs/trace_context.h"

namespace hom::obs {

namespace {

constexpr std::string_view kStageNames[kNumRequestStages] = {
    "parse", "sanitize", "predict", "observe", "checkpoint",
};

constexpr const char* kStageFamilyName = "hom.serve.stage_seconds";

/// The thread's in-flight request. Stage accumulation happens here, with
/// no synchronization; RecordRequest() is the only cross-thread hand-off.
struct ActiveRequest {
  RequestTimer* timer = nullptr;
  int64_t record = -1;
  std::chrono::steady_clock::time_point started;
  std::array<double, kNumRequestStages> stage_seconds{};
  int current_stage = -1;  ///< index into stage_seconds, -1 = unattributed
  std::chrono::steady_clock::time_point stage_started;
};

thread_local ActiveRequest g_active_request;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::string_view RequestStageName(RequestStage stage) {
  size_t i = static_cast<size_t>(stage);
  HOM_DCHECK(i < kNumRequestStages);
  return kStageNames[i];
}

std::vector<double> StageSecondsBounds() {
  std::vector<double> bounds = Histogram::DefaultLatencyBoundsUs();
  for (double& b : bounds) b *= 1e-6;
  return bounds;
}

void RecordStageSeconds(std::string_view stage, double seconds) {
  static HistogramFamily* family = MetricsRegistry::Global().GetHistogramFamily(
      kStageFamilyName, StageSecondsBounds());
  family->WithLabels({{"stage", std::string(stage)}})->Record(seconds);
}

RequestTimer::RequestTimer() : RequestTimer(Options()) {}

RequestTimer::RequestTimer(Options options) : options_(std::move(options)) {
  HistogramFamily* family = MetricsRegistry::Global().GetHistogramFamily(
      kStageFamilyName, StageSecondsBounds());
  for (size_t i = 0; i < kNumRequestStages; ++i) {
    stage_histograms_[i] =
        family->WithLabels({{"stage", std::string(kStageNames[i])}});
  }
  slowest_.reserve(options_.slowest_k);
}

void RequestTimer::RecordRequest(
    int64_t record, double total_seconds,
    const std::array<double, kNumRequestStages>& stage_seconds) {
  size_t dominant = 0;
  for (size_t i = 0; i < kNumRequestStages; ++i) {
    if (stage_seconds[i] > 0.0) stage_histograms_[i]->Record(stage_seconds[i]);
    if (stage_seconds[i] > stage_seconds[dominant]) dominant = i;
  }

  SlowRequest entry;
  entry.record = record;
  entry.total_us = total_seconds * 1e6;
  for (size_t i = 0; i < kNumRequestStages; ++i) {
    entry.stage_us[i] = stage_seconds[i] * 1e6;
  }
  if (const TraceContext* ctx = CurrentTraceContext()) {
    entry.trace_hi = ctx->trace_hi;
    entry.trace_lo = ctx->trace_lo;
    entry.span_id = ctx->span_id;
  }

  bool retained = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    if (slowest_.size() < options_.slowest_k) {
      slowest_.push_back(entry);
      retained = true;
    } else if (!slowest_.empty() && entry.total_us > slowest_.back().total_us) {
      slowest_.back() = entry;
      retained = true;
    }
    if (retained) {
      std::sort(slowest_.begin(), slowest_.end(),
                [](const SlowRequest& a, const SlowRequest& b) {
                  return a.total_us > b.total_us;
                });
    }
  }
  if (retained) {
    EmitIfActive(EventType::kSlowRequest, kStageNames[dominant], record, -1,
                 -1, entry.total_us);
  }
}

uint64_t RequestTimer::requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

std::vector<RequestTimer::SlowRequest> RequestTimer::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slowest_;
}

JsonValue RequestTimer::SlowestJson() const {
  JsonValue out = JsonValue::Array();
  for (const SlowRequest& slow : Slowest()) {
    JsonValue stages = JsonValue::Object();
    for (size_t i = 0; i < kNumRequestStages; ++i) {
      if (slow.stage_us[i] > 0.0) {
        stages.Set(std::string(kStageNames[i]), JsonValue(slow.stage_us[i]));
      }
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("record", JsonValue(static_cast<int64_t>(slow.record)));
    entry.Set("total_us", JsonValue(slow.total_us));
    entry.Set("stages", std::move(stages));
    if ((slow.trace_hi | slow.trace_lo) != 0 && slow.span_id != 0) {
      entry.Set("trace_id",
                JsonValue(TraceIdHex(
                    {slow.trace_hi, slow.trace_lo, slow.span_id})));
      entry.Set("span_id", JsonValue(SpanIdHex(slow.span_id)));
    }
    out.Append(std::move(entry));
  }
  return out;
}

ScopedRequestTimer::ScopedRequestTimer(RequestTimer* timer, int64_t record) {
  if (timer == nullptr || g_active_request.timer != nullptr) return;
  g_active_request.timer = timer;
  g_active_request.record = record;
  g_active_request.started = std::chrono::steady_clock::now();
  g_active_request.stage_seconds.fill(0.0);
  g_active_request.current_stage = -1;
  active_ = true;
}

ScopedRequestTimer::~ScopedRequestTimer() {
  if (!active_) return;
  ActiveRequest& req = g_active_request;
  RequestTimer* timer = req.timer;
  req.timer = nullptr;  // deactivate before RecordRequest can journal
  timer->RecordRequest(req.record, SecondsSince(req.started),
                       req.stage_seconds);
}

ScopedRequestStage::ScopedRequestStage(RequestStage stage) {
  ActiveRequest& req = g_active_request;
  if (req.timer == nullptr) return;
  auto now = std::chrono::steady_clock::now();
  previous_stage_ = req.current_stage;
  previous_start_ = req.stage_started;
  if (previous_stage_ >= 0) {
    // Pause the enclosing stage: bank its elapsed time now, resume later.
    req.stage_seconds[previous_stage_] +=
        std::chrono::duration<double>(now - req.stage_started).count();
  }
  req.current_stage = static_cast<int>(stage);
  req.stage_started = now;
  active_ = true;
}

ScopedRequestStage::~ScopedRequestStage() {
  if (!active_) return;
  ActiveRequest& req = g_active_request;
  auto now = std::chrono::steady_clock::now();
  if (req.current_stage >= 0) {
    req.stage_seconds[req.current_stage] +=
        std::chrono::duration<double>(now - req.stage_started).count();
  }
  req.current_stage = previous_stage_;
  req.stage_started = now;  // the enclosing stage resumes from here
}

}  // namespace hom::obs
