// Reproduces Figure 3: impact of the concept changing rate on error rate
// and test time, for Stagger and Hyperplane. The x-axis is 1/λ — the
// expected length of one concept occurrence — swept over the paper's range
// 200..2200. Expected shapes:
//   * RePro and WCE error grows sharply as changes become frequent (small
//     1/λ); the high-order error stays flat.
//   * RePro test time grows with the change rate (it re-learns at every
//     change), WCE test time shrinks (instance-based pruning), the
//     high-order test time is flat.

#include <cstdio>
#include <memory>

#include "baselines/repro.h"
#include "baselines/wce.h"
#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "streams/hyperplane.h"
#include "streams/stagger.h"

namespace {

using hom::Dataset;
using hom::DecisionTree;
using hom::HighOrderBuildReport;
using hom::HighOrderModelBuilder;
using hom::Record;
using hom::RePro;
using hom::Rng;
using hom::RunPrequential;
using hom::StreamGenerator;
using hom::Wce;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

struct Point {
  double error[3];
  double seconds[3];
};

Point RunPoint(StreamGenerator* gen, size_t history_size, size_t test_size,
               uint64_t seed) {
  Dataset history = gen->Generate(history_size);
  Dataset test = gen->Generate(test_size);
  Point point{};

  Rng rng(seed);
  HighOrderModelBuilder builder(DecisionTree::Factory());
  auto clf = builder.Build(history, &rng);
  if (clf.ok()) {
    auto res = RunPrequential(clf->get(), test);
    point.error[0] = res.error_rate();
    point.seconds[0] = res.seconds;
  }

  RePro repro(history.schema(), DecisionTree::Factory());
  for (const Record& r : history.records()) repro.ObserveLabeled(r);
  auto rp = RunPrequential(&repro, test);
  point.error[1] = rp.error_rate();
  point.seconds[1] = rp.seconds;

  Wce wce(history.schema(), DecisionTree::Factory());
  for (const Record& r : history.records()) wce.ObserveLabeled(r);
  auto wc = RunPrequential(&wce, test);
  point.error[2] = wc.error_rate();
  point.seconds[2] = wc.seconds;
  return point;
}

void Sweep(const char* stream, size_t history_size, size_t test_size,
           size_t runs,
           const std::function<std::unique_ptr<StreamGenerator>(
               double lambda, uint64_t seed)>& make,
           BenchReporter* reporter) {
  std::printf("== Figure 3 (%s): error & test time vs 1/changing-rate ==\n",
              stream);
  std::printf("%10s | %12s %12s %12s | %10s %10s %10s\n", "1/rate",
              "HO err", "RePro err", "WCE err", "HO (s)", "RePro (s)",
              "WCE (s)");
  PrintRule(94);
  for (size_t inv_rate = 200; inv_rate <= 2200; inv_rate += 400) {
    double lambda = 1.0 / static_cast<double>(inv_rate);
    Point avg{};
    for (size_t run = 0; run < runs; ++run) {
      auto gen = make(lambda, 31000 + inv_rate + run * 7);
      Point p = RunPoint(gen.get(), history_size, test_size,
                         inv_rate + run);
      for (size_t a = 0; a < 3; ++a) {
        avg.error[a] += p.error[a] / static_cast<double>(runs);
        avg.seconds[a] += p.seconds[a] / static_cast<double>(runs);
      }
    }
    std::printf("%10zu | %12.5f %12.5f %12.5f | %10.4f %10.4f %10.4f\n",
                inv_rate, avg.error[0], avg.error[1], avg.error[2],
                avg.seconds[0], avg.seconds[1], avg.seconds[2]);
    std::string row = std::string(stream) + "/inv_rate=" +
                      std::to_string(inv_rate);
    const char* algos[] = {"high_order", "repro", "wce"};
    for (size_t a = 0; a < 3; ++a) {
      reporter->AddValue(row, std::string(algos[a]) + "_error",
                         avg.error[a]);
      reporter->AddValue(row, std::string(algos[a]) + "_seconds",
                         avg.seconds[a]);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  BenchReporter reporter("bench_fig3_changing_rate");
  reporter.SetScale(scale);
  Sweep("Stagger", scale.stagger_history, scale.stagger_test, scale.runs,
        [](double lambda, uint64_t seed) -> std::unique_ptr<StreamGenerator> {
          hom::StaggerConfig config;
          config.lambda = lambda;
          return std::make_unique<hom::StaggerGenerator>(seed, config);
        },
        &reporter);
  Sweep("Hyperplane", scale.hyperplane_history, scale.hyperplane_test,
        scale.runs,
        [](double lambda, uint64_t seed) -> std::unique_ptr<StreamGenerator> {
          hom::HyperplaneConfig config;
          config.lambda = lambda;
          return std::make_unique<hom::HyperplaneGenerator>(seed, config);
        },
        &reporter);
  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
