// Introspection-surface microbench (PR5 observability): what does live
// monitoring cost? Measures (a) Prometheus text-encode latency as the
// registry grows — the /metrics handler is Snapshot() + encode, so this is
// the per-scrape cost floor — and (b) the overhead continuous scraping adds
// to the Stagger online path, the acceptance criterion of the scrape-under-
// load gate. The online error rides along as a correctness anchor: serving
// introspection must not change predictions.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "common/check.h"
#include "eval/prequential.h"
#include "eval/serving_status.h"
#include "highorder/builder.h"
#include "highorder/highorder_classifier.h"
#include "obs/exposition.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "streams/stagger.h"

namespace {

using namespace hom;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Synthesizes a snapshot with `series` total series, in the shape a real
/// serving registry has: mostly labeled counters, some gauges, a few
/// histograms (each histogram contributes bounds+3 samples when encoded).
obs::MetricsSnapshot SyntheticSnapshot(size_t series) {
  obs::MetricsSnapshot snap;
  size_t histograms = series / 20;
  size_t gauges = series / 4;
  size_t counters = series - histograms - gauges;
  for (size_t i = 0; i < counters; ++i) {
    snap.labeled_counters[obs::SeriesKey{
        "hom.bench.counter_" + std::to_string(i % 16),
        {{"concept", std::to_string(i)}}}] = i;
  }
  for (size_t i = 0; i < gauges; ++i) {
    snap.labeled_gauges[obs::SeriesKey{
        "hom.bench.gauge_" + std::to_string(i % 8),
        {{"concept", std::to_string(i)}}}] = 0.5 * static_cast<double>(i);
  }
  obs::MetricsSnapshot::HistogramData h;
  h.bounds = {10, 100, 1000, 10000, 100000};
  h.counts = {5, 10, 20, 10, 5, 1};
  h.count = 51;
  h.sum = 123456.0;
  for (size_t i = 0; i < histograms; ++i) {
    snap.labeled_histograms[obs::SeriesKey{
        "hom.bench.hist", {{"shard", std::to_string(i)}}}] = h;
  }
  return snap;
}

/// Minimal blocking GET used by the scraper thread; returns bytes read
/// (0 on any failure — the bench only needs throughput, not parsing).
size_t ScrapeOnce(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  size_t total = 0;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const char req[] = "GET /metrics HTTP/1.1\r\nHost: b\r\n\r\n";
    if (::send(fd, req, sizeof(req) - 1, 0) > 0) {
      char buf[8192];
      ssize_t n;
      while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        total += static_cast<size_t>(n);
      }
    }
  }
  ::close(fd);
  return total;
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  BenchReporter reporter("bench_exposition");
  reporter.SetScale(scale);
  std::printf("== exposition: cost of live introspection ==\n");
  PrintRule(64);

  // --- (a) encode latency vs series count. Encoding is pure function of
  // the snapshot, so synthetic snapshots isolate it from Snapshot().
  for (size_t series : {100, 1000, 5000}) {
    obs::MetricsSnapshot snap = SyntheticSnapshot(series);
    std::string text = obs::EncodePrometheusText(snap);  // warm / size probe
    size_t reps = series >= 5000 ? 50 : 200;
    auto t0 = std::chrono::steady_clock::now();
    size_t sink = 0;
    for (size_t i = 0; i < reps; ++i) {
      sink += obs::EncodePrometheusText(snap).size();
    }
    double ms = MsSince(t0) / static_cast<double>(reps);
    HOM_CHECK(sink == reps * text.size());
    std::string row = "encode/series_" + std::to_string(series);
    std::printf("%-36s %10.4f ms  (%zu bytes)\n", row.c_str(), ms,
                text.size());
    reporter.AddValue(row, "latency_ms", ms);
    reporter.AddValue(row, "bytes", static_cast<double>(text.size()));
  }

  // --- (b) the Stagger online path, plain vs continuously scraped.
  StaggerGenerator gen(88001);
  Dataset history = gen.Generate(scale.stagger_history);
  Dataset test = gen.Generate(scale.stagger_test);
  HighOrderModelBuilder builder(DecisionTree::Factory());
  Rng rng(29);
  auto built = builder.Build(history, &rng);
  if (!built.ok()) {
    std::printf("build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }

  auto run_online = [&](HighOrderClassifier* model, uint64_t progress_every,
                        ServingStatusBoard* board) {
    PrequentialOptions options;
    options.track_concept_stats = true;
    if (board != nullptr) {
      options.progress_every = progress_every;
      options.on_progress = [model, board](const PrequentialProgress& p) {
        ServingStatusBoard::Progress progress;
        progress.records = p.record;
        progress.errors = p.num_errors;
        model->ExportServingStatus(&progress);
        board->UpdateProgress(progress);
      };
    }
    auto t0 = std::chrono::steady_clock::now();
    PrequentialResult result = RunPrequential(model, test, options);
    return std::make_pair(MsSince(t0) / 1000.0, result);
  };

  auto [plain_s, plain] = run_online(built->get(), 0, nullptr);
  std::printf("%-36s %10.4f s\n", "online (no server)", plain_s);
  reporter.AddValue("online/plain", "seconds", plain_s);
  reporter.AddValue("online/plain", "error", plain.error_rate());

  // Fresh model instance for the scraped run so both start cold — same
  // seed, so the two runs are bit-identical absent interference.
  Rng rng2(29);
  auto scraped_model = builder.Build(history, &rng2);
  HOM_CHECK(scraped_model.ok());
  ServingStatusBoard board;
  board.SetStaticInfo("bench", "stagger", (*scraped_model)->num_classes());
  board.SetState("serving");
  obs::HttpServer server;
  server.Handle("/metrics", [] {
    obs::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::EncodePrometheusText(
        obs::MetricsRegistry::Global().Snapshot());
    return r;
  });
  HOM_CHECK(server.Start().ok());

  std::atomic<bool> stop_scraper{false};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<uint64_t> scraped_bytes{0};
  std::thread scraper([&] {
    while (!stop_scraper.load(std::memory_order_relaxed)) {
      size_t n = ScrapeOnce(server.port());
      if (n > 0) {
        ++scrapes;
        scraped_bytes += n;
      }
    }
  });

  auto [scraped_s, scraped] = run_online(scraped_model->get(), 200, &board);
  stop_scraper.store(true, std::memory_order_relaxed);
  scraper.join();
  server.Stop();

  double per_scrape_kb =
      scrapes.load() == 0
          ? 0.0
          : static_cast<double>(scraped_bytes.load()) / 1024.0 /
                static_cast<double>(scrapes.load());
  std::printf("%-36s %10.4f s  (%llu scrapes, %.1f KiB each)\n",
              "online (scraped continuously)", scraped_s,
              static_cast<unsigned long long>(scrapes.load()), per_scrape_kb);
  reporter.AddValue("online/scraped", "seconds", scraped_s);
  reporter.AddValue("online/scraped", "error", scraped.error_rate());
  reporter.AddValue("online/scraped", "scrapes",
                    static_cast<double>(scrapes.load()));

  // The anchor the gate watches: introspection must not change the online
  // path's predictions. Identical seeds => identical error counts.
  reporter.AddValue("online/scraped", "error_delta_vs_plain",
                    std::abs(scraped.error_rate() - plain.error_rate()));
  if (scraped.num_errors != plain.num_errors) {
    std::printf("SCRAPED RUN DIVERGED: %zu vs %zu errors\n",
                scraped.num_errors, plain.num_errors);
    return 1;
  }

  if (Status st = reporter.WriteJson(); !st.ok()) {
    std::printf("telemetry write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
