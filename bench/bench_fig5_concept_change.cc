// Reproduces Figure 5: error rates during concept change, for Stagger
// (abrupt shift) and Hyperplane (gradual drift), averaged over many
// aligned transitions. Expected shapes:
//   * High-order: error spikes at the change and collapses within a few
//     records (Stagger); for Hyperplane it peaks mid-drift and returns to
//     the optimum as soon as the drift completes.
//   * RePro: waits for the trigger window to fill before reacting.
//   * WCE: recovers roughly one chunk (100 records) after the change.

#include <cstdio>
#include <memory>

#include "baselines/repro.h"
#include "baselines/wce.h"
#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "eval/trace.h"
#include "streams/hyperplane.h"
#include "streams/stagger.h"

namespace {

using hom::AlignedTraceAccumulator;
using hom::Dataset;
using hom::DecisionTree;
using hom::HighOrderModelBuilder;
using hom::PrequentialOptions;
using hom::PrequentialResult;
using hom::Record;
using hom::RePro;
using hom::Rng;
using hom::RunPrequential;
using hom::StreamClassifier;
using hom::StreamGenerator;
using hom::StreamTrace;
using hom::Wce;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

void RunStream(const char* name, StreamGenerator* gen, size_t history_size,
               size_t test_size, size_t before, size_t after,
               uint64_t seed, BenchReporter* reporter) {
  Dataset history = gen->Generate(history_size);
  StreamTrace trace;
  Dataset test = gen->Generate(test_size, &trace);

  PrequentialOptions options;
  options.record_trace = true;

  std::vector<AlignedTraceAccumulator> accs(3, {before, after});

  Rng rng(seed);
  HighOrderModelBuilder builder(DecisionTree::Factory());
  auto highorder = builder.Build(history, &rng);
  if (highorder.ok()) {
    PrequentialResult r = RunPrequential(highorder->get(), test, options);
    accs[0].AddSeries(r.errors, trace.change_points);
  }
  RePro repro(history.schema(), DecisionTree::Factory());
  for (const Record& rec : history.records()) repro.ObserveLabeled(rec);
  {
    PrequentialResult r = RunPrequential(&repro, test, options);
    accs[1].AddSeries(r.errors, trace.change_points);
  }
  Wce wce(history.schema(), DecisionTree::Factory());
  for (const Record& rec : history.records()) wce.ObserveLabeled(rec);
  {
    PrequentialResult r = RunPrequential(&wce, test, options);
    accs[2].AddSeries(r.errors, trace.change_points);
  }

  std::printf(
      "== Figure 5 (%s): mean error around a concept change (%zu aligned "
      "windows) ==\n",
      name, accs[0].num_windows());
  std::printf("%8s %12s %12s %12s\n", "t-cp", "High-order", "RePro", "WCE");
  PrintRule(48);
  std::vector<std::vector<double>> means;
  for (auto& acc : accs) means.push_back(acc.Mean());
  // Bucket by 5 records for readable output.
  const size_t kBucket = 5;
  for (size_t start = 0; start + kBucket <= before + after;
       start += kBucket) {
    double avg[3] = {0, 0, 0};
    for (size_t a = 0; a < 3; ++a) {
      for (size_t i = start; i < start + kBucket; ++i) {
        avg[a] += means[a][i];
      }
      avg[a] /= kBucket;
    }
    std::printf("%8ld %12.4f %12.4f %12.4f\n",
                static_cast<long>(start + kBucket / 2) -
                    static_cast<long>(before),
                avg[0], avg[1], avg[2]);
  }
  std::printf("\n");

  const char* algos[] = {"high_order", "repro", "wce"};
  for (size_t a = 0; a < 3; ++a) {
    double pre = 0.0;
    double post = 0.0;
    for (size_t i = 0; i < before; ++i) pre += means[a][i];
    for (size_t i = before; i < before + after; ++i) post += means[a][i];
    std::string row = std::string(name) + "/" + algos[a];
    reporter->AddValue(row, "mean_error_before_change",
                       pre / static_cast<double>(before));
    reporter->AddValue(row, "mean_error_after_change",
                       post / static_cast<double>(after));
    reporter->AddValue(row, "aligned_windows",
                       static_cast<double>(accs[a].num_windows()));
  }
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  BenchReporter reporter("bench_fig5_concept_change");
  reporter.SetScale(scale);
  {
    // More frequent changes than the default stream so a reduced-scale run
    // still aligns many windows (the paper averages 1000 runs instead).
    hom::StaggerConfig config;
    config.lambda = 0.002;
    hom::StaggerGenerator gen(51001, config);
    RunStream("Stagger", &gen, scale.stagger_history,
              scale.stagger_test, 50, 150, 61, &reporter);
  }
  {
    hom::HyperplaneConfig config;
    config.lambda = 0.002;
    hom::HyperplaneGenerator gen(51002, config);
    RunStream("Hyperplane", &gen, scale.hyperplane_history,
              scale.hyperplane_test, 50, 250, 62, &reporter);
  }
  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
