// Model-health monitoring overhead bench (DESIGN.md §12): what does the
// monitoring stack — ServingStatusBoard refresh, registry visit into the
// TimeSeriesStore ring, and default alert pack evaluation — cost against
// a plain prequential run? The monitored side mirrors the homctl
// monitored-evaluate wiring (cadence 200, sampled Brier calibration);
// the off side mirrors plain `homctl evaluate`.
//
// The gated quantity is the snapshot-tick + rule-evaluation overhead:
// the wall time spent inside the monitoring callback, measured directly
// with a stopwatch around the block and divided by the monitoring-off
// median wall. End-to-end run differencing cannot resolve a ~2% effect
// here — separate binary layouts alone shift whole-run wall time by more
// than that — while the direct measurement is stable to the microsecond.
// The end-to-end medians are still reported (and the determinism anchor
// hard-fails the binary), but the committed baseline pins
// alerts/overhead:overhead_ratio, gated by bench_compare's "overhead"
// policy.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "eval/prequential.h"
#include "eval/serving_status.h"
#include "highorder/builder.h"
#include "highorder/serialization.h"
#include "obs/alerts.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "streams/stagger.h"

namespace {

using namespace hom;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

std::unique_ptr<HighOrderClassifier> Reload(const std::string& bytes) {
  std::stringstream buffer(bytes);
  auto model = LoadHighOrderModel(&buffer);
  HOM_CHECK(model.ok());
  return std::move(*model);
}

double Median(std::vector<double> values) {
  HOM_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  size_t mid = values.size() / 2;
  return values.size() % 2 == 1
             ? values[mid]
             : 0.5 * (values[mid - 1] + values[mid]);
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  StaggerGenerator gen(88007);
  Dataset history = gen.Generate(scale.stagger_history);
  Dataset test = gen.Generate(scale.stagger_test);

  HighOrderModelBuilder builder(DecisionTree::Factory());
  Rng rng(31);
  auto built = builder.Build(history, &rng);
  if (!built.ok()) {
    std::printf("build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::stringstream buffer;
  HOM_CHECK(SaveHighOrderModel(&buffer, **built).ok());
  const std::string model_bytes = buffer.str();

  BenchReporter reporter("bench_alerts");
  reporter.SetScale(scale);
  std::printf("== model-health monitoring: cost of the alert stack ==\n");
  PrintRule(64);

  const size_t reps = std::max<size_t>(scale.runs, 5);
  // Interleave off/on reps so drift (thermal, cache warm-up) hits both
  // sides evenly instead of biasing whichever side runs last.
  std::vector<double> off_seconds, on_seconds, monitor_seconds;
  size_t off_errors = 0, on_errors = 0;
  uint64_t total_ticks = 0, total_transitions = 0, total_evaluations = 0;
  for (size_t rep = 0; rep < reps; ++rep) {
    {
      // Monitoring off == plain `homctl evaluate`: concept accounting on,
      // no calibration sampling, no progress callback.
      auto model = Reload(model_bytes);
      PrequentialOptions options;
      options.track_concept_stats = true;
      PrequentialResult result = RunPrequential(model.get(), test, options);
      off_seconds.push_back(result.seconds);
      off_errors = result.num_errors;
    }
    {
      auto model = Reload(model_bytes);
      ServingStatusBoard board;
      board.SetStaticInfo("bench", "stagger", model->num_concepts());
      board.SetErrorSlo(0.3);
      obs::TimeSeriesStore timeseries;
      auto alerts = obs::AlertEngine::Make(obs::DefaultAlertRules(0.3));
      HOM_CHECK(alerts.ok());
      board.SetMonitors(&timeseries, alerts->get());

      // The exact homctl monitored-evaluate wiring at default cadence:
      // board refresh + registry tick + alert evaluation every 200
      // records, sampled Brier calibration every 512. The stopwatch
      // brackets the monitoring block alone — that accumulated wall time
      // is the gated overhead.
      double monitor_this_rep = 0.0;
      PrequentialOptions options;
      options.track_concept_stats = true;
      options.calibration_sample_period = 512;
      options.progress_every = 200;
      options.on_progress = [&](const PrequentialProgress& progress) {
        Stopwatch sw;
        ServingStatusBoard::Progress sp;
        sp.records = progress.record;
        sp.errors = progress.num_errors;
        model->ExportServingStatus(&sp);
        board.UpdateProgress(sp);
        timeseries.TickFromRegistry(obs::MetricsRegistry::Global(),
                                    static_cast<int64_t>(progress.record));
        (*alerts)->EvaluateTick(timeseries,
                                static_cast<int64_t>(progress.record));
        monitor_this_rep += sw.ElapsedSeconds();
      };
      PrequentialResult result = RunPrequential(model.get(), test, options);
      on_seconds.push_back(result.seconds);
      monitor_seconds.push_back(monitor_this_rep);
      on_errors = result.num_errors;
      total_ticks += timeseries.ticks();
      total_transitions += (*alerts)->transitions();
      total_evaluations += (*alerts)->evaluations();
    }
  }

  double off_median = Median(off_seconds);
  double on_median = Median(on_seconds);
  double monitor_median = Median(monitor_seconds);
  // The gate: monitoring-block wall (board + tick + rules) over the
  // monitoring-off median wall, as a ratio around 1.0 so bench_compare's
  // additive overhead policy applies directly.
  double ratio = off_median > 0.0 ? 1.0 + monitor_median / off_median : 1.0;
  double end_to_end = off_median > 0.0 ? on_median / off_median : 1.0;

  std::printf("%-36s %10.4f s\n", "evaluate (monitoring off, median)",
              off_median);
  std::printf("%-36s %10.4f s\n", "evaluate (monitoring on, median)",
              on_median);
  std::printf("%-36s %10.6f s\n", "monitor block wall (median)",
              monitor_median);
  std::printf("%-36s %10.4f\n", "monitor overhead ratio (gated)", ratio);
  std::printf("%-36s %10.4f\n", "end-to-end ratio (informational)",
              end_to_end);
  std::printf("%-36s %10llu\n", "monitor ticks",
              static_cast<unsigned long long>(total_ticks));
  std::printf("%-36s %10llu\n", "rule evaluations",
              static_cast<unsigned long long>(total_evaluations));
  std::printf("%-36s %10llu\n", "alert transitions",
              static_cast<unsigned long long>(total_transitions));

  reporter.AddValue("alerts/off", "median_seconds", off_median);
  reporter.AddValue("alerts/on", "median_seconds", on_median);
  reporter.AddValue("alerts/on", "monitor_seconds", monitor_median);
  reporter.AddValue("alerts/on", "ticks", static_cast<double>(total_ticks));
  reporter.AddValue("alerts/on", "evaluations",
                    static_cast<double>(total_evaluations));
  reporter.AddValue("alerts/on", "transitions",
                    static_cast<double>(total_transitions));
  reporter.AddValue("alerts/overhead", "overhead_ratio", ratio);

  // Determinism anchor: monitoring must observe, never steer. Identical
  // error counts on the identical stream or the binary fails.
  std::printf("%-36s %10zu vs %zu\n", "errors (off vs on)", off_errors,
              on_errors);
  reporter.AddValue("alerts/determinism", "match",
                    off_errors == on_errors ? 1.0 : 0.0);
  if (off_errors != on_errors) {
    std::printf("MONITORING CHANGED RESULTS: %zu vs %zu errors\n", off_errors,
                on_errors);
    return 1;
  }
  // Monitoring that never evaluates a rule measures nothing.
  if (total_ticks == 0 || total_evaluations == 0) {
    std::printf("MONITORING NEVER TICKED (ticks=%llu evaluations=%llu)\n",
                static_cast<unsigned long long>(total_ticks),
                static_cast<unsigned long long>(total_evaluations));
    return 1;
  }
  // The ISSUE gate, enforced in-binary as well as via the committed
  // baseline: the monitoring block must stay within 3% of a plain run.
  if (ratio > 1.03) {
    std::printf("MONITORING OVERHEAD ABOVE BUDGET: ratio %.4f > 1.03\n",
                ratio);
    return 1;
  }

  if (Status st = reporter.WriteJson(); !st.ok()) {
    std::printf("telemetry write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
