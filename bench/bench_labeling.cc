// Labeling-cost extension benchmark: the paper's Section III-A setting
// ("Y is usually created by labeling a subset of X online") taken
// seriously — how much accuracy does each labeling budget buy, and does
// concept-uncertainty-driven labeling beat a random budget of equal size?
//
// The high-order model only needs labels to IDENTIFY the active concept,
// so its error should degrade gracefully as the budget shrinks, and the
// uncertainty policy should reach near-full-label accuracy using a small
// fraction of the labels.

#include <cstdio>

#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "eval/selective_labeling.h"
#include "highorder/builder.h"
#include "highorder/uncertainty_labeling.h"
#include "streams/stagger.h"

namespace {

using namespace hom;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  StaggerConfig sc;
  sc.lambda = 0.002;
  StaggerGenerator gen(95001, sc);
  Dataset history = gen.Generate(scale.stagger_history);
  Dataset test = gen.Generate(scale.stagger_test);

  HighOrderModelBuilder builder(DecisionTree::Factory());
  BenchReporter reporter("bench_labeling");
  reporter.SetScale(scale);

  std::printf("== Labeling budget vs error (Stagger, %zu test records) ==\n",
              test.size());
  std::printf("%-24s %14s %12s\n", "Policy", "Labels used", "Error");
  PrintRule(52);

  for (double fraction : {1.0, 0.2, 0.05, 0.01, 0.002}) {
    Rng rng(5);
    auto clf = builder.Build(history, &rng);
    if (!clf.ok()) continue;
    RandomLabelingPolicy policy(fraction, 11);
    SelectiveResult res = RunSelectivePrequential(clf->get(), test, &policy);
    char label[64];
    std::snprintf(label, sizeof(label), "random %.1f%%", 100 * fraction);
    std::printf("%-24s %13.1f%% %12.5f\n", label,
                100 * res.label_fraction(), res.error_rate());
    reporter.AddValue(label, "label_fraction", res.label_fraction());
    reporter.AddValue(label, "error", res.error_rate());
  }

  for (double trickle : {0.05, 0.02, 0.005}) {
    Rng rng(5);
    auto clf = builder.Build(history, &rng);
    if (!clf.ok()) continue;
    UncertaintyLabelingConfig config;
    config.trickle = trickle;
    UncertaintyLabelingPolicy policy(config);
    SelectiveResult res = RunSelectivePrequential(clf->get(), test, &policy);
    char label[64];
    std::snprintf(label, sizeof(label), "uncertainty (t=%.3f)", trickle);
    std::printf("%-24s %13.1f%% %12.5f\n", label,
                100 * res.label_fraction(), res.error_rate());
    reporter.AddValue(label, "label_fraction", res.label_fraction());
    reporter.AddValue(label, "error", res.error_rate());
  }
  std::printf(
      "\nReading: with label-only feedback, detection delay ~1/trickle"
      "\ndominates the error, so compare each uncertainty row against the"
      "\nrandom row of EQUAL budget: the burst resolves a detected change"
      "\nin ~15 records where random needs ~3/fraction records.\n");
  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
