// Parallel offline-build benchmark: thread sweep over the pooled phases of
// concept clustering (leaf training, the initial adjacent ΔQ batch, step-2
// sample prediction and pairwise distances).
//
// For each stream (Stagger, Hyperplane) the same history is built at 1, 2,
// 4, and 8 threads with the same seed. Reported per row:
//
//   * threads                 — effective pool size (config echo),
//   * build_seconds           — full offline build wall time,
//   * parallel_phase_seconds  — wall time of the four pooled spans only
//                               (the serial heap-merge loops are excluded:
//                               they are the algorithm and do not scale),
//   * speedup                 — threads=1 build_seconds / this row's,
//   * num_concepts            — must be identical down the sweep; the
//                               sharded-RNG determinism scheme guarantees
//                               the whole model is bit-identical at every
//                               thread count (tests/parallel_build_test.cc
//                               asserts the serialized bytes).
//
// Numbers are only meaningful relative to the machine's core count: on a
// single hardware thread the sweep measures oversubscription overhead, not
// speedup.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "highorder/builder.h"
#include "obs/trace.h"
#include "streams/hyperplane.h"
#include "streams/stagger.h"

namespace {

using namespace hom;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};

/// Wall seconds of the spans whose loops run on the pool.
double ParallelPhaseSeconds(const obs::PhaseNode& build) {
  double total = 0.0;
  if (const obs::PhaseNode* n = build.FindChild("leaf_training")) {
    total += n->seconds;
  }
  if (const obs::PhaseNode* s1 = build.FindChild("step1_chunk_merging")) {
    if (const obs::PhaseNode* n = s1->FindChild("initial_candidates")) {
      total += n->seconds;
    }
  }
  if (const obs::PhaseNode* s2 = build.FindChild("step2_concept_merging")) {
    if (const obs::PhaseNode* n = s2->FindChild("similarity_samples")) {
      total += n->seconds;
    }
    if (const obs::PhaseNode* n = s2->FindChild("pairwise_distances")) {
      total += n->seconds;
    }
  }
  return total;
}

struct SweepPoint {
  double build_seconds = 0.0;
  double parallel_phase_seconds = 0.0;
  size_t threads_used = 0;
  size_t num_concepts = 0;
};

int RunSweep(const std::string& stream_name, const Dataset& history,
             const Scale& scale, BenchReporter* reporter) {
  std::printf("\n== %s: %zu-record history, %zu run(s) per point ==\n",
              stream_name.c_str(), history.size(), scale.runs);
  PrintRule(72);
  std::printf("%-10s %14s %22s %10s\n", "threads", "build_s",
              "parallel_phase_s", "speedup");

  double serial_build = 0.0;
  size_t serial_concepts = 0;
  for (size_t threads : kThreadSweep) {
    SweepPoint point;
    for (size_t run = 0; run < scale.runs; ++run) {
      HighOrderBuildConfig config;
      config.clustering.num_threads = threads;
      HighOrderModelBuilder builder(DecisionTree::Factory(), config);
      Rng rng(4242);  // same seed down the sweep: results must match
      HighOrderBuildReport report;
      auto model = builder.Build(history, &rng, &report);
      if (!model.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     model.status().ToString().c_str());
        return 1;
      }
      point.build_seconds += report.build_seconds;
      point.parallel_phase_seconds += ParallelPhaseSeconds(report.phases);
      point.threads_used = report.effective_threads;
      point.num_concepts = report.num_concepts;
      hom::bench::AccumulatedBuildPhases().MergeFrom(report.phases);
    }
    point.build_seconds /= static_cast<double>(scale.runs);
    point.parallel_phase_seconds /= static_cast<double>(scale.runs);

    if (threads == 1) {
      serial_build = point.build_seconds;
      serial_concepts = point.num_concepts;
    } else if (point.num_concepts != serial_concepts) {
      // The determinism scheme makes this impossible; a mismatch means a
      // scheduling dependence crept back in.
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %zu threads found %zu concepts, "
                   "1 thread found %zu\n",
                   threads, point.num_concepts, serial_concepts);
      return 1;
    }
    double speedup =
        point.build_seconds > 0.0 ? serial_build / point.build_seconds : 0.0;
    std::printf("%-10zu %14.3f %22.3f %9.2fx\n", point.threads_used,
                point.build_seconds, point.parallel_phase_seconds, speedup);

    std::string row = stream_name + "/threads=" + std::to_string(threads);
    reporter->AddValue(row, "threads",
                       static_cast<double>(point.threads_used));
    reporter->AddValue(row, "build_seconds", point.build_seconds);
    reporter->AddValue(row, "parallel_phase_seconds",
                       point.parallel_phase_seconds);
    reporter->AddValue(row, "speedup", speedup);
    reporter->AddValue(row, "num_concepts",
                       static_cast<double>(point.num_concepts));
  }
  return 0;
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  BenchReporter reporter("bench_parallel_build");
  reporter.SetScale(scale);

  {
    StaggerConfig config;
    config.lambda = 0.002;
    StaggerGenerator gen(91001, config);
    Dataset history = gen.Generate(scale.stagger_history);
    if (int rc = RunSweep("Stagger", history, scale, &reporter); rc != 0) {
      return rc;
    }
  }
  {
    HyperplaneConfig config;
    HyperplaneGenerator gen(91002, config);
    Dataset history = gen.Generate(scale.hyperplane_history);
    if (int rc = RunSweep("Hyperplane", history, scale, &reporter); rc != 0) {
      return rc;
    }
  }

  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
