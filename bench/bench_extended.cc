// Extended comparison beyond the paper's Table II: the high-order model
// against the full family of stream classifiers this library implements —
// RePro (KDD'05), WCE (KDD'03), Dynamic Weighted Majority (ICDM'03,
// reference [15]), a frozen static model, and the naive sliding-window
// retrainer — plus a high-order variant built on Naive Bayes base models
// (Section II-B: "any method designed for mining stationary data").

#include <cstdio>
#include <memory>

#include "baselines/dwm.h"
#include "baselines/repro.h"
#include "baselines/simple.h"
#include "baselines/wce.h"
#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "classifiers/incremental_naive_bayes.h"
#include "classifiers/naive_bayes.h"
#include "streams/hyperplane.h"
#include "streams/intrusion.h"
#include "streams/sea.h"
#include "streams/stagger.h"

namespace {

using namespace hom;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

struct Row {
  const char* name;
  double error;
  double seconds;
};

void RunStream(const char* name, StreamGenerator* gen, size_t history_size,
               size_t test_size, uint64_t seed, BenchReporter* reporter) {
  Dataset history = gen->Generate(history_size);
  Dataset test = gen->Generate(test_size);
  std::vector<Row> rows;

  auto run_stream_classifier = [&](const char* label,
                                   StreamClassifier* clf) {
    for (const Record& r : history.records()) clf->ObserveLabeled(r);
    PrequentialResult res = RunPrequential(clf, test);
    rows.push_back({label, res.error_rate(), res.seconds});
  };

  {
    Rng rng(seed);
    HighOrderModelBuilder builder(DecisionTree::Factory());
    auto clf = builder.Build(history, &rng);
    if (clf.ok()) {
      PrequentialResult res = RunPrequential(clf->get(), test);
      rows.push_back({"High-order (C4.5)", res.error_rate(), res.seconds});
    }
  }
  {
    Rng rng(seed + 1);
    HighOrderModelBuilder builder(NaiveBayes::Factory());
    auto clf = builder.Build(history, &rng);
    if (clf.ok()) {
      PrequentialResult res = RunPrequential(clf->get(), test);
      rows.push_back({"High-order (NB)", res.error_rate(), res.seconds});
    }
  }
  {
    RePro repro(history.schema(), DecisionTree::Factory());
    run_stream_classifier("RePro", &repro);
  }
  {
    Wce wce(history.schema(), DecisionTree::Factory());
    run_stream_classifier("WCE", &wce);
  }
  {
    Dwm dwm(history.schema(), IncrementalNaiveBayes::Factory());
    run_stream_classifier("DWM", &dwm);
  }
  {
    StaticBaseline frozen(history.schema(), DecisionTree::Factory(), 1000);
    run_stream_classifier("Static", &frozen);
  }
  {
    SlidingWindowBaseline window(history.schema(), DecisionTree::Factory());
    run_stream_classifier("SlidingWindow", &window);
  }

  std::printf("== Extended comparison (%s, %zu history / %zu test) ==\n",
              name, history.size(), test.size());
  std::printf("%-20s %12s %12s\n", "Algorithm", "Error", "Test (s)");
  PrintRule(46);
  for (const Row& row : rows) {
    std::printf("%-20s %12.5f %12.4f\n", row.name, row.error, row.seconds);
    std::string key = std::string(name) + "/" + row.name;
    reporter->AddValue(key, "error", row.error);
    reporter->AddValue(key, "test_seconds", row.seconds);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  BenchReporter reporter("bench_extended");
  reporter.SetScale(scale);
  {
    StaggerGenerator gen(81001);
    RunStream("Stagger", &gen, scale.stagger_history, scale.stagger_test,
              91, &reporter);
  }
  {
    HyperplaneGenerator gen(81002);
    RunStream("Hyperplane", &gen, scale.hyperplane_history,
              scale.hyperplane_test, 92, &reporter);
  }
  {
    IntrusionConfig config;
    config.lambda = scale.intrusion_lambda;
    IntrusionGenerator gen(81003, config);
    RunStream("Intrusion", &gen, scale.intrusion_history,
              scale.intrusion_test, 93, &reporter);
  }
  {
    // SEA (Street & Kim, the paper's reference [2]): 10% class noise
    // stresses the ψ update and the clustering's error estimates.
    SeaConfig config;
    config.lambda = 0.002;
    SeaGenerator gen(81004, config);
    RunStream("SEA (10% noise)", &gen, scale.stagger_history,
              scale.stagger_test, 94, &reporter);
  }
  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
