// Replication bench (replicated-serving PR): what does failover cost?
// Measures checkpoint ship latency over real loopback HTTP (full
// transfers and deltas), the distributed-tracing overhead on that ship
// path (spans on vs off, gated as an overhead_ratio), promotion
// detection time after heartbeat loss, the serving pause a zero-downtime
// model swap imposes (p50/p99), and — as a correctness anchor the
// baseline gate watches — that a standby promoted mid-stream finishes
// with exactly the uninterrupted run's error count.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "common/check.h"
#include "eval/prequential.h"
#include "highorder/builder.h"
#include "highorder/checkpoint.h"
#include "highorder/serialization.h"
#include "obs/http_server.h"
#include "obs/trace_context.h"
#include "replication/replica.h"
#include "replication/shipper.h"
#include "replication/swap.h"
#include "streams/stagger.h"

namespace {

using namespace hom;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::unique_ptr<HighOrderClassifier> Reload(const std::string& bytes) {
  std::stringstream buffer(bytes);
  auto model = LoadHighOrderModel(&buffer);
  HOM_CHECK(model.ok());
  return std::move(*model);
}

std::string BuildModelBytes(const Dataset& history, uint64_t seed) {
  HighOrderModelBuilder builder(DecisionTree::Factory());
  Rng rng(seed);
  auto built = builder.Build(history, &rng);
  HOM_CHECK(built.ok());
  std::stringstream buffer;
  HOM_CHECK(SaveHighOrderModel(&buffer, **built).ok());
  return buffer.str();
}

/// A standby model + replica + HTTP server, torn down in reverse order
/// (server first, so its worker thread cannot touch a dead replica).
struct Standby {
  std::unique_ptr<HighOrderClassifier> model;
  std::unique_ptr<replication::StandbyReplica> replica;
  std::unique_ptr<obs::HttpServer> server;

  Standby(const std::string& model_bytes, replication::ReplicaOptions options)
      : model(Reload(model_bytes)) {
    replica = std::make_unique<replication::StandbyReplica>(model.get(),
                                                            options);
    server = std::make_unique<obs::HttpServer>(obs::HttpServer::Options{});
    replica->RegisterHandlers(server.get());
    HOM_CHECK(server->Start().ok());
  }
  ~Standby() { server->Stop(); }

  replication::ShipperOptions ShipperTo() const {
    replication::ShipperOptions options;
    options.port = server->port();
    options.primary_id = "bench:primary";
    options.backoff.initial_delay_ms = 1;
    options.backoff.max_attempts = 4;
    return options;
  }
};

ServingCheckpoint MakeCheckpoint(const HighOrderClassifier& model,
                                 uint64_t offset, uint64_t errors) {
  auto ckpt = CaptureCheckpoint(model);
  HOM_CHECK(ckpt.ok());
  ckpt->stream_offset = offset;
  ckpt->num_errors = errors;
  return std::move(*ckpt);
}

double Percentile(std::vector<double> samples, double q) {
  HOM_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  double rank = q * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  StaggerGenerator gen(88001);
  Dataset history = gen.Generate(scale.stagger_history);
  Dataset online = gen.Generate(scale.stagger_test);
  const std::string model_bytes = BuildModelBytes(history, 23);
  // A second model for the swap path, trained on a different slice so the
  // concept mapping does real work.
  Dataset history_b = gen.Generate(scale.stagger_history / 2);
  const std::string fresh_bytes = BuildModelBytes(history_b, 29);

  BenchReporter reporter("bench_failover");
  reporter.SetScale(scale);
  std::printf("== replicated serving: cost of failover ==\n");
  PrintRule(64);

  // --- ship latency: full transfers, then deltas against an acked base.
  {
    auto primary = Reload(model_bytes);
    auto stats = std::make_shared<OnlineConceptStats>(primary->num_classes());
    PrequentialOptions warm_options;
    warm_options.resume_concept_stats = stats;
    PrequentialResult warm = RunPrequential(primary.get(), online,
                                            warm_options);

    const size_t reps = 30;
    Standby full_standby(model_bytes, {});
    auto full_options = full_standby.ShipperTo();
    full_options.prefer_delta = false;
    replication::CheckpointShipper full_shipper(full_options);
    size_t full_bytes = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reps; ++i) {
      auto ckpt = MakeCheckpoint(*primary, warm.num_records + i,
                                 warm.num_errors);
      ckpt.concept_stats = stats;
      auto report = full_shipper.Ship(ckpt);
      HOM_CHECK(report.ok());
      full_bytes = report->wire_bytes;
    }
    double full_ms = MsSince(t0) / static_cast<double>(reps);

    Standby delta_standby(model_bytes, {});
    replication::CheckpointShipper delta_shipper(delta_standby.ShipperTo());
    {
      auto prime = MakeCheckpoint(*primary, warm.num_records,
                                  warm.num_errors);
      prime.concept_stats = stats;
      HOM_CHECK(delta_shipper.Ship(prime).ok());
    }
    size_t delta_bytes = 0;
    t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reps; ++i) {
      auto ckpt = MakeCheckpoint(*primary, warm.num_records + 1 + i,
                                 warm.num_errors);
      ckpt.concept_stats = stats;
      auto report = delta_shipper.Ship(ckpt);
      HOM_CHECK(report.ok());
      HOM_CHECK(report->delta);
      delta_bytes = report->wire_bytes;
    }
    double delta_ms = MsSince(t0) / static_cast<double>(reps);

    std::printf("%-36s %10.4f ms  %8zu bytes\n", "ship (full)", full_ms,
                full_bytes);
    std::printf("%-36s %10.4f ms  %8zu bytes\n", "ship (delta)", delta_ms,
                delta_bytes);
    reporter.AddValue("ship/full", "latency_ms", full_ms);
    reporter.AddValue("ship/full", "wire_bytes",
                      static_cast<double>(full_bytes));
    reporter.AddValue("ship/delta", "latency_ms", delta_ms);
    reporter.AddValue("ship/delta", "wire_bytes",
                      static_cast<double>(delta_bytes));
  }

  // --- tracing overhead on the ship path: every Ship() opens a
  // round/serialize/post span chain and every request carries a
  // traceparent header. Both arms run in this process against the same
  // standby, in alternating blocks so clock drift and cache state cancel
  // — the gated ratio is machine-independent.
  {
    auto primary = Reload(model_bytes);
    auto stats = std::make_shared<OnlineConceptStats>(primary->num_classes());
    PrequentialOptions warm_options;
    warm_options.resume_concept_stats = stats;
    PrequentialResult warm = RunPrequential(primary.get(), online,
                                            warm_options);

    Standby standby(model_bytes, {});
    replication::CheckpointShipper shipper(standby.ShipperTo());
    uint64_t offset = warm.num_records;
    auto prime = MakeCheckpoint(*primary, offset++, warm.num_errors);
    prime.concept_stats = stats;
    HOM_CHECK(shipper.Ship(prime).ok());

    obs::TraceBuffer& buffer = obs::TraceBuffer::Instance();
    const size_t reps = 64;  // per arm, interleaved ship by ship
    std::vector<double> on_samples, off_samples;
    for (size_t i = 0; i < reps; ++i) {
      for (bool traced : {true, false}) {
        buffer.set_enabled(traced);
        auto ckpt = MakeCheckpoint(*primary, offset++, warm.num_errors);
        ckpt.concept_stats = stats;
        auto t0 = std::chrono::steady_clock::now();
        HOM_CHECK(shipper.Ship(ckpt).ok());
        (traced ? on_samples : off_samples).push_back(MsSince(t0));
      }
    }
    buffer.set_enabled(false);
    buffer.Reset();
    // Median per arm: a ship is one TCP connect + round trip (~0.2 ms),
    // so a single slow connect is a multi-ms outlier that must not
    // decide the gated ratio; the medians sit on the modal round trip.
    double on_ms = Percentile(on_samples, 0.50);
    double off_ms = Percentile(off_samples, 0.50);
    double ratio = on_ms / off_ms;
    std::printf("%-36s %10.4f ms\n", "ship (tracing on)", on_ms);
    std::printf("%-36s %10.4f ms\n", "ship (tracing off)", off_ms);
    std::printf("%-36s %10.4f\n", "ship tracing overhead ratio", ratio);
    reporter.AddValue("ship/tracing", "on_ms", on_ms);
    reporter.AddValue("ship/tracing", "off_ms", off_ms);
    reporter.AddValue("ship/tracing", "overhead_ratio", ratio);
  }

  // --- promotion detection: how long after the last heartbeat does a
  // standby (promote_after = 50 ms, 1 ms poll) take over?
  {
    replication::ReplicaOptions options;
    options.promote_after_ms = 50;
    Standby standby(model_bytes, options);
    auto primary = Reload(model_bytes);
    replication::CheckpointShipper shipper(standby.ShipperTo());
    auto ckpt = MakeCheckpoint(*primary, 1000, 10);
    HOM_CHECK(shipper.Ship(ckpt).ok());
    HOM_CHECK(shipper.Heartbeat(1000).ok());
    auto t0 = std::chrono::steady_clock::now();  // the primary "dies" here
    while (!standby.replica->MaybePromote()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    double detect_ms = MsSince(t0);
    std::printf("%-36s %10.4f ms\n", "promotion detect (50 ms budget)",
                detect_ms);
    reporter.AddValue("promotion/heartbeat_loss", "detect_ms", detect_ms);
  }

  // --- swap pause: the serving loop stops at a record boundary, probes
  // the concept mapping, migrates the filter state, and switches. The
  // pause is the whole probe + migrate + switch span.
  {
    auto serving = Reload(model_bytes);
    auto stats = std::make_shared<OnlineConceptStats>(serving->num_classes());
    PrequentialOptions warm_options;
    warm_options.resume_concept_stats = stats;
    warm_options.stop_after = online.size() / 2;
    RunPrequential(serving.get(), online, warm_options);

    Dataset probe(online.schema());
    size_t probe_n = std::min<size_t>(512, online.size());
    for (size_t i = 0; i < probe_n; ++i) {
      probe.AppendUnchecked(online.record(i));
    }
    const size_t reps = 20;
    std::vector<double> pauses;
    double agreement = 0.0;
    for (size_t i = 0; i < reps; ++i) {
      auto fresh = Reload(fresh_bytes);
      auto t0 = std::chrono::steady_clock::now();
      auto mapping =
          replication::MigrateModelState(*serving, fresh.get(), probe);
      pauses.push_back(MsSince(t0));
      HOM_CHECK(mapping.ok());
      agreement = 0.0;
      for (double a : mapping->agreement) agreement += a;
      agreement /= static_cast<double>(mapping->agreement.size());
    }
    double p50 = Percentile(pauses, 0.50);
    double p99 = Percentile(pauses, 0.99);
    std::printf("%-36s %10.4f ms\n", "swap pause p50", p50);
    std::printf("%-36s %10.4f ms\n", "swap pause p99", p99);
    std::printf("%-36s %10.3f\n", "swap mapping mean agreement", agreement);
    reporter.AddValue("swap/pause", "p50_ms", p50);
    reporter.AddValue("swap/pause", "p99_ms", p99);
    reporter.AddValue("swap/mapping", "mean_agreement", agreement);
  }

  // --- correctness anchor: primary dies at the midpoint after shipping;
  // the promoted standby must finish with the uninterrupted error count.
  {
    auto uninterrupted = Reload(model_bytes);
    auto flat_stats = std::make_shared<OnlineConceptStats>(
        uninterrupted->num_classes());
    PrequentialOptions flat_options;
    flat_options.resume_concept_stats = flat_stats;
    PrequentialResult flat = RunPrequential(uninterrupted.get(), online,
                                            flat_options);

    replication::ReplicaOptions options;
    options.promote_after_ms = 40;
    Standby standby(model_bytes, options);
    uint64_t kill_at = online.size() / 2;
    {
      auto primary = Reload(model_bytes);
      auto stats = std::make_shared<OnlineConceptStats>(
          primary->num_classes());
      PrequentialOptions head;
      head.stop_after = kill_at;
      head.resume_concept_stats = stats;
      PrequentialResult head_result = RunPrequential(primary.get(), online,
                                                     head);
      auto ckpt = MakeCheckpoint(*primary, head_result.num_records,
                                 head_result.num_errors);
      ckpt.window_errors = head_result.window_errors_carry;
      ckpt.window_fill = head_result.window_fill_carry;
      ckpt.concept_stats = stats;
      replication::CheckpointShipper shipper(standby.ShipperTo());
      HOM_CHECK(shipper.Ship(ckpt).ok());
      HOM_CHECK(shipper.Heartbeat(head_result.num_records).ok());
    }  // primary dies
    while (!standby.replica->MaybePromote()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ServingCheckpoint resume = standby.replica->last_checkpoint();
    PrequentialOptions tail;
    tail.start_record = resume.stream_offset;
    tail.carry_errors = resume.num_errors;
    tail.carry_window_errors = resume.window_errors;
    tail.carry_window_fill = resume.window_fill;
    tail.resume_concept_stats = resume.concept_stats;
    PrequentialResult promoted = RunPrequential(standby.model.get(), online,
                                                tail);
    std::printf("%-36s %10.5f\n", "uninterrupted error", flat.error_rate());
    std::printf("%-36s %10.5f\n", "failover error", promoted.error_rate());
    reporter.AddValue("failover/determinism", "uninterrupted_error",
                      flat.error_rate());
    reporter.AddValue("failover/determinism", "failover_error",
                      promoted.error_rate());
    reporter.AddValue("failover/determinism", "match",
                      flat.num_errors == promoted.num_errors ? 1.0 : 0.0);
    if (flat.num_errors != promoted.num_errors) {
      std::printf("FAILOVER DIVERGED: %zu vs %zu errors\n", flat.num_errors,
                  promoted.num_errors);
      return 1;
    }
  }

  if (Status st = reporter.WriteJson(); !st.ok()) {
    std::printf("telemetry write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
