// Micro-benchmarks (google-benchmark) for the hot paths: base classifier
// training and prediction, the active-probability tracker, the stream
// generators, and the Zipf sampler — plus one end-to-end high-order build.
//
// After the google-benchmark run, main() executes an instrumented
// default-scale Stagger build + prequential evaluation and writes the
// telemetry (per-phase build timings, step-1/step-2 optimization counters,
// similarity-cache hit rate) to bench_output/bench_micro.json.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "classifiers/naive_bayes.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "highorder/active_probability.h"
#include "highorder/builder.h"
#include "streams/hyperplane.h"
#include "streams/intrusion.h"
#include "streams/stagger.h"

namespace hom {
namespace {

Dataset StaggerData(size_t n) {
  StaggerGenerator gen(1);
  return gen.Generate(n);
}

Dataset HyperplaneData(size_t n) {
  HyperplaneGenerator gen(2);
  return gen.Generate(n);
}

void BM_DecisionTreeTrainStagger(benchmark::State& state) {
  Dataset data = StaggerData(static_cast<size_t>(state.range(0)));
  DatasetView view(&data);
  for (auto _ : state) {
    DecisionTree tree(data.schema());
    benchmark::DoNotOptimize(tree.Train(view));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionTreeTrainStagger)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DecisionTreeTrainHyperplane(benchmark::State& state) {
  Dataset data = HyperplaneData(static_cast<size_t>(state.range(0)));
  DatasetView view(&data);
  for (auto _ : state) {
    DecisionTree tree(data.schema());
    benchmark::DoNotOptimize(tree.Train(view));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionTreeTrainHyperplane)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DecisionTreePredict(benchmark::State& state) {
  Dataset data = HyperplaneData(10000);
  DecisionTree tree(data.schema());
  (void)tree.Train(DatasetView(&data));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Predict(data.record(i++ % data.size())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecisionTreePredict);

void BM_NaiveBayesTrain(benchmark::State& state) {
  Dataset data = StaggerData(static_cast<size_t>(state.range(0)));
  DatasetView view(&data);
  for (auto _ : state) {
    NaiveBayes nb(data.schema());
    benchmark::DoNotOptimize(nb.Train(view));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NaiveBayesTrain)->Arg(1000)->Arg(10000);

void BM_NaiveBayesPredictProba(benchmark::State& state) {
  Dataset data = StaggerData(5000);
  NaiveBayes nb(data.schema());
  (void)nb.Train(DatasetView(&data));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nb.PredictProba(data.record(i++ % data.size())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaiveBayesPredictProba);

void BM_ActiveProbabilityObserve(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto stats = ConceptStats::FromLengthsAndFrequencies(
      std::vector<double>(n, 500.0),
      std::vector<double>(n, 1.0 / static_cast<double>(n)));
  ActiveProbabilityTracker tracker(*stats);
  std::vector<double> psi(n, 0.5);
  psi[0] = 0.95;
  for (auto _ : state) {
    tracker.Observe(psi);
    benchmark::DoNotOptimize(tracker.posterior());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ActiveProbabilityObserve)->Arg(3)->Arg(10)->Arg(50);

void BM_StaggerGenerate(benchmark::State& state) {
  StaggerGenerator gen(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StaggerGenerate);

void BM_IntrusionGenerate(benchmark::State& state) {
  IntrusionGenerator gen(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntrusionGenerate);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(static_cast<size_t>(state.range(0)), 1.0);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(4)->Arg(64);

void BM_HighOrderBuildStagger(benchmark::State& state) {
  StaggerGenerator gen(6);
  Dataset history = gen.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(7);
    HighOrderModelBuilder builder(DecisionTree::Factory());
    auto clf = builder.Build(history, &rng);
    benchmark::DoNotOptimize(clf);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HighOrderBuildStagger)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hom

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Telemetry pass: one instrumented default-scale Stagger pipeline run
  // (build + prequential), reported with the process-wide metrics snapshot
  // and the merged build phase tree.
  hom::bench::Scale scale = hom::bench::Scale::FromEnvironment();
  hom::bench::CellResult cell = hom::bench::RunHighOrderOnly(
      [](uint64_t seed) -> std::unique_ptr<hom::StreamGenerator> {
        return std::make_unique<hom::StaggerGenerator>(seed);
      },
      scale.stagger_history, scale.stagger_test, 1, 9500);

  hom::bench::BenchReporter reporter("bench_micro");
  reporter.SetScale(scale);
  reporter.AddCell("Stagger/High-order", cell);
  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
