// Micro-benchmarks (google-benchmark) for the hot paths: base classifier
// training and prediction, the active-probability tracker, the stream
// generators, and the Zipf sampler.

#include <benchmark/benchmark.h>

#include "classifiers/decision_tree.h"
#include "classifiers/naive_bayes.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "highorder/active_probability.h"
#include "streams/hyperplane.h"
#include "streams/intrusion.h"
#include "streams/stagger.h"

namespace hom {
namespace {

Dataset StaggerData(size_t n) {
  StaggerGenerator gen(1);
  return gen.Generate(n);
}

Dataset HyperplaneData(size_t n) {
  HyperplaneGenerator gen(2);
  return gen.Generate(n);
}

void BM_DecisionTreeTrainStagger(benchmark::State& state) {
  Dataset data = StaggerData(static_cast<size_t>(state.range(0)));
  DatasetView view(&data);
  for (auto _ : state) {
    DecisionTree tree(data.schema());
    benchmark::DoNotOptimize(tree.Train(view));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionTreeTrainStagger)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DecisionTreeTrainHyperplane(benchmark::State& state) {
  Dataset data = HyperplaneData(static_cast<size_t>(state.range(0)));
  DatasetView view(&data);
  for (auto _ : state) {
    DecisionTree tree(data.schema());
    benchmark::DoNotOptimize(tree.Train(view));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionTreeTrainHyperplane)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DecisionTreePredict(benchmark::State& state) {
  Dataset data = HyperplaneData(10000);
  DecisionTree tree(data.schema());
  (void)tree.Train(DatasetView(&data));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Predict(data.record(i++ % data.size())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecisionTreePredict);

void BM_NaiveBayesTrain(benchmark::State& state) {
  Dataset data = StaggerData(static_cast<size_t>(state.range(0)));
  DatasetView view(&data);
  for (auto _ : state) {
    NaiveBayes nb(data.schema());
    benchmark::DoNotOptimize(nb.Train(view));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NaiveBayesTrain)->Arg(1000)->Arg(10000);

void BM_NaiveBayesPredictProba(benchmark::State& state) {
  Dataset data = StaggerData(5000);
  NaiveBayes nb(data.schema());
  (void)nb.Train(DatasetView(&data));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nb.PredictProba(data.record(i++ % data.size())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaiveBayesPredictProba);

void BM_ActiveProbabilityObserve(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto stats = ConceptStats::FromLengthsAndFrequencies(
      std::vector<double>(n, 500.0),
      std::vector<double>(n, 1.0 / static_cast<double>(n)));
  ActiveProbabilityTracker tracker(*stats);
  std::vector<double> psi(n, 0.5);
  psi[0] = 0.95;
  for (auto _ : state) {
    tracker.Observe(psi);
    benchmark::DoNotOptimize(tracker.posterior());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ActiveProbabilityObserve)->Arg(3)->Arg(10)->Arg(50);

void BM_StaggerGenerate(benchmark::State& state) {
  StaggerGenerator gen(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StaggerGenerate);

void BM_IntrusionGenerate(benchmark::State& state) {
  IntrusionGenerator gen(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntrusionGenerate);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(static_cast<size_t>(state.range(0)), 1.0);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(4)->Arg(64);

}  // namespace
}  // namespace hom

BENCHMARK_MAIN();
