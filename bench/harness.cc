#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "baselines/repro.h"
#include "baselines/wce.h"
#include "classifiers/decision_tree.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace_export.h"

namespace hom::bench {

Scale Scale::FromEnvironment() {
  Scale scale;
  const char* env = std::getenv("HOM_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "paper") == 0) {
    scale.stagger_history = 200000;
    scale.stagger_test = 400000;
    scale.hyperplane_history = 200000;
    scale.hyperplane_test = 400000;
    scale.intrusion_history = 1000000;
    scale.intrusion_test = 3898431;
    scale.intrusion_lambda = 0.0005;
    scale.runs = 20;
    scale.is_paper_scale = true;
  }
  // HOM_BENCH_RUNS overrides the repetition count at either scale (the
  // paper averages 20 runs; that is hours of compute at paper scale).
  const char* runs_env = std::getenv("HOM_BENCH_RUNS");
  if (runs_env != nullptr) {
    int runs = std::atoi(runs_env);
    if (runs > 0) scale.runs = static_cast<size_t>(runs);
  }
  return scale;
}

namespace {

CellResult BuildAndRunHighOrder(const Dataset& history, const Dataset& test,
                                uint64_t seed) {
  Rng rng(seed);
  HighOrderModelBuilder builder(DecisionTree::Factory());
  HighOrderBuildReport report;
  auto clf = builder.Build(history, &rng, &report);
  HOM_CHECK(clf.ok()) << clf.status().ToString();
  AccumulatedBuildPhases().MergeFrom(report.phases);
  PrequentialResult result = RunPrequential(clf->get(), test);
  CellResult cell;
  cell.error = result.error_rate();
  cell.test_seconds = result.seconds;
  cell.build_seconds = report.build_seconds;
  cell.num_concepts = static_cast<double>(report.num_concepts);
  size_t major = 0;
  for (size_t s : report.concept_sizes) {
    if (s * 100 >= history.size()) ++major;
  }
  cell.major_concepts = static_cast<double>(major);
  return cell;
}

void Accumulate(CellResult* total, const CellResult& run) {
  total->error += run.error;
  total->test_seconds += run.test_seconds;
  total->build_seconds += run.build_seconds;
  total->num_concepts += run.num_concepts;
  total->major_concepts += run.major_concepts;
}

void Normalize(CellResult* total, size_t runs) {
  double n = static_cast<double>(runs);
  total->error /= n;
  total->test_seconds /= n;
  total->build_seconds /= n;
  total->num_concepts /= n;
  total->major_concepts /= n;
}

/// Opt-in continuous profiling of the bench drivers: with
/// HOM_BENCH_PROFILE=1 the enclosed scope runs under the sampling
/// profiler and the window merges into AccumulatedProfile(). Leaves an
/// already-running window (an outer driver's, or homctl's) alone.
class ScopedBenchProfileWindow {
 public:
  ScopedBenchProfileWindow() {
    const char* env = std::getenv("HOM_BENCH_PROFILE");
    if (env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0) {
      return;
    }
    if (obs::SamplingProfiler::Global().running()) return;
    obs::ProfileOptions options;
    if (const char* hz = std::getenv("HOM_BENCH_PROFILE_HZ")) {
      double parsed = std::atof(hz);
      if (parsed > 0.0) options.hz = parsed;
    }
    armed_ = obs::SamplingProfiler::Global().Start(options).ok();
  }
  ~ScopedBenchProfileWindow() {
    if (!armed_) return;
    AccumulatedProfile().MergeFrom(obs::SamplingProfiler::Global().Collect());
  }

 private:
  bool armed_ = false;
};

}  // namespace

std::vector<CellResult> RunComparison(const GeneratorFactory& make_generator,
                                      size_t history_size, size_t test_size,
                                      size_t runs, uint64_t seed_base) {
  obs::ScopedJournal journal(&GlobalJournal());
  ScopedBenchProfileWindow profile_window;
  std::vector<CellResult> totals(3);
  for (size_t run = 0; run < runs; ++run) {
    uint64_t seed = seed_base + run * 1000;
    std::unique_ptr<StreamGenerator> gen = make_generator(seed);
    Dataset history = gen->Generate(history_size);
    Dataset test = gen->Generate(test_size);

    Accumulate(&totals[0], BuildAndRunHighOrder(history, test, seed + 1));

    RePro repro(history.schema(), DecisionTree::Factory());
    // RePro also pre-trains on the historical stream (all algorithms "first
    // process the historical dataset", Section IV-B).
    for (const Record& r : history.records()) repro.ObserveLabeled(r);
    PrequentialResult rp = RunPrequential(&repro, test);
    CellResult rp_cell;
    rp_cell.error = rp.error_rate();
    rp_cell.test_seconds = rp.seconds;
    rp_cell.num_concepts = static_cast<double>(repro.num_concepts());
    Accumulate(&totals[1], rp_cell);

    Wce wce(history.schema(), DecisionTree::Factory());
    for (const Record& r : history.records()) wce.ObserveLabeled(r);
    PrequentialResult wc = RunPrequential(&wce, test);
    CellResult wc_cell;
    wc_cell.error = wc.error_rate();
    wc_cell.test_seconds = wc.seconds;
    Accumulate(&totals[2], wc_cell);
  }
  for (CellResult& cell : totals) Normalize(&cell, runs);
  return totals;
}

CellResult RunHighOrderOnly(const GeneratorFactory& make_generator,
                            size_t history_size, size_t test_size,
                            size_t runs, uint64_t seed_base) {
  obs::ScopedJournal journal(&GlobalJournal());
  ScopedBenchProfileWindow profile_window;
  CellResult total;
  for (size_t run = 0; run < runs; ++run) {
    uint64_t seed = seed_base + run * 1000;
    std::unique_ptr<StreamGenerator> gen = make_generator(seed);
    Dataset history = gen->Generate(history_size);
    Dataset test = gen->Generate(test_size);
    Accumulate(&total, BuildAndRunHighOrder(history, test, seed + 1));
  }
  Normalize(&total, runs);
  return total;
}

void PrintRule(size_t width) {
  for (size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

obs::PhaseNode& AccumulatedBuildPhases() {
  static obs::PhaseNode* accumulated = [] {
    auto* node = new obs::PhaseNode;
    node->name = "build";
    return node;
  }();
  return *accumulated;
}

obs::EventJournal& GlobalJournal() {
  // Leaked like the metrics registry: bench code may emit during static
  // destruction of generators and classifiers.
  static obs::EventJournal* journal = new obs::EventJournal();
  return *journal;
}

obs::ProfileData& AccumulatedProfile() {
  static obs::ProfileData* profile = new obs::ProfileData();
  return *profile;
}

BenchReporter::BenchReporter(std::string name) : name_(std::move(name)) {}

void BenchReporter::SetScale(const Scale& scale) {
  scale_ = obs::JsonValue::Object();
  scale_.Set("mode", scale.is_paper_scale ? "paper" : "reduced");
  scale_.Set("runs", static_cast<uint64_t>(scale.runs));
}

void BenchReporter::AddValue(const std::string& result_name,
                             const std::string& key, double value) {
  for (auto& [row_name, values] : results_) {
    if (row_name == result_name) {
      values.Set(key, value);
      return;
    }
  }
  obs::JsonValue values = obs::JsonValue::Object();
  values.Set(key, value);
  results_.emplace_back(result_name, std::move(values));
}

void BenchReporter::AddCell(const std::string& result_name,
                            const CellResult& cell) {
  AddValue(result_name, "error", cell.error);
  AddValue(result_name, "test_seconds", cell.test_seconds);
  AddValue(result_name, "build_seconds", cell.build_seconds);
  AddValue(result_name, "num_concepts", cell.num_concepts);
  AddValue(result_name, "major_concepts", cell.major_concepts);
}

std::string BenchReporter::output_path() const {
  return "bench_output/" + name_ + ".json";
}

Status BenchReporter::WriteJson() const {
  obs::JsonValue doc = obs::JsonValue::Object();
  doc.Set("schema_version", 3);
  doc.Set("name", name_);
  doc.Set("scale", scale_);
  obs::JsonValue results = obs::JsonValue::Array();
  for (const auto& [row_name, values] : results_) {
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("name", row_name);
    row.Set("values", values);
    results.Append(std::move(row));
  }
  doc.Set("results", std::move(results));
  doc.Set("metrics", obs::MetricsRegistry::Global().Snapshot().ToJson());
  const obs::ProfileData& profile = AccumulatedProfile();
  // Attribute samples into a copy of the accumulated tree: the statistical
  // self_cpu_seconds belongs to this report, not to the process-wide
  // accumulator a later reporter might merge more builds into.
  obs::PhaseNode phases = AccumulatedBuildPhases();
  if (!profile.empty() && phases.count > 0) {
    obs::AttributeSamplesToPhases(profile, &phases);
  }
  doc.Set("phases",
          phases.count > 0 ? phases.ToJson() : obs::JsonValue());
  const obs::EventJournal& journal = GlobalJournal();
  doc.Set("journal", journal.emitted() > 0 ? journal.SummaryJson()
                                           : obs::JsonValue());
  doc.Set("profile",
          profile.empty() ? obs::JsonValue() : profile.SummaryJson());

  std::error_code ec;
  std::filesystem::create_directories("bench_output", ec);
  if (ec) {
    return Status::Internal("cannot create bench_output/: " + ec.message());
  }
  std::string path = output_path();
  std::ofstream out(path, std::ios::trunc);
  out << doc.Dump(2) << "\n";
  if (!out) {
    return Status::Internal("failed writing " + path);
  }
  std::printf("telemetry: wrote %s\n", path.c_str());
  if (!profile.empty()) {
    std::string folded_path = "bench_output/" + name_ + ".folded";
    std::ofstream folded(folded_path, std::ios::trunc);
    folded << profile.ToFolded();
    if (!folded) {
      return Status::Internal("failed writing " + folded_path);
    }
    std::printf("telemetry: wrote %s\n", folded_path.c_str());
  }
  if (std::getenv("HOM_BENCH_TRACE") != nullptr) {
    std::string trace_path = "bench_output/" + name_ + "_trace.json";
    Status st = obs::WriteChromeTrace(
        trace_path, phases.count > 0 ? &phases : nullptr, &journal,
        profile.empty() ? nullptr : &profile);
    if (!st.ok()) return st;
    std::printf("telemetry: wrote %s\n", trace_path.c_str());
  }
  return Status::OK();
}

}  // namespace hom::bench
