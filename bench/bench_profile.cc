// Sampling-profiler overhead bench (DESIGN.md §11): what does continuous
// profiling cost? Runs the same prequential evaluation with the profiler
// off and on (default 99 Hz), compares median wall times, verifies the
// profile is non-empty and symbolizes into hom:: frames, and — as the
// determinism anchor the baseline gate watches — that profiling changes
// no prediction. The committed baseline pins overhead_ratio, gated by
// bench_compare's "overhead" policy.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "common/check.h"
#include "eval/prequential.h"
#include "highorder/builder.h"
#include "highorder/serialization.h"
#include "obs/prof.h"
#include "streams/stagger.h"

namespace {

using namespace hom;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

std::unique_ptr<HighOrderClassifier> Reload(const std::string& bytes) {
  std::stringstream buffer(bytes);
  auto model = LoadHighOrderModel(&buffer);
  HOM_CHECK(model.ok());
  return std::move(*model);
}

double Median(std::vector<double> values) {
  HOM_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  size_t mid = values.size() / 2;
  return values.size() % 2 == 1
             ? values[mid]
             : 0.5 * (values[mid - 1] + values[mid]);
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  StaggerGenerator gen(88001);
  Dataset history = gen.Generate(scale.stagger_history);
  Dataset test = gen.Generate(scale.stagger_test);

  HighOrderModelBuilder builder(DecisionTree::Factory());
  Rng rng(29);
  auto built = builder.Build(history, &rng);
  if (!built.ok()) {
    std::printf("build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::stringstream buffer;
  HOM_CHECK(SaveHighOrderModel(&buffer, **built).ok());
  const std::string model_bytes = buffer.str();

  BenchReporter reporter("bench_profile");
  reporter.SetScale(scale);
  std::printf("== sampling profiler: cost of continuous profiling ==\n");
  PrintRule(64);

  const size_t reps = std::max<size_t>(scale.runs, 5);
  // Interleave off/on reps so drift (thermal, cache warm-up) hits both
  // sides evenly instead of biasing whichever side runs last.
  std::vector<double> off_seconds, on_seconds;
  size_t off_errors = 0, on_errors = 0;
  uint64_t total_samples = 0;
  obs::ProfileData merged;
  for (size_t rep = 0; rep < reps; ++rep) {
    {
      auto model = Reload(model_bytes);
      PrequentialResult result = RunPrequential(model.get(), test);
      off_seconds.push_back(result.seconds);
      off_errors = result.num_errors;
    }
    {
      auto model = Reload(model_bytes);
      Status st = obs::SamplingProfiler::Global().Start({});
      bool profiling = st.ok();
      if (!profiling) {
        std::printf("profiler unavailable: %s\n", st.ToString().c_str());
      }
      PrequentialResult result = RunPrequential(model.get(), test);
      on_seconds.push_back(result.seconds);
      on_errors = result.num_errors;
      if (profiling) {
        obs::ProfileData window = obs::SamplingProfiler::Global().Collect();
        total_samples += window.samples.size();
        merged.MergeFrom(window);
      }
    }
  }

  double off_median = Median(off_seconds);
  double on_median = Median(on_seconds);
  double ratio = off_median > 0.0 ? on_median / off_median : 1.0;
  size_t hom_frames = 0;
  for (const std::string& frame : merged.frames) {
    if (frame.find("hom::") != std::string::npos) ++hom_frames;
  }

  std::printf("%-36s %10.4f s\n", "evaluate (profiler off, median)",
              off_median);
  std::printf("%-36s %10.4f s\n", "evaluate (profiler on, median)",
              on_median);
  std::printf("%-36s %10.4f\n", "overhead ratio (on/off)", ratio);
  std::printf("%-36s %10llu\n", "samples captured",
              static_cast<unsigned long long>(total_samples));
  std::printf("%-36s %10zu / %zu\n", "frames symbolized to hom::",
              hom_frames, merged.frames.size());

  reporter.AddValue("profiler/off", "median_seconds", off_median);
  reporter.AddValue("profiler/on", "median_seconds", on_median);
  reporter.AddValue("profiler/on", "samples",
                    static_cast<double>(total_samples));
  reporter.AddValue("profiler/on", "hom_frames",
                    static_cast<double>(hom_frames));
  reporter.AddValue("profiler/overhead", "overhead_ratio", ratio);

  // Determinism anchor: sampling must observe, never steer. Identical
  // error counts on the identical stream or the binary fails.
  std::printf("%-36s %10zu vs %zu\n", "errors (off vs on)", off_errors,
              on_errors);
  reporter.AddValue("profiler/determinism", "match",
                    off_errors == on_errors ? 1.0 : 0.0);
  if (off_errors != on_errors) {
    std::printf("PROFILING CHANGED RESULTS: %zu vs %zu errors\n", off_errors,
                on_errors);
    return 1;
  }
  // A supported platform must actually produce a symbolized profile — an
  // empty one here means frame pointers or -rdynamic regressed.
#if defined(__linux__)
  if (total_samples == 0 || hom_frames == 0) {
    std::printf("EMPTY OR UNSYMBOLIZED PROFILE (samples=%llu hom_frames=%zu)\n",
                static_cast<unsigned long long>(total_samples), hom_frames);
    return 1;
  }
#endif

  if (Status st = reporter.WriteJson(); !st.ok()) {
    std::printf("telemetry write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
