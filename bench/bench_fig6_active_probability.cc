// Reproduces Figure 6: active probabilities of the stable concepts around a
// concept change, in the high-order model. Discovered concepts are mapped
// back to ground-truth concepts by oracle agreement; for each aligned
// transition a -> b we trace the probability mass assigned to a and to b.
// Expected shapes:
//   * Stagger: mass flips from the old concept to the new one within a few
//     records of the shift.
//   * Hyperplane: during the drift the closest stable concept holds the
//     largest probability; mass settles on the target as the drift ends.

#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "eval/trace.h"
#include "streams/hyperplane.h"
#include "streams/stagger.h"

namespace {

using hom::AlignedTraceAccumulator;
using hom::Dataset;
using hom::DecisionTree;
using hom::HighOrderClassifier;
using hom::HighOrderModelBuilder;
using hom::Record;
using hom::Rng;
using hom::StreamGenerator;
using hom::StreamTrace;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

/// Maps each discovered concept to the ground-truth concept whose oracle
/// labels it agrees with most, probing on `probes` random records.
std::vector<int> MapConceptsToTruth(
    HighOrderClassifier* clf, const Dataset& probes,
    const std::function<hom::Label(const Record&, int)>& oracle,
    size_t num_true) {
  std::vector<int> mapping(clf->num_concepts(), 0);
  for (size_t c = 0; c < clf->num_concepts(); ++c) {
    const hom::Classifier& model = *clf->concept_model(c).model;
    size_t best_agree = 0;
    for (size_t t = 0; t < num_true; ++t) {
      size_t agree = 0;
      for (const Record& r : probes.records()) {
        if (model.Predict(r) == oracle(r, static_cast<int>(t))) ++agree;
      }
      if (agree > best_agree) {
        best_agree = agree;
        mapping[c] = static_cast<int>(t);
      }
    }
  }
  return mapping;
}

void RunStream(const char* name, StreamGenerator* gen, size_t history_size,
               size_t test_size, size_t before, size_t after, uint64_t seed,
               const std::function<hom::Label(const Record&, int)>& oracle,
               BenchReporter* reporter) {
  Dataset history = gen->Generate(history_size);
  StreamTrace trace;
  Dataset test = gen->Generate(test_size, &trace);

  Rng rng(seed);
  HighOrderModelBuilder builder(DecisionTree::Factory());
  auto clf = builder.Build(history, &rng);
  if (!clf.ok()) {
    std::printf("build failed: %s\n", clf.status().ToString().c_str());
    return;
  }

  // Probe dataset for the concept mapping: a slice of the history.
  Dataset probes(history.schema());
  for (size_t i = 0; i < std::min<size_t>(history.size(), 1000); ++i) {
    probes.AppendUnchecked(history.record(i * (history.size() / 1000)));
  }
  std::vector<int> mapping = MapConceptsToTruth(
      clf->get(), probes, oracle, gen->num_concepts());

  // Per-record probability mass on the pre-change and post-change true
  // concepts.
  std::vector<double> mass_old(test.size(), 0.0);
  std::vector<double> mass_new(test.size(), 0.0);
  // For each record, which transition window is it in? Precompute the true
  // concepts before/after the most recent change.
  std::vector<int> prev_concept(test.size(), -1);
  int last_prev = trace.concept_ids.empty() ? -1 : trace.concept_ids[0];
  size_t next_cp = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    if (next_cp < trace.change_points.size() &&
        trace.change_points[next_cp] == i) {
      if (i > 0) last_prev = trace.concept_ids[i - 1];
      ++next_cp;
    }
    prev_concept[i] = last_prev;
  }

  for (size_t i = 0; i < test.size(); ++i) {
    // The prior P_t− that would weigh the prediction of record i.
    const std::vector<double>& active = (*clf)->active_probabilities();
    int truth = trace.concept_ids[i];
    int old_truth = prev_concept[i];
    for (size_t c = 0; c < mapping.size(); ++c) {
      if (mapping[c] == truth) mass_new[i] += active[c];
      if (mapping[c] == old_truth) mass_old[i] += active[c];
    }
    (*clf)->ObserveLabeled(test.record(i));
  }

  AlignedTraceAccumulator acc_old(before, after);
  AlignedTraceAccumulator acc_new(before, after);
  acc_old.AddSeries(mass_old, trace.change_points);
  acc_new.AddSeries(mass_new, trace.change_points);

  std::printf(
      "== Figure 6 (%s): concept probabilities around a change (%zu "
      "windows) ==\n",
      name, acc_new.num_windows());
  std::printf("%8s %14s %14s\n", "t-cp", "P(old concept)", "P(new concept)");
  PrintRule(40);
  std::vector<double> mo = acc_old.Mean();
  std::vector<double> mn = acc_new.Mean();
  const size_t kBucket = 5;
  for (size_t start = 0; start + kBucket <= before + after;
       start += kBucket) {
    double ao = 0, an = 0;
    for (size_t i = start; i < start + kBucket; ++i) {
      ao += mo[i];
      an += mn[i];
    }
    std::printf("%8ld %14.4f %14.4f\n",
                static_cast<long>(start + kBucket / 2) -
                    static_cast<long>(before),
                ao / kBucket, an / kBucket);
  }
  std::printf("\n");

  double old_after = 0.0;
  double new_after = 0.0;
  for (size_t i = before; i < before + after; ++i) {
    old_after += mo[i];
    new_after += mn[i];
  }
  reporter->AddValue(name, "p_old_after_change",
                     old_after / static_cast<double>(after));
  reporter->AddValue(name, "p_new_after_change",
                     new_after / static_cast<double>(after));
  reporter->AddValue(name, "aligned_windows",
                     static_cast<double>(acc_new.num_windows()));
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  BenchReporter reporter("bench_fig6_active_probability");
  reporter.SetScale(scale);
  {
    hom::StaggerConfig config;
    config.lambda = 0.002;
    hom::StaggerGenerator gen(61001, config);
    RunStream("Stagger", &gen, scale.stagger_history, scale.stagger_test,
              20, 60, 71,
              [](const Record& r, int c) {
                return hom::StaggerGenerator::TrueLabel(r, c);
              },
              &reporter);
  }
  {
    hom::HyperplaneConfig config;
    config.lambda = 0.002;
    hom::HyperplaneGenerator gen(61002, config);
    // The oracle needs this generator's concept weight vectors.
    hom::HyperplaneGenerator oracle_gen(61002, config);
    RunStream("Hyperplane", &gen, scale.hyperplane_history,
              scale.hyperplane_test, 50, 200, 72,
              [&oracle_gen](const Record& r, int c) {
                return hom::HyperplaneGenerator::LabelFor(
                    r.values, oracle_gen.concept_weights(c));
              },
              &reporter);
  }
  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
