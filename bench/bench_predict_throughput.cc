// Prediction-throughput benchmark of the compiled tree kernels
// (classifiers/compiled_tree.h, DESIGN.md §13): single-thread records/sec
// of the online high-order classifier in three modes over the same Stagger
// multi-concept workload —
//
//   walk      use_compiled_kernels off: the legacy pointer walk with a
//             per-call std::vector allocation (the pre-kernel hot path),
//   compiled  flattened SoA kernels, per-record Predict(),
//   batched   flattened kernels through PredictBatch(), which sweeps each
//             concept's arrays once per block instead of once per record.
//
// Every mode replays the identical predict/observe schedule (blocks of
// `kBatch` predictions, then the block's labels), so the three must emit
// identical predictions and error counts — asserted in-binary, hard fail.
// The unpruned full-mixture rows additionally assert the compiled+batched
// path clears a 3x speedup over the walk; bench_compare.py then gates the
// committed speedup ratios (machine speed cancels in a same-process ratio).
//
// Rows: stagger_c{4,8,16}_{unpruned,pruned}. Values per row:
//   walk_records_per_sec / compiled_records_per_sec / batched_records_per_sec
//   compiled_speedup / batched_speedup  (mode rps / walk rps)
//   error_rate, batch_size, concepts.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "bench/harness.h"
#include "classifiers/compiled_tree.h"
#include "classifiers/decision_tree.h"
#include "common/binary_io.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "highorder/concept_stats.h"
#include "highorder/highorder_classifier.h"
#include "streams/stagger.h"

namespace hom {
namespace {

constexpr size_t kBatch = 256;

// Throughput is aggregated as the best run: external interference only
// ever slows a run down, so the max approximates noise-free capability
// and keeps the committed speedup ratios stable on busy machines, where
// a median can still be dragged by a multi-second interference burst.
double Best(const std::vector<double>& values) {
  HOM_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

// One trained tree per true Stagger concept, on oracle-labeled data.
std::unique_ptr<DecisionTree> TrainStaggerConcept(int concept_id,
                                                  uint64_t seed) {
  SchemaPtr schema = StaggerGenerator::MakeSchema();
  Dataset data(schema);
  Rng rng(seed);
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> vals = {static_cast<double>(rng.NextInt(0, 2)),
                                static_cast<double>(rng.NextInt(0, 2)),
                                static_cast<double>(rng.NextInt(0, 2))};
    Record r(std::move(vals), kUnlabeled);
    r.label = StaggerGenerator::TrueLabel(r, concept_id);
    data.AppendUnchecked(r);
  }
  auto tree = std::make_unique<DecisionTree>(schema);
  HOM_CHECK(tree->Train(DatasetView(&data)).ok());
  return tree;
}

// Clones a trained tree through its serialized form, so every mode and
// every ensemble slot holds a structurally identical model.
std::unique_ptr<DecisionTree> CloneTree(const DecisionTree& tree) {
  std::stringstream buffer;
  BinaryWriter writer(&buffer);
  HOM_CHECK(tree.SaveTo(&writer).ok());
  BinaryReader reader(&buffer);
  auto clone = DecisionTree::LoadFrom(&reader, StaggerGenerator::MakeSchema());
  HOM_CHECK(clone.ok());
  return std::move(*clone);
}

// A k-concept ensemble cycling over the three Stagger concepts' trees.
std::unique_ptr<HighOrderClassifier> MakeEnsemble(
    const std::vector<std::unique_ptr<DecisionTree>>& base, size_t k,
    bool use_compiled, bool prune) {
  std::vector<ConceptModel> concepts;
  for (size_t c = 0; c < k; ++c) {
    ConceptModel cm;
    cm.model = CloneTree(*base[c % base.size()]);
    cm.error = 0.02 + 0.005 * static_cast<double>(c);
    concepts.push_back(std::move(cm));
  }
  std::vector<double> lengths(k, 100.0);
  std::vector<double> freqs(k, 1.0 / static_cast<double>(k));
  auto stats = ConceptStats::FromLengthsAndFrequencies(lengths, freqs);
  HOM_CHECK(stats.ok());
  HighOrderOptions options;
  options.use_compiled_kernels = use_compiled;
  options.prune_prediction = prune;
  options.latency_sample_period = 0;  // measure the loop, not the sampler
  auto clf = HighOrderClassifier::Make(StaggerGenerator::MakeSchema(),
                                       std::move(concepts), *stats, options);
  HOM_CHECK(clf.ok());
  return std::move(*clf);
}

enum class Mode { kWalk, kCompiled, kBatched };

struct RunOutcome {
  std::vector<Label> predictions;
  size_t errors = 0;
  double predict_seconds = 0.0;
};

// Replays the block schedule: predict a block of kBatch records, then
// observe the block's labels. Only the predict sections are timed.
RunOutcome RunMode(HighOrderClassifier* clf, Mode mode, uint64_t stream_seed,
                   size_t total_records) {
  RunOutcome outcome;
  outcome.predictions.reserve(total_records);
  StaggerGenerator gen(stream_seed);
  std::vector<Record> unlabeled(kBatch);
  std::vector<Label> batch_out(kBatch);
  Stopwatch timer;
  timer.Pause();
  size_t produced = 0;
  while (produced < total_records) {
    size_t block = std::min(kBatch, total_records - produced);
    Dataset labeled = gen.Generate(block);
    for (size_t i = 0; i < block; ++i) {
      unlabeled[i] = labeled.records()[i];
      unlabeled[i].label = kUnlabeled;
    }
    timer.Resume();
    if (mode == Mode::kBatched) {
      clf->PredictBatch(unlabeled.data(), block, batch_out.data());
    } else {
      for (size_t i = 0; i < block; ++i) {
        batch_out[i] = clf->Predict(unlabeled[i]);
      }
    }
    timer.Pause();
    for (size_t i = 0; i < block; ++i) {
      outcome.predictions.push_back(batch_out[i]);
      if (batch_out[i] != labeled.records()[i].label) ++outcome.errors;
    }
    for (const Record& r : labeled.records()) clf->ObserveLabeled(r);
    produced += block;
  }
  outcome.predict_seconds = timer.ElapsedSeconds();
  return outcome;
}

}  // namespace
}  // namespace hom

int main() {
  using namespace hom;
  bench::Scale scale = bench::Scale::FromEnvironment();
  const size_t total_records = scale.is_paper_scale ? 200000 : 20000;

  bench::BenchReporter reporter("bench_predict_throughput");
  reporter.SetScale(scale);

  std::vector<std::unique_ptr<DecisionTree>> base;
  for (int c = 0; c < 3; ++c) base.push_back(TrainStaggerConcept(c, 97 + c));

  std::printf("%-24s %14s %14s %14s %9s %9s\n", "workload", "walk rec/s",
              "compiled", "batched", "cmp x", "batch x");
  bench::PrintRule(88);

  for (size_t k : {4u, 8u, 16u}) {
    for (bool prune : {false, true}) {
      std::vector<double> walk_rps, compiled_rps, batched_rps;
      size_t errors = 0;
      for (size_t run = 0; run < scale.runs; ++run) {
        uint64_t stream_seed = 1000 + run;
        auto walk = MakeEnsemble(base, k, /*use_compiled=*/false, prune);
        auto compiled = MakeEnsemble(base, k, /*use_compiled=*/true, prune);
        auto batched = MakeEnsemble(base, k, /*use_compiled=*/true, prune);
        RunOutcome w = RunMode(walk.get(), Mode::kWalk, stream_seed,
                               total_records);
        RunOutcome c = RunMode(compiled.get(), Mode::kCompiled, stream_seed,
                               total_records);
        RunOutcome b = RunMode(batched.get(), Mode::kBatched, stream_seed,
                               total_records);
        // Hard equivalence gate: the compiled and batched paths must be
        // drop-in replacements for the pointer walk — identical
        // predictions, identical error counts. A mismatch is a kernel bug,
        // not a perf regression, so fail the binary outright.
        HOM_CHECK(w.predictions == c.predictions)
            << "compiled predictions diverge from walk (k=" << k
            << " prune=" << prune << ")";
        HOM_CHECK(w.predictions == b.predictions)
            << "batched predictions diverge from walk (k=" << k
            << " prune=" << prune << ")";
        HOM_CHECK(w.errors == c.errors && w.errors == b.errors)
            << "error counts diverge (k=" << k << " prune=" << prune << ")";
        // Report run 0's error count: run 0 exists at every HOM_BENCH_RUNS
        // setting, so the committed error_rate is invariant to run count.
        if (run == 0) errors = w.errors;
        double n = static_cast<double>(total_records);
        walk_rps.push_back(n / w.predict_seconds);
        compiled_rps.push_back(n / c.predict_seconds);
        batched_rps.push_back(n / b.predict_seconds);
      }
      double walk_m = Best(walk_rps);
      double compiled_m = Best(compiled_rps);
      double batched_m = Best(batched_rps);
      double compiled_speedup = compiled_m / walk_m;
      double batched_speedup = batched_m / walk_m;
      if (!prune && k >= 8) {
        // The acceptance gate of the kernels: on the full-mixture
        // multi-concept workload the batched compiled path must clear 3x
        // over the pointer walk. k=4 is reported but not gated — Stagger's
        // three-attribute trees are so shallow that fixed per-record
        // overhead (sanitize, weight refresh) dilutes its ratio to ~3x,
        // too close to gate robustly across machines.
        HOM_CHECK(batched_speedup >= 3.0)
            << "compiled+batched only " << batched_speedup
            << "x over the pointer walk at k=" << k << " (need >= 3x)";
      }
      std::string row = "stagger_c" + std::to_string(k) +
                        (prune ? "_pruned" : "_unpruned");
      reporter.AddValue(row, "walk_records_per_sec", walk_m);
      reporter.AddValue(row, "compiled_records_per_sec", compiled_m);
      reporter.AddValue(row, "batched_records_per_sec", batched_m);
      reporter.AddValue(row, "compiled_speedup", compiled_speedup);
      reporter.AddValue(row, "batched_speedup", batched_speedup);
      reporter.AddValue(row, "error_rate",
                        static_cast<double>(errors) /
                            static_cast<double>(total_records));
      reporter.AddValue(row, "batch_size", static_cast<double>(kBatch));
      reporter.AddValue(row, "concepts", static_cast<double>(k));
      std::printf("%-24s %14.0f %14.0f %14.0f %8.2fx %8.2fx\n", row.c_str(),
                  walk_m, compiled_m, batched_m, compiled_speedup,
                  batched_speedup);
    }
  }

  Status st = reporter.WriteJson();
  if (!st.ok()) {
    std::fprintf(stderr, "bench_predict_throughput: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
