// Ablation benchmarks for the design choices called out in DESIGN.md:
//   1. Section III-C prediction pruning: accuracy must be unchanged, base
//      model evaluations should drop sharply.
//   2. Eq. 10 weighting by prior P_t− vs posterior P_t.
//   3. Final concept models trained on all concept data vs a holdout half
//      (the paper's "use all data pertaining to a unique concept" claim).
//   4. Section II-D early termination: build time saved, accuracy impact.
//   5. Laplace-smoothed holdout errors + significance-guarded cut vs the
//      paper's literal rules (fragmentation at reduced scale).
//   6. Holdout vs k-fold scoring cost for the objective function
//      (the paper's footnote 1).

#include <cstdio>

#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "classifiers/evaluation.h"
#include "common/stopwatch.h"
#include "streams/stagger.h"

namespace {

using hom::Dataset;
using hom::DatasetView;
using hom::DecisionTree;
using hom::HighOrderBuildConfig;
using hom::HighOrderBuildReport;
using hom::HighOrderModelBuilder;
using hom::KFoldError;
using hom::Rng;
using hom::RunPrequential;
using hom::Stopwatch;
using hom::TrainHoldout;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

struct Variant {
  const char* name;
  HighOrderBuildConfig config;
};

void RunVariant(const Variant& variant, const Dataset& history,
                const Dataset& test, BenchReporter* reporter) {
  Rng rng(99);
  HighOrderModelBuilder builder(DecisionTree::Factory(), variant.config);
  HighOrderBuildReport report;
  auto clf = builder.Build(history, &rng, &report);
  if (!clf.ok()) {
    std::printf("%-28s BUILD FAILED: %s\n", variant.name,
                clf.status().ToString().c_str());
    return;
  }
  hom::bench::AccumulatedBuildPhases().MergeFrom(report.phases);
  auto result = RunPrequential(clf->get(), test);
  double evals_per_record =
      static_cast<double>((*clf)->base_evaluations()) /
      static_cast<double>((*clf)->predictions());
  std::printf("%-28s err=%.5f test=%.3fs build=%.3fs concepts=%zu "
              "evals/rec=%.2f\n",
              variant.name, result.error_rate(), result.seconds,
              report.build_seconds, report.num_concepts, evals_per_record);
  reporter->AddValue(variant.name, "error", result.error_rate());
  reporter->AddValue(variant.name, "test_seconds", result.seconds);
  reporter->AddValue(variant.name, "build_seconds", report.build_seconds);
  reporter->AddValue(variant.name, "num_concepts",
                     static_cast<double>(report.num_concepts));
  reporter->AddValue(variant.name, "evals_per_record", evals_per_record);
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  hom::StaggerConfig sc;
  sc.lambda = 0.002;  // enough transitions for statistics at any scale
  hom::StaggerGenerator gen(71001, sc);
  Dataset history = gen.Generate(scale.stagger_history);
  Dataset test = gen.Generate(scale.stagger_test);

  std::printf("== Ablations (Stagger, %zu history / %zu test) ==\n",
              history.size(), test.size());
  PrintRule(96);

  std::vector<Variant> variants;
  {
    Variant v{"baseline (paper defaults)", {}};
    variants.push_back(v);
  }
  {
    Variant v{"no prediction pruning", {}};
    v.config.options.prune_prediction = false;
    variants.push_back(v);
  }
  {
    Variant v{"posterior weighting", {}};
    v.config.options.weight_by_prior = false;
    variants.push_back(v);
  }
  {
    Variant v{"holdout-half concept models", {}};
    v.config.train_on_full_data = false;
    variants.push_back(v);
  }
  {
    Variant v{"no early termination", {}};
    v.config.clustering.early_stop = false;
    variants.push_back(v);
  }
  {
    Variant v{"literal paper cut (z=0, raw)", {}};
    v.config.clustering.laplace_error_smoothing = false;
    v.config.clustering.step1_cut_z = 0.0;
    v.config.clustering.step2_cut_z = 0.0;
    v.config.clustering.early_stop_z = 0.0;
    variants.push_back(v);
  }
  {
    Variant v{"block size 5", {}};
    v.config.clustering.block_size = 5;
    variants.push_back(v);
  }
  {
    Variant v{"no unbalanced-merge reuse", {}};
    v.config.clustering.reuse_on_unbalanced_merge = false;
    variants.push_back(v);
  }
  BenchReporter reporter("bench_ablation");
  reporter.SetScale(scale);
  for (const Variant& v : variants) RunVariant(v, history, test, &reporter);

  // Holdout vs k-fold scoring cost (footnote 1 of the paper): score the
  // same 2000-record cluster both ways.
  std::printf("\n== Objective scoring: holdout vs 5-fold CV ==\n");
  DatasetView cluster(&history, 0, std::min<size_t>(history.size(), 2000));
  Rng rng(123);
  Stopwatch sw;
  for (int i = 0; i < 20; ++i) {
    auto holdout = TrainHoldout(DecisionTree::Factory(), cluster, &rng);
    (void)holdout;
  }
  double holdout_s = sw.ElapsedSeconds() / 20;
  sw.Restart();
  for (int i = 0; i < 20; ++i) {
    auto err = KFoldError(DecisionTree::Factory(), cluster, 5, &rng);
    (void)err;
  }
  double kfold_s = sw.ElapsedSeconds() / 20;
  std::printf("holdout: %.4fs per evaluation; 5-fold: %.4fs (%.1fx)\n",
              holdout_s, kfold_s, kfold_s / holdout_s);
  reporter.AddValue("objective_scoring", "holdout_seconds", holdout_s);
  reporter.AddValue("objective_scoring", "kfold_seconds", kfold_s);
  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
