// Reproduces Figure 4: impact of the historical dataset size on the
// high-order model — classification error, build time, and test time, for
// Stagger and Hyperplane. Expected shapes:
//   * error drops as the history grows (better base classifiers), quickly
//     flattening for Stagger (simple concepts) and more gradually for
//     Hyperplane (trees need data to approximate a plane);
//   * build time is near-linear in the history size;
//   * test time stabilizes once all concepts are discovered.

#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "streams/hyperplane.h"
#include "streams/stagger.h"

namespace {

using hom::StreamGenerator;
using hom::bench::BenchReporter;
using hom::bench::CellResult;
using hom::bench::PrintRule;
using hom::bench::RunHighOrderOnly;
using hom::bench::Scale;

void Sweep(const char* stream, const std::vector<size_t>& sizes,
           size_t test_size, size_t runs,
           const hom::bench::GeneratorFactory& make,
           BenchReporter* reporter) {
  std::printf(
      "== Figure 4 (%s): error / build time / test time vs history size "
      "==\n",
      stream);
  std::printf("%12s %12s %12s %12s %12s\n", "History", "Error", "Build (s)",
              "Test (s)", "#Concepts");
  PrintRule(64);
  for (size_t size : sizes) {
    CellResult cell = RunHighOrderOnly(make, size, test_size, runs,
                                       41000 + size);
    std::printf("%12zu %12.5f %12.4f %12.4f %12.1f\n", size, cell.error,
                cell.build_seconds, cell.test_seconds, cell.num_concepts);
    reporter->AddCell(
        std::string(stream) + "/history=" + std::to_string(size), cell);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  std::vector<size_t> sizes;
  if (scale.is_paper_scale) {
    sizes = {12500, 25000, 50000, 100000, 150000, 200000};
  } else {
    sizes = {2500, 5000, 10000, 20000, 30000, 40000};
  }

  BenchReporter reporter("bench_fig4_history_scale");
  reporter.SetScale(scale);
  Sweep("Stagger", sizes, scale.stagger_test, scale.runs,
        [](uint64_t seed) -> std::unique_ptr<StreamGenerator> {
          return std::make_unique<hom::StaggerGenerator>(seed);
        },
        &reporter);
  Sweep("Hyperplane", sizes, scale.hyperplane_test, scale.runs,
        [](uint64_t seed) -> std::unique_ptr<StreamGenerator> {
          return std::make_unique<hom::HyperplaneGenerator>(seed);
        },
        &reporter);
  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
