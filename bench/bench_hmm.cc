// HMM extension benchmark (the paper's Section III-A future work, built in
// highorder/hmm.h): how much does offline smoothing buy over the online
// filter when segmenting a stream into concepts?
//
//   * filter   — the paper's forward-only tracker: most likely concept
//                from P_t (uses only past labels),
//   * smoothed — forward-backward marginals (uses future labels too),
//   * viterbi  — the single most likely concept *path*.
//
// Ground truth comes from the Stagger generator's trace. We report the
// per-record concept identification accuracy of each decoder, and the
// Baum-Welch refinement of the change statistics from an unsegmented
// stream.

#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "classifiers/decision_tree.h"
#include "highorder/builder.h"
#include "highorder/hmm.h"
#include "streams/stagger.h"

namespace {

using namespace hom;
using hom::bench::BenchReporter;
using hom::bench::PrintRule;
using hom::bench::Scale;

/// Maps discovered concept -> true Stagger concept by oracle agreement.
std::vector<int> MapToTruth(const HighOrderClassifier& clf) {
  std::vector<int> mapping(clf.num_concepts(), 0);
  for (size_t c = 0; c < clf.num_concepts(); ++c) {
    size_t best_agree = 0;
    for (int truth = 0; truth < 3; ++truth) {
      size_t agree = 0;
      for (int color = 0; color < 3; ++color) {
        for (int shape = 0; shape < 3; ++shape) {
          for (int size = 0; size < 3; ++size) {
            Record r({static_cast<double>(color), static_cast<double>(shape),
                      static_cast<double>(size)},
                     kUnlabeled);
            if (clf.concept_model(c).model->Predict(r) ==
                StaggerGenerator::TrueLabel(r, truth)) {
              ++agree;
            }
          }
        }
      }
      if (agree > best_agree) {
        best_agree = agree;
        mapping[c] = truth;
      }
    }
  }
  return mapping;
}

double Accuracy(const std::vector<int>& decoded,
                const std::vector<int>& mapping,
                const std::vector<int>& truth) {
  size_t correct = 0;
  for (size_t t = 0; t < decoded.size(); ++t) {
    if (mapping[static_cast<size_t>(decoded[t])] == truth[t]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(decoded.size());
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();
  StaggerConfig sc;
  sc.lambda = 0.002;
  StaggerGenerator gen(91001, sc);
  Dataset history = gen.Generate(scale.stagger_history);
  StreamTrace trace;
  Dataset test = gen.Generate(scale.stagger_test / 2, &trace);

  Rng rng(17);
  HighOrderModelBuilder builder(DecisionTree::Factory());
  auto clf = builder.Build(history, &rng);
  if (!clf.ok()) {
    std::printf("build failed: %s\n", clf.status().ToString().c_str());
    return 1;
  }
  std::vector<int> mapping = MapToTruth(**clf);

  // Emission likelihoods ψ(c, y_t) for the whole test stream.
  size_t n = (*clf)->num_concepts();
  std::vector<std::vector<double>> psi(test.size(),
                                       std::vector<double>(n));
  for (size_t t = 0; t < test.size(); ++t) {
    for (size_t c = 0; c < n; ++c) {
      const ConceptModel& cm = (*clf)->concept_model(c);
      bool correct = cm.model->Predict(test.record(t)) ==
                     test.record(t).label;
      psi[t][c] = correct ? 1.0 - cm.error : cm.error;
    }
  }

  ConceptHmm hmm((*clf)->tracker().stats());

  // Decoder 1: online filter (argmax of the forward posterior).
  std::vector<int> filtered(test.size());
  {
    ActiveProbabilityTracker tracker((*clf)->tracker().stats());
    for (size_t t = 0; t < test.size(); ++t) {
      tracker.Observe(psi[t]);
      size_t best = 0;
      for (size_t c = 1; c < n; ++c) {
        if (tracker.posterior()[c] > tracker.posterior()[best]) best = c;
      }
      filtered[t] = static_cast<int>(best);
    }
  }
  // Decoder 2: forward-backward smoothing.
  auto gamma = hmm.ForwardBackward(psi);
  std::vector<int> smoothed(test.size());
  if (gamma.ok()) {
    for (size_t t = 0; t < test.size(); ++t) {
      size_t best = 0;
      for (size_t c = 1; c < n; ++c) {
        if ((*gamma)[t][c] > (*gamma)[t][best]) best = c;
      }
      smoothed[t] = static_cast<int>(best);
    }
  }
  // Decoder 3: Viterbi path.
  auto viterbi = hmm.Viterbi(psi);

  BenchReporter reporter("bench_hmm");
  reporter.SetScale(scale);
  std::printf("== HMM extension: concept identification accuracy "
              "(%zu records, %zu concepts) ==\n",
              test.size(), n);
  PrintRule(60);
  std::printf("%-28s %10.4f\n", "online filter (paper)",
              Accuracy(filtered, mapping, trace.concept_ids));
  reporter.AddValue("decoder/online_filter", "accuracy",
                    Accuracy(filtered, mapping, trace.concept_ids));
  if (gamma.ok()) {
    std::printf("%-28s %10.4f\n", "forward-backward smoothing",
                Accuracy(smoothed, mapping, trace.concept_ids));
    reporter.AddValue("decoder/forward_backward", "accuracy",
                      Accuracy(smoothed, mapping, trace.concept_ids));
  }
  if (viterbi.ok()) {
    std::printf("%-28s %10.4f\n", "Viterbi path",
                Accuracy(*viterbi, mapping, trace.concept_ids));
    reporter.AddValue("decoder/viterbi", "accuracy",
                      Accuracy(*viterbi, mapping, trace.concept_ids));
  }

  // Baum-Welch: refine Len/Freq from the unsegmented stream and check the
  // likelihood improves monotonically over a few EM steps.
  std::printf("\n== Baum-Welch refinement of change statistics ==\n");
  ConceptHmm model = hmm;
  for (int iter = 0; iter < 3; ++iter) {
    auto ll = model.LogLikelihood(psi);
    std::printf("iteration %d: log-likelihood %.1f", iter,
                ll.ok() ? *ll : 0.0);
    reporter.AddValue("baum_welch/iteration=" + std::to_string(iter),
                      "log_likelihood", ll.ok() ? *ll : 0.0);
    for (size_t c = 0; c < n; ++c) {
      std::printf("  Len[%zu]=%.0f", c, model.stats().mean_length(c));
    }
    std::printf("\n");
    auto refined = model.BaumWelchStep(psi);
    if (!refined.ok()) break;
    model = std::move(*refined);
  }
  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
