// Reproduces Tables I-IV of the paper:
//   Table I   — benchmark stream summary
//   Table II  — error rates of High-order vs RePro vs WCE on 3 streams
//   Table III — test times (classification + online training)
//   Table IV  — high-order building phase: time and discovered concepts
//
// Default sizes are scaled down for quick runs; set HOM_BENCH_SCALE=paper
// to reproduce the paper's 200k/400k (and 1M/3.9M intrusion) sizes.

#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "streams/hyperplane.h"
#include "streams/intrusion.h"
#include "streams/stagger.h"

namespace {

using hom::bench::BenchReporter;
using hom::bench::CellResult;
using hom::bench::GeneratorFactory;
using hom::bench::kAlgorithms;
using hom::bench::PrintRule;
using hom::bench::RunComparison;
using hom::bench::Scale;

struct StreamSpec {
  const char* name;
  GeneratorFactory factory;
  size_t history;
  size_t test;
  const char* continuous;
  const char* discrete;
  const char* true_concepts;
};

}  // namespace

int main() {
  Scale scale = Scale::FromEnvironment();

  std::vector<StreamSpec> streams = {
      {"Stagger",
       [](uint64_t seed) -> std::unique_ptr<hom::StreamGenerator> {
         return std::make_unique<hom::StaggerGenerator>(seed);
       },
       scale.stagger_history, scale.stagger_test, "0", "3", "3"},
      {"Hyperplane",
       [](uint64_t seed) -> std::unique_ptr<hom::StreamGenerator> {
         return std::make_unique<hom::HyperplaneGenerator>(seed);
       },
       scale.hyperplane_history, scale.hyperplane_test, "3", "0", "4"},
      {"Intrusion",
       [&scale](uint64_t seed) -> std::unique_ptr<hom::StreamGenerator> {
         hom::IntrusionConfig config;
         config.lambda = scale.intrusion_lambda;
         return std::make_unique<hom::IntrusionGenerator>(seed, config);
       },
       scale.intrusion_history, scale.intrusion_test, "34", "7", "10*"},
  };

  std::printf("== Table I: Benchmark Data Streams%s ==\n",
              scale.is_paper_scale ? " (paper scale)" : " (reduced scale)");
  std::printf("%-14s %10s %10s %10s %12s %10s\n", "Stream", "Contin.",
              "Discrete", "#Concepts", "Historical", "Test");
  PrintRule(72);
  for (const StreamSpec& s : streams) {
    std::printf("%-14s %10s %10s %10s %12zu %10zu\n", s.name, s.continuous,
                s.discrete, s.true_concepts, s.history, s.test);
  }
  std::printf("(*synthetic intrusion regimes; KDD-99 itself reports "
              "'Unknown')\n\n");

  std::vector<std::vector<CellResult>> cells;
  for (size_t i = 0; i < streams.size(); ++i) {
    cells.push_back(RunComparison(streams[i].factory, streams[i].history,
                                  streams[i].test, scale.runs,
                                  9000 + i * 100));
  }

  std::printf("== Table II: Comparison in Error Rates (avg of %zu runs) ==\n",
              scale.runs);
  std::printf("%-14s", "Stream");
  for (const char* algo : kAlgorithms) std::printf(" %12s", algo);
  std::printf("\n");
  PrintRule(54);
  for (size_t i = 0; i < streams.size(); ++i) {
    std::printf("%-14s", streams[i].name);
    for (size_t a = 0; a < 3; ++a) std::printf(" %12.7f", cells[i][a].error);
    std::printf("\n");
  }
  std::printf("\n");

  std::printf("== Table III: Comparison in Test Times (sec) ==\n");
  std::printf("%-14s", "Stream");
  for (const char* algo : kAlgorithms) std::printf(" %12s", algo);
  std::printf("\n");
  PrintRule(54);
  for (size_t i = 0; i < streams.size(); ++i) {
    std::printf("%-14s", streams[i].name);
    for (size_t a = 0; a < 3; ++a) {
      std::printf(" %12.4f", cells[i][a].test_seconds);
    }
    std::printf("\n");
  }
  std::printf("\n");

  std::printf("== Table IV: Building Phase in High-order Model ==\n");
  std::printf("%-14s %12s %14s %14s\n", "Stream", "Build (s)",
              "#Concepts", "#Major (>1%)");
  PrintRule(58);
  for (size_t i = 0; i < streams.size(); ++i) {
    std::printf("%-14s %12.4f %14.1f %14.1f\n", streams[i].name,
                cells[i][0].build_seconds, cells[i][0].num_concepts,
                cells[i][0].major_concepts);
  }
  std::printf("\n(RePro concepts discovered online: Stagger %.1f)\n",
              cells[0][1].num_concepts);

  BenchReporter reporter("bench_tables");
  reporter.SetScale(scale);
  for (size_t i = 0; i < streams.size(); ++i) {
    for (size_t a = 0; a < 3; ++a) {
      reporter.AddCell(std::string(streams[i].name) + "/" + kAlgorithms[a],
                       cells[i][a]);
    }
  }
  if (auto status = reporter.WriteJson(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
