#ifndef HOM_BENCH_HARNESS_H_
#define HOM_BENCH_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "eval/prequential.h"
#include "highorder/builder.h"
#include "streams/generator.h"

namespace hom::bench {

/// Scale of a benchmark run. Default sizes keep every binary inside a few
/// seconds; paper scale reproduces the stream sizes of Section IV-A
/// (200k/400k for Stagger & Hyperplane, 1M/3.9M for Intrusion). Select
/// paper scale with HOM_BENCH_SCALE=paper in the environment.
struct Scale {
  size_t stagger_history = 20000;
  size_t stagger_test = 40000;
  size_t hyperplane_history = 20000;
  size_t hyperplane_test = 40000;
  size_t intrusion_history = 30000;
  size_t intrusion_test = 60000;
  /// Regime change rate of the intrusion stream. Reduced-scale runs use a
  /// higher rate so the shorter history still covers every regime (the
  /// paper assumes a "sufficiently large historical dataset"); paper scale
  /// restores long KDD-like bursts.
  double intrusion_lambda = 0.002;
  size_t runs = 3;  ///< repetitions averaged (paper: 20)

  static Scale FromEnvironment();
  bool is_paper_scale = false;
};

/// Everything measured for one (algorithm, stream) cell of Tables II-IV.
struct CellResult {
  double error = 0.0;
  double test_seconds = 0.0;
  double build_seconds = 0.0;  ///< high-order only
  double num_concepts = 0.0;  ///< high-order: discovered; RePro: history size
  double major_concepts = 0.0;  ///< high-order: concepts holding >= 1% of data
};

/// A factory for one of the three benchmark streams, seeded per run.
using GeneratorFactory =
    std::function<std::unique_ptr<StreamGenerator>(uint64_t seed)>;

/// Names of the competing algorithms, in table order.
inline constexpr const char* kAlgorithms[] = {"High-order", "RePro", "WCE"};

/// Runs `runs` repetitions of the full protocol — generate history + test,
/// build/bootstrap each algorithm, prequential-evaluate — and averages the
/// three algorithms' cells. Results indexed as [algorithm].
std::vector<CellResult> RunComparison(const GeneratorFactory& make_generator,
                                      size_t history_size, size_t test_size,
                                      size_t runs, uint64_t seed_base);

/// Runs the high-order pipeline only; used by the sweep benches.
CellResult RunHighOrderOnly(const GeneratorFactory& make_generator,
                            size_t history_size, size_t test_size,
                            size_t runs, uint64_t seed_base);

/// Prints a one-line table header/divider helper.
void PrintRule(size_t width);

}  // namespace hom::bench

#endif  // HOM_BENCH_HARNESS_H_
